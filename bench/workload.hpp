// Open-loop diurnal workload generation (bench/workload.hpp).
//
// The SLO plane is only honest if it is measured under load that looks like
// a production day: a rate that climbs through the morning, peaks at
// midday, and falls off toward midnight -- with replacements fired at the
// worst possible time (the peak). This header provides that load:
//
//   DiurnalSpec     the day: total request budget, day length, peak/trough
//                   ratio, emission cadence, seed.
//
//   DiurnalSource   a *native* bus module ("loadgen@<machine>") that emits
//                   requests on its "out" interface following the diurnal
//                   rate curve. Open loop: the emission schedule is fixed
//                   by the spec and the seed, never by downstream latency,
//                   so an overloaded or blacked-out pipeline accumulates
//                   queue -- exactly the signal the SLO engine must see.
//                   No VM on the producing side: one virtual-clock tick per
//                   `tick_us` computes the expected arrivals for the tick
//                   (stochastic rounding keeps the long-run total unbiased)
//                   and schedules each send at a jittered offset inside the
//                   tick, so millions of requests cost millions of simulator
//                   events and sends, not VM instructions.
//
//   make_diurnal_pipeline  the standard scenario used by tools/loadgen,
//                   tools/mh_slo, and bench_slo: the open pipeline app
//                   (filter -> sink, quiet sink) with the source bound to
//                   "filter in", request tagging armed (entry at the
//                   source's "out", terminal at the sink's "in").
//
// Determinism: everything derives from DiurnalSpec::seed via mt19937_64;
// two runs with the same spec emit byte-identical schedules.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "bus/bus.hpp"
#include "bus/client.hpp"
#include "cfg/parser.hpp"
#include "net/arch.hpp"

namespace surgeon::bench {

struct DiurnalSpec {
  /// Expected total requests over the day (the realized count differs by
  /// at most the stochastic-rounding noise, O(sqrt(ticks))).
  std::uint64_t requests = 200'000;
  /// Synthetic day length in virtual microseconds. The default hour-long
  /// "day" keeps tool runs snappy; pass 86'400'000'000 for a real day.
  net::SimTime day_us = 3'600'000'000;
  /// Midday rate divided by midnight rate (>= 1).
  double peak_to_trough = 4.0;
  /// Emission cadence: one rate evaluation per tick.
  net::SimTime tick_us = 100'000;
  std::uint64_t seed = 1;
  /// Stamp each emission as a request entry (trace-tagged end-to-end).
  bool tag_requests = true;
};

class DiurnalSource {
 public:
  /// Registers "loadgen@<machine>" with a "records"-style define interface
  /// "out" bound to `target_module`.`target_iface`, and (per the spec)
  /// marks "out" as a request entry point. Call start() to begin the day.
  DiurnalSource(bus::Bus& bus, std::string machine, std::string target_module,
                std::string target_iface, DiurnalSpec spec)
      : bus_(&bus),
        machine_(std::move(machine)),
        module_("loadgen@" + machine_),
        client_(bus, module_),
        spec_(spec),
        rng_(spec.seed) {
    bus::ModuleInfo info;
    info.name = module_;
    info.machine = machine_;
    info.source = "builtin:loadgen";
    info.interfaces.push_back(
        bus::InterfaceSpec{"out", bus::IfaceRole::kDefine, "", ""});
    bus_->add_module(std::move(info));
    bus_->add_binding(bus::BindingEnd{module_, "out"},
                      bus::BindingEnd{std::move(target_module),
                                      std::move(target_iface)});
    if (spec_.tag_requests) bus_->set_request_entry(module_, "out");
  }

  ~DiurnalSource() {
    stop();
    if (bus_->has_module(module_)) bus_->remove_module(module_);
  }

  DiurnalSource(const DiurnalSource&) = delete;
  DiurnalSource& operator=(const DiurnalSource&) = delete;

  /// Begins the day at the current virtual time.
  void start() {
    started_at_ = bus_->simulator().now();
    running_ = true;
    schedule_tick();
  }

  /// Cancels any pending emissions (in-flight events become no-ops).
  void stop() noexcept {
    alive_.reset();
    running_ = false;
  }

  [[nodiscard]] const std::string& module_name() const noexcept {
    return module_;
  }
  [[nodiscard]] const DiurnalSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  /// True once the whole day has been emitted.
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] net::SimTime started_at() const noexcept {
    return started_at_;
  }
  /// Virtual time of the configured midday peak.
  [[nodiscard]] net::SimTime midday_at() const noexcept {
    return started_at_ + spec_.day_us / 2;
  }

  /// Instantaneous arrival rate (requests per virtual us) at day offset
  /// `t_us`: a raised-cosine curve, trough at t=0/T, peak at T/2,
  /// normalized so the day integrates to spec.requests.
  [[nodiscard]] double rate_at(net::SimTime t_us) const {
    const double r = spec_.peak_to_trough >= 1.0 ? spec_.peak_to_trough : 1.0;
    const double phase = 2.0 * 3.141592653589793 *
                         (static_cast<double>(t_us) /
                          static_cast<double>(spec_.day_us));
    const double weight = 1.0 + (r - 1.0) * 0.5 * (1.0 - std::cos(phase));
    const double mean_weight = 1.0 + (r - 1.0) * 0.5;
    const double base = static_cast<double>(spec_.requests) /
                        static_cast<double>(spec_.day_us);
    return base * weight / mean_weight;
  }

 private:
  double uniform() {
    // 53 random bits -> [0, 1); deterministic for a given seed.
    return static_cast<double>(rng_() >> 11) * 0x1p-53;
  }

  void schedule_tick() {
    std::weak_ptr<int> alive = alive_;
    bus_->simulator().schedule_after(spec_.tick_us, [this, alive] {
      if (alive.expired()) return;
      tick();
    });
  }

  void tick() {
    const net::SimTime now = bus_->simulator().now();
    const net::SimTime elapsed = now - started_at_;
    if (elapsed >= spec_.day_us) {
      done_ = true;
      running_ = false;
      return;  // day over: no reschedule, the simulator may go idle
    }
    const double expected =
        rate_at(elapsed) * static_cast<double>(spec_.tick_us);
    auto n = static_cast<std::uint64_t>(expected);
    if (expected - static_cast<double>(n) > uniform()) ++n;  // unbiased
    for (std::uint64_t j = 0; j < n; ++j) {
      // Jittered but order-preserving offsets spread the tick's arrivals.
      const double frac =
          (static_cast<double>(j) + uniform()) / static_cast<double>(n);
      const auto offset = static_cast<net::SimTime>(
          frac * static_cast<double>(spec_.tick_us));
      std::weak_ptr<int> alive = alive_;
      bus_->simulator().schedule_after(offset, [this, alive] {
        if (alive.expired()) return;
        ++sent_;
        client_.write("out", {ser::Value{static_cast<std::int64_t>(sent_)}});
      });
    }
    schedule_tick();
  }

  bus::Bus* bus_;
  std::string machine_;
  std::string module_;
  bus::Client client_;
  DiurnalSpec spec_;
  std::mt19937_64 rng_;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  net::SimTime started_at_ = 0;
  std::uint64_t sent_ = 0;
  bool running_ = false;
  bool done_ = false;
};

/// The standard diurnal scenario: open pipeline (filter on vax, quiet sink
/// on sparc) plus a DiurnalSource on vax bound into "filter in", with
/// request tagging armed end to end (entry at the source, terminal at the
/// sink). Causal tracing is enabled -- the request plane depends on it.
/// The source is constructed but not started.
struct DiurnalScenario {
  std::unique_ptr<app::Runtime> runtime;
  std::unique_ptr<DiurnalSource> source;
};

inline DiurnalScenario make_diurnal_pipeline(const DiurnalSpec& spec,
                                             std::uint64_t runtime_seed = 11) {
  DiurnalScenario s;
  s.runtime = std::make_unique<app::Runtime>(runtime_seed);
  s.runtime->add_machine("vax", net::arch_vax());
  s.runtime->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::pipeline_open_config_text());
  s.runtime->load_application(
      config, "pipeline", [](const cfg::ModuleSpec& mspec) {
        return mspec.name == "filter"
                   ? app::samples::pipeline_filter_source()
                   : app::samples::pipeline_quiet_sink_source();
      });
  s.runtime->enable_causal_tracing();
  s.source = std::make_unique<DiurnalSource>(s.runtime->bus(), "vax",
                                             "filter", "in", spec);
  if (spec.tag_requests) {
    s.runtime->bus().set_request_terminal("sink", "in");
  }
  return s;
}

}  // namespace surgeon::bench
