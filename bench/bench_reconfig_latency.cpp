// C3 -- reconfiguration delay vs reconfiguration-point placement
// (Section 4: points "must be located within the most frequently executed
// code" for quick response; placement is a responsiveness/overhead trade).
//
// Measures VIRTUAL time from the reconfiguration request to completion for:
//   hot placement    -- point inside the per-message service path,
//   cold placement   -- point on a path taken once every k messages,
//   quiescence       -- no participation: wait for the module to go idle
//                       (the ref-[9] baseline), which here must also wait
//                       out the k-message service bursts.
//
// The wall-clock numbers of the benchmark runner are irrelevant here; the
// meaningful outputs are the reported virtual-microsecond counters.
#include <benchmark/benchmark.h>

#include "app/runtime.hpp"
#include "baseline/quiescence.hpp"
#include "bench_common.hpp"
#include "cfg/parser.hpp"
#include "reconfig/scripts.hpp"

namespace {

using namespace surgeon;

constexpr const char* kConfig = R"(
module feeder {
  define interface out pattern = {integer} ::
}
module worker {
  use interface in pattern = {integer} ::
  reconfiguration point = {RP} ::
}
application app {
  instance feeder on "vax" ::
  instance worker on "vax" ::
  bind "feeder out" "worker in" ::
}
)";

std::string feeder_source() {
  return R"(
void main() {
  int i;
  i = 0;
  while (1) {
    mh_write("out", "i", i);
    i = i + 1;
    sleep(1);
  }
}
)";
}

/// hot: RP visited for every message (inside the service procedure).
/// cold: RP visited only between bursts of `stride` messages.
/// Both block on mh_read INSIDE the service procedure, so the module is
/// never quiescent at stack depth 1 -- the quiescence baseline must wait
/// forever, while the participating module reaches RP on schedule.
std::string worker_source(bool hot, int stride) {
  if (hot) {
    return R"(
int handled = 0;
void serve() {
  int x;
  mh_read("in", "i", &x);
RP:
  handled = handled + 1;
}
void main() {
  while (1) {
    serve();
  }
}
)";
  }
  return R"(
int handled = 0;
void serve(int k) {
  int x;
  while (k > 0) {
    mh_read("in", "i", &x);
    handled = handled + 1;
    k = k - 1;
  }
}
void main() {
  while (1) {
    serve()" +
         std::to_string(stride) + R"();
RP:
    ;
  }
}
)";
}

std::unique_ptr<app::Runtime> make_app(bool hot, int stride) {
  auto rt = std::make_unique<app::Runtime>(17);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config = cfg::parse_config(kConfig);
  rt->load_application(config, "app", [&](const cfg::ModuleSpec& spec) {
    if (spec.name == "feeder") return feeder_source();
    return worker_source(hot, stride);
  });
  rt->run_for(5'000'000);
  return rt;
}

void BM_HotPlacement(benchmark::State& state) {
  double delay_us = 0;
  for (auto _ : state) {
    auto rt = make_app(true, 0);
    auto report = reconfig::move_module(*rt, "worker", "sparc");
    delay_us = static_cast<double>(report.total_delay());
  }
  state.counters["virtual_delay_us"] = delay_us;
}
BENCHMARK(BM_HotPlacement);

void BM_ColdPlacement(benchmark::State& state) {
  const int stride = static_cast<int>(state.range(0));
  double delay_us = 0;
  for (auto _ : state) {
    auto rt = make_app(false, stride);
    auto report = reconfig::move_module(*rt, "worker", "sparc");
    delay_us = static_cast<double>(report.total_delay());
  }
  state.counters["virtual_delay_us"] = delay_us;
}
BENCHMARK(BM_ColdPlacement)->Arg(4)->Arg(16)->Arg(64)->ArgNames({"stride"});

void BM_QuiescenceBaseline(benchmark::State& state) {
  const int stride = static_cast<int>(state.range(0));
  double delay_us = 0;
  double succeeded = 0;
  for (auto _ : state) {
    auto rt = make_app(false, stride);
    baseline::QuiescentReplaceOptions options;
    options.machine = "sparc";
    options.quiesce_timeout_us = 120'000'000;
    auto report = baseline::quiescent_replace(*rt, "worker", options);
    delay_us = static_cast<double>(report.total_delay());
    succeeded = report.quiesced ? 1.0 : 0.0;
  }
  state.counters["virtual_delay_us"] = delay_us;
  state.counters["succeeded"] = succeeded;
}
BENCHMARK(BM_QuiescenceBaseline)->Arg(4)->Arg(16)->ArgNames({"stride"});

}  // namespace
