// What machine loss costs a replica-group deployment (surgeon::replicate).
//
// BM_RebuildUnderLoad -- the sharded KV workload with a GroupManager
// watching, one ring machine crashed mid-run, per group size:
//   virtual_restore_us  -- virtual time from the crash to full redundancy
//                          (detection: heartbeat silence -> suspect ->
//                          confirmed, then the pull rebuild onto the spare),
//   p99_before_us / p99_during_us / p99_after_us -- served operation p99
//                          latency in the windows before the crash, between
//                          crash and restored redundancy, and after --
//                          the "keeps serving while healing" evidence.
// Wall time per iteration is the full simulated run; items processed are
// acknowledged KV operations.
//
// BM_RingPlace -- the raw consistent-hash placement probe, the per-group
// price every rebuild and rebalance decision pays.
//
// Emit machine-readable results with
//   bench_rebuild --benchmark_out=BENCH_rebuild.json
//                 --benchmark_out_format=json
// (the `bench_rebuild_json` CMake target does exactly that).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "app/runtime.hpp"
#include "net/arch.hpp"
#include "replicate/kv.hpp"
#include "replicate/manager.hpp"
#include "replicate/placement.hpp"

namespace {

using namespace surgeon;

constexpr std::uint64_t kRounds = 400'000'000;
constexpr net::SimTime kBudgetUs = 60'000'000;
constexpr net::SimTime kCrashAtUs = 30'000;
constexpr int kWorkItems = 300;

net::SimTime p99(std::vector<net::SimTime> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  return samples[(99 * (samples.size() - 1)) / 100];
}

void BM_RebuildUnderLoad(benchmark::State& state) {
  const auto group_size = static_cast<std::size_t>(state.range(0));
  net::SimTime restore_us = 0;
  net::SimTime before_p99 = 0, during_p99 = 0, after_p99 = 0;
  std::uint64_t samples = 0;
  std::uint64_t acked = 0;
  for (auto _ : state) {
    state.PauseTiming();  // exclude topology construction + MiniC compile
    replicate::KvOptions options;
    options.seed = 1;
    options.shards = 4;
    options.group_size = group_size;
    options.machines.clear();
    for (std::size_t m = 0; m < group_size + 2; ++m) {
      options.machines.push_back("m" + std::to_string(m));
    }
    app::Runtime rt(1);
    for (const auto& m : options.machines) rt.add_machine(m, net::arch_vax());
    rt.add_machine("sp0", net::arch_vax());
    rt.add_machine(options.control_machine, net::arch_vax());
    replicate::KvService service(rt, options);
    service.launch(kWorkItems);
    replicate::ManagerOptions mopts;
    mopts.heartbeat_interval_us = 5'000;
    mopts.sweep_interval_us = 20'000;
    mopts.detector.suspicion_timeout_us = 30'000;
    mopts.detector.confirm_timeout_us = 60'000;
    mopts.spares = {"sp0"};
    replicate::GroupManager manager(service, mopts);
    manager.start();
    state.ResumeTiming();

    (void)rt.run_for(kCrashAtUs, kRounds);
    const net::SimTime crashed_at = rt.now();
    (void)rt.crash_machine("m0");
    const bool restored = rt.run_until(
        [&] { return manager.stats().machines_rebuilt >= 1; }, kRounds);
    if (!restored) state.SkipWithError("redundancy never restored");
    const net::SimTime restored_at = rt.now();
    const bool done = service.run_to_completion(kBudgetUs, kRounds);
    if (!done) state.SkipWithError("client never finished");

    state.PauseTiming();
    manager.stop();
    restore_us += restored_at - crashed_at;
    ++samples;
    acked += service.client().stats().acked;
    std::vector<net::SimTime> before, during, after;
    for (const replicate::KvLatencySample& s : service.router().latencies()) {
      if (s.completed_at < crashed_at) {
        before.push_back(s.latency_us);
      } else if (s.completed_at < restored_at) {
        during.push_back(s.latency_us);
      } else {
        after.push_back(s.latency_us);
      }
    }
    before_p99 = p99(std::move(before));
    during_p99 = p99(std::move(during));
    after_p99 = p99(std::move(after));
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(acked));
  if (samples != 0) {
    state.counters["virtual_restore_us"] =
        static_cast<double>(restore_us) / static_cast<double>(samples);
  }
  state.counters["p99_before_us"] = static_cast<double>(before_p99);
  state.counters["p99_during_us"] = static_cast<double>(during_p99);
  state.counters["p99_after_us"] = static_cast<double>(after_p99);
}
BENCHMARK(BM_RebuildUnderLoad)->Arg(2)->Arg(3)->ArgNames({"group_size"})
    ->Unit(benchmark::kMillisecond);

void BM_RingPlace(benchmark::State& state) {
  replicate::HashRing ring(replicate::RingOptions{64, 11});
  for (int m = 0; m < 8; ++m) ring.add_machine("m" + std::to_string(m));
  int g = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.place(replicate::kv_group_key(g), 3));
    g = (g + 1) & 63;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RingPlace);

}  // namespace
