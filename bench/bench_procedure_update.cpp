// C9 -- procedure-level dynamic updating (Frieder & Segal, ref [4]) vs this
// paper's reconfiguration points, on the update-completion axis §4 frames:
//
//   "programs written in a top-down style will be updated more successfully
//    ... when changes to the program are restricted to the lower-level
//    procedures, updates can be performed quickly, but when the higher-
//    level procedures have changed, the update cannot complete until these
//    procedures are inactive."
//
// Reported: virtual time (scheduling slices) until the update lands, for a
// leaf-procedure change, a mid-level change, and a main change (which never
// lands), against the reconfiguration-point replacement that installs any
// of them in bounded time.
#include <benchmark/benchmark.h>

#include "baseline/procedure_update.hpp"
#include "bench_common.hpp"

namespace {

using namespace surgeon;

/// layer 0 = leaf changed, 1 = mid changed, 2 = main changed.
std::string version(int changed_layer, bool is_new) {
  std::string leaf_body = (changed_layer == 0 && is_new) ? "x * 3" : "x * 2";
  std::string mid_body =
      (changed_layer == 1 && is_new) ? "leaf(x) + 2" : "leaf(x) + 1";
  std::string main_start = (changed_layer == 2 && is_new) ? "5" : "0";
  return R"(
int out = 0;
int leaf(int x) { return )" +
         leaf_body + R"(; }
int mid(int x) { return )" +
         mid_body + R"(; }
void main() {
  int i;
  i = )" + main_start +
         R"(;
  while (1) {
    out = mid(i);
    i = i + 1;
    sleep(1);
  }
}
)";
}

void BM_ProcedureUpdate(benchmark::State& state) {
  const int layer = static_cast<int>(state.range(0));
  auto old_prog = benchsupport::compile_plain(version(layer, false));
  auto new_prog = benchsupport::compile_plain(version(layer, true));
  double slices_to_complete = 0;
  double completed = 0;
  for (auto _ : state) {
    vm::Machine m(*old_prog, net::arch_vax());
    baseline::ProcedureUpdater updater(m, *old_prog, new_prog);
    std::size_t slices = 0;
    while (!updater.complete() && slices < 2000) {
      (void)m.step(50);
      (void)updater.step();
      ++slices;
    }
    slices_to_complete = static_cast<double>(slices);
    completed = updater.complete() ? 1.0 : 0.0;
  }
  state.counters["slices_to_complete"] = slices_to_complete;
  state.counters["completed"] = completed;
}
BENCHMARK(BM_ProcedureUpdate)->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"changed_layer"});

/// The same update installed through a reconfiguration point: bounded time
/// regardless of which layer changed, because the whole module is replaced
/// with its state.
void BM_ReconfigPointUpdate(benchmark::State& state) {
  const int layer = static_cast<int>(state.range(0));
  // Add a reconfiguration point to both versions (in main's loop).
  auto with_rp = [&](bool is_new) {
    std::string src = version(layer, is_new);
    auto pos = src.find("    out = mid(i);");
    src.insert(pos, "RP:\n");
    return src;
  };
  auto old_prog = benchsupport::compile_transformed(
      with_rp(false), {cfg::ReconfigPointSpec{"RP", {}, {}}});
  auto new_prog = benchsupport::compile_transformed(
      with_rp(true), {cfg::ReconfigPointSpec{"RP", {}, {}}});
  double slices_to_complete = 0;
  for (auto _ : state) {
    vm::Machine m(*old_prog, net::arch_vax());
    (void)m.step(100);
    m.raise_signal();
    std::size_t slices = 0;
    while (!m.last_encoded_state().has_value() && slices < 2000) {
      (void)m.step(50);
      ++slices;
    }
    vm::Machine clone(*new_prog, net::arch_sparc());
    clone.set_standalone_status("clone");
    clone.inject_incoming_state(*m.last_encoded_state());
    while ((clone.decode_count() == 0 ||
            clone.restore_frames_remaining() != 0) &&
           slices < 2000) {
      (void)clone.step(50);
      ++slices;
    }
    slices_to_complete = static_cast<double>(slices);
  }
  state.counters["slices_to_complete"] = slices_to_complete;
  state.counters["completed"] = 1.0;
}
BENCHMARK(BM_ReconfigPointUpdate)->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"changed_layer"});

}  // namespace
