// C6 -- throughput of the abstract state format (Section 1.2): encode and
// decode rates for state buffers of growing size, including heap segments.
// The format is what lets modules cross heterogeneous hosts; its cost must
// be linear and small next to 1993-era (and simulated) network latencies.
#include <benchmark/benchmark.h>

#include "serialize/state.hpp"
#include "support/rng.hpp"

namespace {

using namespace surgeon;

ser::StateBuffer make_state(int frames, int values_per_frame,
                            int heap_objects) {
  support::SplitMix64 rng(99);
  ser::StateBuffer sb;
  for (int f = 0; f < frames; ++f) {
    ser::StateFrame frame;
    for (int v = 0; v < values_per_frame; ++v) {
      switch (rng.next_below(3)) {
        case 0:
          frame.values.emplace_back(
              static_cast<std::int64_t>(rng.next()));
          break;
        case 1:
          frame.values.emplace_back(rng.next_double());
          break;
        default:
          frame.values.emplace_back(std::string("value-") +
                                    std::to_string(rng.next_below(1000)));
      }
    }
    sb.push_frame(std::move(frame));
  }
  for (int h = 1; h <= heap_objects; ++h) {
    std::vector<ser::Value> cells;
    for (int c = 0; c < 16; ++c) {
      cells.emplace_back(static_cast<std::int64_t>(rng.next()));
    }
    sb.put_heap_object(static_cast<std::uint64_t>(h), std::move(cells));
  }
  return sb;
}

void BM_Encode(benchmark::State& state) {
  auto sb = make_state(static_cast<int>(state.range(0)), 8,
                       static_cast<int>(state.range(1)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = sb.encode();
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes));
  state.counters["state_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_Encode)
    ->ArgsProduct({{1, 16, 256, 4096}, {0, 8}})
    ->ArgNames({"frames", "heap_objs"});

void BM_Decode(benchmark::State& state) {
  auto sb = make_state(static_cast<int>(state.range(0)), 8,
                       static_cast<int>(state.range(1)));
  auto encoded = sb.encode();
  for (auto _ : state) {
    auto decoded = ser::StateBuffer::decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * encoded.size()));
}
BENCHMARK(BM_Decode)
    ->ArgsProduct({{1, 16, 256, 4096}, {0, 8}})
    ->ArgNames({"frames", "heap_objs"});

void BM_RoundTrip(benchmark::State& state) {
  auto sb = make_state(static_cast<int>(state.range(0)), 8, 4);
  for (auto _ : state) {
    auto decoded = ser::StateBuffer::decode(sb.encode());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RoundTrip)->Arg(16)->Arg(256)->ArgNames({"frames"});

}  // namespace
