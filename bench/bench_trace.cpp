// C13 -- causal-tracing overhead: what the flight recorder adds to the
// platform. Two layers:
//
// BM_PipelineApp -- the pipeline sample application (feeder -> filter ->
// sink, VM-executed) run to completion, in three configurations:
//   mode 0: no recorder events   (tracing off -- the shipping default)
//   mode 1: same, tracing still off (control: run-to-run noise floor)
//   mode 2: causal tracing enabled (every bus hop journaled)
// The tentpole's acceptance bar is mode 2 within 10% of mode 0 on this
// workload.
//
// BM_BusBurst -- the raw bus message loop with no VM in the way, the
// worst case for the recorder (nothing dilutes the per-hop price), plus
// micro-benchmarks for one record() and for DAG assembly/export.
//
// Emit machine-readable results with
//   bench_trace --benchmark_out=BENCH_trace.json
//               --benchmark_out_format=json
// (the `bench_trace_json` CMake target does exactly that).
#include <benchmark/benchmark.h>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "bus/bus.hpp"
#include "cfg/parser.hpp"
#include "net/arch.hpp"
#include "net/sim.hpp"
#include "trace/assemble.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace surgeon;

void BM_PipelineApp(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int kItems = 200;
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();  // exclude MiniC parse/compile; measure the run
    auto rt = std::make_unique<app::Runtime>(1);
    rt->add_machine("vax", net::arch_vax());
    rt->add_machine("sparc", net::arch_sparc());
    if (mode >= 2) rt->enable_causal_tracing();
    cfg::ConfigFile config =
        cfg::parse_config(app::samples::pipeline_config_text());
    rt->load_application(config, "pipeline",
                         [](const cfg::ModuleSpec& spec) {
                           if (spec.name == "feeder") {
                             return app::samples::pipeline_source_source(
                                 kItems);
                           }
                           if (spec.name == "filter") {
                             return app::samples::pipeline_filter_source();
                           }
                           return app::samples::pipeline_sink_source();
                         });
    state.ResumeTiming();
    bool done = rt->run_until(
        [&] {
          return rt->module_finished("feeder") &&
                 rt->machine_of("sink")->output().size() >=
                     static_cast<std::size_t>(kItems);
        },
        100'000'000);
    if (!done) state.SkipWithError("pipeline did not finish");
    events = rt->tracer().total_events();
    benchmark::DoNotOptimize(rt);
    state.PauseTiming();  // exclude teardown too
    rt.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kItems);
  if (mode >= 2) state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_PipelineApp)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"trace"});

bus::ModuleInfo pipe_module(const std::string& name, bool uses, bool defines) {
  bus::ModuleInfo info;
  info.name = name;
  info.machine = "a";
  if (uses) {
    info.interfaces.push_back(
        bus::InterfaceSpec{"in", bus::IfaceRole::kUse, "i", ""});
  }
  if (defines) {
    info.interfaces.push_back(
        bus::InterfaceSpec{"out", bus::IfaceRole::kDefine, "i", ""});
  }
  return info;
}

struct BurstFixture {
  net::Simulator sim{1};
  bus::Bus bus{sim};
  trace::Recorder recorder;

  explicit BurstFixture(int mode) {
    sim.add_machine("a", net::arch_vax());
    bus.add_module(pipe_module("p", /*uses=*/false, /*defines=*/true));
    bus.add_module(pipe_module("f", /*uses=*/true, /*defines=*/true));
    bus.add_module(pipe_module("s", /*uses=*/true, /*defines=*/false));
    bus.add_binding({"p", "out"}, {"f", "in"});
    bus.add_binding({"f", "out"}, {"s", "in"});
    if (mode >= 1) {
      recorder.set_clock(&sim);
      bus.set_tracer(&recorder);
    }
    recorder.set_enabled(mode >= 2);
  }
};

void BM_BusBurst(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int kBurst = 256;
  BurstFixture f(mode);
  for (auto _ : state) {
    for (int i = 0; i < kBurst; ++i) {
      f.bus.send("p", "out", {ser::Value(std::int64_t{i})});
    }
    f.sim.run();
    while (auto msg = f.bus.receive("f", "in")) {
      f.bus.send("f", "out", std::move(msg->values));
    }
    f.sim.run();
    while (auto msg = f.bus.receive("s", "in")) {
      benchmark::DoNotOptimize(msg);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBurst);
  if (mode >= 2) {
    state.counters["events"] =
        static_cast<double>(f.recorder.total_events());
    state.counters["ring_dropped"] =
        static_cast<double>(f.recorder.dropped("a"));
  }
}
BENCHMARK(BM_BusBurst)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"trace"});

void BM_RecordEvent(benchmark::State& state) {
  // The raw cost of journaling one event (the per-hop price the bus pays
  // while tracing): id assignment, parent lookup, Lamport merge, ring push.
  trace::Recorder recorder;
  recorder.set_enabled(true);
  trace::TraceContext cause;
  for (auto _ : state) {
    cause = recorder.record(trace::EventKind::kSend, "a", "p", "out", cause);
    benchmark::DoNotOptimize(cause);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RecordEvent);

void BM_AssembleAndExport(benchmark::State& state) {
  // Reconstructing the DAG from the journals and rendering the Chrome
  // trace (what one post-mortem export costs), per journal size.
  const int events = static_cast<int>(state.range(0));
  trace::Recorder recorder;
  recorder.set_enabled(true);
  recorder.set_capacity(static_cast<std::size_t>(events));
  trace::TraceContext cause;
  for (int i = 0; i < events; ++i) {
    cause = recorder.record(
        i % 2 == 0 ? trace::EventKind::kSend : trace::EventKind::kDeliver,
        i % 2 == 0 ? "a" : "b", "p", "out", cause);
  }
  for (auto _ : state) {
    trace::Dag dag = trace::assemble(recorder);
    std::string chrome = trace::to_chrome_trace(dag);
    benchmark::DoNotOptimize(chrome);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * events);
}
BENCHMARK(BM_AssembleAndExport)->Arg(256)->Arg(4096)->ArgNames({"events"});

}  // namespace
