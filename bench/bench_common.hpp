// Shared helpers for the benchmark binaries.
#pragma once

#include <memory>
#include <string>

#include "cfg/spec.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "vm/compiler.hpp"
#include "vm/machine.hpp"
#include "xform/transform.hpp"

namespace surgeon::benchsupport {

inline std::shared_ptr<vm::CompiledProgram> compile_plain(
    const std::string& src) {
  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  return std::make_shared<vm::CompiledProgram>(vm::compile(prog));
}

inline std::shared_ptr<vm::CompiledProgram> compile_transformed(
    const std::string& src, const std::vector<cfg::ReconfigPointSpec>& points,
    const xform::XformOptions& options = {}) {
  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  xform::prepare_module(prog, points, options);
  return std::make_shared<vm::CompiledProgram>(vm::compile(prog));
}

/// Runs a standalone machine to completion; aborts on fault.
inline void run_to_done(vm::Machine& m) {
  auto r = m.step(UINT64_MAX);
  if (r.state != vm::RunState::kDone) {
    throw support::VmError(std::string("benchmark program did not finish: ") +
                           vm::run_state_name(r.state) + " " +
                           m.fault_message());
  }
}

}  // namespace surgeon::benchsupport
