// Shared helpers for the benchmark binaries.
#pragma once

#include <memory>
#include <string>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "cfg/spec.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "net/arch.hpp"
#include "vm/compiler.hpp"
#include "vm/machine.hpp"
#include "xform/transform.hpp"

namespace surgeon::benchsupport {

inline std::shared_ptr<vm::CompiledProgram> compile_plain(
    const std::string& src) {
  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  return std::make_shared<vm::CompiledProgram>(vm::compile(prog));
}

inline std::shared_ptr<vm::CompiledProgram> compile_transformed(
    const std::string& src, const std::vector<cfg::ReconfigPointSpec>& points,
    const xform::XformOptions& options = {}) {
  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  xform::prepare_module(prog, points, options);
  return std::make_shared<vm::CompiledProgram>(vm::compile(prog));
}

/// Runs a standalone machine to completion; aborts on fault.
inline void run_to_done(vm::Machine& m) {
  auto r = m.step(UINT64_MAX);
  if (r.state != vm::RunState::kDone) {
    throw support::VmError(std::string("benchmark program did not finish: ") +
                           vm::run_state_name(r.state) + " " +
                           m.fault_message());
  }
}

// --- shared application topologies -----------------------------------------
//
// Every bench that exercises reconfiguration needs the same two deployments:
// the pipeline (feeder -> filter -> sink across vax/sparc) and the counter
// (client <-> server RPC). The runtime/topology boilerplate used to be
// copied per bench; these builders are the single source.

/// The pipeline application with a bursty feeder: `items` items in 10-item
/// bursts separated by a sleep, so a replacement fired a couple of items
/// into a burst finds the rest queued at (or in flight toward) the filter.
inline std::unique_ptr<app::Runtime> make_bursty_pipeline(
    int items, std::uint64_t seed = 5) {
  auto rt = std::make_unique<app::Runtime>(seed);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  rt->enable_metrics();
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::pipeline_config_text());
  rt->load_application(
      config, "pipeline", [&](const cfg::ModuleSpec& spec) -> std::string {
        if (spec.name == "feeder") {
          return R"(
void main() {
  int i;
  i = 1;
  while (i <= )" + std::to_string(items) + R"() {
    mh_write("out", "i", i);
    if (i % 10 == 0) { sleep(2); }
    i = i + 1;
  }
  print("feeder-done");
}
)";
        }
        if (spec.name == "filter") {
          return app::samples::pipeline_filter_source();
        }
        return app::samples::pipeline_sink_source();
      });
  rt->set_slice(60);  // coarse slices keep the burst queued, not drained
  return rt;
}

/// The stock counter client paces itself with one-second sleeps -- fine for
/// the functional tests, but a steady-state number wants a loaded server,
/// not an idle one. This client keeps a request in flight back to back.
inline std::string busy_client_source(int requests) {
  return R"mc(
void main()
{
  int i;
  int reply;
  i = 1;
  while (i <= )mc" +
         std::to_string(requests) + R"mc() {
    mh_write("svc", "i", 2);
    mh_read("svc", "i", &reply);
    i = i + 1;
  }
  print("client-done");
}
)mc";
}

struct CounterOptions {
  std::uint64_t seed = 3;
  bool metrics = false;
  bool busy_client = false;  // back-to-back client instead of the paced one
};

/// The counter application (client on vax, server on sparc).
inline std::unique_ptr<app::Runtime> make_counter(
    int requests, const CounterOptions& options = {}) {
  auto rt = std::make_unique<app::Runtime>(options.seed);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  if (options.metrics) rt->enable_metrics();
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter", [&](const cfg::ModuleSpec& spec) {
    if (spec.name == "client") {
      return options.busy_client
                 ? busy_client_source(requests)
                 : app::samples::counter_client_source(requests);
    }
    return app::samples::counter_server_source();
  });
  return rt;
}

}  // namespace surgeon::benchsupport
