// C5 -- preparation strategies compared (Section 4 vs Theimer-Hayes,
// ref [10]): prepare-at-compile-time (this paper) vs generate-and-compile a
// migration program at migration time.
//
// Our migration-time latency is measured directly (virtual time of the
// Figure-5 script on the counter app); the Theimer-Hayes generate+compile
// step is added from the calibrated cost model. The compile-time cost of
// our strategy (code growth) is reported alongside -- that is the price we
// pay instead. Shape: ours wins at migration time by orders of magnitude;
// theirs costs nothing until a migration happens.
#include <benchmark/benchmark.h>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "baseline/migration_models.hpp"
#include "bench_common.hpp"
#include "cfg/parser.hpp"
#include "reconfig/scripts.hpp"

namespace {

using namespace surgeon;

std::unique_ptr<app::Runtime> make_counter() {
  auto rt = std::make_unique<app::Runtime>(23);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter", [](const cfg::ModuleSpec& spec) {
    if (spec.name == "client") {
      return app::samples::counter_client_source(100000);
    }
    return app::samples::counter_server_source();
  });
  return rt;
}

void BM_PreparedAtCompileTime(benchmark::State& state) {
  double delay_us = 0;
  double frames = 0;
  for (auto _ : state) {
    auto rt = make_counter();
    rt->run_until([&] {
      return rt->machine_of("client")->output().size() >= 5;
    });
    auto report = reconfig::move_module(*rt, "server", "sparc");
    delay_us = static_cast<double>(report.total_delay());
    frames = static_cast<double>(report.state_frames);
  }
  state.counters["virtual_delay_us"] = delay_us;
  state.counters["stack_frames"] = frames;
}
BENCHMARK(BM_PreparedAtCompileTime);

void BM_TheimerHayesModel(benchmark::State& state) {
  // Same migration, plus the modelled migration-time generate+compile step.
  baseline::MigrationCostModel model;
  double delay_us = 0;
  for (auto _ : state) {
    auto rt = make_counter();
    rt->run_until([&] {
      return rt->machine_of("client")->output().size() >= 5;
    });
    auto program = rt->image_of("server")->program;  // before removal
    auto report = reconfig::move_module(*rt, "server", "sparc");
    auto preparation = baseline::theimer_hayes_preparation_us(
        model, *program, report.state_frames);
    delay_us = static_cast<double>(report.total_delay() + preparation);
  }
  state.counters["virtual_delay_us"] = delay_us;
}
BENCHMARK(BM_TheimerHayesModel);

void BM_CompileTimePriceOfPreparation(benchmark::State& state) {
  // What our strategy pays up front: transformation time and code growth.
  auto points = cfg::parse_config(app::samples::counter_config_text())
                    .find_module("server")
                    ->reconfig_points;
  auto original =
      benchsupport::compile_plain(app::samples::counter_server_source());
  std::shared_ptr<vm::CompiledProgram> transformed;
  for (auto _ : state) {
    transformed = benchsupport::compile_transformed(
        app::samples::counter_server_source(), points);
    benchmark::DoNotOptimize(transformed);
  }
  auto cost = baseline::preparation_cost(*original, *transformed);
  state.counters["code_growth_x"] = cost.growth_factor();
  state.counters["original_insns"] =
      static_cast<double>(cost.original_insns);
  state.counters["transformed_insns"] =
      static_cast<double>(cost.transformed_insns);
}
BENCHMARK(BM_CompileTimePriceOfPreparation);

}  // namespace
