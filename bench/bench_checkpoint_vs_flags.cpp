// C2 -- reconfiguration points vs periodic checkpointing (Section 4).
//
// "The cost of capturing the process state is paid only when a
// reconfiguration is performed, instead of at regular intervals during
// execution."
//
// Sweeps the checkpoint interval and the module's state size; reports wall
// time per executed instruction and the checkpoint data volume. The shape:
// checkpointing overhead grows as intervals shrink and as state grows,
// while the flag-tested build pays a small constant regardless.
#include <benchmark/benchmark.h>

#include "baseline/checkpoint.hpp"
#include "bench_common.hpp"

namespace {

using namespace surgeon;

/// Compute-bound module with a heap table of `cells` ints (its state size).
std::string worker(int cells) {
  return R"(
int acc = 0;
int* table;

void main() {
  int i;
  table = mh_alloc_int()" +
         std::to_string(cells) + R"();
  i = 0;
  while (i < 100000) {
    acc = acc + i;
    table[i % )" +
         std::to_string(cells) + R"(] = acc;
    i = i + 1;
  }
}
)";
}

void BM_Checkpointing(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  const auto interval = static_cast<std::uint64_t>(state.range(1));
  auto prog = benchsupport::compile_plain(worker(cells));
  std::uint64_t insns = 0;
  std::uint64_t checkpoints = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    vm::Machine m(*prog, net::arch_vax());
    baseline::CheckpointRunner runner(m, interval);
    (void)runner.run(UINT64_MAX);
    insns = runner.stats().instructions_executed;
    checkpoints = runner.stats().checkpoints_taken;
    bytes = runner.stats().total_checkpoint_bytes;
  }
  state.counters["checkpoints"] = static_cast<double>(checkpoints);
  state.counters["ckpt_bytes_total"] = static_cast<double>(bytes);
  state.counters["ns_per_insn"] = benchmark::Counter(
      static_cast<double>(state.iterations() * insns),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * insns));
}
BENCHMARK(BM_Checkpointing)
    ->ArgsProduct({{64, 1024, 16384}, {2'000, 20'000, 200'000}})
    ->ArgNames({"state_cells", "interval"});

void BM_NoCheckpointing(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  auto prog = benchsupport::compile_plain(worker(cells));
  std::uint64_t insns = 0;
  for (auto _ : state) {
    vm::Machine m(*prog, net::arch_vax());
    benchsupport::run_to_done(m);
    insns = m.instructions_executed();
  }
  state.counters["ns_per_insn"] = benchmark::Counter(
      static_cast<double>(state.iterations() * insns),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * insns));
}
BENCHMARK(BM_NoCheckpointing)
    ->Arg(64)->Arg(1024)->Arg(16384)
    ->ArgNames({"state_cells"});

/// The flag-tested alternative: the same module carrying a reconfiguration
/// point, never signalled. Its only cost is testing mh_reconfig.
void BM_FlagTested(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  std::string src = worker(cells);
  // Put the reconfiguration point in the hot loop: worst case for us,
  // still cheaper than any checkpointing interval.
  auto pos = src.find("    acc = acc + i;");
  src.insert(pos, "RP:\n");
  auto prog = benchsupport::compile_transformed(
      src, {cfg::ReconfigPointSpec{"RP", {}, {}}});
  std::uint64_t insns = 0;
  for (auto _ : state) {
    vm::Machine m(*prog, net::arch_vax());
    benchsupport::run_to_done(m);
    insns = m.instructions_executed();
  }
  state.counters["ns_per_insn"] = benchmark::Counter(
      static_cast<double>(state.iterations() * insns),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * insns));
}
BENCHMARK(BM_FlagTested)
    ->Arg(64)->Arg(1024)->Arg(16384)
    ->ArgNames({"state_cells"});

}  // namespace
