// C1 -- "the run-time cost is merely that of periodically testing the flags"
// (Section 4).
//
// Measures the steady-state execution cost of a compute-bound module in
// three builds:
//   original            -- untransformed,
//   rp_outer_loop       -- reconfiguration point outside the hot loop
//                          (the paper's recommended placement),
//   rp_inner_loop       -- reconfiguration point inside the hot loop
//                          (fast reaction, maximum flag-testing cost).
//
// Reported counters: executed VM instructions per logical round, and the
// instruction overhead relative to the original. The *shape* to reproduce:
// outer placement costs ~nothing; inner placement costs a bounded, constant
// per-iteration tax.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace surgeon;

std::string worker(bool rp_inner, bool rp_outer) {
  std::string inner_label = rp_inner ? "RPI:\n" : "";
  std::string outer_label = rp_outer ? "RPO:\n" : "";
  return R"(
int acc = 0;

void round(int n) {
  while (n > 0) {
)" + inner_label +
         R"(    acc = acc + n;
    n = n - 1;
  }
}

void main() {
  int r;
  r = 0;
  while (r < 200) {
)" + outer_label +
         R"(    round(100);
    r = r + 1;
  }
}
)";
}

void run_variant(benchmark::State& state,
                 const std::shared_ptr<vm::CompiledProgram>& prog,
                 double baseline_insns) {
  std::uint64_t insns = 0;
  for (auto _ : state) {
    vm::Machine m(*prog, net::arch_vax());
    benchsupport::run_to_done(m);
    insns = m.instructions_executed();
  }
  state.counters["insns_total"] = static_cast<double>(insns);
  state.counters["insns_per_round"] = static_cast<double>(insns) / 200.0;
  if (baseline_insns > 0) {
    state.counters["overhead_pct"] =
        (static_cast<double>(insns) / baseline_insns - 1.0) * 100.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 200);
}

double baseline_insns() {
  static double value = [] {
    auto prog = benchsupport::compile_plain(worker(false, false));
    vm::Machine m(*prog, net::arch_vax());
    benchsupport::run_to_done(m);
    return static_cast<double>(m.instructions_executed());
  }();
  return value;
}

void BM_Original(benchmark::State& state) {
  auto prog = benchsupport::compile_plain(worker(false, false));
  run_variant(state, prog, 0);
}
BENCHMARK(BM_Original);

void BM_RpOuterLoop(benchmark::State& state) {
  auto prog = benchsupport::compile_transformed(
      worker(false, true), {cfg::ReconfigPointSpec{"RPO", {}, {}}});
  run_variant(state, prog, baseline_insns());
}
BENCHMARK(BM_RpOuterLoop);

void BM_RpInnerLoop(benchmark::State& state) {
  auto prog = benchsupport::compile_transformed(
      worker(true, false), {cfg::ReconfigPointSpec{"RPI", {}, {}}});
  run_variant(state, prog, baseline_insns());
}
BENCHMARK(BM_RpInnerLoop);

void BM_BothPoints(benchmark::State& state) {
  auto prog = benchsupport::compile_transformed(
      worker(true, true), {cfg::ReconfigPointSpec{"RPI", {}, {}},
                           cfg::ReconfigPointSpec{"RPO", {}, {}}});
  run_variant(state, prog, baseline_insns());
}
BENCHMARK(BM_BothPoints);

}  // namespace
