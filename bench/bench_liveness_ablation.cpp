// A1 -- ablation of the live-variable refinement (our implementation of the
// paper's "data-flow analysis could be used to determine the set of live
// variables", Section 3).
//
// Compares abstract-state size and capture cost between default mode
// (capture every parameter and local) and liveness mode (capture only live
// variables) as the number of dead locals per frame grows. Shape: default
// scales with declared state; liveness mode stays flat.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace surgeon;

/// Each activation record declares `dead` locals that are dead at RP (used
/// only before the recursive call) and 2 live ones.
std::string worker(int depth, int dead) {
  std::string locals, uses;
  for (int i = 0; i < dead; ++i) {
    locals += "  int d" + std::to_string(i) + ";\n";
    uses += "  d" + std::to_string(i) + " = n * " + std::to_string(i + 2) +
            ";\n  scratch = scratch + d" + std::to_string(i) + ";\n";
  }
  return R"(
int acc = 0;
int scratch = 0;

void work(int n, int *out) {
)" + locals +
         R"(  if (n <= 0) { *out = acc; return; }
)" + uses +
         R"(  work(n - 1, out);
RP:
  acc = acc + n;
  *out = acc;
}

void main() {
  int r;
  int round;
  round = 0;
  while (round < 100000) {
    work()" +
         std::to_string(depth) + R"(, &r);
    round = round + 1;
  }
}
)";
}

void run_mode(benchmark::State& state, bool liveness) {
  const int depth = static_cast<int>(state.range(0));
  const int dead = static_cast<int>(state.range(1));
  xform::XformOptions options;
  options.use_liveness = liveness;
  auto prog = benchsupport::compile_transformed(
      worker(depth, dead), {cfg::ReconfigPointSpec{"RP", {}, {}}}, options);
  std::size_t bytes = 0;
  std::size_t values = 0;
  for (auto _ : state) {
    vm::Machine m(*prog, net::arch_vax());
    (void)m.step(static_cast<std::uint64_t>(depth) * (10 + 4 * dead) + 60);
    m.raise_signal();
    (void)m.step(UINT64_MAX);
    if (m.last_encoded_state().has_value()) {
      bytes = m.last_encoded_state()->encode().size();
      values = m.last_encoded_state()->value_count();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["state_bytes"] = static_cast<double>(bytes);
  state.counters["state_values"] = static_cast<double>(values);
}

void BM_CaptureAllVariables(benchmark::State& state) {
  run_mode(state, false);
}
BENCHMARK(BM_CaptureAllVariables)
    ->ArgsProduct({{8, 64}, {0, 4, 16, 64}})
    ->ArgNames({"depth", "dead_locals"});

void BM_CaptureLiveVariablesOnly(benchmark::State& state) {
  run_mode(state, true);
}
BENCHMARK(BM_CaptureLiveVariablesOnly)
    ->ArgsProduct({{8, 64}, {0, 4, 16, 64}})
    ->ArgNames({"depth", "dead_locals"});

}  // namespace
