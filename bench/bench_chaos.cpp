// Replacement latency under packet loss.
//
// Runs the chaos harness's counter scenario at 0 / 1 / 5 / 10 % per-copy
// drop rates (reliable delivery on, everything else perfect) and reports
// the VIRTUAL time from the replacement request to script completion,
// plus the retransmissions the reliable layer spent getting there. The
// wall-clock numbers of the benchmark runner are irrelevant; the meaning
// is in the reported virtual-microsecond counters: loss stretches the
// divulge/restore handshakes by whole retransmit timeouts, so replacement
// latency climbs in timeout-sized steps, while the application's output
// stays byte-identical (the sweep in tests/chaos_test.cpp asserts that).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "chaos/fault.hpp"
#include "net/arch.hpp"
#include "reconfig/scripts.hpp"

namespace {

using namespace surgeon;

std::unique_ptr<app::Runtime> build_counter(std::uint64_t seed) {
  auto rt = std::make_unique<app::Runtime>(seed);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  rt->bus().set_delivery({.reliable = true});
  rt->bus().set_control_machine("sparc");
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt->load_application(config, "counter", [](const cfg::ModuleSpec& spec) {
    return spec.name == "client" ? app::samples::counter_client_source(20)
                                 : app::samples::counter_server_source();
  });
  return rt;
}

void bench_replacement_under_drop(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 100.0;
  std::int64_t virtual_us = 0;
  std::int64_t retransmits = 0;
  std::int64_t attempts = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto rt = build_counter(seed);
    chaos::FaultInjector inj(seed++);
    inj.set_default(chaos::LinkFaults{.drop = drop, .jitter_us = 1'000});
    inj.attach(rt->bus());
    rt->run_until(
        [&rt] { return !rt->machine_of("client")->output().empty(); },
        10'000'000);

    reconfig::ReplaceOptions options;
    options.machine = "sparc";
    options.max_attempts = 5;
    options.divulge_timeout_us = 5'000'000;
    options.restore_timeout_us = 5'000'000;
    reconfig::ReplaceReport report =
        reconfig::replace_module(*rt, "server", options);

    virtual_us += static_cast<std::int64_t>(report.completed_at -
                                            report.requested_at);
    attempts += report.attempts;
    rt->run_until([&rt] { return rt->module_finished("client"); },
                  10'000'000);
    retransmits +=
        static_cast<std::int64_t>(rt->bus().reliable_stats().retransmits);
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["virtual_us"] = static_cast<double>(virtual_us) / n;
  state.counters["retransmits"] = static_cast<double>(retransmits) / n;
  state.counters["attempts"] = static_cast<double>(attempts) / n;
}

BENCHMARK(bench_replacement_under_drop)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->ArgName("drop_pct");

}  // namespace
