// C11 -- interpreter dispatch cost: how fast the MiniC VM runs the shapes
// that dominate every workload in this repo, across the 2x2 of dispatch
// mode (portable switch vs direct-threaded computed goto) and code form
// (plain vs superinstruction-fused).
//
// Kernels, all dispatch-bound:
//   tight_loop    -- compare+branch loop edges, slot/const arithmetic
//                    (the fused kCmpJf / kLoadSlotAdd / kPushConstAdd shapes)
//   call_heavy    -- recursion: AR push/pop, register-cache reload cost
//   flag_cascade  -- xform-transformed module with the reconfiguration
//                    point inside the hot loop: wall-to-wall kStmtFlagJf
//   counter_app   -- the whole counter application (busy client, RPC via
//                    the bus), the end-to-end items/s headline
//
// The acceptance ratio is counter_app items/s at threaded:1/fused:1 over
// threaded:0/fused:0 (the release switch baseline). tight_loop also pins
// the profiler-disarmed tax: a machine with a sample sink installed but no
// countdown armed must stay within 3% of a bare one (`disarmed_pct`).
//
// Emit machine-readable results with the `bench_vm_json` CMake target
// (writes BENCH_vm.json).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace surgeon;

/// Applies one (dispatch, fusion) cell process-wide for the duration of a
/// benchmark run, so code compiled inside app::Runtime and machines built
/// by it land in the same cell; restores the defaults on scope exit.
struct CellGuard {
  vm::DispatchMode saved_mode = vm::default_dispatch_mode();
  vm::CompileOptions saved_opts = vm::default_compile_options();

  CellGuard(bool threaded, bool fused) {
    vm::set_default_dispatch_mode(threaded ? vm::DispatchMode::kThreaded
                                           : vm::DispatchMode::kSwitch);
    vm::set_default_compile_options(vm::CompileOptions{.fuse = fused});
  }
  ~CellGuard() {
    vm::set_default_dispatch_mode(saved_mode);
    vm::set_default_compile_options(saved_opts);
  }
};

/// True when the cell is runnable; threaded cells need computed goto.
bool cell_supported(benchmark::State& state) {
  if (state.range(0) != 0 && !vm::threaded_dispatch_supported()) {
    state.SkipWithError("computed goto unavailable on this toolchain");
    return false;
  }
  return true;
}

// --- standalone kernels -----------------------------------------------------

const char* kTightLoop = R"(
void main() {
  int i; int sum; int prod;
  i = 0; sum = 0; prod = 1;
  while (i < 20000) {
    sum = sum + i - 3;
    prod = (prod * 5 + sum) % 1000003;
    if (sum > 1000000) { sum = sum - 1000000; }
    i = i + 1;
  }
  print(sum, prod);
}
)";

const char* kCallHeavy = R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

void main() {
  print(fib(21));
}
)";

/// The C1 inner-placement worker: a reconfiguration point inside the hot
/// loop, so after transformation every statement tests the flag.
const char* kFlagCascade = R"(
int acc = 0;

void round(int n) {
  while (n > 0) {
RP:
    acc = acc + n;
    n = n - 1;
  }
}

void main() {
  int r;
  r = 0;
  while (r < 200) {
    round(100);
    r = r + 1;
  }
}
)";

void run_kernel(benchmark::State& state,
                const std::shared_ptr<vm::CompiledProgram>& prog) {
  std::uint64_t insns = 0;
  for (auto _ : state) {
    vm::Machine m(*prog, net::arch_vax());
    m.set_dispatch_mode(state.range(0) != 0 ? vm::DispatchMode::kThreaded
                                            : vm::DispatchMode::kSwitch);
    benchsupport::run_to_done(m);
    insns = m.instructions_executed();
  }
  // items == component VM instructions: items/s is directly comparable
  // across cells because fusion never changes the instruction count.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(insns));
  state.counters["insns_per_run"] = static_cast<double>(insns);
}

std::shared_ptr<vm::CompiledProgram> compile_cell(const std::string& src,
                                                  bool fused) {
  minic::Program prog = minic::parse_program(src);
  minic::analyze(prog);
  return std::make_shared<vm::CompiledProgram>(
      vm::compile(prog, vm::CompileOptions{.fuse = fused}));
}

void BM_TightLoop(benchmark::State& state) {
  if (!cell_supported(state)) return;
  run_kernel(state, compile_cell(kTightLoop, state.range(1) != 0));
}
BENCHMARK(BM_TightLoop)
    ->ArgNames({"threaded", "fused"})
    ->ArgsProduct({{0, 1}, {0, 1}});

void BM_CallHeavy(benchmark::State& state) {
  if (!cell_supported(state)) return;
  run_kernel(state, compile_cell(kCallHeavy, state.range(1) != 0));
}
BENCHMARK(BM_CallHeavy)
    ->ArgNames({"threaded", "fused"})
    ->ArgsProduct({{0, 1}, {0, 1}});

void BM_FlagCascade(benchmark::State& state) {
  if (!cell_supported(state)) return;
  minic::Program prog = minic::parse_program(kFlagCascade);
  minic::analyze(prog);
  xform::prepare_module(prog, {cfg::ReconfigPointSpec{"RP", {}, {}}}, {});
  auto compiled = std::make_shared<vm::CompiledProgram>(
      vm::compile(prog, vm::CompileOptions{.fuse = state.range(1) != 0}));
  run_kernel(state, compiled);
}
BENCHMARK(BM_FlagCascade)
    ->ArgNames({"threaded", "fused"})
    ->ArgsProduct({{0, 1}, {0, 1}});

// --- profiler disarmed tax --------------------------------------------------

/// A sink that must never fire: the machine has no countdown armed.
struct NullSink : vm::SampleSink {
  void on_sample(const vm::Machine&) override { ++hits; }
  std::uint64_t hits = 0;
};

// The dispatch loop pays for the profiler only at VM_NEXT (one countdown
// test per component instruction). With no sample armed that test must be
// the whole cost: sink installed + countdown 0 within 3% of no sink.
void BM_TightLoopProfilerDisarmed(benchmark::State& state) {
  if (!cell_supported(state)) return;
  auto prog = compile_cell(kTightLoop, state.range(1) != 0);
  NullSink sink;
  std::uint64_t insns = 0;
  for (auto _ : state) {
    vm::Machine m(*prog, net::arch_vax());
    m.set_dispatch_mode(state.range(0) != 0 ? vm::DispatchMode::kThreaded
                                            : vm::DispatchMode::kSwitch);
    m.set_sample_sink(&sink);  // installed, never armed
    benchsupport::run_to_done(m);
    insns = m.instructions_executed();
  }
  if (sink.hits != 0) state.SkipWithError("disarmed profiler fired");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(insns));
}
BENCHMARK(BM_TightLoopProfilerDisarmed)
    ->ArgNames({"threaded", "fused"})
    ->ArgsProduct({{0, 1}, {0, 1}});

// --- the end-to-end headline ------------------------------------------------

// The whole counter application: busy client on vax, server on sparc, every
// request an RPC through the bus. items == client requests completed; the
// threaded:1/fused:1 over threaded:0/fused:0 ratio is the acceptance
// number.
void BM_CounterApp(benchmark::State& state) {
  if (!cell_supported(state)) return;
  constexpr int kRequests = 500;
  CellGuard cell(state.range(0) != 0, state.range(1) != 0);
  for (auto _ : state) {
    auto rt = benchsupport::make_counter(
        kRequests, {.seed = 3, .metrics = false, .busy_client = true});
    rt->run_until_idle(50'000'000);
    if (!rt->module_finished("client")) {
      state.SkipWithError("client did not finish");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRequests);
}
BENCHMARK(BM_CounterApp)
    ->ArgNames({"threaded", "fused"})
    ->ArgsProduct({{0, 1}, {0, 1}});

}  // namespace
