// C12 -- observability overhead: the cost the metrics registry adds to the
// bus's message loop. Three configurations over the exact message pattern
// of bench_bus's BM_BurstThroughput:
//   mode 0: no registry attached          (the bench_bus baseline)
//   mode 1: registry attached, disabled   (the shipping default: must be
//           within 3% of mode 0 -- one branch per instrumentation site)
//   mode 2: registry attached, enabled    (the price of recording)
// Emit machine-readable results with
//   bench_obs_overhead --benchmark_out=BENCH_obs.json
//                      --benchmark_out_format=json
// (the `bench_obs_json` CMake target does exactly that).
#include <benchmark/benchmark.h>

#include "bus/bus.hpp"
#include "net/sim.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace surgeon;

struct Fixture {
  net::Simulator sim{1};
  bus::Bus bus{sim};
  obs::MetricsRegistry registry;

  explicit Fixture(int mode) {
    sim.add_machine("a", net::arch_vax());
    bus::ModuleInfo producer;
    producer.name = "p";
    producer.machine = "a";
    producer.interfaces = {
        bus::InterfaceSpec{"out", bus::IfaceRole::kDefine, "i", ""}};
    bus.add_module(producer);
    bus::ModuleInfo consumer;
    consumer.name = "c";
    consumer.machine = "a";
    consumer.interfaces = {
        bus::InterfaceSpec{"in", bus::IfaceRole::kUse, "i", ""}};
    bus.add_module(consumer);
    bus.add_binding({"p", "out"}, {"c", "in"});
    if (mode >= 1) {
      registry.set_clock([this] { return sim.now(); });
      bus.set_metrics(&registry);
    }
    registry.set_enabled(mode >= 2);
  }
};

void BM_BurstThroughput(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int kBurst = 256;
  Fixture f(mode);
  for (auto _ : state) {
    for (int i = 0; i < kBurst; ++i) {
      f.bus.send("p", "out", {ser::Value(std::int64_t{i})});
    }
    f.sim.run();
    while (auto msg = f.bus.receive("c", "in")) {
      benchmark::DoNotOptimize(msg);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBurst);
  if (mode >= 2) {
    state.counters["series"] = static_cast<double>(
        f.registry.counters().size() + f.registry.gauges().size());
  }
}
BENCHMARK(BM_BurstThroughput)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"metrics"});

void BM_CounterInc(benchmark::State& state) {
  // The raw cost of one cached-handle increment (the per-event price the
  // bus pays while recording).
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  obs::Counter& ctr =
      registry.counter("surgeon_bus_messages_sent_total",
                       {{"module", "p"}, {"iface", "out"}});
  for (auto _ : state) {
    ctr.inc();
    benchmark::DoNotOptimize(ctr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterInc);

void BM_PrometheusExport(benchmark::State& state) {
  // Exporting a realistically sized registry (what one mh_stats costs).
  const int series = static_cast<int>(state.range(0));
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  for (int i = 0; i < series; ++i) {
    registry
        .counter("surgeon_bus_messages_sent_total",
                 {{"module", "mod" + std::to_string(i)}, {"iface", "out"}})
        .inc(static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    std::string text = obs::to_prometheus(registry);
    benchmark::DoNotOptimize(text);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * series);
}
BENCHMARK(BM_PrometheusExport)->Arg(16)->Arg(256)->ArgNames({"series"});

}  // namespace
