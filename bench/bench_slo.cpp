// C16 -- what the SLO plane costs while it watches, and what a midday
// replacement does to the end-to-end latency distribution it reports.
//
// BM_SloOverhead -- the burst bench (the bursty pipeline from C15, real VM
// modules doing real per-item work) with the observability plane in three
// configurations (causal tracing and metrics -- the shipping observability
// stack -- are on in all three, so the ratios isolate the SLO plane
// proper):
//   mode 0: tracing + metrics          (the PR-7 baseline)
//   mode 1: baseline + request tagging (ids ride the existing headers)
//   mode 2: baseline + tagging + Probe + Monitor streaming completions
//           into the SLO engine (the full plane)
// The tentpole's bar is mode 2 within 10% of mode 0. Read the ratio with
// the denominator in mind: the simulated modules' work is *virtual* time,
// so a burst-bench item costs only ~3us of host time -- the plane's ~1us
// per request (tag + track + stream + window arithmetic, measured -O2)
// reads as tens of percent here where it would vanish against any real
// handler. The per-request tagging path (mode 1), the part that is always
// on once an entry point is marked, holds inside the 10% bar; the
// streaming plane's extra cost is per-completion and amortizes with batch
// size, not with load.
//
// BM_DiurnalReplacement -- the diurnal scenario (bench/workload.hpp) with
// an instruction cost that makes the filter a real bottleneck, a Figure 5
// replacement fired at the midday peak, and a native RequestTracker
// measuring every completion. Wall time measures the whole virtual day;
// the interesting output is the latency distribution split by phase:
//   before_p50/99/999   completions before the replacement was requested
//   during_p50/99/999   completions in [requested_at, restored_at]
//   after_p50/99/999    completions after the clone was restored
// A transparent replacement shows during/after percentiles near before's.
//
// Emit machine-readable results with
//   bench_slo --benchmark_out=BENCH_slo.json --benchmark_out_format=json
// (the `bench_slo_json` CMake target does exactly that).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "app/runtime.hpp"
#include "bench_common.hpp"
#include "workload.hpp"
#include "reconfig/scripts.hpp"
#include "slo/monitor.hpp"
#include "slo/request.hpp"
#include "slo/slo.hpp"

namespace {

using namespace surgeon;

constexpr std::uint64_t kRounds = 100'000'000'000ULL;

double pct(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

void BM_SloOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int kItems = 300;  // 30 bursts; ~60s of virtual day
  std::uint64_t completions = 0;
  for (auto _ : state) {
    state.PauseTiming();  // exclude parse/compile of the pipeline modules
    auto rt = benchsupport::make_bursty_pipeline(kItems);
    rt->enable_causal_tracing();
    std::unique_ptr<slo::Monitor> monitor;
    std::unique_ptr<slo::Probe> probe;
    if (mode >= 1) {
      rt->bus().set_request_entry("feeder", "out");
      rt->bus().set_request_terminal("sink", "in");
    }
    if (mode >= 2) {
      monitor = std::make_unique<slo::Monitor>(rt->bus(), "slomon", "sparc");
      monitor->add_objective(slo::parse_objective(
          "pipeline-p99 service=pipeline p99<2500us window=60s"));
      probe = std::make_unique<slo::Probe>(rt->bus(), rt->tracer(), "vax",
                                           "pipeline", "slomon");
    }
    state.ResumeTiming();
    bool done = rt->run_until(
        [&] {
          return rt->machine_of("sink")->output().size() >=
                 static_cast<std::size_t>(kItems);
        },
        kRounds);
    if (mode >= 2) {
      probe->flush();
      rt->run_for(1'200'000, kRounds);  // monitor applies the last batches
    }
    state.PauseTiming();
    if (!done) state.SkipWithError("pipeline did not complete");
    if (monitor != nullptr) {
      completions += monitor->engine().completions_total();
      probe->stop();
    }
    probe.reset();
    monitor.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kItems);
  if (mode >= 2) {
    state.counters["completions"] = benchmark::Counter(
        static_cast<double>(completions), benchmark::Counter::kAvgIterations);
  }
}
BENCHMARK(BM_SloOverhead)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"slo"})
    ->Unit(benchmark::kMillisecond);

void BM_DiurnalReplacement(benchmark::State& state) {
  bench::DiurnalSpec spec;
  spec.requests = 50'000;
  spec.day_us = 600'000'000;
  std::vector<std::int64_t> before, during, after;
  double blackout_us = 0;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    before.clear();
    during.clear();
    after.clear();
    bench::DiurnalScenario s = bench::make_diurnal_pipeline(spec);
    app::Runtime& rt = *s.runtime;
    rt.set_instruction_cost_ns(50'000);  // midday peak saturates the filter
    slo::RequestTracker tracker;
    reconfig::ReplaceReport report;
    bool replaced = false;
    std::vector<std::pair<net::SimTime, std::int64_t>> completions;
    const trace::Recorder::ObserverId obs_id =
        rt.tracer().add_observer([&](const trace::Event& ev) {
          tracker.observe(ev);
          for (slo::Completion& c : tracker.drain()) {
            completions.emplace_back(c.completed_at,
                                     static_cast<std::int64_t>(c.latency_us));
          }
        });
    state.ResumeTiming();
    s.source->start();
    const net::SimTime midday = s.source->midday_at();
    bool done = rt.run_until(
        [&] {
          if (!replaced && rt.now() >= midday) {
            report = reconfig::replace_module(rt, "filter");
            replaced = true;
          }
          return s.source->done();
        },
        kRounds);
    rt.run_until_idle(kRounds);
    state.PauseTiming();
    rt.tracer().remove_observer(obs_id);
    if (!done || !replaced) state.SkipWithError("day did not complete");
    for (const auto& [at, latency] : completions) {
      if (at < report.requested_at) {
        before.push_back(latency);
      } else if (at <= report.restored_at) {
        during.push_back(latency);
      } else {
        after.push_back(latency);
      }
    }
    std::sort(before.begin(), before.end());
    std::sort(during.begin(), during.end());
    std::sort(after.begin(), after.end());
    blackout_us += static_cast<double>(report.blackout_us());
    ++iterations;
    state.ResumeTiming();
  }
  const double n = iterations != 0 ? static_cast<double>(iterations) : 1.0;
  state.counters["blackout_us"] = blackout_us / n;
  state.counters["before_p50_us"] = pct(before, 0.50);
  state.counters["before_p99_us"] = pct(before, 0.99);
  state.counters["before_p999_us"] = pct(before, 0.999);
  state.counters["during_p50_us"] = pct(during, 0.50);
  state.counters["during_p99_us"] = pct(during, 0.99);
  state.counters["during_p999_us"] = pct(during, 0.999);
  state.counters["after_p50_us"] = pct(after, 0.50);
  state.counters["after_p99_us"] = pct(after, 0.99);
  state.counters["after_p999_us"] = pct(after, 0.999);
  state.counters["completions"] = static_cast<double>(
      before.size() + during.size() + after.size());
}
BENCHMARK(BM_DiurnalReplacement)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
