// C14 -- what crash-recoverability costs while nothing crashes, and what a
// crash costs when one happens. Three layers:
//
// BM_CounterSteadyState -- the counter sample application run to
// completion, in three configurations:
//   mode 0: no recovery machinery (the shipping default)
//   mode 1: supervisor started -- heartbeats + failure detector + sweeps
//   mode 2: same, plus periodic checkpoints through the production
//           capture path
// The acceptance bar is mode 1 and mode 2 within 10% of mode 0 on this
// workload (compare also against the burst numbers committed in
// BENCH_bus.json: the recovery subsystem never touches the bus hot path).
//
// BM_TimeToRecover -- crash the watched server after its first checkpoint
// and measure the virtual time from the crash to the heir serving again,
// per checkpoint interval. Detection (suspicion timeout + sweep phase)
// dominates; the interval governs how much work the heir must redo, not
// how fast it appears.
//
// BM_DetectorBeat -- the raw per-heartbeat price the detector charges.
//
// Emit machine-readable results with
//   bench_recovery --benchmark_out=BENCH_recovery.json
//                  --benchmark_out_format=json
// (the `bench_recovery_json` CMake target does exactly that).
#include <benchmark/benchmark.h>

#include <memory>

#include "app/runtime.hpp"
#include "bench_common.hpp"
#include "recover/detector.hpp"
#include "recover/supervisor.hpp"

namespace {

using namespace surgeon;

// ~20 virtual us per round trip, so 6000 requests keep the server loaded
// for ~120 virtual ms: a dozen heartbeat intervals and room for every
// checkpoint cadence measured below to fire mid-run.
constexpr int kRequests = 6000;
constexpr std::uint64_t kRounds = 100'000'000;

std::unique_ptr<app::Runtime> make_counter(int requests) {
  return benchsupport::make_counter(requests,
                                    {.seed = 1, .busy_client = true});
}

void BM_CounterSteadyState(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  std::uint64_t beats = 0, checkpoints = 0;
  net::SimTime virtual_run_us = 0;
  for (auto _ : state) {
    state.PauseTiming();  // exclude MiniC parse/compile; measure the run
    auto rt = make_counter(kRequests);
    std::unique_ptr<recover::Supervisor> sup;
    if (mode >= 1) {
      recover::SupervisorOptions options;
      if (mode >= 2) options.checkpoint_interval_us = 50'000;
      sup = std::make_unique<recover::Supervisor>(
          *rt, rt->simulator().durable_store("sparc"), options);
      sup->watch("server");
      sup->start();
    }
    state.ResumeTiming();
    bool done = rt->run_until(
        [&] { return rt->module_finished("client"); }, kRounds);
    if (!done) state.SkipWithError("counter did not finish");
    state.PauseTiming();  // exclude teardown too
    virtual_run_us = rt->now();
    if (sup != nullptr) {
      beats = sup->detector().beats_observed();
      checkpoints = sup->checkpoints_taken();
      sup->stop();
    }
    sup.reset();
    rt.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kRequests);
  state.counters["virtual_run_us"] = static_cast<double>(virtual_run_us);
  if (mode >= 1) state.counters["heartbeats"] = static_cast<double>(beats);
  if (mode >= 2) {
    state.counters["checkpoints"] = static_cast<double>(checkpoints);
  }
}
BENCHMARK(BM_CounterSteadyState)->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"recovery"});

void BM_TimeToRecover(benchmark::State& state) {
  const auto interval_ms = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t recover_virtual_us = 0;
  std::uint64_t samples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto rt = make_counter(kRequests);
    recover::SupervisorOptions options;
    options.checkpoint_interval_us = interval_ms * 1'000;
    auto sup = std::make_unique<recover::Supervisor>(
        *rt, rt->simulator().durable_store("sparc"), options);
    sup->watch("server");
    sup->start();
    bool armed = rt->run_until(
        [&] { return sup->checkpoints_taken() >= 1; }, kRounds);
    if (!armed) state.SkipWithError("no checkpoint before the crash");
    const std::string victim = sup->current_instance("server");
    const net::SimTime crashed_at = rt->now();
    rt->crash_module(victim, "bench: host fault");
    state.ResumeTiming();
    bool restored = rt->run_until(
        [&] { return sup->restores() >= 1; }, kRounds);
    if (!restored) state.SkipWithError("heir never appeared");
    recover_virtual_us += rt->now() - crashed_at;
    ++samples;
    state.PauseTiming();
    sup->stop();
    sup.reset();
    rt.reset();
    state.ResumeTiming();
  }
  if (samples != 0) {
    state.counters["virtual_recover_us"] =
        static_cast<double>(recover_virtual_us) /
        static_cast<double>(samples);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeToRecover)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->ArgNames({"ckpt_ms"});

void BM_DetectorBeat(benchmark::State& state) {
  // The per-heartbeat price: one map probe and a timestamp store. This is
  // what every module runtime pays per heartbeat_interval_us of virtual
  // time while a supervisor is running.
  recover::FailureDetector detector;
  net::SimTime now = 0;
  for (auto _ : state) {
    detector.beat("server@1", ++now);
  }
  benchmark::DoNotOptimize(detector.beats_observed());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DetectorBeat);

}  // namespace
