// C15 -- reconfiguration disruption: what a Figure 5 replacement costs the
// application while it runs, and what the sampling profiler costs when it
// watches.
//
// BM_ReplaceUnderLoad -- the pipeline application with a bursty feeder;
// each iteration replaces the filter a couple of items into a burst, so
// the rest of the burst is queued at (or in flight toward) the old
// instance when the bind edits land. Wall time measures the script; the
// interesting output is the virtual-time disruption surfaced as counters:
//   blackout_us       divulge -> clone restored (no filter serves inside)
//   total_us          request -> script completion
//   queued_moved      messages captured across the rebind
//   queued_p50/95/99  virtual-us a captured message aged in the old queue
//                     (from the surgeon_reconfig_queued_delay_us histogram)
//   state_bytes       abstract state buffer moved
//
// BM_ProfilerSampling -- the counter application run to completion with
// the sampling profiler in its operating states:
//   mode 0: no profiler               (shipping default)
//   mode 1: attached, disarmed        (one compare per instruction)
//   mode 2: virtual-clock timer, 10Hz (the always-on operator view; the
//                                      same 100ms cadence the telemetry
//                                      Reporter flushes at)
//   mode 3: instruction period 64     (dense opcode evidence -- dear by
//                                      design, not an always-on mode)
// The tentpole's bar: modes 1-2 within the 3%/10% envelopes of mode 0.
//
// Emit machine-readable results with
//   bench_disruption --benchmark_out=BENCH_disruption.json
//                    --benchmark_out_format=json
// (the `bench_disruption_json` CMake target does exactly that).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "app/runtime.hpp"
#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "profile/profiler.hpp"
#include "reconfig/scripts.hpp"

namespace {

using namespace surgeon;

void BM_ReplaceUnderLoad(benchmark::State& state) {
  constexpr int kItems = 30;
  double blackout_us = 0, total_us = 0, queued_moved = 0, state_bytes = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    state.PauseTiming();  // exclude parse/compile and the warm-up traffic
    auto rt = benchsupport::make_bursty_pipeline(kItems);
    (void)rt->run_until(
        [&] { return rt->machine_of("sink")->output().size() >= 2; },
        10'000'000);
    state.ResumeTiming();
    reconfig::ReplaceReport report = reconfig::replace_module(*rt, "filter");
    state.PauseTiming();
    blackout_us += static_cast<double>(report.blackout_us());
    total_us += static_cast<double>(report.total_delay());
    queued_moved += static_cast<double>(report.queued_messages_moved);
    state_bytes += static_cast<double>(report.state_bytes);
    const obs::Histogram& delays = rt->metrics().histogram(
        "surgeon_reconfig_queued_delay_us", {{"module", "filter"}});
    p50 += delays.quantile(0.50);
    p95 += delays.quantile(0.95);
    p99 += delays.quantile(0.99);
    ++iterations;
    state.ResumeTiming();
  }
  const double n = iterations != 0 ? static_cast<double>(iterations) : 1.0;
  state.counters["blackout_us"] = blackout_us / n;
  state.counters["total_us"] = total_us / n;
  state.counters["queued_moved"] = queued_moved / n;
  state.counters["queued_p50_us"] = p50 / n;
  state.counters["queued_p95_us"] = p95 / n;
  state.counters["queued_p99_us"] = p99 / n;
  state.counters["state_bytes"] = state_bytes / n;
}
BENCHMARK(BM_ReplaceUnderLoad)->Unit(benchmark::kMillisecond);

void BM_ProfilerSampling(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int kRequests = 120;
  std::uint64_t samples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto rt = benchsupport::make_counter(kRequests, {.seed = 3});
    profile::Profiler profiler;
    if (mode >= 1) {
      profile::ProfileOptions options;
      if (mode == 2) options.interval_us = 100'000;
      if (mode == 3) options.every_insns = 64;
      rt->enable_profiler(profiler, options);
    }
    state.ResumeTiming();
    bool done = rt->run_until([&] {
      return rt->machine_of("client")->output().size() >=
             static_cast<std::size_t>(kRequests);
    });
    state.PauseTiming();
    if (!done) state.SkipWithError("counter app did not finish");
    samples += profiler.total_samples();
    state.ResumeTiming();
  }
  state.counters["samples"] =
      benchmark::Counter(static_cast<double>(samples),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ProfilerSampling)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
