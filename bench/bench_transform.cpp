// C7 -- cost and output size of the Section-3 transformation itself:
// throughput of prepare_module over programs of growing size and numbers of
// reconfiguration points, and the resulting code growth. Shape: linear in
// program size; growth bounded by a small constant factor, concentrated in
// the instrumented functions.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "minic/printer.hpp"

namespace {

using namespace surgeon;

/// A synthetic module with `chains` parallel call chains of depth 3, of
/// which `instrumented` carry a reconfiguration point in the leaf.
std::string synthetic(int chains, int instrumented) {
  std::string src = "int acc = 0;\n";
  for (int c = 0; c < chains; ++c) {
    std::string id = std::to_string(c);
    bool has_point = c < instrumented;
    src += "void leaf" + id + "(int n, int *out) {\n";
    if (has_point) src += "RP" + id + ":\n";
    src += "  acc = acc + n;\n  *out = acc;\n}\n";
    src += "void mid" + id + "(int n, int *out) {\n  leaf" + id +
           "(n, out);\n}\n";
    src += "void top" + id + "(int n, int *out) {\n  mid" + id +
           "(n, out);\n}\n";
  }
  src += "void main() {\n  int r;\n  r = 0;\n";
  for (int c = 0; c < chains; ++c) {
    src += "  top" + std::to_string(c) + "(" + std::to_string(c) + ", &r);\n";
  }
  src += "  print(r);\n}\n";
  return src;
}

std::vector<cfg::ReconfigPointSpec> points_for(int instrumented) {
  std::vector<cfg::ReconfigPointSpec> points;
  for (int c = 0; c < instrumented; ++c) {
    points.push_back(
        cfg::ReconfigPointSpec{"RP" + std::to_string(c), {}, {}});
  }
  return points;
}

void BM_Transform(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  const int instrumented = static_cast<int>(state.range(1));
  std::string src = synthetic(chains, instrumented);
  auto points = points_for(instrumented);

  std::size_t source_lines =
      static_cast<std::size_t>(std::count(src.begin(), src.end(), '\n'));
  std::size_t out_lines = 0;
  for (auto _ : state) {
    state.PauseTiming();
    minic::Program prog = minic::parse_program(src);
    minic::analyze(prog);
    state.ResumeTiming();
    auto result = xform::prepare_module(prog, points);
    benchmark::DoNotOptimize(result);
    state.PauseTiming();
    std::string out = minic::print_program(prog);
    out_lines = static_cast<std::size_t>(
        std::count(out.begin(), out.end(), '\n'));
    state.ResumeTiming();
  }
  state.counters["src_lines"] = static_cast<double>(source_lines);
  state.counters["out_lines"] = static_cast<double>(out_lines);
  state.counters["growth_x"] =
      static_cast<double>(out_lines) / static_cast<double>(source_lines);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * source_lines));
}
BENCHMARK(BM_Transform)
    ->ArgsProduct({{2, 8, 32, 128}, {1}})
    ->ArgsProduct({{32}, {1, 4, 16, 32}})
    ->ArgNames({"chains", "points"});

void BM_ParseAnalyzeCompileBaseline(benchmark::State& state) {
  // Front-end cost without the transformation, for reference.
  const int chains = static_cast<int>(state.range(0));
  std::string src = synthetic(chains, 0);
  for (auto _ : state) {
    minic::Program prog = minic::parse_program(src);
    minic::analyze(prog);
    auto compiled = vm::compile(prog);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_ParseAnalyzeCompileBaseline)->Arg(2)->Arg(32)->Arg(128)
    ->ArgNames({"chains"});

}  // namespace
