// C10 -- "By virtue of where a reconfiguration point is placed, it could
// prohibit certain compiler optimizations such as code motion" (§4).
//
// A module whose hot loop contains a hoistable invariant expression is
// built four ways:
//
//   original                 -- no reconfiguration, no optimization
//   original + optimizer     -- the invariant hoists: the win to beat
//   hot point + optimizer    -- the reconfiguration point's label sits in
//                               the loop; the restore dispatch can enter
//                               mid-body, so hoisting is off: NO win
//   cold point + optimizer   -- the point is outside the loop; the hot
//                               loop still hoists: full win, tiny delay cost
//
// The paper's advice follows directly: "it is preferable to place
// reconfiguration points outside of computationally intensive loops, so
// that the code executed most often can be optimized as much as possible."
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "opt/optimizer.hpp"

namespace {

using namespace surgeon;

/// placement: 0 = none, 1 = hot (inside the loop), 2 = cold (outside).
std::string worker(int placement) {
  std::string hot = placement == 1 ? "RP:\n" : "";
  std::string cold = placement == 2 ? "RP:\n" : "";
  return R"(
int acc = 0;

void round(int a, int b, int n) {
  int i;
  i = 0;
  while (i < n) {
)" + hot + R"(    acc = acc + a * b + (a - b) * (a + b);
    i = i + 1;
  }
}

void main() {
  int r;
  r = 0;
  while (r < 100) {
)" + cold +
         R"(    round(6, 7, 200);
    r = r + 1;
  }
}
)";
}

std::shared_ptr<vm::CompiledProgram> build(int placement, bool optimize_it) {
  minic::Program prog = minic::parse_program(worker(placement));
  minic::analyze(prog);
  opt::OptStats stats;
  if (placement != 0) {
    xform::prepare_module(prog, {cfg::ReconfigPointSpec{"RP", {}, {}}});
  }
  if (optimize_it) {
    stats = opt::optimize(prog);
    minic::analyze(prog);
  }
  auto compiled = std::make_shared<vm::CompiledProgram>(vm::compile(prog));
  return compiled;
}

void run_build(benchmark::State& state, int placement, bool optimize_it,
               double baseline) {
  auto prog = build(placement, optimize_it);
  std::uint64_t insns = 0;
  for (auto _ : state) {
    vm::Machine m(*prog, net::arch_vax());
    benchsupport::run_to_done(m);
    insns = m.instructions_executed();
  }
  state.counters["insns_total"] = static_cast<double>(insns);
  if (baseline > 0) {
    state.counters["speedup_vs_unopt"] =
        baseline / static_cast<double>(insns);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 20'000);
}

double unopt_insns() {
  static double value = [] {
    auto prog = build(0, false);
    vm::Machine m(*prog, net::arch_vax());
    benchsupport::run_to_done(m);
    return static_cast<double>(m.instructions_executed());
  }();
  return value;
}

void BM_Original(benchmark::State& state) { run_build(state, 0, false, 0); }
BENCHMARK(BM_Original);

void BM_OriginalOptimized(benchmark::State& state) {
  run_build(state, 0, true, unopt_insns());
}
BENCHMARK(BM_OriginalOptimized);

void BM_HotPointOptimized(benchmark::State& state) {
  run_build(state, 1, true, unopt_insns());
}
BENCHMARK(BM_HotPointOptimized);

void BM_ColdPointOptimized(benchmark::State& state) {
  run_build(state, 2, true, unopt_insns());
}
BENCHMARK(BM_ColdPointOptimized);

}  // namespace
