// C4 -- cost of capturing and restoring the activation record stack, as a
// function of recursion depth and per-frame state width (Section 2's
// mechanism, measured).
//
// Reported: wall time of [signal -> capture -> encode] and of
// [decode -> restore] per migration, plus abstract state bytes. Shape:
// both costs are linear in (depth x width); the cost is paid only when a
// reconfiguration happens.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace surgeon;

std::string worker(int depth, int width) {
  // Each activation record carries `width` int locals (w0..w{width-1}).
  std::string locals, uses;
  for (int i = 0; i < width; ++i) {
    locals += "  int w" + std::to_string(i) + ";\n";
    uses += "  w" + std::to_string(i) + " = n + " + std::to_string(i) + ";\n";
  }
  std::string keep = "  acc = acc";
  for (int i = 0; i < width; ++i) keep += " + w" + std::to_string(i);
  keep += ";\n";
  return R"(
int acc = 0;

void work(int n) {
)" + locals +
         R"(  if (n <= 0) { return; }
)" + uses +
         R"(  work(n - 1);
RP:
)" + keep +
         R"(}

void main() {
  int round;
  round = 0;
  while (round < 1000000) {
    work()" +
         std::to_string(depth) + R"();
    round = round + 1;
  }
}
)";
}

void BM_CaptureEncode(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  auto prog = benchsupport::compile_transformed(
      worker(depth, width), {cfg::ReconfigPointSpec{"RP", {}, {}}});
  std::size_t bytes = 0;
  std::size_t frames = 0;
  for (auto _ : state) {
    state.PauseTiming();
    vm::Machine m(*prog, net::arch_vax());
    (void)m.step(static_cast<std::uint64_t>(depth) * 20 + 50);
    m.raise_signal();
    state.ResumeTiming();
    // Everything from the signal to the divulged state: reach RP, cascade
    // capture through every frame, encode.
    (void)m.step(UINT64_MAX);
    benchmark::DoNotOptimize(m.last_encoded_state());
    if (m.last_encoded_state().has_value()) {
      bytes = m.last_encoded_state()->encode().size();
      frames = m.last_encoded_state()->frame_count();
    }
  }
  state.counters["state_bytes"] = static_cast<double>(bytes);
  state.counters["frames"] = static_cast<double>(frames);
}
BENCHMARK(BM_CaptureEncode)
    ->ArgsProduct({{1, 4, 16, 64, 256, 1024, 4096}, {2, 8}})
    ->ArgNames({"depth", "width"});

void BM_DecodeRestore(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  auto prog = benchsupport::compile_transformed(
      worker(depth, width), {cfg::ReconfigPointSpec{"RP", {}, {}}});
  // Produce one captured state up front.
  vm::Machine producer(*prog, net::arch_vax());
  (void)producer.step(static_cast<std::uint64_t>(depth) * 20 + 50);
  producer.raise_signal();
  (void)producer.step(UINT64_MAX);
  auto captured = *producer.last_encoded_state();
  const std::uint64_t restore_budget =
      static_cast<std::uint64_t>(depth) * 60 + 200;

  for (auto _ : state) {
    state.PauseTiming();
    vm::Machine clone(*prog, net::arch_sparc());
    clone.set_standalone_status("clone");
    clone.inject_incoming_state(captured);
    state.ResumeTiming();
    // Rebuild the AR stack: decode, then run until every frame restored.
    while (clone.decode_count() == 0 ||
           clone.restore_frames_remaining() != 0) {
      (void)clone.step(restore_budget);
    }
  }
  state.counters["state_bytes"] =
      static_cast<double>(captured.encode().size());
}
BENCHMARK(BM_DecodeRestore)
    ->ArgsProduct({{1, 4, 16, 64, 256, 1024, 4096}, {2, 8}})
    ->ArgNames({"depth", "width"});

}  // namespace
