// C8 -- the software bus substrate: message throughput (wall clock) and
// delivery latency (virtual clock), same-machine vs cross-machine, plus the
// cost of a Figure-5 rebind batch. These are the constants underneath every
// reconfiguration measurement.
#include <benchmark/benchmark.h>

#include "bus/bus.hpp"
#include "net/sim.hpp"

namespace {

using namespace surgeon;

struct BusFixture {
  net::Simulator sim{1};
  bus::Bus bus{sim};

  explicit BusFixture(bool remote) {
    sim.add_machine("a", net::arch_vax());
    sim.add_machine("b", net::arch_sparc());
    bus::ModuleInfo producer;
    producer.name = "p";
    producer.machine = "a";
    producer.interfaces = {
        bus::InterfaceSpec{"out", bus::IfaceRole::kDefine, "i", ""}};
    bus.add_module(producer);
    bus::ModuleInfo consumer;
    consumer.name = "c";
    consumer.machine = remote ? "b" : "a";
    consumer.interfaces = {
        bus::InterfaceSpec{"in", bus::IfaceRole::kUse, "i", ""}};
    bus.add_module(consumer);
    bus.add_binding({"p", "out"}, {"c", "in"});
  }
};

void BM_SendDeliverReceive(benchmark::State& state) {
  const bool remote = state.range(0) == 1;
  BusFixture f(remote);
  net::SimTime sent_at = 0, received_at = 0;
  for (auto _ : state) {
    sent_at = f.sim.now();
    f.bus.send("p", "out", {ser::Value(std::int64_t{42})});
    f.sim.run();
    received_at = f.sim.now();
    auto msg = f.bus.receive("c", "in");
    benchmark::DoNotOptimize(msg);
  }
  state.counters["virtual_latency_us"] =
      static_cast<double>(received_at - sent_at);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SendDeliverReceive)->Arg(0)->Arg(1)->ArgNames({"remote"});

void BM_BurstThroughput(benchmark::State& state) {
  const int burst = static_cast<int>(state.range(0));
  BusFixture f(false);
  for (auto _ : state) {
    for (int i = 0; i < burst; ++i) {
      f.bus.send("p", "out", {ser::Value(std::int64_t{i})});
    }
    f.sim.run();
    while (auto msg = f.bus.receive("c", "in")) {
      benchmark::DoNotOptimize(msg);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * burst);
}
BENCHMARK(BM_BurstThroughput)->Arg(16)->Arg(256)->Arg(4096)
    ->ArgNames({"burst"});

// The steady-state hot path: endpoint handles resolved once (as bus::Client
// caches them), so each send->deliver->receive hop runs entirely on interned
// ids -- no string hashing, no map walks, no per-hop heap allocation. This is
// the headline throughput number of the routing-interning work; compare with
// BM_BurstThroughput, which pays the string-shim resolution per call.
void BM_BurstThroughputPreResolved(benchmark::State& state) {
  const int burst = static_cast<int>(state.range(0));
  BusFixture f(false);
  const bus::EndpointRef out = f.bus.resolve_endpoint("p", "out");
  const bus::EndpointRef in = f.bus.resolve_endpoint("c", "in");
  for (auto _ : state) {
    for (int i = 0; i < burst; ++i) {
      f.bus.send(out, {ser::Value(std::int64_t{i})});
    }
    f.sim.run();
    while (auto msg = f.bus.receive(in)) {
      benchmark::DoNotOptimize(msg);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * burst);
}
BENCHMARK(BM_BurstThroughputPreResolved)->Arg(16)->Arg(256)->Arg(4096)
    ->ArgNames({"burst"});

void BM_RebindBatch(benchmark::State& state) {
  // The Figure 5 rebinding pattern: delete/add per peer + queue commands,
  // applied atomically.
  const int peers = static_cast<int>(state.range(0));
  net::Simulator sim(1);
  bus::Bus bus(sim);
  sim.add_machine("m", net::arch_vax());
  auto mk = [&](const std::string& name, bus::IfaceRole role) {
    bus::ModuleInfo info;
    info.name = name;
    info.machine = "m";
    info.interfaces = {bus::InterfaceSpec{"io", role, "i", ""}};
    bus.add_module(info);
  };
  mk("old", bus::IfaceRole::kServer);
  mk("new", bus::IfaceRole::kServer);
  for (int i = 0; i < peers; ++i) {
    mk("peer" + std::to_string(i), bus::IfaceRole::kClient);
    bus.add_binding({"old", "io"}, {"peer" + std::to_string(i), "io"});
  }
  bool towards_new = true;
  for (auto _ : state) {
    const std::string& from = towards_new ? "old" : "new";
    const std::string& to = towards_new ? "new" : "old";
    bus::BindEditBatch batch;
    for (const auto& peer : bus.bound_peers({from, "io"})) {
      batch.add(bus::BindEdit{bus::BindEdit::Op::kDel, {from, "io"}, peer});
      batch.add(bus::BindEdit{bus::BindEdit::Op::kAdd, {to, "io"}, peer});
    }
    batch.add(bus::BindEdit{bus::BindEdit::Op::kCaptureQueue,
                            {from, "io"},
                            {to, "io"}});
    batch.add(bus::BindEdit{
        bus::BindEdit::Op::kRemoveQueue, {from, "io"}, {}});
    bus.rebind(batch);
    towards_new = !towards_new;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * peers);
}
BENCHMARK(BM_RebindBatch)->Arg(1)->Arg(8)->Arg(64)->ArgNames({"peers"});

}  // namespace
