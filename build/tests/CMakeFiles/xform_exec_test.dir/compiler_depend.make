# Empty compiler generated dependencies file for xform_exec_test.
# This may be replaced when dependencies are built.
