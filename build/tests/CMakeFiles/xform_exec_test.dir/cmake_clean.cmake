file(REMOVE_RECURSE
  "CMakeFiles/xform_exec_test.dir/xform_exec_test.cpp.o"
  "CMakeFiles/xform_exec_test.dir/xform_exec_test.cpp.o.d"
  "xform_exec_test"
  "xform_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xform_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
