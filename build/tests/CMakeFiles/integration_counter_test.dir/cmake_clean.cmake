file(REMOVE_RECURSE
  "CMakeFiles/integration_counter_test.dir/integration_counter_test.cpp.o"
  "CMakeFiles/integration_counter_test.dir/integration_counter_test.cpp.o.d"
  "integration_counter_test"
  "integration_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
