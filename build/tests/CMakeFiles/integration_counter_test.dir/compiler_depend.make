# Empty compiler generated dependencies file for integration_counter_test.
# This may be replaced when dependencies are built.
