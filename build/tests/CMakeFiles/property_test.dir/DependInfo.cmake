
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/property_test.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/surgeon_app.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/surgeon_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/surgeon_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/surgeon_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/surgeon_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/surgeon_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/surgeon_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/surgeon_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/surgeon_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/surgeon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/surgeon_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/surgeon_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/surgeon_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/surgeon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
