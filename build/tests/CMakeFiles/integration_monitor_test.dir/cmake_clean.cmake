file(REMOVE_RECURSE
  "CMakeFiles/integration_monitor_test.dir/integration_monitor_test.cpp.o"
  "CMakeFiles/integration_monitor_test.dir/integration_monitor_test.cpp.o.d"
  "integration_monitor_test"
  "integration_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
