# Empty compiler generated dependencies file for integration_monitor_test.
# This may be replaced when dependencies are built.
