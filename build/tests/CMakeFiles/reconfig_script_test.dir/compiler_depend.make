# Empty compiler generated dependencies file for reconfig_script_test.
# This may be replaced when dependencies are built.
