file(REMOVE_RECURSE
  "CMakeFiles/reconfig_script_test.dir/reconfig_script_test.cpp.o"
  "CMakeFiles/reconfig_script_test.dir/reconfig_script_test.cpp.o.d"
  "reconfig_script_test"
  "reconfig_script_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_script_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
