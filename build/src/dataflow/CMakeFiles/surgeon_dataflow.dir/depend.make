# Empty dependencies file for surgeon_dataflow.
# This may be replaced when dependencies are built.
