file(REMOVE_RECURSE
  "CMakeFiles/surgeon_dataflow.dir/liveness.cpp.o"
  "CMakeFiles/surgeon_dataflow.dir/liveness.cpp.o.d"
  "libsurgeon_dataflow.a"
  "libsurgeon_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
