
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/liveness.cpp" "src/dataflow/CMakeFiles/surgeon_dataflow.dir/liveness.cpp.o" "gcc" "src/dataflow/CMakeFiles/surgeon_dataflow.dir/liveness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minic/CMakeFiles/surgeon_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/surgeon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
