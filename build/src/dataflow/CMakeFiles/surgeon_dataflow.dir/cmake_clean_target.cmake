file(REMOVE_RECURSE
  "libsurgeon_dataflow.a"
)
