file(REMOVE_RECURSE
  "libsurgeon_support.a"
)
