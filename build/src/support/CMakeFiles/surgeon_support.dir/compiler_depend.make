# Empty compiler generated dependencies file for surgeon_support.
# This may be replaced when dependencies are built.
