file(REMOVE_RECURSE
  "CMakeFiles/surgeon_support.dir/bytes.cpp.o"
  "CMakeFiles/surgeon_support.dir/bytes.cpp.o.d"
  "CMakeFiles/surgeon_support.dir/diag.cpp.o"
  "CMakeFiles/surgeon_support.dir/diag.cpp.o.d"
  "CMakeFiles/surgeon_support.dir/format.cpp.o"
  "CMakeFiles/surgeon_support.dir/format.cpp.o.d"
  "CMakeFiles/surgeon_support.dir/strutil.cpp.o"
  "CMakeFiles/surgeon_support.dir/strutil.cpp.o.d"
  "libsurgeon_support.a"
  "libsurgeon_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
