file(REMOVE_RECURSE
  "CMakeFiles/surgeon_serialize.dir/state.cpp.o"
  "CMakeFiles/surgeon_serialize.dir/state.cpp.o.d"
  "CMakeFiles/surgeon_serialize.dir/value.cpp.o"
  "CMakeFiles/surgeon_serialize.dir/value.cpp.o.d"
  "libsurgeon_serialize.a"
  "libsurgeon_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
