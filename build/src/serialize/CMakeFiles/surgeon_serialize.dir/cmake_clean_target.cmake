file(REMOVE_RECURSE
  "libsurgeon_serialize.a"
)
