# Empty compiler generated dependencies file for surgeon_serialize.
# This may be replaced when dependencies are built.
