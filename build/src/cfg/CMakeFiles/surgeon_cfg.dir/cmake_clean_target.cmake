file(REMOVE_RECURSE
  "libsurgeon_cfg.a"
)
