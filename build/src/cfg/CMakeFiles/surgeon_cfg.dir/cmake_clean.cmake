file(REMOVE_RECURSE
  "CMakeFiles/surgeon_cfg.dir/parser.cpp.o"
  "CMakeFiles/surgeon_cfg.dir/parser.cpp.o.d"
  "CMakeFiles/surgeon_cfg.dir/spec.cpp.o"
  "CMakeFiles/surgeon_cfg.dir/spec.cpp.o.d"
  "libsurgeon_cfg.a"
  "libsurgeon_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
