# Empty dependencies file for surgeon_cfg.
# This may be replaced when dependencies are built.
