file(REMOVE_RECURSE
  "libsurgeon_app.a"
)
