file(REMOVE_RECURSE
  "CMakeFiles/surgeon_app.dir/runtime.cpp.o"
  "CMakeFiles/surgeon_app.dir/runtime.cpp.o.d"
  "CMakeFiles/surgeon_app.dir/samples.cpp.o"
  "CMakeFiles/surgeon_app.dir/samples.cpp.o.d"
  "libsurgeon_app.a"
  "libsurgeon_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
