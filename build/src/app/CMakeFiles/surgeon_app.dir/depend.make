# Empty dependencies file for surgeon_app.
# This may be replaced when dependencies are built.
