file(REMOVE_RECURSE
  "libsurgeon_opt.a"
)
