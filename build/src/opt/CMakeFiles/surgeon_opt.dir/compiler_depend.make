# Empty compiler generated dependencies file for surgeon_opt.
# This may be replaced when dependencies are built.
