file(REMOVE_RECURSE
  "CMakeFiles/surgeon_opt.dir/optimizer.cpp.o"
  "CMakeFiles/surgeon_opt.dir/optimizer.cpp.o.d"
  "libsurgeon_opt.a"
  "libsurgeon_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
