file(REMOVE_RECURSE
  "libsurgeon_xform.a"
)
