# Empty dependencies file for surgeon_xform.
# This may be replaced when dependencies are built.
