file(REMOVE_RECURSE
  "CMakeFiles/surgeon_xform.dir/transform.cpp.o"
  "CMakeFiles/surgeon_xform.dir/transform.cpp.o.d"
  "libsurgeon_xform.a"
  "libsurgeon_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
