# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("serialize")
subdirs("net")
subdirs("bus")
subdirs("cfg")
subdirs("minic")
subdirs("opt")
subdirs("graph")
subdirs("dataflow")
subdirs("xform")
subdirs("vm")
subdirs("reconfig")
subdirs("baseline")
subdirs("app")
