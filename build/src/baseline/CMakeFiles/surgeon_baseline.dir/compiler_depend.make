# Empty compiler generated dependencies file for surgeon_baseline.
# This may be replaced when dependencies are built.
