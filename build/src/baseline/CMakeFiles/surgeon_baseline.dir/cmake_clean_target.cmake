file(REMOVE_RECURSE
  "libsurgeon_baseline.a"
)
