file(REMOVE_RECURSE
  "CMakeFiles/surgeon_baseline.dir/checkpoint.cpp.o"
  "CMakeFiles/surgeon_baseline.dir/checkpoint.cpp.o.d"
  "CMakeFiles/surgeon_baseline.dir/migration_models.cpp.o"
  "CMakeFiles/surgeon_baseline.dir/migration_models.cpp.o.d"
  "CMakeFiles/surgeon_baseline.dir/procedure_update.cpp.o"
  "CMakeFiles/surgeon_baseline.dir/procedure_update.cpp.o.d"
  "CMakeFiles/surgeon_baseline.dir/quiescence.cpp.o"
  "CMakeFiles/surgeon_baseline.dir/quiescence.cpp.o.d"
  "libsurgeon_baseline.a"
  "libsurgeon_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
