file(REMOVE_RECURSE
  "CMakeFiles/surgeon_minic.dir/ast.cpp.o"
  "CMakeFiles/surgeon_minic.dir/ast.cpp.o.d"
  "CMakeFiles/surgeon_minic.dir/lexer.cpp.o"
  "CMakeFiles/surgeon_minic.dir/lexer.cpp.o.d"
  "CMakeFiles/surgeon_minic.dir/parser.cpp.o"
  "CMakeFiles/surgeon_minic.dir/parser.cpp.o.d"
  "CMakeFiles/surgeon_minic.dir/printer.cpp.o"
  "CMakeFiles/surgeon_minic.dir/printer.cpp.o.d"
  "CMakeFiles/surgeon_minic.dir/sema.cpp.o"
  "CMakeFiles/surgeon_minic.dir/sema.cpp.o.d"
  "libsurgeon_minic.a"
  "libsurgeon_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
