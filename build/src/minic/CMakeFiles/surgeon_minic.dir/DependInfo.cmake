
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minic/ast.cpp" "src/minic/CMakeFiles/surgeon_minic.dir/ast.cpp.o" "gcc" "src/minic/CMakeFiles/surgeon_minic.dir/ast.cpp.o.d"
  "/root/repo/src/minic/lexer.cpp" "src/minic/CMakeFiles/surgeon_minic.dir/lexer.cpp.o" "gcc" "src/minic/CMakeFiles/surgeon_minic.dir/lexer.cpp.o.d"
  "/root/repo/src/minic/parser.cpp" "src/minic/CMakeFiles/surgeon_minic.dir/parser.cpp.o" "gcc" "src/minic/CMakeFiles/surgeon_minic.dir/parser.cpp.o.d"
  "/root/repo/src/minic/printer.cpp" "src/minic/CMakeFiles/surgeon_minic.dir/printer.cpp.o" "gcc" "src/minic/CMakeFiles/surgeon_minic.dir/printer.cpp.o.d"
  "/root/repo/src/minic/sema.cpp" "src/minic/CMakeFiles/surgeon_minic.dir/sema.cpp.o" "gcc" "src/minic/CMakeFiles/surgeon_minic.dir/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/surgeon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
