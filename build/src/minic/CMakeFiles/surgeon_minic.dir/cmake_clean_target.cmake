file(REMOVE_RECURSE
  "libsurgeon_minic.a"
)
