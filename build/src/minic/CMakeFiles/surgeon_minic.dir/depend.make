# Empty dependencies file for surgeon_minic.
# This may be replaced when dependencies are built.
