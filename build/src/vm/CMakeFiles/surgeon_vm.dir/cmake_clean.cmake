file(REMOVE_RECURSE
  "CMakeFiles/surgeon_vm.dir/bytecode.cpp.o"
  "CMakeFiles/surgeon_vm.dir/bytecode.cpp.o.d"
  "CMakeFiles/surgeon_vm.dir/compiler.cpp.o"
  "CMakeFiles/surgeon_vm.dir/compiler.cpp.o.d"
  "CMakeFiles/surgeon_vm.dir/machine.cpp.o"
  "CMakeFiles/surgeon_vm.dir/machine.cpp.o.d"
  "libsurgeon_vm.a"
  "libsurgeon_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
