# Empty compiler generated dependencies file for surgeon_vm.
# This may be replaced when dependencies are built.
