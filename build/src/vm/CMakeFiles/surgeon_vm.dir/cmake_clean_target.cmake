file(REMOVE_RECURSE
  "libsurgeon_vm.a"
)
