
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/bytecode.cpp" "src/vm/CMakeFiles/surgeon_vm.dir/bytecode.cpp.o" "gcc" "src/vm/CMakeFiles/surgeon_vm.dir/bytecode.cpp.o.d"
  "/root/repo/src/vm/compiler.cpp" "src/vm/CMakeFiles/surgeon_vm.dir/compiler.cpp.o" "gcc" "src/vm/CMakeFiles/surgeon_vm.dir/compiler.cpp.o.d"
  "/root/repo/src/vm/machine.cpp" "src/vm/CMakeFiles/surgeon_vm.dir/machine.cpp.o" "gcc" "src/vm/CMakeFiles/surgeon_vm.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minic/CMakeFiles/surgeon_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/surgeon_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/surgeon_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/surgeon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/surgeon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
