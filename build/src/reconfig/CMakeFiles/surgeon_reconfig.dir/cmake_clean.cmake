file(REMOVE_RECURSE
  "CMakeFiles/surgeon_reconfig.dir/scripts.cpp.o"
  "CMakeFiles/surgeon_reconfig.dir/scripts.cpp.o.d"
  "libsurgeon_reconfig.a"
  "libsurgeon_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
