# Empty compiler generated dependencies file for surgeon_reconfig.
# This may be replaced when dependencies are built.
