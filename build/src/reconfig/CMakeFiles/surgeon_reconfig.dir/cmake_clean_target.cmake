file(REMOVE_RECURSE
  "libsurgeon_reconfig.a"
)
