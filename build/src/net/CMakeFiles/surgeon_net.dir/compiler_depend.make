# Empty compiler generated dependencies file for surgeon_net.
# This may be replaced when dependencies are built.
