file(REMOVE_RECURSE
  "libsurgeon_net.a"
)
