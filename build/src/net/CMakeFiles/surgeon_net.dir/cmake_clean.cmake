file(REMOVE_RECURSE
  "CMakeFiles/surgeon_net.dir/sim.cpp.o"
  "CMakeFiles/surgeon_net.dir/sim.cpp.o.d"
  "libsurgeon_net.a"
  "libsurgeon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
