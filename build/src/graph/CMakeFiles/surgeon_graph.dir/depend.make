# Empty dependencies file for surgeon_graph.
# This may be replaced when dependencies are built.
