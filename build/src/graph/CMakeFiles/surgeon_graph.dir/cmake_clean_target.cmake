file(REMOVE_RECURSE
  "libsurgeon_graph.a"
)
