file(REMOVE_RECURSE
  "CMakeFiles/surgeon_graph.dir/callgraph.cpp.o"
  "CMakeFiles/surgeon_graph.dir/callgraph.cpp.o.d"
  "libsurgeon_graph.a"
  "libsurgeon_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
