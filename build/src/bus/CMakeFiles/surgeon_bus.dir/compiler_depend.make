# Empty compiler generated dependencies file for surgeon_bus.
# This may be replaced when dependencies are built.
