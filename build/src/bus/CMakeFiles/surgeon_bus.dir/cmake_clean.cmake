file(REMOVE_RECURSE
  "CMakeFiles/surgeon_bus.dir/bus.cpp.o"
  "CMakeFiles/surgeon_bus.dir/bus.cpp.o.d"
  "CMakeFiles/surgeon_bus.dir/client.cpp.o"
  "CMakeFiles/surgeon_bus.dir/client.cpp.o.d"
  "libsurgeon_bus.a"
  "libsurgeon_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surgeon_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
