file(REMOVE_RECURSE
  "libsurgeon_bus.a"
)
