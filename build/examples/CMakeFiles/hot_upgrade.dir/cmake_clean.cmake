file(REMOVE_RECURSE
  "CMakeFiles/hot_upgrade.dir/hot_upgrade.cpp.o"
  "CMakeFiles/hot_upgrade.dir/hot_upgrade.cpp.o.d"
  "hot_upgrade"
  "hot_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
