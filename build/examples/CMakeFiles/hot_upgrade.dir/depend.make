# Empty dependencies file for hot_upgrade.
# This may be replaced when dependencies are built.
