file(REMOVE_RECURSE
  "CMakeFiles/pipeline_migration.dir/pipeline_migration.cpp.o"
  "CMakeFiles/pipeline_migration.dir/pipeline_migration.cpp.o.d"
  "pipeline_migration"
  "pipeline_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
