# Empty compiler generated dependencies file for pipeline_migration.
# This may be replaced when dependencies are built.
