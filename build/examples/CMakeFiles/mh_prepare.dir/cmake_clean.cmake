file(REMOVE_RECURSE
  "CMakeFiles/mh_prepare.dir/mh_prepare.cpp.o"
  "CMakeFiles/mh_prepare.dir/mh_prepare.cpp.o.d"
  "mh_prepare"
  "mh_prepare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mh_prepare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
