# Empty dependencies file for mh_prepare.
# This may be replaced when dependencies are built.
