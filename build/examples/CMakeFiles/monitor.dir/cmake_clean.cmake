file(REMOVE_RECURSE
  "CMakeFiles/monitor.dir/monitor.cpp.o"
  "CMakeFiles/monitor.dir/monitor.cpp.o.d"
  "monitor"
  "monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
