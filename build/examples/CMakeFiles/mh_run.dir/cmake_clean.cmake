file(REMOVE_RECURSE
  "CMakeFiles/mh_run.dir/mh_run.cpp.o"
  "CMakeFiles/mh_run.dir/mh_run.cpp.o.d"
  "mh_run"
  "mh_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mh_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
