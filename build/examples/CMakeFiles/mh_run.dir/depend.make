# Empty dependencies file for mh_run.
# This may be replaced when dependencies are built.
