# Empty dependencies file for bench_migration_strategies.
# This may be replaced when dependencies are built.
