file(REMOVE_RECURSE
  "CMakeFiles/bench_migration_strategies.dir/bench_migration_strategies.cpp.o"
  "CMakeFiles/bench_migration_strategies.dir/bench_migration_strategies.cpp.o.d"
  "bench_migration_strategies"
  "bench_migration_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_migration_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
