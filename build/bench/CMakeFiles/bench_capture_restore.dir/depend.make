# Empty dependencies file for bench_capture_restore.
# This may be replaced when dependencies are built.
