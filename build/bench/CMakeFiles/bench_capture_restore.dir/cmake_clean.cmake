file(REMOVE_RECURSE
  "CMakeFiles/bench_capture_restore.dir/bench_capture_restore.cpp.o"
  "CMakeFiles/bench_capture_restore.dir/bench_capture_restore.cpp.o.d"
  "bench_capture_restore"
  "bench_capture_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capture_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
