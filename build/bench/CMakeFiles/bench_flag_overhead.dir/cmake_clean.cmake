file(REMOVE_RECURSE
  "CMakeFiles/bench_flag_overhead.dir/bench_flag_overhead.cpp.o"
  "CMakeFiles/bench_flag_overhead.dir/bench_flag_overhead.cpp.o.d"
  "bench_flag_overhead"
  "bench_flag_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flag_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
