# Empty dependencies file for bench_flag_overhead.
# This may be replaced when dependencies are built.
