# Empty dependencies file for bench_checkpoint_vs_flags.
# This may be replaced when dependencies are built.
