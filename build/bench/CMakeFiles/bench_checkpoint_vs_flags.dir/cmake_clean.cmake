file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_vs_flags.dir/bench_checkpoint_vs_flags.cpp.o"
  "CMakeFiles/bench_checkpoint_vs_flags.dir/bench_checkpoint_vs_flags.cpp.o.d"
  "bench_checkpoint_vs_flags"
  "bench_checkpoint_vs_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_vs_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
