# Empty dependencies file for bench_optimizer_interference.
# This may be replaced when dependencies are built.
