file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_interference.dir/bench_optimizer_interference.cpp.o"
  "CMakeFiles/bench_optimizer_interference.dir/bench_optimizer_interference.cpp.o.d"
  "bench_optimizer_interference"
  "bench_optimizer_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
