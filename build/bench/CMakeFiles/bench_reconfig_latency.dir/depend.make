# Empty dependencies file for bench_reconfig_latency.
# This may be replaced when dependencies are built.
