# Empty dependencies file for bench_liveness_ablation.
# This may be replaced when dependencies are built.
