file(REMOVE_RECURSE
  "CMakeFiles/bench_liveness_ablation.dir/bench_liveness_ablation.cpp.o"
  "CMakeFiles/bench_liveness_ablation.dir/bench_liveness_ablation.cpp.o.d"
  "bench_liveness_ablation"
  "bench_liveness_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_liveness_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
