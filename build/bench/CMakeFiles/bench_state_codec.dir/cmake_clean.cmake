file(REMOVE_RECURSE
  "CMakeFiles/bench_state_codec.dir/bench_state_codec.cpp.o"
  "CMakeFiles/bench_state_codec.dir/bench_state_codec.cpp.o.d"
  "bench_state_codec"
  "bench_state_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
