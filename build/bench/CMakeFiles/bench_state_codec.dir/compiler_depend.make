# Empty compiler generated dependencies file for bench_state_codec.
# This may be replaced when dependencies are built.
