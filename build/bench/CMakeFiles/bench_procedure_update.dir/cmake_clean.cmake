file(REMOVE_RECURSE
  "CMakeFiles/bench_procedure_update.dir/bench_procedure_update.cpp.o"
  "CMakeFiles/bench_procedure_update.dir/bench_procedure_update.cpp.o.d"
  "bench_procedure_update"
  "bench_procedure_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_procedure_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
