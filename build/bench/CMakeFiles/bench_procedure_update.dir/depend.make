# Empty dependencies file for bench_procedure_update.
# This may be replaced when dependencies are built.
