// Hot software maintenance: replace a running module with a NEW VERSION of
// its code -- the paper's motivating use case of dynamic reconfiguration
// "to perform software maintenance" on continuously available systems.
//
// A rate-limiter service v1 counts requests per client with a plain
// average; v2 fixes a bug (weights recent traffic double). The upgrade
// happens while a stream of requests is in flight, and v1's accumulated
// per-client counters (heap state!) carry over into v2.
//
//   $ ./hot_upgrade
#include <iostream>

#include "app/runtime.hpp"
#include "cfg/parser.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "reconfig/scripts.hpp"
#include "vm/compiler.hpp"
#include "xform/transform.hpp"

namespace {

constexpr const char* kConfig = R"(
module clients {
  client interface svc pattern = {integer} accepts = {integer} ::
}
module limiter {
  server interface req pattern = {integer} returns = {integer} ::
  reconfiguration point = {RP} ::
}
application app {
  instance clients on "vax" ::
  instance limiter on "vax" ::
  bind "clients svc" "limiter req" ::
}
)";

constexpr const char* kClients = R"(
void main() {
  int k;
  int score;
  k = 1;
  while (k <= 24) {
    mh_write("svc", "i", k % 4);
    mh_read("svc", "i", &score);
    print("client", k % 4, "score", score);
    k = k + 1;
  }
  print("done");
}
)";

// v1: score = total request count for the client.
constexpr const char* kLimiterV1 = R"(
int* counts;

void serve(int who, int *score) {
RP:
  counts[who] = counts[who] + 1;
  *score = counts[who];
}

void main() {
  int who;
  int score;
  counts = mh_alloc_int(4);
  while (1) {
    mh_read("req", "i", &who);
    serve(who, &score);
    mh_write("req", "i", score);
  }
}
)";

// v2: same reconfiguration shape (same graph, same captured layout), new
// scoring rule. v1's counts[] heap object installs directly into v2.
constexpr const char* kLimiterV2 = R"(
int* counts;

void serve(int who, int *score) {
RP:
  counts[who] = counts[who] + 1;
  *score = counts[who] * 2 + 100;
}

void main() {
  int who;
  int score;
  counts = mh_alloc_int(4);
  while (1) {
    mh_read("req", "i", &who);
    serve(who, &score);
    mh_write("req", "i", score);
  }
}
)";

}  // namespace

int main() {
  using namespace surgeon;

  app::Runtime rt(/*seed=*/9);
  rt.add_machine("vax", net::arch_vax());
  rt.add_machine("sparc", net::arch_sparc());

  cfg::ConfigFile config = cfg::parse_config(kConfig);
  rt.load_application(config, "app", [](const cfg::ModuleSpec& spec) {
    return std::string(spec.name == "clients" ? kClients : kLimiterV1);
  });

  // Serve half the stream on v1.
  rt.run_until(
      [&] { return rt.machine_of("clients")->output().size() >= 12; });
  std::cout << "=== v1 serving ===\n";
  for (const auto& line : rt.machine_of("clients")->output()) {
    std::cout << "  " << line << "\n";
  }

  // Build v2 with the same reconfiguration points and hot-swap it in.
  minic::Program v2 = minic::parse_program(kLimiterV2);
  minic::analyze(v2);
  xform::prepare_module(v2, config.find_module("limiter")->reconfig_points);
  auto v2_prog = std::make_shared<const vm::CompiledProgram>(vm::compile(v2));

  auto report = reconfig::update_module(rt, "limiter", v2_prog);
  std::cout << "=== hot upgrade " << report.old_instance << " -> "
            << report.new_instance << " (" << report.state_bytes
            << " bytes of state, including the per-client heap table) ===\n";

  rt.run_until([&] { return rt.module_finished("clients"); });
  rt.check_faults();
  std::cout << "=== v2 serving (scores jumped to the v2 formula, counters "
               "continued) ===\n";
  const auto& output = rt.machine_of("clients")->output();
  for (std::size_t i = 12; i < output.size(); ++i) {
    std::cout << "  " << output[i] << "\n";
  }
  return 0;
}
