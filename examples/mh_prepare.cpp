// mh_prepare: the packager tool. Reads a MiniC module and its configuration
// specification, and emits the module prepared for reconfiguration -- the
// command-line face of the Section 3 transformation (what the SURGEON
// packager of ref [5] did for module-level reconfiguration, extended here
// with module participation).
//
// Usage:
//   mh_prepare <module.mc> <config.cfg> <module-name> [--liveness] [--dot]
//   mh_prepare --demo            (runs on the paper's compute module)
#include <fstream>
#include <iostream>
#include <sstream>

#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "graph/callgraph.hpp"
#include "xform/transform.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw surgeon::support::Error("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::cerr
      << "usage: mh_prepare <module.mc> <config.cfg> <module-name>"
         " [--liveness] [--dot]\n"
         "       mh_prepare --demo [--liveness] [--dot]\n\n"
         "Reads a MiniC module and the configuration specification that\n"
         "declares its reconfiguration points, and prints the module\n"
         "prepared for dynamic reconfiguration (capture/restore blocks,\n"
         "restore dispatch, signal handler). --liveness captures only\n"
         "live variables; --dot also prints the reconfiguration graph.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace surgeon;
  std::vector<std::string> args(argv + 1, argv + argc);
  bool demo = false, liveness = false, dot = false;
  std::vector<std::string> positional;
  for (const auto& a : args) {
    if (a == "--demo") {
      demo = true;
    } else if (a == "--liveness") {
      liveness = true;
    } else if (a == "--dot") {
      dot = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      positional.push_back(a);
    }
  }

  try {
    std::string source, config_text, module_name;
    if (demo) {
      source = app::samples::monitor_compute_source();
      config_text = app::samples::monitor_config_text();
      module_name = "compute";
    } else {
      if (positional.size() != 3) return usage();
      source = read_file(positional[0]);
      config_text = read_file(positional[1]);
      module_name = positional[2];
    }

    cfg::ConfigFile config = cfg::parse_config(config_text);
    const cfg::ModuleSpec* spec = config.find_module(module_name);
    if (spec == nullptr) {
      std::cerr << "error: configuration has no module '" << module_name
                << "'\n";
      return 1;
    }
    if (spec->reconfig_points.empty()) {
      std::cerr << "error: module '" << module_name
                << "' declares no reconfiguration points\n";
      return 1;
    }

    xform::XformOptions options;
    options.use_liveness = liveness;
    xform::PreparedSource prepared =
        xform::prepare_source(source, spec->reconfig_points, options);

    std::cout << prepared.source;
    std::cerr << "\nprepared module '" << module_name << "': "
              << prepared.result.graph.edges.size()
              << " reconfiguration edges, "
              << prepared.result.labels_added.size() << " labels added\n";
    for (const auto& [fn, vars] : prepared.result.captured_var_counts) {
      std::cerr << "  " << fn << ": " << vars << " captured variables\n";
    }
    if (dot) {
      std::cout << "\n/* reconfiguration graph:\n"
                << graph::to_dot(prepared.result.graph) << "*/\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
