// The paper's Monitor example, end to end (Sections 2 and 3, Figures 1-5).
//
// Three modules: sensor produces temperatures, display requests averages,
// compute averages recursively with reconfiguration point R inside the
// recursive procedure. The program:
//   1. prints the transformed compute module (Figure 4),
//   2. runs the application on machines "vax" and "sparc",
//   3. moves compute to the other machine mid-recursion (Figure 1 right),
//   4. shows that the display keeps receiving correct averages.
//
//   $ ./monitor
#include <fstream>
#include <iostream>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "graph/callgraph.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "reconfig/scripts.hpp"
#include "trace/assemble.hpp"
#include "xform/transform.hpp"

int main() {
  using namespace surgeon;

  cfg::ConfigFile config =
      cfg::parse_config(app::samples::monitor_config_text());
  const cfg::ModuleSpec* compute_spec = config.find_module("compute");

  // --- Figure 4: the automatically prepared compute module ----------------
  xform::PreparedSource prepared = xform::prepare_source(
      app::samples::monitor_compute_source(), compute_spec->reconfig_points);
  std::cout << "=== compute module prepared for reconfiguration "
               "(cf. Figure 4) ===\n"
            << prepared.source << "\n";

  // --- Figure 6: its reconfiguration graph --------------------------------
  std::cout << "=== reconfiguration graph (cf. Figure 6) ===\n"
            << graph::to_dot(prepared.result.graph) << "\n";

  // --- Figure 1 (left): the starting configuration -------------------------
  app::Runtime rt(/*seed=*/42);
  rt.enable_metrics();  // record spans + counters over the virtual clock
  rt.enable_causal_tracing();  // per-machine flight recorder (mh_trace)
  rt.add_machine("vax", net::arch_vax());
  rt.add_machine("sparc", net::arch_sparc());
  net::LatencyModel model;
  model.local_us = 20;
  model.remote_us = 3000;
  rt.simulator().set_latency_model(model);
  rt.load_application(config, "monitor", app::samples::monitor_source_of);

  std::cout << "=== running monitor: display+compute on vax, sensor on "
               "sparc ===\n";
  rt.run_for(10'000'000);
  rt.check_faults();
  for (const auto& line : rt.machine_of("display")->output()) {
    std::cout << "  display: " << line << "\n";
  }

  // --- Figure 1 (right): move compute to sparc while it executes -----------
  std::cout << "=== moving compute to sparc (replacement script, "
               "Figure 5) ===\n";
  auto report = reconfig::move_module(rt, "compute", "sparc");
  std::cout << "  old instance : " << report.old_instance << "\n"
            << "  new instance : " << report.new_instance << " on "
            << rt.bus().module_info(report.new_instance).machine << "\n"
            << "  state moved  : " << report.state_bytes << " bytes, "
            << report.state_frames
            << " activation-record frames (captured mid-recursion)\n"
            << "  reaction     : " << report.reaction_delay() << " us\n"
            << "  total delay  : " << report.total_delay() << " us\n";

  // --- the reconfiguration timeline, step by step ---------------------------
  // Every Figure 5 step ran under an obs::Span; the registry holds the
  // begin/end virtual timestamps. This is what `mh_stats("json")` carries
  // in its "spans" array for any module that asks.
  std::cout << "=== reconfiguration timeline (virtual us, from mh_stats) "
               "===\n";
  for (const auto& span : rt.metrics().spans()) {
    std::cout << "  " << span.begin_us << " .. " << span.end_us << "  "
              << span.name
              << (span.name == reconfig::kStepDrain ? "  (inside del)" : "")
              << "\n";
  }

  // --- the causal view of the same replacement ------------------------------
  // The flight recorder journaled every bus event with its causal parents;
  // the assembler stitches the per-machine journals into one DAG.  The
  // report's trace_id isolates the replacement from steady-state traffic.
  trace::Dag dag = trace::assemble(rt.tracer());
  std::cout << "=== causal timeline of the replacement (trace #"
            << report.trace_id << ", "
            << rt.tracer().trace_name(report.trace_id) << ") ===\n"
            << trace::to_timeline(dag, report.trace_id);
  const std::string chrome = trace::to_chrome_trace(dag, report.trace_id);
  std::ofstream("monitor_trace.json") << chrome;
  std::cout << "=== chrome trace written ===\n"
            << "  monitor_trace.json (" << chrome.size()
            << " bytes) -- load in chrome://tracing or https://ui.perfetto.dev\n";

  std::size_t before = rt.machine_of("display")->output().size();
  rt.run_for(20'000'000);
  rt.check_faults();
  const auto& output = rt.machine_of("display")->output();
  std::cout << "=== averages after the move (application never stopped) "
               "===\n";
  for (std::size_t i = before; i < output.size(); ++i) {
    std::cout << "  display: " << output[i] << "\n";
  }
  std::cout << "bus stats: " << rt.bus().stats().messages_delivered
            << " messages delivered, "
            << rt.bus().stats().state_bytes_moved << " state bytes moved\n";
  return 0;
}
