// mh_run: load a configuration file and its MiniC modules from disk, run
// the application on the simulated network, and optionally perform
// reconfigurations at scheduled virtual times. The command-line face of the
// whole platform.
//
// Usage:
//   mh_run <config.cfg> <application> [options]
//
// Options:
//   --for <seconds>            virtual run time (default 30)
//   --machines a,b,...         machines to create (default vax,sparc)
//   --move <module>:<machine>@<t>    move module at virtual second t
//   --replace <module>@<t>           replace module in place at second t
//   --update <module>=<src.mc>@<t>   hot-swap module for a new version
//   --optimize                 run the optimizer after the transformation
//   --liveness                 capture live variables only
//   --trace                    print every module's output with timestamps
//   --seed <n>                 simulation seed (default 1)
//
// Example (the paper's Figure 1 reconfiguration):
//   mh_run examples/apps/monitor/monitor.cfg monitor --for 40 [newline]
//       --move compute:sparc@12
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include <algorithm>

#include "app/runtime.hpp"
#include "support/strutil.hpp"
#include "cfg/parser.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "opt/optimizer.hpp"
#include "reconfig/scripts.hpp"
#include "vm/compiler.hpp"
#include "xform/transform.hpp"

namespace {

using namespace surgeon;

struct ScheduledAction {
  net::SimTime at_us = 0;
  std::string module;
  std::string machine;      // for --move
  std::string new_source;   // for --update: path to the v2 MiniC source
};

struct Options {
  std::string config_path;
  std::string application;
  net::SimTime run_for_us = 30'000'000;
  std::vector<std::string> machines = {"vax", "sparc"};
  std::vector<ScheduledAction> actions;
  bool optimize = false;
  bool liveness = false;
  bool trace = false;
  std::uint64_t seed = 1;
};

int usage() {
  std::cerr << "usage: mh_run <config.cfg> <application>\n"
               "  [--for <secs>] [--machines a,b,...]\n"
               "  [--move <module>:<machine>@<sec>] [--replace <module>@<sec>]\n"
               "  [--update <module>=<src.mc>@<sec>]\n"
               "  [--optimize] [--liveness] [--trace] [--seed <n>]\n";
  return 2;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw support::Error("cannot open " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool parse_args(int argc, char** argv, Options& opts) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) throw support::Error(a + " needs a value");
      return args[++i];
    };
    if (a == "--for") {
      opts.run_for_us =
          static_cast<net::SimTime>(std::stod(next()) * 1'000'000.0);
    } else if (a == "--machines") {
      opts.machines = support::split(next(), ',');
    } else if (a == "--move" || a == "--replace" || a == "--update") {
      std::string spec = next();
      auto at_pos = spec.rfind('@');
      if (at_pos == std::string::npos) {
        throw support::Error(a + " needs <module>[...]@<sec>");
      }
      ScheduledAction action;
      action.at_us = static_cast<net::SimTime>(
          std::stod(spec.substr(at_pos + 1)) * 1'000'000.0);
      std::string target = spec.substr(0, at_pos);
      if (a == "--move") {
        auto colon = target.find(':');
        if (colon == std::string::npos) {
          throw support::Error("--move needs <module>:<machine>@<sec>");
        }
        action.module = target.substr(0, colon);
        action.machine = target.substr(colon + 1);
      } else if (a == "--update") {
        auto eq = target.find('=');
        if (eq == std::string::npos) {
          throw support::Error("--update needs <module>=<src.mc>@<sec>");
        }
        action.module = target.substr(0, eq);
        action.new_source = target.substr(eq + 1);
      } else {
        action.module = target;
      }
      opts.actions.push_back(std::move(action));
    } else if (a == "--optimize") {
      opts.optimize = true;
    } else if (a == "--liveness") {
      opts.liveness = true;
    } else if (a == "--trace") {
      opts.trace = true;
    } else if (a == "--seed") {
      opts.seed = std::stoull(next());
    } else if (!a.empty() && a[0] == '-') {
      return false;
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) return false;
  opts.config_path = positional[0];
  opts.application = positional[1];
  std::sort(opts.actions.begin(), opts.actions.end(),
            [](const auto& x, const auto& y) { return x.at_us < y.at_us; });
  return true;
}

net::Arch arch_for(std::size_t index) {
  auto arches = net::reference_arches();
  return arches[index % arches.size()];
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    if (!parse_args(argc, argv, opts)) return usage();

    app::Runtime rt(opts.seed);
    for (std::size_t i = 0; i < opts.machines.size(); ++i) {
      net::Arch arch = arch_for(i);
      arch.name = opts.machines[i];
      rt.add_machine(opts.machines[i], arch);
      std::cout << "machine " << opts.machines[i] << " ("
                << (arch.byte_order == support::ByteOrder::kBig ? "big"
                                                                : "little")
                << "-endian)\n";
    }

    if (opts.trace) rt.enable_tracing();
    std::filesystem::path base =
        std::filesystem::path(opts.config_path).parent_path();
    cfg::ConfigFile config = cfg::parse_config(read_file(opts.config_path));
    xform::XformOptions xopts;
    xopts.use_liveness = opts.liveness;

    rt.load_application(
        config, opts.application,
        [&](const cfg::ModuleSpec& spec) {
          if (spec.source.empty()) {
            throw support::Error("module " + spec.name +
                                 " has no source attribute");
          }
          return read_file(base / spec.source);
        },
        xopts, opts.optimize);
    std::cout << "loaded application '" << opts.application << "' with "
              << rt.bus().module_names().size() << " modules\n";

    // Track current instance names through replacements.
    std::map<std::string, std::string> alias;
    for (const auto& name : rt.bus().module_names()) alias[name] = name;

    for (const auto& action : opts.actions) {
      if (action.at_us > rt.now()) rt.run_for(action.at_us - rt.now());
      rt.check_faults();
      const std::string instance = alias.at(action.module);
      reconfig::ReplaceReport report;
      if (!action.new_source.empty()) {
        std::cout << "t=" << rt.now() / 1e6 << "s: updating " << instance
                  << " from " << action.new_source << "...\n";
        const cfg::ModuleSpec* spec =
            config.find_module(rt.image_of(instance)->spec.name);
        minic::Program v2 =
            minic::parse_program(read_file(base / action.new_source));
        minic::analyze(v2);
        if (!spec->reconfig_points.empty()) {
          xform::prepare_module(v2, spec->reconfig_points, xopts);
        }
        if (opts.optimize) {
          (void)opt::optimize(v2);
          minic::analyze(v2);
        }
        auto v2_prog =
            std::make_shared<const vm::CompiledProgram>(vm::compile(v2));
        report = reconfig::update_module(rt, instance, v2_prog);
      } else if (!action.machine.empty()) {
        std::cout << "t=" << rt.now() / 1e6 << "s: moving " << instance
                  << " to " << action.machine << "...\n";
        report = reconfig::move_module(rt, instance, action.machine);
      } else {
        std::cout << "t=" << rt.now() / 1e6 << "s: replacing " << instance
                  << " in place...\n";
        report = reconfig::replace_module(rt, instance, {});
      }
      alias[action.module] = report.new_instance;
      std::cout << "  -> " << report.new_instance << " ("
                << report.state_bytes << " state bytes, "
                << report.state_frames << " frames, "
                << report.queued_messages_moved << " queued msgs, delay "
                << report.total_delay() / 1e6 << "s)\n";
    }
    if (opts.run_for_us > rt.now()) rt.run_for(opts.run_for_us - rt.now());
    rt.check_faults();

    if (opts.trace) {
      std::cout << "---- bus trace (" << rt.trace().size() << " events)\n";
      for (const auto& ev : rt.trace()) {
        std::cout << "  " << ev.to_string() << "\n";
      }
    }
    std::cout << "---- finished at t=" << rt.now() / 1e6 << "s; "
              << rt.bus().stats().messages_delivered
              << " messages delivered, "
              << rt.bus().stats().messages_dropped_unbound << " dropped\n";
    for (const auto& [module, instance] : alias) {
      vm::Machine* m = rt.machine_of(instance);
      if (m == nullptr) continue;
      std::cout << "== " << instance << " ("
                << rt.bus().module_info(instance).machine
                << "): " << vm::run_state_name(m->state()) << ", "
                << m->instructions_executed() << " instructions\n";
      if (opts.trace || !m->output().empty()) {
        std::size_t shown = 0;
        for (const auto& line : m->output()) {
          if (!opts.trace && shown++ >= 10) {
            std::cout << "   ... (" << m->output().size() - 10
                      << " more lines)\n";
            break;
          }
          std::cout << "   " << line << "\n";
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
