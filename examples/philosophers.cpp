// The evolving philosophers (after Kramer & Magee's "Evolving Philosophers
// Problem", ref [6] of the paper): a ring of communicating philosopher
// modules must be changed WHILE the conversation continues.
//
// Here four philosophers pass a conversation token around a ring; each one
// "dines" when the token visits. Mid-conversation we (a) migrate one
// philosopher to another machine and (b) hot-swap another for a chattier
// v2 -- both carry their meal count and, crucially, any token queued at
// their doorstep. The ring never loses the token and never misses a beat.
//
//   $ ./philosophers
#include <iostream>

#include "app/runtime.hpp"
#include "cfg/parser.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "reconfig/scripts.hpp"
#include "vm/compiler.hpp"
#include "xform/transform.hpp"

namespace {

constexpr int kPhilosophers = 4;

std::string ring_config() {
  std::string cfg;
  for (int i = 0; i < kPhilosophers; ++i) {
    cfg += "module p" + std::to_string(i) + R"( {
  use interface in pattern = {integer} ::
  define interface out pattern = {integer} ::
  reconfiguration point = {RP} ::
}
)";
  }
  cfg += "application ring {\n";
  for (int i = 0; i < kPhilosophers; ++i) {
    cfg += "  instance p" + std::to_string(i) +
           (i % 2 == 0 ? " on \"vax\" ::\n" : " on \"sparc\" ::\n");
  }
  for (int i = 0; i < kPhilosophers; ++i) {
    int next = (i + 1) % kPhilosophers;
    cfg += "  bind \"p" + std::to_string(i) + " out\" \"p" +
           std::to_string(next) + " in\" ::\n";
  }
  cfg += "}\n";
  return cfg;
}

std::string philosopher_source(bool seeds_token) {
  return std::string(R"(
int meals = 0;

void main() {
  int token;
)") + (seeds_token ? "  mh_write(\"out\", \"i\", 1);\n" : "") +
         R"(  while (1) {
    mh_read("in", "i", &token);
RP:
    meals = meals + 1;
    mh_write("out", "i", token + 1);
    sleep(1);
  }
}
)";
}

// v2 philosopher: same ring protocol, same captured layout (globals and
// frame variables unchanged, so v1's abstract state installs directly), but
// it now announces every meal. The announcements make the moment of the
// hot-swap visible in the module's output log.
constexpr const char* kPhilosopherV2 = R"(
int meals = 0;

void main() {
  int token;
  while (1) {
    mh_read("in", "i", &token);
RP:
    meals = meals + 1;
    print("dined, meal", meals, "token", token);
    mh_write("out", "i", token + 1);
    sleep(1);
  }
}
)";

}  // namespace

int main() {
  using namespace surgeon;

  app::Runtime rt(/*seed=*/13);
  rt.add_machine("vax", net::arch_vax());
  rt.add_machine("sparc", net::arch_sparc());
  cfg::ConfigFile config = cfg::parse_config(ring_config());
  rt.load_application(config, "ring", [](const cfg::ModuleSpec& spec) {
    return philosopher_source(spec.name == "p0");
  });

  auto meals_of = [&](const std::string& name) {
    vm::Machine* m = rt.machine_of(name);
    return m == nullptr ? std::int64_t{-1}
                        : std::get<std::int64_t>(m->global("meals"));
  };
  auto total_meals = [&](const std::vector<std::string>& names) {
    std::int64_t total = 0;
    for (const auto& n : names) total += meals_of(n);
    return total;
  };

  std::vector<std::string> ring = {"p0", "p1", "p2", "p3"};
  rt.run_until([&] { return total_meals(ring) >= 12; });
  std::cout << "after 12 meals: ";
  for (const auto& p : ring) std::cout << p << "=" << meals_of(p) << " ";
  std::cout << "\n";

  // (a) Migrate p2 to the other machine mid-conversation.
  auto move_report = reconfig::move_module(rt, "p2", "vax");
  ring[2] = move_report.new_instance;
  std::cout << "migrated p2 -> " << ring[2] << " on vax ("
            << move_report.queued_messages_moved
            << " queued token(s) moved with it)\n";

  rt.run_until([&] { return total_meals(ring) >= 24; });

  // (b) Hot-swap p1 for the v2 philosopher; the meal count carries over
  //     and v2 starts announcing meals from where v1 left off.
  minic::Program v2 = minic::parse_program(kPhilosopherV2);
  minic::analyze(v2);
  xform::prepare_module(v2, config.find_module("p1")->reconfig_points);
  auto v2_prog = std::make_shared<const vm::CompiledProgram>(vm::compile(v2));
  auto update_report = reconfig::update_module(rt, ring[1], v2_prog);
  ring[1] = update_report.new_instance;
  std::cout << "updated p1 -> " << ring[1] << " (meals carried: "
            << meals_of(ring[1]) << ")\n";

  rt.run_until([&] { return total_meals(ring) >= 40; });
  rt.check_faults();

  std::cout << "v2 announcements (note the meal count continued from v1):\n";
  for (const auto& line : rt.machine_of(ring[1])->output()) {
    std::cout << "  " << ring[1] << ": " << line << "\n";
  }

  std::cout << "final:        ";
  for (const auto& p : ring) std::cout << p << "=" << meals_of(p) << " ";
  std::cout << "\ntotal meals " << total_meals(ring)
            << ", messages delivered "
            << rt.bus().stats().messages_delivered << ", dropped "
            << rt.bus().stats().messages_dropped_unbound
            << ", virtual time " << rt.now() / 1'000'000.0 << " s\n";
  // The conversation token was never lost: the ring keeps eating.
  bool balanced = true;
  for (const auto& p : ring) {
    balanced = balanced && meals_of(p) >= 8;
  }
  std::cout << (balanced ? "RING INTACT" : "RING BROKEN") << "\n";
  return balanced ? 0 : 1;
}
