// Quickstart: the smallest complete SURGEON++ application.
//
// Two modules -- a ping client and a pong server with a reconfiguration
// point -- run on a simulated two-machine network. Mid-run, the pong module
// is moved to the other machine with the parameterized replacement script;
// the client never notices.
//
//   $ ./quickstart
#include <iostream>

#include "app/runtime.hpp"
#include "cfg/parser.hpp"
#include "reconfig/scripts.hpp"

namespace {

constexpr const char* kConfig = R"(
module ping {
  client interface peer pattern = {integer} accepts = {integer} ::
}
module pong {
  server interface serve pattern = {integer} returns = {integer} ::
  reconfiguration point = {RP} ::
}
application quickstart {
  instance ping on "vax" ::
  instance pong on "sparc" ::
  bind "ping peer" "pong serve" ::
}
)";

constexpr const char* kPingSource = R"(
void main() {
  int i;
  int reply;
  i = 1;
  while (i <= 10) {
    mh_write("peer", "i", i);
    mh_read("peer", "i", &reply);
    print("ping got", reply);
    sleep(1);
    i = i + 1;
  }
  print("ping done");
}
)";

constexpr const char* kPongSource = R"(
int served = 0;

void main() {
  int x;
  while (1) {
    mh_read("serve", "i", &x);
RP:
    served = served + 1;
    mh_write("serve", "i", x * x);
  }
}
)";

}  // namespace

int main() {
  using namespace surgeon;

  // 1. A simulated network with two machines of unlike architecture.
  app::Runtime rt(/*seed=*/1);
  rt.add_machine("vax", net::arch_vax());
  rt.add_machine("sparc", net::arch_sparc());

  // 2. Parse the configuration and load the application. Modules that
  //    declare reconfiguration points are transformed automatically.
  cfg::ConfigFile config = cfg::parse_config(kConfig);
  rt.load_application(config, "quickstart", [](const cfg::ModuleSpec& spec) {
    return std::string(spec.name == "ping" ? kPingSource : kPongSource);
  });

  // 3. Run half the workload...
  rt.run_until([&] {
    return rt.machine_of("ping")->output().size() >= 5;
  });

  // 4. ...move the pong module to the other machine while it executes...
  auto report = reconfig::move_module(rt, "pong", "vax");
  std::cout << "moved " << report.old_instance << " -> "
            << report.new_instance << " (" << report.state_bytes
            << " bytes of abstract state, " << report.state_frames
            << " frames, " << report.total_delay() << "us of virtual time)\n";

  // 5. ...and finish. The served-counter moved with the module.
  rt.run_until([&] { return rt.module_finished("ping"); });
  rt.check_faults();

  for (const auto& line : rt.machine_of("ping")->output()) {
    std::cout << "  " << line << "\n";
  }
  auto served = std::get<std::int64_t>(
      rt.machine_of(report.new_instance)->global("served"));
  std::cout << "pong served " << served << " requests across two machines\n";
  return 0;
}
