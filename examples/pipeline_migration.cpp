// Migration under load: a three-stage stream pipeline whose middle stage is
// moved between machines while traffic flows. Demonstrates the queue
// capture ("cap"/"rmq") commands of Figure 5: queued and in-flight messages
// follow the module, and the stage's sequence counter never gaps.
//
//   $ ./pipeline_migration
#include <iostream>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "reconfig/scripts.hpp"

int main() {
  using namespace surgeon;

  const int items = 64;
  app::Runtime rt(/*seed=*/5);
  rt.add_machine("vax", net::arch_vax());
  rt.add_machine("sparc", net::arch_sparc());
  net::LatencyModel model;
  model.local_us = 15;
  model.remote_us = 2500;
  model.remote_jitter_us = 500;
  rt.simulator().set_latency_model(model);

  cfg::ConfigFile config =
      cfg::parse_config(app::samples::pipeline_config_text());
  rt.load_application(config, "pipeline", [&](const cfg::ModuleSpec& spec) {
    if (spec.name == "feeder") return app::samples::pipeline_source_source(items);
    if (spec.name == "filter") return app::samples::pipeline_filter_source();
    return app::samples::pipeline_sink_source();
  });

  auto sink_lines = [&] { return rt.machine_of("sink")->output().size(); };

  std::string filter = "filter";
  std::size_t migrations = 0;
  // Migrate the filter back and forth every ~16 items.
  for (std::size_t threshold : {16u, 32u, 48u}) {
    rt.run_until([&] { return sink_lines() >= threshold; });
    const std::string target =
        rt.bus().module_info(filter).machine == "vax" ? "sparc" : "vax";
    auto report = reconfig::move_module(rt, filter, target);
    ++migrations;
    std::cout << "migration " << migrations << ": " << report.old_instance
              << " -> " << report.new_instance << " on " << target << " ("
              << report.queued_messages_moved << " queued messages moved, "
              << report.state_bytes << " state bytes)\n";
    filter = report.new_instance;
  }

  rt.run_until([&] { return sink_lines() >= static_cast<std::size_t>(items); });
  rt.check_faults();

  // Verify the stream: every item exactly once, sequence numbers unbroken.
  const auto& lines = rt.machine_of("sink")->output();
  bool ok = lines.size() == static_cast<std::size_t>(items);
  std::vector<bool> seen_value(static_cast<std::size_t>(items) + 1, false);
  std::vector<bool> seen_seq(static_cast<std::size_t>(items) + 1, false);
  for (const auto& line : lines) {
    int value = 0, seq = 0;
    if (sscanf(line.c_str(), "item %d %d", &value, &seq) == 2 &&
        value % 2 == 0 && value / 2 >= 1 && value / 2 <= items && seq >= 1 &&
        seq <= items) {
      seen_value[static_cast<std::size_t>(value / 2)] = true;
      seen_seq[static_cast<std::size_t>(seq)] = true;
    } else {
      ok = false;
    }
  }
  for (int i = 1; i <= items; ++i) {
    ok = ok && seen_value[static_cast<std::size_t>(i)] &&
         seen_seq[static_cast<std::size_t>(i)];
  }
  std::cout << "delivered " << lines.size() << "/" << items
            << " items across " << migrations << " migrations: "
            << (ok ? "NO LOSS, NO SEQUENCE GAP" : "STREAM DAMAGED") << "\n";
  std::cout << "virtual time: " << rt.now() / 1'000'000.0 << " s, "
            << rt.bus().stats().messages_delivered
            << " messages delivered, "
            << rt.bus().stats().messages_dropped_unbound << " dropped\n";
  return ok ? 0 : 1;
}
