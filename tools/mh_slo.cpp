// mh_slo: the SLO attainment report, rendered from a simulated deployment
// under diurnal load.
//
// The scenario is the one the paper's transparency claim lives or dies on:
// the open pipeline serving an open-loop diurnal day (bench/workload.hpp),
// with a Figure 5 replacement of the filter fired at the midday rate peak.
// The SLO plane (slo::Probe on vax streaming request completions to
// slo::Monitor on sparc) watches the whole day; the replacement's blackout
// window [divulged, restored] is registered with the monitor, so the
// report correlates latency violations with the reconfiguration that
// caused them.
//
// Two optional mid-run twists mirror mh_top's:
//   --no-replace        leave the filter alone (the control run)
//   --replace-monitor   replace the MONITOR itself at three-quarter day;
//                       windows, counters, and the alert id sequence ride
//                       the state buffer, so the report is unaffected.
//
// Narration goes to stderr; stdout carries only the report, so
//   mh_slo --json | jq .
// works. Output is byte-stable for a fixed spec and seed.
//
// Exit status: 0 = SLO met (no alert fired all day, nothing firing now),
//              1 = SLO breached (an alert fired, or a detector is firing),
//              2 = usage error.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/workload.hpp"
#include "reconfig/scripts.hpp"
#include "slo/monitor.hpp"
#include "slo/slo.hpp"

namespace {

void print_usage(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " [--requests N] [--day-us U] [--seed S] [--objective SPEC]...\n"
        "          [--format text|json | --json] [--no-replace]"
        " [--replace-monitor]\n"
        "  --requests N       expected arrivals over the day"
        " (default 20000)\n"
        "  --day-us U         day length in virtual us (default 240000000)\n"
        "  --seed S           workload seed (default 1)\n"
        "  --insn-cost-ns C   virtual ns per VM instruction (default\n"
        "                     50000): makes the filter a real bottleneck,\n"
        "                     so the midday peak shows up in the tail\n"
        "  --objective SPEC   add an objective, e.g.\n"
        "                     \"pipeline-p99 service=pipeline p99<2000us"
        " window=60s fast=5s@14 slow=60s@6\"\n"
        "                     (repeatable; a default pipeline p99 objective"
        " is used when omitted)\n"
        "  --format F         \"text\" (default) or \"json\"\n"
        "  --json             shorthand for --format json\n"
        "  --no-replace       skip the midday filter replacement\n"
        "  --replace-monitor  replace the monitor itself at 3/4 day\n"
        "  --help             print this message and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace surgeon;

  bench::DiurnalSpec spec;
  spec.requests = 20'000;
  spec.day_us = 240'000'000;  // four virtual minutes
  std::uint64_t insn_cost_ns = 50'000;
  std::vector<std::string> objective_specs;
  std::string format = "text";
  bool replace_filter = true;
  bool replace_monitor_flag = false;

  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        print_usage(argv[0], std::cerr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0], std::cout);
      return 0;
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      spec.requests = std::strtoull(value("--requests"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--day-us") == 0) {
      spec.day_us = std::strtoull(value("--day-us"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      spec.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--insn-cost-ns") == 0) {
      insn_cost_ns = std::strtoull(value("--insn-cost-ns"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--objective") == 0) {
      objective_specs.emplace_back(value("--objective"));
    } else if (std::strcmp(argv[i], "--format") == 0) {
      format = value("--format");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      format = "json";
    } else if (std::strcmp(argv[i], "--no-replace") == 0) {
      replace_filter = false;
    } else if (std::strcmp(argv[i], "--replace-monitor") == 0) {
      replace_monitor_flag = true;
    } else {
      print_usage(argv[0], std::cerr);
      return 2;
    }
  }
  if (format != "text" && format != "json") {
    std::cerr << "--format must be \"text\" or \"json\"\n";
    return 2;
  }
  if (spec.day_us == 0 || spec.requests == 0) {
    std::cerr << "--requests and --day-us must be positive\n";
    return 2;
  }
  if (objective_specs.empty()) {
    // Calibrated to the default scenario: baseline end-to-end latency is
    // ~2010us (two wire hops), the midday saturation tail crosses 2500us.
    objective_specs.push_back(
        "pipeline-p99 service=pipeline p99<2500us window=60s fast=10s@4"
        " slow=60s@2");
  }

  bench::DiurnalScenario s = bench::make_diurnal_pipeline(spec);
  app::Runtime& rt = *s.runtime;
  rt.enable_metrics();
  rt.set_instruction_cost_ns(insn_cost_ns);

  auto monitor =
      std::make_unique<slo::Monitor>(rt.bus(), "slomon", "sparc");
  for (const std::string& os : objective_specs) {
    try {
      monitor->add_objective(slo::parse_objective(os));
    } catch (const std::exception& e) {
      std::cerr << "bad --objective: " << e.what() << "\n";
      return 2;
    }
  }
  slo::Probe probe(rt.bus(), rt.tracer(), "vax", "pipeline", "slomon");

  constexpr std::uint64_t kRounds = 100'000'000'000ULL;
  s.source->start();
  const net::SimTime midday = s.source->midday_at();
  const net::SimTime evening = s.source->started_at() + spec.day_us * 3 / 4;

  bool replaced = false, monitor_replaced = false;
  bool day_done = rt.run_until(
      [&] {
        if (replace_filter && !replaced && rt.now() >= midday) {
          reconfig::ReplaceReport rep = reconfig::replace_module(rt, "filter");
          monitor->note_blackout(rep.divulged_at, rep.restored_at);
          std::cerr << "[replaced " << rep.old_instance << " -> "
                    << rep.new_instance << ", blackout " << rep.blackout_us()
                    << "us]\n";
          replaced = true;
        }
        if (replace_monitor_flag && !monitor_replaced &&
            rt.now() >= evening) {
          slo::ReplaceMonitorReport rep = slo::replace_monitor(
              rt.bus(), monitor, "sparc", [&] { return rt.step(); });
          std::cerr << "[replaced " << rep.old_instance << " -> "
                    << rep.new_instance << ", " << rep.state_bytes
                    << " state bytes]\n";
          monitor_replaced = true;
        }
        return s.source->done();
      },
      kRounds);
  if (!day_done) {
    std::cerr << "day did not complete (simulator went idle?)\n";
    return 2;
  }
  // Drain the tail: let the pipeline finish, stream the lingering partial
  // batch, then give the (possibly backed-off) monitor a full max_tick_us
  // to apply it and run the detectors.
  rt.run_for(500'000, kRounds);
  probe.flush();
  rt.run_for(1'100'000, kRounds);
  probe.stop();

  bus::Client query(rt.bus(), monitor->module_name());
  std::cout << query.mh_slo(format);
  if (format == "json") std::cout << "\n";

  bool breached = false;
  for (const slo::Engine::ObjectiveStatus& st :
       monitor->engine().objective_status(rt.now())) {
    if (st.firing || st.alerts_total > 0) breached = true;
  }
  return breached ? 1 : 0;
}
