// Deep randomized sweep over chaos scenarios, built for the nightly CI job.
//
// Enumerates seeds through chaos::random_scenario and, every
// --coordinator-every seeds, swaps the derived fault mix for a directed
// coordinator kill at one of the eight Figure 5 step boundaries (cycling
// through them), so a long sweep always exercises WAL roll-forward and
// roll-back alongside the message-level faults.
//
// On the first invariant violation the sweep stops and writes two files
// into --artifacts:
//
//   failing_seed.txt      the spec (seed first), the violated invariant,
//                         and the exact replay recipe,
//   flight_recorder.txt   the per-machine causal journals of a fresh run
//                         of the same seed, dumped via the flight recorder.
//
// With --kv the seeds run machine-loss scenarios instead: the sharded KV
// service loses a ring machine (sometimes two) under link faults and the
// GroupManager must rebuild with the acked-write ledger intact (invariant
// 7). Failing-seed artifacts name the killed machine via the spec line
// (kill=mN@Tus).
//
// With --systematic the random seed sweep is replaced by the bounded
// DPOR-style exploration of chaos::explore: every schedule of coordinator
// crash point x dropped wire copies x partition window (up to --max-drops)
// runs exactly once, schedules differing only by reorderings of
// independent wire events are pruned, and every explored schedule is
// checked against all seven invariants. Failing schedules are written to
// --artifacts/failing_schedules.txt. Combined --systematic --kv swaps the
// crash-boundary dimension for the machine-kill dimension: every (machine,
// kill time) rebuild schedule x drop set runs exactly once.
//
// Exit status: 0 = every seed passed, 1 = a seed failed (artifacts
// written), 2 = bad usage.
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "app/runtime.hpp"
#include "chaos/scenario.hpp"
#include "chaos/systematic.hpp"
#include "trace/recorder.hpp"

namespace {

using surgeon::chaos::ScenarioResult;
using surgeon::chaos::ScenarioSpec;

void print_usage(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " [--seeds N] [--start S] [--coordinator-every K]"
        " [--artifacts DIR]\n"
        "  --seeds N              seeds to sweep (default 1000)\n"
        "  --start S              first seed (default 1)\n"
        "  --coordinator-every K  every Kth seed becomes a directed\n"
        "                         coordinator kill; 0 disables"
        " (default 4)\n"
        "  --artifacts DIR        where failing-seed artifacts go\n"
        "                         (default chaos-artifacts)\n"
        "  --dump-seed S          replay one seed and print its\n"
        "                         flight recorder to stdout\n"
        "  --kv                   machine-loss scenarios (replica-group\n"
        "                         rebuild, invariant 7) instead of module\n"
        "                         replacements\n"
        "  --systematic           bounded exhaustive schedule exploration\n"
        "                         instead of random seeds\n"
        "  --max-drops N          (systematic) dropped-wire-copy bound per\n"
        "                         schedule (default 1)\n"
        "  --work-items N         (systematic) workload size (default 4)\n"
        "  --partition-windows N  (systematic) enumerate N vax<->sparc\n"
        "                         partition windows (default 0)\n"
        "  --max-schedules N      (systematic) safety valve"
        " (default 250000)\n"
        "  --help                 print this message and exit\n"
        "\n"
        "exit status: 0 = every seed passed its invariants,\n"
        "             1 = an invariant failed (artifacts written),\n"
        "             2 = usage error\n";
}

int usage(const char* argv0) {
  print_usage(argv0, std::cerr);
  return 2;
}

/// The directed variant of a seed: kill the coordinator at a boundary that
/// cycles with the seed. Roll-forward is single-shot, so the clone-crash
/// fault (which relies on the script's retry loop) is switched off, same
/// as chaos::random_scenario does when it picks a coordinator crash.
ScenarioSpec coordinator_kill_variant(std::uint64_t seed) {
  ScenarioSpec spec = surgeon::chaos::random_scenario(seed);
  spec.crash_clone = false;
  spec.crash_coordinator_at_step = static_cast<int>(seed % 8);
  return spec;
}

/// Replays `failing` with the flight recorder dumped at the end of the
/// chaos pass.
void dump_flight_recorder(const ScenarioSpec& failing, std::ostream& os) {
  ScenarioSpec replay = failing;
  replay.chaos_pass_observer = [&os](surgeon::app::Runtime& rt) {
    surgeon::trace::Recorder& rec = rt.tracer();
    for (const std::string& machine : rec.machines()) {
      os << "=== machine " << machine << " (dropped "
         << rec.dropped(machine) << ") ===\n";
      for (const surgeon::trace::Event& ev : rec.journal(machine)) {
        os << ev.id << " t=" << ev.at << "us lamport=" << ev.lamport << " "
           << surgeon::trace::kind_name(ev.kind) << " " << ev.module;
        if (ev.parent != 0) os << " parent=" << ev.parent;
        if (ev.cause != 0) os << " cause=" << ev.cause;
        if (!ev.detail.empty()) os << " :: " << ev.detail;
        os << "\n";
      }
    }
  };
  (void)surgeon::chaos::run_scenario(replay);
}

int write_artifacts(const std::string& dir, const ScenarioSpec& spec,
                    const ScenarioResult& result, bool directed, bool kv) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  {
    std::ofstream out(dir + "/failing_seed.txt");
    // For kv scenarios the spec line names the killed machine(s):
    // "... kill=m1@30000us second_kill=m2@90000us".
    out << spec.describe() << "\n\n";
    for (const std::string& violation : result.violations) {
      out << "violated: " << violation << "\n";
    }
    if (!result.abort_reason.empty()) {
      out << "abort_reason: " << result.abort_reason << "\n";
    }
    out << "\nreplay: tools/chaos_sweep " << (kv ? "--kv " : "")
        << "--seeds 1 --start " << spec.seed;
    if (!kv) out << " --coordinator-every " << (directed ? 1 : 0);
    out << "\n";
    out << "\n--- chaos output (" << result.output.size() << " lines) ---\n";
    for (const std::string& line : result.output) out << line << "\n";
    out << "--- golden output (" << result.golden.size() << " lines) ---\n";
    for (const std::string& line : result.golden) out << line << "\n";
  }
  {
    std::ofstream out(dir + "/flight_recorder.txt");
    dump_flight_recorder(spec, out);
  }
  std::cerr << "FAIL " << spec.describe() << "\n";
  for (const std::string& violation : result.violations) {
    std::cerr << "     " << violation << "\n";
  }
  std::cerr << "     artifacts in " << dir << "/\n";
  return 1;
}

int run_systematic(int max_drops, int work_items, int partition_windows,
                   std::uint64_t max_schedules, bool kv,
                   const std::string& artifacts) {
  surgeon::chaos::SystematicOptions options;
  options.max_drops = max_drops;
  options.work_items = work_items;
  options.max_schedules = max_schedules;
  if (kv) {
    // Machine-kill exploration: every (ring machine, kill time) rebuild
    // schedule is its own dimension; the crash-boundary dimension is off
    // because a kv run has no replacement coordinator to kill.
    options.app = surgeon::chaos::SampleApp::kKv;
    options.explore_crash_boundaries = false;
    options.kv_shards = 2;
    options.kv_group_size = 2;
    options.kv_machines = 3;
    options.kv_spares = 1;
    for (int m = 0; m < options.kv_machines; ++m) {
      for (surgeon::net::SimTime at : {10'000, 30'000, 50'000}) {
        options.machine_kill_points.push_back(
            surgeon::chaos::MachineKillPoint{m, at});
      }
    }
    for (int w = 0; w < partition_windows; ++w) {
      // Control-to-ring cuts; heartbeats are runtime callbacks, so a cut
      // delays rebuild control traffic without forging a machine death.
      const surgeon::net::SimTime from =
          100'000 + 400'000 * static_cast<surgeon::net::SimTime>(w);
      options.partition_windows.push_back(
          surgeon::chaos::Partition{"ctl", "m0", from, from + 600'000});
    }
  } else {
    options.target_machine = "sparc";  // replacement traffic crosses the wire
    for (int w = 0; w < partition_windows; ++w) {
      // Staggered vax<->sparc cuts, each healing well inside the script's
      // divulge/restore timeouts so the exploration keeps reaching commits.
      const surgeon::net::SimTime from =
          100'000 + 400'000 * static_cast<surgeon::net::SimTime>(w);
      options.partition_windows.push_back(
          surgeon::chaos::Partition{"vax", "sparc", from, from + 600'000});
    }
  }

  const surgeon::chaos::SystematicResult result =
      surgeon::chaos::explore(options);
  std::cout << "systematic: " << result.schedules_explored
            << " schedules explored, " << result.schedules_pruned
            << " reorderings pruned, " << result.points_disabled
            << " disabled extensions skipped, "
            << result.wire_points_discovered << " wire points, "
            << result.crash_boundaries_covered.size()
            << " crash boundaries, " << result.machine_kills_covered.size()
            << " machine kills" << (result.truncated ? " [TRUNCATED]" : "")
            << "\n";
  if (result.ok() && !result.truncated) {
    std::cout << "PASS systematic exploration (0 violating schedules)\n";
    return 0;
  }
  std::error_code ec;
  std::filesystem::create_directories(artifacts, ec);
  std::ofstream out(artifacts + "/failing_schedules.txt");
  if (result.truncated) {
    out << "TRUNCATED at " << result.schedules_explored
        << " schedules (--max-schedules)\n\n";
  }
  for (const surgeon::chaos::ScheduleOutcome& failure : result.failures) {
    out << failure.schedule.describe() << "\n";
    for (const std::string& violation : failure.violations) {
      out << "  violated: " << violation << "\n";
    }
  }
  std::cerr << "FAIL systematic exploration: " << result.failures.size()
            << " violating schedules"
            << (result.truncated ? " (and truncated)" : "")
            << "; artifacts in " << artifacts << "/\n";
  for (std::size_t i = 0; i < result.failures.size() && i < 5; ++i) {
    std::cerr << "     " << result.failures[i].schedule.describe() << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 1000;
  std::uint64_t start = 1;
  std::uint64_t coordinator_every = 4;
  std::string artifacts = "chaos-artifacts";
  bool kv = false;
  bool systematic = false;
  int max_drops = 1;
  int work_items = 4;
  int partition_windows = 0;
  std::uint64_t max_schedules = 250'000;

  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0], std::cout);
      return 0;
    } else if (std::strcmp(argv[i], "--seeds") == 0) {
      seeds = std::strtoull(value("--seeds"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--start") == 0) {
      start = std::strtoull(value("--start"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--coordinator-every") == 0) {
      coordinator_every =
          std::strtoull(value("--coordinator-every"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--artifacts") == 0) {
      artifacts = value("--artifacts");
    } else if (std::strcmp(argv[i], "--kv") == 0) {
      kv = true;
    } else if (std::strcmp(argv[i], "--systematic") == 0) {
      systematic = true;
    } else if (std::strcmp(argv[i], "--max-drops") == 0) {
      max_drops = static_cast<int>(std::strtol(value("--max-drops"),
                                               nullptr, 10));
    } else if (std::strcmp(argv[i], "--work-items") == 0) {
      work_items = static_cast<int>(std::strtol(value("--work-items"),
                                                nullptr, 10));
    } else if (std::strcmp(argv[i], "--partition-windows") == 0) {
      partition_windows = static_cast<int>(
          std::strtol(value("--partition-windows"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-schedules") == 0) {
      max_schedules =
          std::strtoull(value("--max-schedules"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--dump-seed") == 0) {
      const std::uint64_t seed =
          std::strtoull(value("--dump-seed"), nullptr, 10);
      dump_flight_recorder(kv ? surgeon::chaos::random_kv_scenario(seed)
                              : surgeon::chaos::random_scenario(seed),
                          std::cout);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  if (systematic) {
    return run_systematic(max_drops, work_items, partition_windows,
                          max_schedules, kv, artifacts);
  }

  if (kv) {
    // Machine-loss sweep: every seed kills a ring machine (some kill two)
    // and requires the GroupManager to rebuild with the ledger intact.
    std::uint64_t double_kills = 0;
    std::uint64_t rebuilt = 0;
    for (std::uint64_t i = 0; i < seeds; ++i) {
      const std::uint64_t seed = start + i;
      ScenarioSpec spec = surgeon::chaos::random_kv_scenario(seed);
      if (spec.kv_second_kill_machine >= 0) ++double_kills;
      ScenarioResult result = surgeon::chaos::run_scenario(spec);
      if (!result.ok()) {
        return write_artifacts(artifacts, spec, result, false, true);
      }
      if (result.replaced) ++rebuilt;
      if ((i + 1) % 100 == 0) {
        std::cout << (i + 1) << "/" << seeds << " kv seeds ok ("
                  << double_kills << " double kills, " << rebuilt
                  << " rebuilt redundancy)" << std::endl;
      }
    }
    std::cout << "PASS " << seeds << " kv seeds (" << double_kills
              << " double kills, " << rebuilt << " rebuilt redundancy)\n";
    return 0;
  }

  std::uint64_t coordinator_kills = 0;
  std::uint64_t rolled_forward = 0;
  std::uint64_t aborted_clean = 0;
  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = start + i;
    const bool directed =
        coordinator_every != 0 && (i % coordinator_every) == 0;
    ScenarioSpec spec = directed ? coordinator_kill_variant(seed)
                                 : surgeon::chaos::random_scenario(seed);
    if (spec.crash_coordinator_at_step >= 0) ++coordinator_kills;
    ScenarioResult result = surgeon::chaos::run_scenario(spec);
    if (!result.ok()) {
      return write_artifacts(artifacts, spec, result, directed, false);
    }
    if (result.recovered_forward) ++rolled_forward;
    if (!result.replaced) ++aborted_clean;
    if ((i + 1) % 100 == 0) {
      std::cout << (i + 1) << "/" << seeds << " seeds ok ("
                << coordinator_kills << " coordinator kills, "
                << rolled_forward << " rolled forward, " << aborted_clean
                << " clean aborts)" << std::endl;
    }
  }
  std::cout << "PASS " << seeds << " seeds (" << coordinator_kills
            << " coordinator kills, " << rolled_forward << " rolled forward, "
            << aborted_clean << " clean aborts)\n";
  return 0;
}
