// mh_top: the cluster-telemetry table, rendered live from a simulated
// deployment.
//
// The platform is a deterministic simulation, so "live" means virtual
// time: the tool builds the counter application on a two-machine cluster,
// attaches the telemetry plane (one Reporter per machine streaming
// metric deltas to the Collector over the bus), advances the virtual clock
// frame by frame, and renders bus::Client::mh_top after each frame — the
// same query a cluster operator would issue against a real deployment.
//
// Two optional mid-run reconfigurations demonstrate the observability
// story this PR is about:
//   --replace-server     replace the server via the Figure 5 script; the
//                        disruption metrics (blackout, queued delays) show
//                        up in the table a frame later.
//   --replace-collector  replace the COLLECTOR itself; the table keeps
//                        rendering, windows intact, because the clone
//                        inherits them through the state buffer.
//
// Exit status: 0 = ran to completion with telemetry flowing,
//              1 = no telemetry arrived (the collector applied zero
//                  deltas -- frames too short, reporters misbound, ...),
//              2 = usage error.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "profile/telemetry.hpp"
#include "reconfig/scripts.hpp"

namespace {

void print_usage(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " [--frames N] [--interval-us U] [--format table|json]\n"
        "  --frames N          frames to render (default 8)\n"
        "  --interval-us U     virtual microseconds per frame"
        " (default 250000)\n"
        "  --format F          \"table\" (default) or \"json\"\n"
        "  --json              shorthand for --format json\n"
        "  --replace-server    replace the server mid-run (Figure 5)\n"
        "  --replace-collector replace the collector itself mid-run\n"
        "  --help              print this message and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace surgeon;

  std::uint64_t frames = 8;
  net::SimTime interval_us = 250'000;
  std::string format = "table";
  bool replace_server = false;
  bool replace_collector_flag = false;

  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        print_usage(argv[0], std::cerr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0], std::cout);
      return 0;
    } else if (std::strcmp(argv[i], "--frames") == 0) {
      frames = std::strtoull(value("--frames"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--interval-us") == 0) {
      interval_us = std::strtoull(value("--interval-us"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--format") == 0) {
      format = value("--format");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      format = "json";
    } else if (std::strcmp(argv[i], "--replace-server") == 0) {
      replace_server = true;
    } else if (std::strcmp(argv[i], "--replace-collector") == 0) {
      replace_collector_flag = true;
    } else {
      print_usage(argv[0], std::cerr);
      return 2;
    }
  }
  if (format != "table" && format != "json") {
    std::cerr << "--format must be \"table\" or \"json\"\n";
    return 2;
  }

  app::Runtime rt(7);
  rt.add_machine("vax", net::arch_vax());
  rt.add_machine("sparc", net::arch_sparc());
  rt.enable_metrics();
  cfg::ConfigFile config =
      cfg::parse_config(app::samples::counter_config_text());
  rt.load_application(config, "counter", [&](const cfg::ModuleSpec& spec) {
    if (spec.name == "client") {
      return app::samples::counter_client_source(
          static_cast<int>(frames * 40));
    }
    return app::samples::counter_server_source();
  });

  auto collector = std::make_unique<profile::Collector>(
      rt.bus(), "collector", "vax");
  profile::Reporter vax_reporter(rt.bus(), rt.metrics(), "vax", "collector");
  profile::Reporter sparc_reporter(rt.bus(), rt.metrics(), "sparc",
                                   "collector");

  bus::Client query(rt.bus(), "collector");
  for (std::uint64_t frame = 0; frame < frames; ++frame) {
    if (frame == frames / 2) {
      if (replace_server) {
        reconfig::ReplaceReport rep = reconfig::replace_module(rt, "server");
        std::cout << "[replaced " << rep.old_instance << " -> "
                  << rep.new_instance << ", blackout " << rep.blackout_us()
                  << "us]\n";
      }
      if (replace_collector_flag) {
        profile::ReplaceCollectorReport rep = profile::replace_collector(
            rt.bus(), collector, "vax", [&] { return rt.step(); });
        std::cout << "[replaced " << rep.old_instance << " -> "
                  << rep.new_instance << ", " << rep.state_bytes
                  << " state bytes]\n";
      }
    }
    rt.run_for(interval_us);
    std::cout << "--- frame " << (frame + 1) << "/" << frames << " t=+"
              << rt.now() << "us ---\n"
              << query.mh_top(format);
    if (format == "json") std::cout << "\n";
  }
  return collector->deltas_applied() == 0 ? 1 : 0;
}
