// Static reconfiguration-plan checker CLI.
//
// Symbolically executes the declared plan of every shipped reconfiguration
// script (src/reconfig/scripts.cpp, src/recover/recovery.cpp,
// src/replicate/rebuild.cpp) over the abstract configuration state and
// reports, per step boundary, which of
// invariants 1-7 are established (E), preserved (P), or violated (V). Runs
// in milliseconds with no simulator -- made for a fast per-PR CI gate.
//
//   tools/plan_check                 check every shipped plan (text)
//   tools/plan_check --json          same, machine-readable
//   tools/plan_check --plan NAME     check one plan (broken one included)
//   tools/plan_check --list          list plan names
//   tools/plan_check --include-broken  also run the seeded broken plans
//                                      (expected FAIL; exit 1)
//
// Exit status: 0 = every checked plan passed, 1 = a plan violated an
// invariant (diagnostics printed), 2 = bad usage / unknown plan.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "verify/checker.hpp"
#include "verify/plan.hpp"

namespace {

using surgeon::verify::Plan;
using surgeon::verify::PlanReport;

void print_usage(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " [--list] [--plan NAME] [--json] [--include-broken]\n"
        "  --list            list plan names and exit\n"
        "  --plan NAME       check a single plan by name\n"
        "  --json            machine-readable diagnostics\n"
        "  --include-broken  also check the seeded broken plans\n"
        "                    (they must FAIL; exit becomes 1)\n"
        "  --help            print this message and exit\n"
        "\n"
        "exit status: 0 = every checked plan passed,\n"
        "             1 = a plan violated an invariant,\n"
        "             2 = usage error or unknown plan\n";
}

std::vector<Plan> all_plans(bool include_broken) {
  std::vector<Plan> plans = surgeon::verify::shipped_plans();
  if (include_broken) {
    plans.push_back(surgeon::verify::plan_broken_rebind_before_divulge());
    plans.push_back(surgeon::verify::plan_broken_adopt_before_divulge());
  }
  return plans;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool json = false;
  bool include_broken = false;
  std::string only;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0], std::cout);
      return 0;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--include-broken") == 0) {
      include_broken = true;
    } else if (std::strcmp(argv[i], "--plan") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--plan needs a value\n";
        print_usage(argv[0], std::cerr);
        return 2;
      }
      only = argv[++i];
    } else {
      print_usage(argv[0], std::cerr);
      return 2;
    }
  }

  std::vector<Plan> plans = all_plans(include_broken || !only.empty());
  if (list) {
    for (const Plan& p : plans) {
      std::cout << p.name << " -- " << p.description << "\n";
    }
    return 0;
  }
  if (!only.empty()) {
    std::vector<Plan> picked;
    for (Plan& p : plans) {
      if (p.name == only) picked.push_back(std::move(p));
    }
    if (picked.empty()) {
      std::cerr << "unknown plan '" << only << "' (see --list)\n";
      return 2;
    }
    plans = std::move(picked);
  } else if (!include_broken) {
    plans = all_plans(false);
  }

  bool all_ok = true;
  if (json) std::cout << "[";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const PlanReport report = surgeon::verify::check_plan(plans[i]);
    all_ok = all_ok && report.ok;
    if (json) {
      if (i != 0) std::cout << ",";
      std::cout << report.to_json();
    } else {
      if (i != 0) std::cout << "\n";
      std::cout << report.to_text();
    }
  }
  if (json) std::cout << "]\n";
  return all_ok ? 0 : 1;
}
