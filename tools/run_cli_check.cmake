# Runs a CLI tool and checks its exit status and (optionally) its stdout
# against a golden file, byte for byte. Invoked by the ctest entries the
# tools/CMakeLists.txt registers:
#
#   cmake -D TOOL=<binary> -D ARGS="--json --frames 2" -D EXPECT_EXIT=0
#         [-D GOLDEN=<file>] [-D ACTUAL=<file>] -P run_cli_check.cmake
#
# Regenerate a golden by running the same invocation and redirecting
# stdout, e.g.  build/tools/mh_top --json --frames 2 > tools/golden/....
if(NOT DEFINED TOOL)
  message(FATAL_ERROR "run_cli_check: TOOL not set")
endif()
if(NOT DEFINED EXPECT_EXIT)
  set(EXPECT_EXIT 0)
endif()

separate_arguments(tool_args NATIVE_COMMAND "${ARGS}")
execute_process(
  COMMAND ${TOOL} ${tool_args}
  OUTPUT_VARIABLE tool_out
  ERROR_VARIABLE tool_err
  RESULT_VARIABLE tool_code)

if(NOT tool_code STREQUAL "${EXPECT_EXIT}")
  message(FATAL_ERROR
    "${TOOL} ${ARGS}: exit ${tool_code}, expected ${EXPECT_EXIT}\n"
    "stderr:\n${tool_err}")
endif()

if(DEFINED GOLDEN)
  file(READ "${GOLDEN}" golden_out)
  if(NOT tool_out STREQUAL golden_out)
    if(DEFINED ACTUAL)
      file(WRITE "${ACTUAL}" "${tool_out}")
      set(actual_hint " (actual output written to ${ACTUAL})")
    endif()
    message(FATAL_ERROR
      "${TOOL} ${ARGS}: stdout differs from golden ${GOLDEN}${actual_hint}\n"
      "regenerate with: <tool> ${ARGS} > ${GOLDEN}")
  endif()
endif()
