// loadgen: drive the pipeline application through a synthetic diurnal day.
//
// Builds the open pipeline (filter on vax, quiet sink on sparc), attaches
// the open-loop diurnal source (bench/workload.hpp), and advances the
// virtual clock through one whole day. Requests are trace-tagged end to
// end, so a native RequestTracker riding the flight recorder's observer
// hook measures exact per-request latency for every completion -- no
// sampling, no ring-eviction loss.
//
//   --replace       fire a Figure 5 replacement of the filter at midday
//                   (the rate peak), the worst moment for the pipeline
//
// The summary reports realized arrivals, completions, the latency
// distribution (p50/p99/p999), and -- when a replacement fired -- the
// blackout window, so a day at --requests 2000000 doubles as the paper's
// "replacement under production load" experiment.
//
// Exit status: 0 = day completed, 2 = usage error.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/workload.hpp"
#include "reconfig/scripts.hpp"
#include "slo/request.hpp"

namespace {

void print_usage(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " [--requests N] [--day-us U] [--peak-ratio R] [--seed S]"
        " [--replace]\n"
        "  --requests N    expected arrivals over the day (default 50000)\n"
        "  --day-us U      day length in virtual us (default 600000000)\n"
        "  --peak-ratio R  midday rate / midnight rate (default 4)\n"
        "  --seed S        workload seed (default 1)\n"
        "  --insn-cost-ns C  virtual ns per VM instruction (default 0);\n"
        "                  high values saturate the filter at the midday\n"
        "                  peak and queueing delay appears in the tail\n"
        "  --replace       replace the filter (Figure 5) at midday\n"
        "  --help          print this message and exit\n";
}

std::uint64_t pct(const std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<std::uint64_t>(sorted[std::min(idx, sorted.size() - 1)]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace surgeon;

  bench::DiurnalSpec spec;
  spec.requests = 50'000;
  spec.day_us = 600'000'000;  // a ten-minute "day" by default
  std::uint64_t insn_cost_ns = 0;
  bool replace = false;

  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        print_usage(argv[0], std::cerr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0], std::cout);
      return 0;
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      spec.requests = std::strtoull(value("--requests"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--day-us") == 0) {
      spec.day_us = std::strtoull(value("--day-us"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--peak-ratio") == 0) {
      spec.peak_to_trough = std::strtod(value("--peak-ratio"), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      spec.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--insn-cost-ns") == 0) {
      insn_cost_ns = std::strtoull(value("--insn-cost-ns"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--replace") == 0) {
      replace = true;
    } else {
      print_usage(argv[0], std::cerr);
      return 2;
    }
  }
  if (spec.day_us == 0 || spec.requests == 0) {
    std::cerr << "--requests and --day-us must be positive\n";
    return 2;
  }

  bench::DiurnalScenario s = bench::make_diurnal_pipeline(spec);
  app::Runtime& rt = *s.runtime;
  rt.enable_metrics();
  rt.set_instruction_cost_ns(insn_cost_ns);

  slo::RequestTracker tracker;
  std::vector<std::int64_t> latencies;
  std::uint64_t incomplete = 0;
  const trace::Recorder::ObserverId obs_id = rt.tracer().add_observer(
      [&](const trace::Event& ev) {
        tracker.observe(ev);
        for (slo::Completion& c : tracker.drain()) {
          latencies.push_back(c.latency_us);
          if (!c.complete) ++incomplete;
        }
      });

  constexpr std::uint64_t kRounds = 100'000'000'000ULL;
  s.source->start();
  const net::SimTime midday = s.source->midday_at();

  bool replaced = false;
  reconfig::ReplaceReport report;
  bool day_done = rt.run_until(
      [&] {
        if (replace && !replaced && rt.now() >= midday) {
          report = reconfig::replace_module(rt, "filter");
          replaced = true;
        }
        return s.source->done();
      },
      kRounds);
  if (!day_done) {
    std::cerr << "day did not complete (simulator went idle?)\n";
    return 2;
  }
  rt.run_until_idle(kRounds);  // drain the tail of the pipeline
  rt.tracer().remove_observer(obs_id);

  std::sort(latencies.begin(), latencies.end());
  std::cout << "day           " << spec.day_us << "us  seed " << spec.seed
            << "  peak-ratio " << spec.peak_to_trough << "\n"
            << "arrivals      " << s.source->sent() << " (expected "
            << spec.requests << ")\n"
            << "completions   " << latencies.size() << " (incomplete "
            << incomplete << ", open " << tracker.open() << ")\n";
  if (!latencies.empty()) {
    std::cout << "latency p50   " << pct(latencies, 0.50) << "us\n"
              << "latency p99   " << pct(latencies, 0.99) << "us\n"
              << "latency p999  " << pct(latencies, 0.999) << "us\n"
              << "latency max   " << latencies.back() << "us\n";
  }
  if (replaced) {
    std::cout << "replacement   " << report.old_instance << " -> "
              << report.new_instance << " at " << report.requested_at
              << "us  blackout " << report.blackout_us() << "us  moved "
              << report.queued_messages_moved << " queued\n";
  }
  return 0;
}
