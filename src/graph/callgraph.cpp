#include "graph/callgraph.hpp"

#include <deque>
#include <sstream>

namespace surgeon::graph {

using minic::BlockStmt;
using minic::CallExpr;
using minic::Expr;
using minic::ExprKind;
using minic::LabeledStmt;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;
using support::SemaError;

namespace {

/// Collects every user-function call expression under `e`.
void collect_calls(Expr& e, std::vector<CallExpr*>& out) {
  switch (e.kind) {
    case ExprKind::kCall: {
      auto& c = static_cast<CallExpr&>(e);
      if (!c.is_builtin) out.push_back(&c);
      for (auto& a : c.args) collect_calls(*a, out);
      return;
    }
    case ExprKind::kUnary:
      collect_calls(*static_cast<minic::UnaryExpr&>(e).operand, out);
      return;
    case ExprKind::kBinary: {
      auto& b = static_cast<minic::BinaryExpr&>(e);
      collect_calls(*b.lhs, out);
      collect_calls(*b.rhs, out);
      return;
    }
    case ExprKind::kCast:
      collect_calls(*static_cast<minic::CastExpr&>(e).operand, out);
      return;
    case ExprKind::kAddrOf:
      collect_calls(*static_cast<minic::AddrOfExpr&>(e).operand, out);
      return;
    case ExprKind::kDeref:
      collect_calls(*static_cast<minic::DerefExpr&>(e).operand, out);
      return;
    case ExprKind::kIndex: {
      auto& i = static_cast<minic::IndexExpr&>(e);
      collect_calls(*i.base, out);
      collect_calls(*i.index, out);
      return;
    }
    default:
      return;
  }
}

/// Collects call expressions in a statement, without descending into nested
/// statements (those are visited separately so each call is attributed to
/// the statement directly containing it in its block).
void collect_stmt_calls(Stmt& s, std::vector<CallExpr*>& out) {
  switch (s.kind) {
    case StmtKind::kDecl: {
      auto& d = static_cast<minic::DeclStmt&>(s);
      if (d.init) collect_calls(*d.init, out);
      return;
    }
    case StmtKind::kAssign: {
      auto& a = static_cast<minic::AssignStmt&>(s);
      collect_calls(*a.target, out);
      collect_calls(*a.value, out);
      return;
    }
    case StmtKind::kExpr:
      collect_calls(*static_cast<minic::ExprStmt&>(s).expr, out);
      return;
    case StmtKind::kIf:
      collect_calls(*static_cast<minic::IfStmt&>(s).cond, out);
      return;
    case StmtKind::kWhile:
      collect_calls(*static_cast<minic::WhileStmt&>(s).cond, out);
      return;
    case StmtKind::kFor: {
      // The header parts belong to the for statement itself (they cannot
      // host a resumable call site); the body is visited separately.
      auto& f = static_cast<minic::ForStmt&>(s);
      if (f.init) collect_stmt_calls(*f.init, out);
      if (f.cond) collect_calls(*f.cond, out);
      if (f.step) collect_stmt_calls(*f.step, out);
      return;
    }
    case StmtKind::kReturn: {
      auto& r = static_cast<minic::ReturnStmt&>(s);
      if (r.value) collect_calls(*r.value, out);
      return;
    }
    default:
      return;
  }
}

/// Is `s` exactly one user call, i.e. `f(...);` possibly under labels?
CallExpr* sole_statement_call(Stmt& s) {
  Stmt* inner = &s;
  while (inner->kind == StmtKind::kLabeled) {
    inner = static_cast<LabeledStmt&>(*inner).inner.get();
  }
  if (inner->kind != StmtKind::kExpr) return nullptr;
  auto& e = *static_cast<minic::ExprStmt&>(*inner).expr;
  if (e.kind != ExprKind::kCall) return nullptr;
  auto& c = static_cast<CallExpr&>(e);
  if (c.is_builtin) return nullptr;
  // Arguments must not themselves contain user calls.
  std::vector<CallExpr*> nested;
  for (auto& a : c.args) collect_calls(*a, nested);
  if (!nested.empty()) return nullptr;
  return &c;
}

class SiteWalker {
 public:
  SiteWalker(std::string caller, std::vector<CallSite>& sites)
      : caller_(std::move(caller)), sites_(&sites) {}

  void walk_block(BlockStmt& block) {
    for (auto& stmt : block.stmts) visit(*stmt, block);
  }

 private:
  void visit(Stmt& stmt, BlockStmt& enclosing) {
    // Calls directly in this statement (conditions, initializers, the
    // expression of an ExprStmt, ...).
    std::vector<CallExpr*> calls;
    Stmt* inner = &stmt;
    while (inner->kind == StmtKind::kLabeled) {
      inner = static_cast<LabeledStmt&>(*inner).inner.get();
    }
    collect_stmt_calls(*inner, calls);
    CallExpr* sole = sole_statement_call(stmt);
    for (CallExpr* call : calls) {
      CallSite site;
      site.caller = caller_;
      site.callee = call->callee;
      site.stmt = &stmt;
      site.block = &enclosing;
      site.call = call;
      site.is_statement_call = (call == sole);
      site.loc = call->loc;
      sites_->push_back(site);
    }
    // Recurse into nested statements.
    switch (inner->kind) {
      case StmtKind::kBlock:
        walk_block(static_cast<BlockStmt&>(*inner));
        break;
      case StmtKind::kIf: {
        auto& s = static_cast<minic::IfStmt&>(*inner);
        visit_child(*s.then_branch, enclosing);
        if (s.else_branch) visit_child(*s.else_branch, enclosing);
        break;
      }
      case StmtKind::kWhile:
        visit_child(*static_cast<minic::WhileStmt&>(*inner).body, enclosing);
        break;
      case StmtKind::kFor:
        visit_child(*static_cast<minic::ForStmt&>(*inner).body, enclosing);
        break;
      default:
        break;
    }
  }

  /// An if/while body that is itself a block becomes the enclosing block of
  /// its children; a bare statement body keeps the outer block (the
  /// transformer normalizes such bodies into blocks before instrumenting).
  void visit_child(Stmt& child, BlockStmt& enclosing) {
    if (child.kind == StmtKind::kBlock) {
      walk_block(static_cast<BlockStmt&>(child));
    } else {
      visit(child, enclosing);
    }
  }

  std::string caller_;
  std::vector<CallSite>* sites_;
};

}  // namespace

std::set<std::string> CallGraph::reachable_from(const std::string& from) const {
  std::set<std::string> seen;
  std::deque<std::string> frontier{from};
  while (!frontier.empty()) {
    std::string fn = std::move(frontier.front());
    frontier.pop_front();
    if (!seen.insert(fn).second) continue;
    auto it = successors.find(fn);
    if (it == successors.end()) continue;
    for (const auto& next : it->second) frontier.push_back(next);
  }
  return seen;
}

std::set<std::string> CallGraph::can_reach(
    const std::set<std::string>& targets) const {
  // Reverse reachability by fixpoint (graphs here are tiny).
  std::set<std::string> result = targets;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [fn, succs] : successors) {
      if (result.contains(fn)) continue;
      for (const auto& s : succs) {
        if (result.contains(s)) {
          result.insert(fn);
          changed = true;
          break;
        }
      }
    }
  }
  return result;
}

CallGraph build_call_graph(Program& program) {
  CallGraph graph;
  for (auto& fn : program.functions) {
    graph.nodes.insert(fn->name);
    SiteWalker walker(fn->name, graph.sites);
    walker.walk_block(*fn->body);
  }
  for (const auto& site : graph.sites) {
    graph.successors[site.caller].insert(site.callee);
  }
  return graph;
}

namespace {

/// Finds the LabeledStmt with `label` anywhere under `stmt`; records its
/// innermost enclosing block.
struct LabelSearch {
  std::string label;
  LabeledStmt* found = nullptr;
  BlockStmt* found_block = nullptr;

  void walk_block(BlockStmt& block) {
    for (auto& s : block.stmts) visit(*s, block);
  }

  void visit(Stmt& stmt, BlockStmt& enclosing) {
    switch (stmt.kind) {
      case StmtKind::kLabeled: {
        auto& l = static_cast<LabeledStmt&>(stmt);
        if (l.label == label) {
          found = &l;
          found_block = &enclosing;
          return;
        }
        visit(*l.inner, enclosing);
        return;
      }
      case StmtKind::kBlock:
        walk_block(static_cast<BlockStmt&>(stmt));
        return;
      case StmtKind::kIf: {
        auto& s = static_cast<minic::IfStmt&>(stmt);
        visit_child(*s.then_branch, enclosing);
        if (s.else_branch) visit_child(*s.else_branch, enclosing);
        return;
      }
      case StmtKind::kWhile:
        visit_child(*static_cast<minic::WhileStmt&>(stmt).body, enclosing);
        return;
      case StmtKind::kFor:
        visit_child(*static_cast<minic::ForStmt&>(stmt).body, enclosing);
        return;
      default:
        return;
    }
  }

  void visit_child(Stmt& child, BlockStmt& enclosing) {
    if (child.kind == StmtKind::kBlock) {
      walk_block(static_cast<BlockStmt&>(child));
    } else {
      visit(child, enclosing);
    }
  }
};

}  // namespace

std::vector<ReconfigPoint> find_reconfig_points(
    Program& program, const std::vector<std::string>& labels) {
  std::vector<ReconfigPoint> points;
  for (const auto& label : labels) {
    ReconfigPoint point;
    point.label = label;
    for (auto& fn : program.functions) {
      LabelSearch search{label, nullptr, nullptr};
      search.walk_block(*fn->body);
      if (search.found != nullptr) {
        if (point.stmt != nullptr) {
          throw SemaError(search.found->loc,
                          "reconfiguration point label '" + label +
                              "' appears in more than one function");
        }
        point.function = fn->name;
        point.stmt = search.found;
        point.block = search.found_block;
        point.loc = search.found->loc;
      }
    }
    if (point.stmt == nullptr) {
      throw SemaError(support::SourceLoc{},
                      "reconfiguration point label '" + label +
                          "' not found in the program");
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<const ReconfigEdge*> ReconfigGraph::edges_from(
    const std::string& fn) const {
  std::vector<const ReconfigEdge*> out;
  for (const auto& e : edges) {
    if (e.from == fn) out.push_back(&e);
  }
  return out;
}

ReconfigGraph build_reconfig_graph(Program& program,
                                   const std::vector<std::string>& labels) {
  ReconfigGraph rg;
  rg.points = find_reconfig_points(program, labels);

  CallGraph cg = build_call_graph(program);
  std::set<std::string> rp_functions;
  for (const auto& p : rg.points) rp_functions.insert(p.function);

  auto reachable = cg.reachable_from("main");
  auto reaching = cg.can_reach(rp_functions);
  for (const auto& rp_fn : rp_functions) {
    if (!reachable.contains(rp_fn)) {
      throw SemaError(support::SourceLoc{},
                      "function '" + rp_fn +
                          "' contains a reconfiguration point but is "
                          "unreachable from main");
    }
  }
  // Nodes: on a path main -> ... -> reconfiguration point.
  for (const auto& fn : reachable) {
    if (reaching.contains(fn)) rg.nodes.insert(fn);
  }
  rg.nodes.insert("main");

  // Edge numbering follows program order: for each function in source
  // order, call-site edges and reconfiguration-point edges in statement
  // order. (Figure 4 numbers main's two call edges 1 and 2, compute's
  // recursive call 3, and the reconfiguration point 4.)
  int next_id = 1;
  for (auto& fn : program.functions) {
    if (!rg.nodes.contains(fn->name)) continue;
    // Gather this function's instrumentable sites in source order. Call
    // sites were already collected in statement order by build_call_graph.
    for (const auto& site : cg.sites) {
      if (site.caller != fn->name) continue;
      if (!rg.nodes.contains(site.callee) || !reaching.contains(site.callee)) {
        continue;
      }
      if (!site.is_statement_call) {
        throw SemaError(
            site.loc,
            "call to '" + site.callee +
                "' lies on a reconfiguration path but is not a "
                "statement-level call; the abstract state exists only "
                "between high-level statements (Section 1.2), so such "
                "calls cannot be resumed");
      }
      ReconfigEdge edge;
      edge.id = next_id++;
      edge.from = site.caller;
      edge.to = site.callee;
      edge.site = site;
      rg.edges.push_back(std::move(edge));
    }
    for (const auto& p : rg.points) {
      if (p.function != fn->name) continue;
      ReconfigEdge edge;
      edge.id = next_id++;
      edge.from = p.function;
      edge.to = "reconfig";
      edge.is_reconfig_point = true;
      edge.point = p;
      rg.edges.push_back(std::move(edge));
    }
  }
  return rg;
}

std::string to_dot(const CallGraph& graph) {
  std::ostringstream os;
  os << "digraph callgraph {\n";
  for (const auto& n : graph.nodes) os << "  \"" << n << "\";\n";
  for (const auto& s : graph.sites) {
    os << "  \"" << s.caller << "\" -> \"" << s.callee << "\" [label=\""
       << s.loc.to_string() << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const ReconfigGraph& graph) {
  std::ostringstream os;
  os << "digraph reconfig {\n";
  for (const auto& n : graph.nodes) os << "  \"" << n << "\";\n";
  os << "  \"reconfig\" [shape=doublecircle];\n";
  for (const auto& e : graph.edges) {
    os << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\"(" << e.id
       << ", "
       << (e.is_reconfig_point ? e.point.loc.to_string()
                               : e.site.loc.to_string())
       << ")\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace surgeon::graph
