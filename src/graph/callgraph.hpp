// Static call graph and reconfiguration graph (Section 3, Figure 6).
//
// The static call graph has a node per function and a directed edge per
// call *site* (so two calls from main to a yield two edges), each labeled
// with the source statement of the call. At any moment of execution the
// activation record stack corresponds to a path in this graph starting at
// main, so the graph defines all possible activation record stacks.
//
// The reconfiguration graph restricts the call graph to nodes that can be
// on the stack when execution sits at a reconfiguration point -- functions
// reachable from main that can (transitively) reach a function containing a
// reconfiguration point -- and adds a synthetic `reconfig` node with one
// edge per reconfiguration point. Its edges are numbered consecutively,
// (i, Si); edge numbers become the mh_location values captured and
// restored at run time.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minic/ast.hpp"

namespace surgeon::graph {

/// One call site: an edge of the static call graph.
struct CallSite {
  std::string caller;
  std::string callee;
  /// The statement, directly inside `block`, that contains the call.
  minic::Stmt* stmt = nullptr;
  minic::BlockStmt* block = nullptr;
  /// The call expression itself.
  minic::CallExpr* call = nullptr;
  /// True when the call is the whole statement (possibly labeled) rather
  /// than nested inside a larger expression/condition. Only such calls can
  /// be instrumented for reconfiguration.
  bool is_statement_call = false;
  support::SourceLoc loc;
};

struct CallGraph {
  std::set<std::string> nodes;
  std::vector<CallSite> sites;
  std::map<std::string, std::set<std::string>> successors;

  /// All nodes reachable from `from` (inclusive).
  [[nodiscard]] std::set<std::string> reachable_from(
      const std::string& from) const;
  /// All nodes that can reach any node in `targets` (inclusive).
  [[nodiscard]] std::set<std::string> can_reach(
      const std::set<std::string>& targets) const;
};

/// Builds the static call graph of an analyzed program. Sites carry
/// pointers into the AST; the program must outlive the graph.
[[nodiscard]] CallGraph build_call_graph(minic::Program& program);

/// A located reconfiguration point: the `R:` label named by the module
/// specification, found in the program text.
struct ReconfigPoint {
  std::string label;
  std::string function;             // function containing the label
  minic::LabeledStmt* stmt = nullptr;
  minic::BlockStmt* block = nullptr;
  support::SourceLoc loc;
};

/// One edge of the reconfiguration graph: (id, Si).
struct ReconfigEdge {
  int id = 0;              // consecutive 1-based number; the mh_location value
  std::string from;        // function containing the site
  std::string to;          // callee function, or "reconfig"
  bool is_reconfig_point = false;
  /// For call edges: the call site. For reconfiguration-point edges the
  /// site fields of `point` are used instead.
  CallSite site;
  ReconfigPoint point;
};

struct ReconfigGraph {
  /// Functions that must be prepared for reconfiguration (restore block +
  /// capture blocks), always including main.
  std::set<std::string> nodes;
  std::vector<ReconfigEdge> edges;
  std::vector<ReconfigPoint> points;

  [[nodiscard]] std::vector<const ReconfigEdge*> edges_from(
      const std::string& fn) const;
};

/// Locates reconfiguration point labels in the program. Throws SemaError if
/// a label is missing or appears in more than one function.
[[nodiscard]] std::vector<ReconfigPoint> find_reconfig_points(
    minic::Program& program, const std::vector<std::string>& labels);

/// Builds the reconfiguration graph (Figure 6) for the given reconfiguration
/// point labels. Throws SemaError when a reconfiguration point is
/// unreachable from main, or when a call on the reconfiguration path is not
/// a statement-level call (the transformation cannot resume mid-expression;
/// the paper's abstract state exists only between high-level statements).
[[nodiscard]] ReconfigGraph build_reconfig_graph(
    minic::Program& program, const std::vector<std::string>& labels);

/// Graphviz rendering of either graph, for documentation and debugging.
[[nodiscard]] std::string to_dot(const CallGraph& graph);
[[nodiscard]] std::string to_dot(const ReconfigGraph& graph);

}  // namespace surgeon::graph
