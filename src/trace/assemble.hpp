// Trace assembler: merge per-machine journals back into the global
// event DAG and export it.
//
// Because the simulator is deterministic and single-threaded, global
// event ids are a faithful total order of execution; assembly is a
// merge-by-id of whatever journals survived their rings.  Exporters:
//
//   to_chrome_trace — Chrome trace_event JSON (load in chrome://tracing
//                     or Perfetto).  Machines map to processes, modules
//                     to threads, cause edges to flow events.
//   to_timeline     — human-readable causal timeline, one event per
//                     line, used by the monitor example.
//   events_to_json  — plain JSON array of events (mh_trace wire form).
#pragma once

#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace surgeon::trace {

struct Dag {
  std::vector<Event> events;  // ascending id

  const Event* find(EventId id) const;
  // True iff a is a causal ancestor of b via parent/cause edges.
  bool happens_before(EventId a, EventId b) const;
};

Dag assemble(const Recorder& recorder);
Dag assemble(std::vector<Event> events);

// trace_id filters the export to one trace grouping; 0 exports all.
std::string to_chrome_trace(const Dag& dag, std::uint64_t trace_id = 0);
std::string to_timeline(const Dag& dag, std::uint64_t trace_id = 0);
std::string events_to_json(const std::vector<Event>& events);
std::string events_to_text(const std::vector<Event>& events);

}  // namespace surgeon::trace
