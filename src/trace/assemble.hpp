// Trace assembler: merge per-machine journals back into the global
// event DAG and export it.
//
// Because the simulator is deterministic and single-threaded, global
// event ids are a faithful total order of execution; assembly is a
// merge-by-id of whatever journals survived their rings.  Exporters:
//
//   to_chrome_trace — Chrome trace_event JSON (load in chrome://tracing
//                     or Perfetto).  Machines map to processes, modules
//                     to threads, cause edges to flow events.
//   to_timeline     — human-readable causal timeline, one event per
//                     line, used by the monitor example.
//   events_to_json  — plain JSON array of events (mh_trace wire form).
#pragma once

#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace surgeon::trace {

struct Dag {
  std::vector<Event> events;  // ascending id

  const Event* find(EventId id) const;
  // True iff a is a causal ancestor of b via parent/cause edges.
  bool happens_before(EventId a, EventId b) const;
};

Dag assemble(const Recorder& recorder);
Dag assemble(std::vector<Event> events);

// --- request-scoped assembly (surgeon::slo) --------------------------------
//
// A request tagged at a workload entry leaves a chain of events sharing
// Event::request: send -> deliver -> receive per hop, closed by a receive
// at a terminal iface (detail suffixed " (terminal)").  Assembly folds the
// chain into per-hop wire/queue/handler intervals.  Ring eviction never
// fails the assembly: missing records surface as zeroed timestamps, a
// `partial` hop flag, and a completeness fraction < 1.

struct RequestHop {
  std::string machine;
  std::string module;
  std::string iface;
  net::SimTime sent_at = 0;       // upstream send put the copy on the wire
  net::SimTime delivered_at = 0;  // queued at the module
  net::SimTime received_at = 0;   // dequeued by the module
  net::SimTime wire_us = 0;       // delivered - sent
  net::SimTime queue_us = 0;      // received - delivered
  net::SimTime handler_us = 0;    // module's next tagged send - received
  bool partial = false;           // a surrounding record was evicted
};

struct RequestTrace {
  std::uint64_t request = 0;
  net::SimTime started_at = 0;    // entry send (0 if evicted)
  net::SimTime completed_at = 0;  // terminal receive (0 if not seen)
  net::SimTime latency_us = 0;    // end-to-end, when both ends survived
  bool completed = false;         // a terminal receive was observed
  bool complete = false;          // completeness == 1 and both ends present
  // found / (found + dangling cause references): 1.0 when every record of
  // the chain survived its ring, smaller the more eviction ate.
  double completeness = 1.0;
  std::vector<RequestHop> hops;
};

// All tagged requests present in the DAG, ascending request id.
std::vector<RequestTrace> assemble_requests(const Dag& dag);
// One request (empty trace with completeness 0 if no record survived).
RequestTrace assemble_request(const Dag& dag, std::uint64_t request);
std::string requests_to_json(const std::vector<RequestTrace>& requests);

// trace_id filters the export to one trace grouping; 0 exports all.
std::string to_chrome_trace(const Dag& dag, std::uint64_t trace_id = 0);
std::string to_timeline(const Dag& dag, std::uint64_t trace_id = 0);
std::string events_to_json(const std::vector<Event>& events);
std::string events_to_text(const std::vector<Event>& events);

}  // namespace surgeon::trace
