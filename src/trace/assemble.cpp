#include "trace/assemble.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace surgeon::trace {
namespace {

// JSON string escaping including control characters (RFC 8259): the
// detail field can carry anything a module put on the wire.
std::string json_escape(const std::string& s) {
  std::ostringstream os;
  os << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
  return os.str();
}

void append_event_json(std::ostringstream& os, const Event& ev) {
  os << "{\"id\":" << ev.id << ",\"parent\":" << ev.parent
     << ",\"cause\":" << ev.cause << ",\"trace\":" << ev.trace_id
     << ",\"request\":" << ev.request << ",\"lamport\":" << ev.lamport
     << ",\"at\":" << ev.at
     << ",\"kind\":" << json_escape(kind_name(ev.kind))
     << ",\"machine\":" << json_escape(ev.machine)
     << ",\"module\":" << json_escape(ev.module)
     << ",\"detail\":" << json_escape(ev.detail) << "}";
}

void append_timeline_line(std::ostringstream& os, const Event& ev) {
  os << std::setw(10) << ev.at << "us  L" << std::left << std::setw(5)
     << ev.lamport << std::setw(9) << ev.machine << std::setw(13)
     << ev.module << std::setw(14) << kind_name(ev.kind) << std::right
     << "#" << ev.id;
  if (ev.cause != 0) os << " <-#" << ev.cause;
  if (!ev.detail.empty()) os << "  " << ev.detail;
  os << "\n";
}

}  // namespace

const Event* Dag::find(EventId id) const {
  auto it = std::lower_bound(
      events.begin(), events.end(), id,
      [](const Event& ev, EventId want) { return ev.id < want; });
  if (it == events.end() || it->id != id) return nullptr;
  return &*it;
}

bool Dag::happens_before(EventId a, EventId b) const {
  if (a == 0 || b == 0 || a == b) return false;
  std::vector<EventId> stack{b};
  std::unordered_set<EventId> seen;
  while (!stack.empty()) {
    EventId cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    const Event* ev = find(cur);
    if (ev == nullptr) continue;
    for (EventId up : {ev->parent, ev->cause}) {
      if (up == 0 || up < a) continue;  // ids ascend; can't reach a below it
      if (up == a) return true;
      stack.push_back(up);
    }
  }
  return false;
}

Dag assemble(const Recorder& recorder) {
  std::vector<Event> all;
  for (const auto& machine : recorder.machines()) {
    const auto& journal = recorder.journal(machine);
    all.insert(all.end(), journal.begin(), journal.end());
  }
  return assemble(std::move(all));
}

Dag assemble(std::vector<Event> events) {
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.id < b.id; });
  Dag dag;
  dag.events = std::move(events);
  return dag;
}

std::string to_chrome_trace(const Dag& dag, std::uint64_t trace_id) {
  std::unordered_map<std::string, int> pids;
  std::unordered_map<std::string, int> tids;
  std::ostringstream meta;
  std::ostringstream body;
  bool first = true;
  for (const Event& ev : dag.events) {
    if (trace_id != 0 && ev.trace_id != trace_id) continue;
    auto [pit, pnew] = pids.emplace(ev.machine, pids.size() + 1);
    if (pnew) {
      meta << (pids.size() + tids.size() > 1 ? ",\n" : "")
           << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pit->second
           << ",\"args\":{\"name\":" << json_escape(ev.machine) << "}}";
    }
    auto [tit, tnew] = tids.emplace(ev.module, tids.size() + 1);
    if (tnew) {
      meta << (pids.size() + tids.size() > 1 ? ",\n" : "")
           << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pit->second
           << ",\"tid\":" << tit->second
           << ",\"args\":{\"name\":" << json_escape(ev.module) << "}}";
    }
    body << (first ? "" : ",\n") << "{\"name\":\""
         << kind_name(ev.kind) << "\",\"cat\":\"bus\",\"ph\":\"i\",\"s\":\"t\""
         << ",\"pid\":" << pit->second << ",\"tid\":" << tit->second
         << ",\"ts\":" << ev.at << ",\"args\":{\"id\":" << ev.id
         << ",\"lamport\":" << ev.lamport << ",\"trace\":" << ev.trace_id
         << ",\"detail\":" << json_escape(ev.detail) << "}}";
    first = false;
    if (ev.cause != 0) {
      const Event* cause = dag.find(ev.cause);
      if (cause != nullptr) {
        int cpid = pids.emplace(cause->machine, pids.size() + 1).first->second;
        int ctid = tids.emplace(cause->module, tids.size() + 1).first->second;
        body << ",\n{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
             << ev.id << ",\"pid\":" << cpid << ",\"tid\":" << ctid
             << ",\"ts\":" << cause->at << "},\n"
             << "{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\""
             << ",\"id\":" << ev.id << ",\"pid\":" << pit->second
             << ",\"tid\":" << tit->second << ",\"ts\":" << ev.at << "}";
      }
    }
  }
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" << meta.str();
  if (!meta.str().empty() && !body.str().empty()) os << ",\n";
  os << body.str() << "\n]}\n";
  return os.str();
}

std::string to_timeline(const Dag& dag, std::uint64_t trace_id) {
  std::ostringstream os;
  for (const Event& ev : dag.events) {
    if (trace_id != 0 && ev.trace_id != trace_id) continue;
    append_timeline_line(os, ev);
  }
  return os.str();
}

std::string events_to_json(const std::vector<Event>& events) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) os << ",\n ";
    append_event_json(os, events[i]);
  }
  os << "]\n";
  return os.str();
}

std::string events_to_text(const std::vector<Event>& events) {
  std::ostringstream os;
  for (const Event& ev : events) append_timeline_line(os, ev);
  return os.str();
}

// --- request-scoped assembly --------------------------------------------------

namespace {

constexpr const char* kTerminalSuffix = " (terminal)";

bool is_terminal_detail(const std::string& detail) {
  const std::size_t n = std::char_traits<char>::length(kTerminalSuffix);
  return detail.size() >= n &&
         detail.compare(detail.size() - n, n, kTerminalSuffix) == 0;
}

std::string iface_of_detail(const std::string& detail) {
  const std::size_t n = std::char_traits<char>::length(kTerminalSuffix);
  if (is_terminal_detail(detail)) return detail.substr(0, detail.size() - n);
  return detail;
}

RequestTrace assemble_from(std::uint64_t request,
                           const std::vector<const Event*>& events) {
  RequestTrace rt;
  rt.request = request;
  if (events.empty()) {
    rt.completeness = 0.0;
    return rt;
  }
  std::unordered_set<EventId> ids;
  ids.reserve(events.size());
  for (const Event* ev : events) ids.insert(ev->id);
  std::size_t dangling = 0;
  // Latest hop per module still waiting for its receive / next send.
  std::unordered_map<std::string, std::size_t> hop_of_module;
  for (const Event* ev : events) {
    if (ev->cause != 0 && ids.find(ev->cause) == ids.end()) ++dangling;
    switch (ev->kind) {
      case EventKind::kSend: {
        if (ev->cause == 0) {
          // Entry send: the synthetic request context has no event id.
          if (rt.started_at == 0) rt.started_at = ev->at;
          break;
        }
        auto it = hop_of_module.find(ev->module);
        if (it != hop_of_module.end()) {
          RequestHop& hop = rt.hops[it->second];
          if (hop.received_at != 0 && hop.handler_us == 0) {
            hop.handler_us = ev->at - hop.received_at;
          }
        }
        break;
      }
      case EventKind::kDeliver: {
        RequestHop hop;
        hop.machine = ev->machine;
        hop.module = ev->module;
        hop.iface = ev->detail;
        hop.delivered_at = ev->at;
        const Event* send = nullptr;
        if (ev->cause != 0) {
          auto sit = std::find_if(
              events.begin(), events.end(),
              [&](const Event* e) { return e->id == ev->cause; });
          if (sit != events.end()) send = *sit;
        }
        if (send != nullptr) {
          hop.sent_at = send->at;
          hop.wire_us = hop.delivered_at - hop.sent_at;
        } else {
          hop.partial = true;  // the upstream send was evicted
        }
        hop_of_module[ev->module] = rt.hops.size();
        rt.hops.push_back(std::move(hop));
        break;
      }
      case EventKind::kReceive: {
        auto it = hop_of_module.find(ev->module);
        if (it == hop_of_module.end() ||
            rt.hops[it->second].received_at != 0) {
          // The deliver record was evicted: open a partial hop so the
          // receive still contributes its timestamp.
          RequestHop hop;
          hop.machine = ev->machine;
          hop.module = ev->module;
          hop.iface = iface_of_detail(ev->detail);
          hop.partial = true;
          hop_of_module[ev->module] = rt.hops.size();
          rt.hops.push_back(std::move(hop));
          it = hop_of_module.find(ev->module);
        }
        RequestHop& hop = rt.hops[it->second];
        hop.received_at = ev->at;
        if (hop.delivered_at != 0) {
          hop.queue_us = hop.received_at - hop.delivered_at;
        }
        if (is_terminal_detail(ev->detail)) {
          rt.completed = true;
          rt.completed_at = ev->at;
        }
        break;
      }
      default:
        break;  // drops/retransmits etc. keep their dangling accounting
    }
  }
  for (RequestHop& hop : rt.hops) {
    if (hop.sent_at == 0 || hop.received_at == 0) hop.partial = true;
  }
  const double found = static_cast<double>(events.size());
  rt.completeness = found / (found + static_cast<double>(dangling));
  rt.complete = dangling == 0 && rt.started_at != 0 && rt.completed;
  if (rt.started_at != 0 && rt.completed) {
    rt.latency_us = rt.completed_at - rt.started_at;
  }
  return rt;
}

}  // namespace

std::vector<RequestTrace> assemble_requests(const Dag& dag) {
  std::map<std::uint64_t, std::vector<const Event*>> by_request;
  for (const Event& ev : dag.events) {
    if (ev.request != 0) by_request[ev.request].push_back(&ev);
  }
  std::vector<RequestTrace> out;
  out.reserve(by_request.size());
  for (const auto& [request, events] : by_request) {
    out.push_back(assemble_from(request, events));
  }
  return out;
}

RequestTrace assemble_request(const Dag& dag, std::uint64_t request) {
  std::vector<const Event*> events;
  for (const Event& ev : dag.events) {
    if (ev.request == request) events.push_back(&ev);
  }
  return assemble_from(request, events);
}

std::string requests_to_json(const std::vector<RequestTrace>& requests) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const RequestTrace& rt = requests[i];
    if (i != 0) os << ",\n ";
    os << "{\"request\":" << rt.request << ",\"started_at\":" << rt.started_at
       << ",\"completed_at\":" << rt.completed_at
       << ",\"latency_us\":" << rt.latency_us
       << ",\"completed\":" << (rt.completed ? "true" : "false")
       << ",\"complete\":" << (rt.complete ? "true" : "false")
       << ",\"completeness\":" << rt.completeness << ",\"hops\":[";
    for (std::size_t h = 0; h < rt.hops.size(); ++h) {
      const RequestHop& hop = rt.hops[h];
      if (h != 0) os << ",";
      os << "{\"machine\":" << json_escape(hop.machine)
         << ",\"module\":" << json_escape(hop.module)
         << ",\"iface\":" << json_escape(hop.iface)
         << ",\"wire_us\":" << hop.wire_us << ",\"queue_us\":" << hop.queue_us
         << ",\"handler_us\":" << hop.handler_us
         << ",\"partial\":" << (hop.partial ? "true" : "false") << "}";
    }
    os << "]}";
  }
  os << "]\n";
  return os.str();
}

}  // namespace surgeon::trace
