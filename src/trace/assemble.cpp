#include "trace/assemble.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace surgeon::trace {
namespace {

// JSON string escaping including control characters (RFC 8259): the
// detail field can carry anything a module put on the wire.
std::string json_escape(const std::string& s) {
  std::ostringstream os;
  os << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
  return os.str();
}

void append_event_json(std::ostringstream& os, const Event& ev) {
  os << "{\"id\":" << ev.id << ",\"parent\":" << ev.parent
     << ",\"cause\":" << ev.cause << ",\"trace\":" << ev.trace_id
     << ",\"lamport\":" << ev.lamport << ",\"at\":" << ev.at
     << ",\"kind\":" << json_escape(kind_name(ev.kind))
     << ",\"machine\":" << json_escape(ev.machine)
     << ",\"module\":" << json_escape(ev.module)
     << ",\"detail\":" << json_escape(ev.detail) << "}";
}

void append_timeline_line(std::ostringstream& os, const Event& ev) {
  os << std::setw(10) << ev.at << "us  L" << std::left << std::setw(5)
     << ev.lamport << std::setw(9) << ev.machine << std::setw(13)
     << ev.module << std::setw(14) << kind_name(ev.kind) << std::right
     << "#" << ev.id;
  if (ev.cause != 0) os << " <-#" << ev.cause;
  if (!ev.detail.empty()) os << "  " << ev.detail;
  os << "\n";
}

}  // namespace

const Event* Dag::find(EventId id) const {
  auto it = std::lower_bound(
      events.begin(), events.end(), id,
      [](const Event& ev, EventId want) { return ev.id < want; });
  if (it == events.end() || it->id != id) return nullptr;
  return &*it;
}

bool Dag::happens_before(EventId a, EventId b) const {
  if (a == 0 || b == 0 || a == b) return false;
  std::vector<EventId> stack{b};
  std::unordered_set<EventId> seen;
  while (!stack.empty()) {
    EventId cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    const Event* ev = find(cur);
    if (ev == nullptr) continue;
    for (EventId up : {ev->parent, ev->cause}) {
      if (up == 0 || up < a) continue;  // ids ascend; can't reach a below it
      if (up == a) return true;
      stack.push_back(up);
    }
  }
  return false;
}

Dag assemble(const Recorder& recorder) {
  std::vector<Event> all;
  for (const auto& machine : recorder.machines()) {
    const auto& journal = recorder.journal(machine);
    all.insert(all.end(), journal.begin(), journal.end());
  }
  return assemble(std::move(all));
}

Dag assemble(std::vector<Event> events) {
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.id < b.id; });
  Dag dag;
  dag.events = std::move(events);
  return dag;
}

std::string to_chrome_trace(const Dag& dag, std::uint64_t trace_id) {
  std::unordered_map<std::string, int> pids;
  std::unordered_map<std::string, int> tids;
  std::ostringstream meta;
  std::ostringstream body;
  bool first = true;
  for (const Event& ev : dag.events) {
    if (trace_id != 0 && ev.trace_id != trace_id) continue;
    auto [pit, pnew] = pids.emplace(ev.machine, pids.size() + 1);
    if (pnew) {
      meta << (pids.size() + tids.size() > 1 ? ",\n" : "")
           << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pit->second
           << ",\"args\":{\"name\":" << json_escape(ev.machine) << "}}";
    }
    auto [tit, tnew] = tids.emplace(ev.module, tids.size() + 1);
    if (tnew) {
      meta << (pids.size() + tids.size() > 1 ? ",\n" : "")
           << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pit->second
           << ",\"tid\":" << tit->second
           << ",\"args\":{\"name\":" << json_escape(ev.module) << "}}";
    }
    body << (first ? "" : ",\n") << "{\"name\":\""
         << kind_name(ev.kind) << "\",\"cat\":\"bus\",\"ph\":\"i\",\"s\":\"t\""
         << ",\"pid\":" << pit->second << ",\"tid\":" << tit->second
         << ",\"ts\":" << ev.at << ",\"args\":{\"id\":" << ev.id
         << ",\"lamport\":" << ev.lamport << ",\"trace\":" << ev.trace_id
         << ",\"detail\":" << json_escape(ev.detail) << "}}";
    first = false;
    if (ev.cause != 0) {
      const Event* cause = dag.find(ev.cause);
      if (cause != nullptr) {
        int cpid = pids.emplace(cause->machine, pids.size() + 1).first->second;
        int ctid = tids.emplace(cause->module, tids.size() + 1).first->second;
        body << ",\n{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
             << ev.id << ",\"pid\":" << cpid << ",\"tid\":" << ctid
             << ",\"ts\":" << cause->at << "},\n"
             << "{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\""
             << ",\"id\":" << ev.id << ",\"pid\":" << pit->second
             << ",\"tid\":" << tit->second << ",\"ts\":" << ev.at << "}";
      }
    }
  }
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" << meta.str();
  if (!meta.str().empty() && !body.str().empty()) os << ",\n";
  os << body.str() << "\n]}\n";
  return os.str();
}

std::string to_timeline(const Dag& dag, std::uint64_t trace_id) {
  std::ostringstream os;
  for (const Event& ev : dag.events) {
    if (trace_id != 0 && ev.trace_id != trace_id) continue;
    append_timeline_line(os, ev);
  }
  return os.str();
}

std::string events_to_json(const std::vector<Event>& events) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) os << ",\n ";
    append_event_json(os, events[i]);
  }
  os << "]\n";
  return os.str();
}

std::string events_to_text(const std::vector<Event>& events) {
  std::ostringstream os;
  for (const Event& ev : events) append_timeline_line(os, ev);
  return os.str();
}

}  // namespace surgeon::trace
