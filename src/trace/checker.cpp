#include "trace/checker.hpp"

#include <algorithm>
#include <sstream>

namespace surgeon::trace {
namespace {

// Pulls "a,b,c" out of a rebind detail's "modules=a,b,c" suffix.
std::vector<std::string> parse_modules(const std::string& detail) {
  std::vector<std::string> out;
  auto pos = detail.find("modules=");
  if (pos == std::string::npos) return out;
  std::string list = detail.substr(pos + 8);
  if (auto space = list.find(' '); space != std::string::npos) {
    list.resize(space);
  }
  std::istringstream is(list);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

constexpr std::size_t kMaxViolations = 100;

}  // namespace

void HbChecker::observe(const Event& ev) {
  ++observed_;
  shadow_[ev.id] = Shadow{ev.parent, ev.cause, ev.lamport, ev.kind};

  // I6: the journal must read as a faithful per-machine execution order.
  MachineState& machine = per_machine_[ev.machine];
  if (machine.lamport != 0 && ev.lamport <= machine.lamport) {
    fail(ev, "I6: machine journal reordered (lamport not increasing)");
  }
  if (ev.at < machine.at) {
    fail(ev, "I6: machine journal reordered (virtual time went backwards)");
  }
  machine.lamport = std::max(machine.lamport, ev.lamport);
  machine.at = std::max(machine.at, ev.at);

  // I5: merged clock strictly exceeds both causal parents.
  for (EventId up : {ev.parent, ev.cause}) {
    if (up == 0) continue;
    auto it = shadow_.find(up);
    if (it != shadow_.end() && ev.lamport <= it->second.lamport) {
      fail(ev, "I5: Lamport merge violated (clock not past parent #" +
                   std::to_string(up) + ")");
    }
  }

  switch (ev.kind) {
    case EventKind::kModuleAdded:
      if (ev.detail.find("status=clone") != std::string::npos) {
        clones_.insert(ev.module);
      }
      break;
    case EventKind::kDivulge:
      divulged_[ev.module] = ev.id;
      break;
    case EventKind::kRebind:
      for (const std::string& module : parse_modules(ev.detail)) {
        const bool first_rebind = rebound_.emplace(module, ev.id).second;
        if (first_rebind && clones_.count(module) != 0) {
          // I1: binding a clone into the configuration requires the
          // retiring side to have divulged first; the bus stamps the
          // rebind's cause with the divulge that proved quiescence.
          auto cause = shadow_.find(ev.cause);
          if (cause == shadow_.end() ||
              cause->second.kind != EventKind::kDivulge) {
            fail(ev, "I1: clone '" + module +
                         "' rebound before any divulge (no quiescence)");
          }
        }
        if (divulged_.count(module) != 0) retired_.emplace(module, ev.id);
      }
      break;
    case EventKind::kDeliver:
      if (retired_.count(ev.module) != 0) {
        fail(ev, "I2: message delivered to retired module '" + ev.module +
                     "' after quiescence+rebind");
      }
      if (clones_.count(ev.module) != 0 && rebound_.count(ev.module) == 0) {
        fail(ev, "I4: message delivered to clone '" + ev.module +
                     "' before its rebind");
      }
      break;
    case EventKind::kStateDeliver:
    case EventKind::kRestore:
      if (!has_divulge_ancestor(ev.id)) {
        fail(ev, "I3: object state applied at '" + ev.module +
                     "' without a divulge happens-before it");
      }
      break;
    default:
      break;
  }
}

bool HbChecker::has_divulge_ancestor(EventId id) const {
  std::vector<EventId> stack{id};
  std::vector<EventId> seen;
  std::size_t steps = 0;
  while (!stack.empty() && ++steps < 100000) {
    EventId cur = stack.back();
    stack.pop_back();
    if (std::find(seen.begin(), seen.end(), cur) != seen.end()) continue;
    seen.push_back(cur);
    auto it = shadow_.find(cur);
    if (it == shadow_.end()) continue;
    if (it->second.kind == EventKind::kDivulge) return true;
    if (it->second.parent != 0) stack.push_back(it->second.parent);
    if (it->second.cause != 0) stack.push_back(it->second.cause);
  }
  return false;
}

void HbChecker::fail(const Event& ev, const std::string& what) {
  if (violations_.size() >= kMaxViolations) return;
  std::ostringstream os;
  os << what << " [event #" << ev.id << " " << kind_name(ev.kind) << " "
     << ev.machine << "/" << ev.module << " t=" << ev.at
     << " L=" << ev.lamport;
  if (!ev.detail.empty()) os << " " << ev.detail;
  os << "]";
  violations_.push_back(os.str());
}

void HbChecker::reset() {
  shadow_.clear();
  per_machine_.clear();
  clones_.clear();
  divulged_.clear();
  rebound_.clear();
  retired_.clear();
  violations_.clear();
  observed_ = 0;
}

}  // namespace surgeon::trace
