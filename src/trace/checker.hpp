// Online happens-before checker for the Figure-5 replacement protocol.
//
// Subscribes to the Recorder's observer hook and validates, as events
// stream past, the causal invariants the protocol promises:
//
//   I1  a rebind that binds a clone is preceded by a divulge (quiescence
//       was reached before the configuration changed);
//   I2  no message is delivered to a retiring module after its divulged
//       state has been collected and it has been rebound away — the
//       paper's "no messages to the quiescent module";
//   I3  every state delivery / restore has a divulge as causal ancestor
//       (objstate cannot apply before it was divulged);
//   I4  rebind happens before the first message delivery to the clone
//       (state buffers are exempt: the script moves objstate to the
//       clone in step 4, before the step-5 rebind);
//   I5  Lamport sanity: an event's clock strictly exceeds both parents'
//       (the merge rule held);
//   I6  per-machine journal monotonicity: Lamport strictly increasing
//       and virtual time non-decreasing in recording order.
//
// Violations accumulate as strings; ok() is the scenario-level verdict.
// The checker is deliberately tolerant of ring eviction: it keeps its
// own compact shadow of every event it observed.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"

namespace surgeon::trace {

class HbChecker {
 public:
  void observe(const Event& ev);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t observed() const { return observed_; }
  void reset();

 private:
  struct Shadow {
    EventId parent = 0;
    EventId cause = 0;
    std::uint64_t lamport = 0;
    EventKind kind = EventKind::kSend;
  };
  struct MachineState {
    std::uint64_t lamport = 0;
    net::SimTime at = 0;
  };

  bool has_divulge_ancestor(EventId id) const;
  void fail(const Event& ev, const std::string& what);

  std::unordered_map<EventId, Shadow> shadow_;
  std::map<std::string, MachineState> per_machine_;
  std::set<std::string> clones_;        // modules added with status=clone
  std::map<std::string, EventId> divulged_;   // module -> divulge event
  std::map<std::string, EventId> rebound_;    // module -> first rebind
  std::map<std::string, EventId> retired_;    // divulged + later rebound
  std::vector<std::string> violations_;
  std::uint64_t observed_ = 0;
};

}  // namespace surgeon::trace
