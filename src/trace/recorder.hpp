// Per-machine flight recorder.
//
// One Recorder serves the whole platform (the Runtime owns it, the Bus
// holds a pointer, mirroring obs::MetricsRegistry).  Each machine gets a
// bounded ring journal; when a ring fills, the oldest event is evicted
// and a per-machine dropped counter ticks — the recorder never grows
// without bound and never blocks the data path.
//
// Lamport clocks are per machine and merged over both causal edges: an
// event gets lamport = max(machine_clock, parent, cause) + 1.  The parent
// edge (program order of a module) participates because a module's events
// can land in different machine journals — a control-plane signal is
// recorded where the script runs, not where the module lives.
// An optional observer sees every event at record time (before any ring
// eviction), which is what the online happens-before checker hangs off.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"

namespace surgeon::trace {

class Recorder {
 public:
  struct Journal {
    std::deque<Event> events;
    std::uint64_t lamport = 0;
    std::uint64_t dropped = 0;
  };
  struct LastEvent {
    EventId id = 0;
    std::uint64_t lamport = 0;
  };
  // A pre-resolved (machine journal, module program-order) slot.  The bus
  // caches one per module record so the per-hop path skips both hash
  // lookups; `generation` detects that clear() invalidated the pointers.
  struct Site {
    Journal* journal = nullptr;
    LastEvent* last = nullptr;
    std::uint64_t generation = ~std::uint64_t{0};
  };

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Events-per-machine bound; evicting beyond it ticks dropped().
  void set_capacity(std::size_t per_machine);
  std::size_t capacity() const { return capacity_; }

  void set_clock(std::function<net::SimTime()> clock) {
    clock_ = std::move(clock);
  }
  /// Fast path for the common case: read the virtual clock straight off
  /// the simulator instead of through a std::function per event.
  void set_clock(const net::Simulator* sim) { sim_clock_ = sim; }

  // Observers see every event at record time, including ones a full ring
  // will evict later — which is why streaming consumers (the HB checker,
  // the SLO request tracker) are eviction-immune.  Multiple observers can
  // coexist; each add returns an id for removal.
  using ObserverId = std::uint64_t;
  ObserverId add_observer(std::function<void(const Event&)> observer);
  void remove_observer(ObserverId id);
  // Legacy single-slot form: replaces the previous set_observer callback
  // (and only it), leaving add_observer subscribers untouched.
  void set_observer(std::function<void(const Event&)> observer);

  // Mints a fresh request id for a tagged workload-entry message.  Pass it
  // back inside a synthetic cause context (event == 0) so record_impl
  // inherits the request without fabricating a causal edge.
  std::uint64_t new_request() { return ++next_request_; }

  // Opens a new trace grouping (e.g. one module replacement).  Events
  // recorded without a causal context inherit the current trace id;
  // events with a context inherit the context's.
  std::uint64_t begin_trace(const std::string& name);
  void end_trace() { current_trace_ = 0; }
  std::uint64_t current_trace() const { return current_trace_; }
  const std::string& trace_name(std::uint64_t trace_id) const;

  // Records one event and returns its wire header.  No-op (returns an
  // invalid context) while disabled.
  TraceContext record(EventKind kind, const std::string& machine,
                      const std::string& module, std::string detail,
                      const TraceContext& cause = {});
  // Same, through a caller-held Site (re-resolved lazily when stale).
  TraceContext record_at(Site& site, EventKind kind,
                         const std::string& machine,
                         const std::string& module, std::string detail,
                         const TraceContext& cause = {});
  // Eagerly resolves a Site so a caller registering a module pays the two
  // hash lookups once, up front, instead of on its first recorded event.
  // The Site stays self-healing: clear() bumps the generation and the next
  // record_at re-resolves.
  [[nodiscard]] Site resolve_site(const std::string& machine,
                                  const std::string& module);

  // Journal access.
  std::vector<std::string> machines() const;
  const std::deque<Event>& journal(const std::string& machine) const;
  std::vector<Event> drain(const std::string& machine);
  std::uint64_t dropped(const std::string& machine) const;
  std::uint64_t total_events() const { return next_id_ - 1; }
  void clear();

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 65536;
  const net::Simulator* sim_clock_ = nullptr;
  std::function<net::SimTime()> clock_;
  std::vector<std::pair<ObserverId, std::function<void(const Event&)>>>
      observers_;
  ObserverId legacy_observer_ = 0;  // id of the set_observer slot, 0 if none
  ObserverId next_observer_ = 0;

  Journal& journal_of(const std::string& machine);
  TraceContext record_impl(Journal& journal, LastEvent& last, EventKind kind,
                           const std::string& machine,
                           const std::string& module, std::string detail,
                           const TraceContext& cause);

  // Hash maps on the hot path; node pointers are stable across inserts, so
  // the one-entry cache below survives new machines appearing.
  std::unordered_map<std::string, Journal> journals_;
  std::unordered_map<std::string, LastEvent> last_of_module_;
  // Consecutive events overwhelmingly hit the same machine (bursts are
  // per-link); one comparison beats a hash lookup.
  const std::string* cached_machine_ = nullptr;
  Journal* cached_journal_ = nullptr;
  std::map<std::uint64_t, std::string> trace_names_;
  std::uint64_t generation_ = 0;  // bumped by clear(); staleness check for Site
  EventId next_id_ = 1;
  std::uint64_t next_trace_ = 0;
  std::uint64_t current_trace_ = 0;
  std::uint64_t next_request_ = 0;
};

}  // namespace surgeon::trace
