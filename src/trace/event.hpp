// Causal event model for the flight recorder.
//
// Every interesting bus action (send, deliver, drop, retransmit, queue
// capture, divulge, state delivery, restore, rebind, lifecycle) becomes
// one Event in the per-machine journal.  Events carry two causal edges:
//
//   parent — program-order predecessor: the previous event recorded for
//            the same module (0 for the module's first event).
//   cause  — cross-module edge: the event that triggered this one (the
//            send behind a deliver, the divulge behind a state apply,
//            the rebind behind a queue capture).  0 when local.
//
// Together the edges span the happens-before DAG of a replacement.  A
// TraceContext is the compact wire header: enough of an Event to ride
// inside a Message across machines and reconstruct the edge on arrival.
#pragma once

#include <cstdint>
#include <string>

#include "net/sim.hpp"

namespace surgeon::trace {

using EventId = std::uint64_t;

enum class EventKind : std::uint8_t {
  kSend,          // message handed to the wire (first transmission)
  kDeliver,       // message placed on a module's input queue
  kReceive,       // module dequeued a request-tagged message (queue exit)
  kDrop,          // message lost (chaos, unbound iface, retired endpoint)
  kRetransmit,    // reliable layer re-sent an unacked entry
  kDupDiscard,    // reliable layer discarded an already-seen seq
  kSignal,        // reconfigure signal requested / delivered
  kCapture,       // queued messages moved old instance -> clone
  kDivulge,       // module posted its divulged object state
  kStateDeliver,  // divulged state arrived at the clone's buffer
  kRestore,       // clone consumed the delivered state
  kRebind,        // a rebind batch committed
  kModuleAdded,
  kModuleRemoved,
  kCrash,
  kHeartbeat,   // module runtime heartbeat observed by the detector
  kSuspect,     // failure detector declared a module suspect
  kCheckpoint,  // background checkpoint persisted a module's state
  kRecover,     // recovery restored a module / finished a WAL transaction
};

const char* kind_name(EventKind kind);

struct Event {
  EventId id = 0;          // global, ascending in recording order
  EventId parent = 0;      // program-order predecessor (same module)
  EventId cause = 0;       // cross-module trigger
  std::uint64_t trace_id = 0;  // replacement/operation grouping
  std::uint64_t request = 0;   // request-scoped grouping (0 = untagged)
  std::uint64_t lamport = 0;   // merged on deliver: max(local,cause)+1
  net::SimTime at = 0;         // virtual clock
  EventKind kind = EventKind::kSend;
  std::string machine;
  std::string module;
  std::string detail;
};

// Compact causal header carried by every bus message, control transfer
// and state buffer.  event==0 means "no context" (tracing off, or the
// message predates the recorder).
struct TraceContext {
  std::uint64_t trace_id = 0;
  EventId event = 0;
  std::uint64_t lamport = 0;
  // Request id assigned at a tagged workload-entry iface; inherited over
  // the cause edge by every downstream event, so a request's hops can be
  // reassembled without parsing details.  0 = not part of a tagged request.
  std::uint64_t request = 0;

  bool valid() const { return event != 0; }
};

}  // namespace surgeon::trace
