#include "trace/recorder.hpp"

#include <algorithm>

namespace surgeon::trace {

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSend: return "send";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kReceive: return "receive";
    case EventKind::kDrop: return "drop";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kDupDiscard: return "dup_discard";
    case EventKind::kSignal: return "signal";
    case EventKind::kCapture: return "capture";
    case EventKind::kDivulge: return "divulge";
    case EventKind::kStateDeliver: return "state_deliver";
    case EventKind::kRestore: return "restore";
    case EventKind::kRebind: return "rebind";
    case EventKind::kModuleAdded: return "module_added";
    case EventKind::kModuleRemoved: return "module_removed";
    case EventKind::kCrash: return "crash";
    case EventKind::kHeartbeat: return "heartbeat";
    case EventKind::kSuspect: return "suspect";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kRecover: return "recover";
  }
  return "?";
}

void Recorder::set_capacity(std::size_t per_machine) {
  capacity_ = std::max<std::size_t>(1, per_machine);
  for (auto& [name, journal] : journals_) {
    while (journal.events.size() > capacity_) {
      journal.events.pop_front();
      ++journal.dropped;
    }
  }
}

Recorder::ObserverId Recorder::add_observer(
    std::function<void(const Event&)> observer) {
  const ObserverId id = ++next_observer_;
  observers_.emplace_back(id, std::move(observer));
  return id;
}

void Recorder::remove_observer(ObserverId id) {
  if (id == 0) return;
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->first == id) {
      observers_.erase(it);
      break;
    }
  }
  if (legacy_observer_ == id) legacy_observer_ = 0;
}

void Recorder::set_observer(std::function<void(const Event&)> observer) {
  remove_observer(legacy_observer_);
  legacy_observer_ = observer ? add_observer(std::move(observer)) : 0;
}

std::uint64_t Recorder::begin_trace(const std::string& name) {
  current_trace_ = ++next_trace_;
  trace_names_[current_trace_] = name;
  return current_trace_;
}

const std::string& Recorder::trace_name(std::uint64_t trace_id) const {
  static const std::string kEmpty;
  auto it = trace_names_.find(trace_id);
  return it == trace_names_.end() ? kEmpty : it->second;
}

Recorder::Journal& Recorder::journal_of(const std::string& machine) {
  if (cached_machine_ != nullptr && *cached_machine_ == machine) {
    return *cached_journal_;
  }
  auto [it, inserted] = journals_.try_emplace(machine);
  (void)inserted;
  cached_machine_ = &it->first;
  cached_journal_ = &it->second;
  return it->second;
}

TraceContext Recorder::record(EventKind kind, const std::string& machine,
                              const std::string& module, std::string detail,
                              const TraceContext& cause) {
  if (!enabled_) return {};
  return record_impl(journal_of(machine), last_of_module_[module], kind,
                     machine, module, std::move(detail), cause);
}

TraceContext Recorder::record_at(Site& site, EventKind kind,
                                 const std::string& machine,
                                 const std::string& module, std::string detail,
                                 const TraceContext& cause) {
  if (!enabled_) return {};
  if (site.generation != generation_) {
    // unordered_map node addresses are stable across inserts, so the
    // resolved pointers stay good until clear() drops the nodes.
    site.journal = &journal_of(machine);
    site.last = &last_of_module_[module];
    site.generation = generation_;
  }
  return record_impl(*site.journal, *site.last, kind, machine, module,
                     std::move(detail), cause);
}

Recorder::Site Recorder::resolve_site(const std::string& machine,
                                      const std::string& module) {
  return Site{&journal_of(machine), &last_of_module_[module], generation_};
}

TraceContext Recorder::record_impl(Journal& journal, LastEvent& last,
                                   EventKind kind, const std::string& machine,
                                   const std::string& module,
                                   std::string detail,
                                   const TraceContext& cause) {
  Event ev;
  ev.id = next_id_++;
  ev.parent = last.id;
  ev.cause = cause.event;
  // Merge over both causal edges: the parent (program order) may live in
  // another machine's journal, so the machine clock alone need not
  // dominate it.
  ev.lamport =
      std::max({journal.lamport, last.lamport, cause.lamport}) + 1;
  journal.lamport = ev.lamport;
  ev.trace_id = cause.valid() ? cause.trace_id : current_trace_;
  // The request rides the cause edge only: a synthetic entry context
  // (event == 0, request != 0) seeds it without creating a false edge.
  ev.request = cause.request;
  ev.at = sim_clock_ != nullptr ? sim_clock_->now() : (clock_ ? clock_() : 0);
  ev.kind = kind;
  ev.machine = machine;
  ev.module = module;
  ev.detail = std::move(detail);
  last = {ev.id, ev.lamport};
  TraceContext ctx{ev.trace_id, ev.id, ev.lamport, ev.request};
  for (const auto& [id, fn] : observers_) fn(ev);
  if (journal.events.size() >= capacity_) {
    journal.events.pop_front();
    ++journal.dropped;
  }
  journal.events.push_back(std::move(ev));
  return ctx;
}

std::vector<std::string> Recorder::machines() const {
  std::vector<std::string> names;
  names.reserve(journals_.size());
  for (const auto& [name, journal] : journals_) names.push_back(name);
  std::sort(names.begin(), names.end());  // hash-map order is arbitrary
  return names;
}

const std::deque<Event>& Recorder::journal(const std::string& machine) const {
  static const std::deque<Event> kEmpty;
  auto it = journals_.find(machine);
  return it == journals_.end() ? kEmpty : it->second.events;
}

std::vector<Event> Recorder::drain(const std::string& machine) {
  auto it = journals_.find(machine);
  if (it == journals_.end()) return {};
  std::vector<Event> out(it->second.events.begin(), it->second.events.end());
  it->second.events.clear();
  return out;
}

std::uint64_t Recorder::dropped(const std::string& machine) const {
  auto it = journals_.find(machine);
  return it == journals_.end() ? 0 : it->second.dropped;
}

void Recorder::clear() {
  ++generation_;  // any Site a caller still holds re-resolves on next use
  journals_.clear();
  cached_machine_ = nullptr;
  cached_journal_ = nullptr;
  last_of_module_.clear();
  trace_names_.clear();
  next_id_ = 1;
  next_trace_ = 0;
  current_trace_ = 0;
  next_request_ = 0;
}

}  // namespace surgeon::trace
