// Group rebuild: restore a replica group's redundancy after machine loss.
//
// The script composes the two production recipes this repo already trusts:
// replicate_module's divulge-once/deliver-twice state fan-out, and the
// supervisor's heir adoption (a fresh clone takes over a dead instance's
// bindings and queued traffic via the same atomic rebind the Figure 5
// script uses). One surviving member is the pull source: it divulges at
// its reconfiguration point; the state installs into BOTH a continuation
// of the survivor (which inherits the survivor's bindings) and a brand-new
// member on the target machine (which adopts the DEAD member's bindings
// and queues). The service keeps serving throughout -- only the survivor
// pauses, for the divulge, and the router's retry covers the gap.
//
// Journal boundaries match the Figure 5 replacement exactly (the verify
// plan `group_rebuild` pins the sequence), with the same write-ahead
// discipline: intent before action, divulged as the roll-forward
// watershed, abort only before it.
#pragma once

#include <functional>
#include <string>

#include "app/runtime.hpp"
#include "reconfig/scripts.hpp"

namespace surgeon::replicate {

struct RebuildGroupOptions {
  /// Machine that receives the new member.
  std::string target_machine;
  /// Scheduling budget for each wait inside the script.
  std::uint64_t max_rounds = 1'000'000;
  /// Divulge wait; the nudge callback fires once per chunk of this wait so
  /// a survivor blocked in mh_read keeps getting woken toward its
  /// reconfiguration point.
  net::SimTime divulge_timeout_us = 5'000'000;
  net::SimTime nudge_every_us = 2'000;
  /// Restore wait for each of the two clones.
  net::SimTime restore_timeout_us = 10'000'000;
  /// Drain window before the survivor's corpse is swept and removed.
  net::SimTime drain_us = 10'000;
  /// Wakes the survivor (e.g. KvRouter::nudge of its group). Optional.
  std::function<void()> nudge;
  /// Write-ahead journal; optional.
  reconfig::ScriptJournal* journal = nullptr;
  /// Fires at every journal boundary (systematic exploration's crash
  /// injection hook, same contract as ReplaceOptions::crash_hook).
  std::function<void(const char*)> crash_hook;
};

struct RebuildGroupReport {
  std::string survivor;               // the pull source (now retired)
  std::string survivor_continuation;  // inherits the survivor's role
  std::string dead_member;            // the corpse (now removed)
  std::string new_member;             // adopted the corpse's role
  net::SimTime requested_at = 0;
  net::SimTime divulged_at = 0;
  net::SimTime restored_at = 0;   // both clones restored
  std::size_t state_bytes = 0;
  std::size_t queued_messages_moved = 0;

  /// Redundancy-restoration time: request to both-members-restored.
  [[nodiscard]] net::SimTime restore_us() const {
    return restored_at - requested_at;
  }
};

/// Rebuilds one group member: pulls state from `survivor`, installs it in a
/// survivor continuation (in place) and a new member on `target_machine`
/// which adopts `dead_member`'s bindings and queues; removes both the
/// survivor (retired) and the dead member (corpse). Throws ScriptError --
/// after rolling back the half-born clones -- if the survivor never
/// divulges or a clone fails to restore; the caller (GroupManager) retries
/// from another survivor.
RebuildGroupReport rebuild_group(app::Runtime& rt, const std::string& survivor,
                                 const std::string& dead_member,
                                 const RebuildGroupOptions& options);

}  // namespace surgeon::replicate
