#include "replicate/rebuild.hpp"

#include <algorithm>

#include "serialize/state.hpp"

namespace surgeon::replicate {

using bus::BindEditBatch;
using reconfig::ScriptError;

namespace {

ScriptError step_error(const char* step, const char* role,
                       const std::string& instance, const std::string& what) {
  return ScriptError(std::string("rebuild_group[") + step + "] " + role +
                     " '" + instance + "': " + what);
}

std::size_t queued_total(bus::Bus& bus, const std::string& module) {
  std::size_t n = 0;
  for (const auto& iface : bus.interface_names(module)) {
    n += bus.queue_depth(module, iface);
  }
  return n;
}

/// Same settle condition as replace_module's restore wait: the clone has
/// decoded its state buffer and unwound every restore frame.
bool restore_done(app::Runtime& rt, const std::string& instance) {
  vm::Machine* m = rt.machine_of(instance);
  return m != nullptr && m->decode_count() > 0 &&
         m->restore_frames_remaining() == 0;
}

void await_restore_or_throw(app::Runtime& rt, const std::string& instance,
                            const RebuildGroupOptions& options) {
  const net::SimTime deadline = rt.now() + options.restore_timeout_us;
  (void)rt.run_until(
      [&] {
        if (rt.module_crashed(instance)) return true;
        vm::Machine* m = rt.machine_of(instance);
        if (m != nullptr && m->state() == vm::RunState::kFault) return true;
        return restore_done(rt, instance) || rt.now() >= deadline;
      },
      options.max_rounds);
  if (rt.module_crashed(instance)) {
    throw step_error(reconfig::kStepAdd, "clone", instance,
                     "crashed while restoring");
  }
  vm::Machine* m = rt.machine_of(instance);
  if (m != nullptr && m->state() == vm::RunState::kFault) {
    throw step_error(reconfig::kStepAdd, "clone", instance,
                     "faulted while installing state: " + m->fault_message());
  }
  if (!restore_done(rt, instance)) {
    throw step_error(reconfig::kStepAdd, "clone", instance,
                     "did not finish restoring within the budget");
  }
}

}  // namespace

RebuildGroupReport rebuild_group(app::Runtime& rt, const std::string& survivor,
                                 const std::string& dead_member,
                                 const RebuildGroupOptions& options) {
  bus::Bus& bus = rt.bus();
  if (!bus.has_module(survivor)) {
    throw ScriptError("rebuild_group: unknown survivor '" + survivor + "'");
  }
  if (!bus.has_module(dead_member)) {
    throw ScriptError("rebuild_group: unknown dead member '" + dead_member +
                      "'");
  }
  const app::ModuleImage* image = rt.image_of(survivor);
  if (image == nullptr) {
    throw ScriptError("rebuild_group: no image for '" + survivor + "'");
  }

  RebuildGroupReport report;
  report.survivor = survivor;
  report.dead_member = dead_member;
  // Both clone names are assigned before step 1 so the journal's begin
  // record names the heir of interest (the new member) up front.
  report.survivor_continuation = rt.fresh_instance_name(survivor);
  report.new_member = rt.fresh_instance_name(survivor);
  if (options.journal != nullptr) {
    options.journal->begin(survivor, report.new_member,
                           options.target_machine);
  }
  auto boundary = [&options](const char* step) {
    if (options.journal != nullptr) options.journal->intent(step);
    if (options.crash_hook) options.crash_hook(step);
  };

  // 1. mh_obj_cap on the pull source.
  bus::ModuleInfo old_info;
  {
    boundary(reconfig::kStepObjCap);
    old_info = bus.module_info(survivor);
  }

  // 2. Two clones: the survivor's continuation stays in place; the new
  //    member goes to the target machine.
  {
    boundary(reconfig::kStepCloneRegister);
    rt.install_module(report.survivor_continuation, *image, old_info.machine,
                      "clone");
    rt.install_module(report.new_member, *image, options.target_machine,
                      "clone");
  }
  auto cleanup_clones = [&]() noexcept {
    try {
      rt.remove_module(report.survivor_continuation);
    } catch (...) {
    }
    try {
      rt.remove_module(report.new_member);
    } catch (...) {
    }
  };

  // 3. Rebind preparation: the continuation inherits the survivor's ends;
  //    the new member adopts the DEAD member's ends and queued traffic
  //    (the supervisor's heir-adoption recipe).
  BindEditBatch survivor_batch;
  BindEditBatch adopt_batch;
  {
    boundary(reconfig::kStepBindEditPrep);
    survivor_batch =
        reconfig::make_rebind_batch(bus, survivor, report.survivor_continuation);
    adopt_batch =
        reconfig::make_rebind_batch(bus, dead_member, report.new_member);
  }

  // 4. mh_objstate_move: signal the survivor, keep nudging it awake until
  //    it reaches its reconfiguration point, then fan the one divulged
  //    buffer out to both clones (replicate_module's portability property).
  {
    boundary(reconfig::kStepObjstateMove);
    report.requested_at = rt.now();
    bus.signal_reconfig(survivor);
    const net::SimTime deadline = rt.now() + options.divulge_timeout_us;
    auto settled = [&] {
      return bus.has_divulged_state(survivor) || rt.module_crashed(survivor);
    };
    while (!settled() && rt.now() < deadline) {
      if (options.nudge) options.nudge();
      const net::SimTime chunk =
          std::min(deadline, rt.now() + options.nudge_every_us);
      (void)rt.run_until([&] { return settled() || rt.now() >= chunk; },
                         options.max_rounds);
    }
    if (!bus.has_divulged_state(survivor)) {
      // Nothing structural changed: roll back to a still-serving group
      // (minus its dead member) and let the manager retry elsewhere.
      bus.cancel_pending_control(survivor);
      (void)bus.take_pending_signal(survivor);
      cleanup_clones();
      if (options.journal != nullptr) {
        options.journal->aborted(rt.module_crashed(survivor)
                                     ? "survivor crashed before divulge"
                                     : "divulge timeout");
      }
      throw step_error(reconfig::kStepObjstateMove, "survivor", survivor,
                       rt.module_crashed(survivor)
                           ? "crashed before divulging"
                           : "never divulged its state");
    }
    report.divulged_at = rt.now();
    std::vector<std::uint8_t> state_bytes = bus.take_divulged_state(survivor);
    report.state_bytes = state_bytes.size();
    if (options.journal != nullptr) options.journal->divulged(state_bytes);
    bus.deliver_state(old_info.machine, report.survivor_continuation,
                      state_bytes);
    bus.deliver_state(old_info.machine, report.new_member,
                      std::move(state_bytes));
  }

  // 5. mh_rebind: both batches land; the dead member's queues (fanned-out
  //    operations it never processed) move to the new member, which will
  //    re-apply them -- harmless for idempotent operations, and the router
  //    dedups acknowledgements per member anyway.
  {
    boundary(reconfig::kStepRebind);
    report.queued_messages_moved =
        queued_total(bus, survivor) + queued_total(bus, dead_member);
    bus.rebind(survivor_batch);
    bus.rebind(adopt_batch);
  }

  // 6. mh_chg_obj "add": both clones start and restore themselves.
  {
    boundary(reconfig::kStepAdd);
    rt.start_module(report.survivor_continuation);
    rt.start_module(report.new_member);
  }

  // 7. mh_chg_obj "del": retire the survivor, sweep its late arrivals to
  //    the continuation, and remove the corpse.
  {
    boundary(reconfig::kStepDel);
    rt.stop_module(survivor);
    if (options.drain_us > 0) {
      rt.run_for(options.drain_us, options.max_rounds);
      report.queued_messages_moved += reconfig::sweep_queues(
          bus, survivor, report.survivor_continuation);
    }
    rt.remove_module(survivor);
    bus.cancel_pending_control(dead_member);
    rt.remove_module(dead_member);
  }

  await_restore_or_throw(rt, report.survivor_continuation, options);
  await_restore_or_throw(rt, report.new_member, options);
  report.restored_at = rt.now();

  boundary(reconfig::kStepCommit);
  if (options.journal != nullptr) options.journal->committed();
  return report;
}

}  // namespace surgeon::replicate
