// GroupManager: the control loop that keeps replica groups redundant.
//
// Wiring mirrors recover::Supervisor -- per-module heartbeats feed the
// detector, an epoch-guarded sweep tick acts on verdicts, and a control
// re-entrancy flag keeps nested ticks (every script wait pumps the
// scheduler) from starting overlapping repairs. The difference is the unit
// of failure: the MachineDetector aggregates beats per HOST, and a
// confirmed-dead machine triggers a pull rebuild of every group that lost
// a member on it, placed by the consistent-hash ring (dead machine out,
// spare in). A machine that joins can likewise trigger a rebalance, which
// moves members whose hosts fell out of their group's placement.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "recover/detector.hpp"
#include "replicate/kv.hpp"
#include "replicate/rebuild.hpp"

namespace surgeon::replicate {

struct ManagerOptions {
  net::SimTime heartbeat_interval_us = 10'000;
  net::SimTime sweep_interval_us = 25'000;
  recover::MachineDetectorOptions detector;
  /// Machines eligible to replace a dead one, tried in order.
  std::vector<std::string> spares;
  /// Forwarded to every rebuild_group invocation.
  reconfig::ScriptJournal* journal = nullptr;
  std::function<void(const char*)> crash_hook;
  net::SimTime drain_us = 10'000;
  net::SimTime divulge_timeout_us = 5'000'000;
  net::SimTime restore_timeout_us = 10'000'000;
  /// Extra observer on every heartbeat (the chaos harness's liveness
  /// checker rides along here, since the runtime has one sink slot).
  std::function<void(const std::string&, net::SimTime)> extra_beat;
};

struct ManagerStats {
  std::uint64_t machines_rebuilt = 0;   // fully restored redundancy
  std::uint64_t groups_rebuilt = 0;     // successful rebuild_group runs
  std::uint64_t rebuild_failures = 0;   // thrown scripts (retried next sweep)
  std::uint64_t data_loss_groups = 0;   // no survivor left to pull from
  std::uint64_t rebalance_moves = 0;
};

class GroupManager {
 public:
  GroupManager(KvService& service, ManagerOptions options);
  GroupManager(const GroupManager&) = delete;
  GroupManager& operator=(const GroupManager&) = delete;
  ~GroupManager() { stop(); }

  /// Starts heartbeats into the machine detector and the sweep tick.
  void start();
  /// Stops ticking; heartbeats are disabled.
  void stop();

  /// Rebuilds every group that lost a member on `machine` (dead machine
  /// leaves the ring, first eligible spare joins). Returns true when every
  /// affected group is redundant again; on partial failure the machine
  /// stays tracked and the next sweep retries. Tests drive this directly;
  /// in production the sweep calls it on a confirmed-dead verdict.
  bool rebuild_machine(const std::string& machine);

  /// Adds a machine to the ring and moves members whose hosts fell out of
  /// their group's placement. Returns how many members moved.
  std::size_t rebalance(const std::string& new_machine);

  /// Publishes the surgeon_replica_role gauge (1 = primary, 2 = follower)
  /// for every current member; mh_top renders it as the ROLE column.
  void publish_roles();

  [[nodiscard]] recover::MachineDetector& detector() noexcept {
    return detector_;
  }
  [[nodiscard]] const ManagerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<RebuildGroupReport>& rebuilds()
      const noexcept {
    return rebuilds_;
  }
  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Role of a member by name: 1 primary (slot 0 of its group), 2 follower.
  [[nodiscard]] static int member_role(const std::string& instance);

 private:
  void sweep(std::uint64_t epoch);
  void prune_departed();
  [[nodiscard]] std::string pick_spare() const;
  [[nodiscard]] std::string pick_target(std::size_t group,
                                        const std::set<std::string>& occupied)
      const;
  [[nodiscard]] bool member_dead(const std::string& member) const;

  KvService* service_;
  app::Runtime* rt_;
  ManagerOptions options_;
  recover::MachineDetector detector_;
  ManagerStats stats_;
  std::vector<RebuildGroupReport> rebuilds_;
  std::set<std::string> lost_groups_;  // counted once, skipped thereafter
  bool running_ = false;
  bool in_control_ = false;
  std::uint64_t epoch_ = 0;
};

}  // namespace surgeon::replicate
