#include "replicate/placement.hpp"

namespace surgeon::replicate {

namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t stable_hash(const std::string& s, std::uint64_t seed) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the bytes...
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h ^ seed);  // ...then scrambled with the ring seed
}

void HashRing::add_machine(const std::string& machine) {
  if (machine_points_.contains(machine)) return;
  std::vector<std::uint64_t>& points = machine_points_[machine];
  points.reserve(options_.vnodes);
  for (std::uint32_t v = 0; v < options_.vnodes; ++v) {
    std::uint64_t point =
        stable_hash(machine + "#" + std::to_string(v), options_.seed);
    // Collisions across machines are astronomically unlikely but would make
    // placement depend on insertion order; perturb until the slot is free.
    while (ring_.contains(point)) point = splitmix64(point);
    ring_.emplace(point, machine);
    points.push_back(point);
  }
}

void HashRing::remove_machine(const std::string& machine) {
  auto it = machine_points_.find(machine);
  if (it == machine_points_.end()) return;
  for (std::uint64_t point : it->second) ring_.erase(point);
  machine_points_.erase(it);
}

std::vector<std::string> HashRing::machines() const {
  std::vector<std::string> out;
  out.reserve(machine_points_.size());
  for (const auto& [machine, points] : machine_points_) {
    out.push_back(machine);
  }
  return out;
}

std::vector<std::string> HashRing::place(const std::string& key,
                                         std::size_t n) const {
  std::vector<std::string> out;
  if (ring_.empty() || n == 0) return out;
  const std::uint64_t h = stable_hash(key, options_.seed);
  auto it = ring_.lower_bound(h);
  for (std::size_t hops = 0; hops < ring_.size() && out.size() < n; ++hops) {
    if (it == ring_.end()) it = ring_.begin();
    bool seen = false;
    for (const auto& m : out) {
      if (m == it->second) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(it->second);
    ++it;
  }
  return out;
}

}  // namespace surgeon::replicate
