#include "replicate/kv.hpp"

#include <algorithm>
#include <random>

#include "cfg/parser.hpp"
#include "support/diag.hpp"

namespace surgeon::replicate {

using bus::BindingEnd;

std::string kv_shard_source(std::size_t shards) {
  // Four scalar slots per member; key -> (group = key % shards, slot =
  // key / shards). PUT (op 1) is an idempotent set, so a rebuild's
  // at-least-once redelivery re-applies the same value harmlessly. The
  // reconfiguration point sits right after the blocking read -- the
  // counter-server shape -- so a nudged member divulges promptly.
  return R"mc(
int s0 = 0;
int s1 = 0;
int s2 = 0;
int s3 = 0;

void apply(int op, int slot, int value, int *out)
{
  if (op == 1) {
    if (slot == 0) { s0 = value; }
    if (slot == 1) { s1 = value; }
    if (slot == 2) { s2 = value; }
    if (slot == 3) { s3 = value; }
    *out = value;
    return;
  }
  *out = 0;
  if (slot == 0) { *out = s0; }
  if (slot == 1) { *out = s1; }
  if (slot == 2) { *out = s2; }
  if (slot == 3) { *out = s3; }
}

void main()
{
  int op;
  int seq;
  int key;
  int value;
  int slot;
  int result;
  while (1) {
    mh_read("req", "iiii", &op, &seq, &key, &value);
RP:
    slot = (key / )mc" +
         std::to_string(shards) + R"mc() % 4;
    apply(op, slot, value, &result);
    mh_write("req", "iiii", op, seq, key, result);
  }
}
)mc";
}

std::string kv_member_name(std::size_t group, std::size_t r) {
  return "s" + std::to_string(group) + "x" + std::to_string(r);
}

std::string kv_group_key(std::size_t group) {
  return "group-" + std::to_string(group);
}

std::string kv_config_text(
    const std::vector<std::vector<std::string>>& placements) {
  std::string text = R"cfg(
module shard {
  source = "./shard.mc" ::
  server interface req pattern = {integer, integer, integer, integer} returns = {integer, integer, integer, integer} ::
  reconfiguration point = {RP} ::
}

application kv {
)cfg";
  for (std::size_t g = 0; g < placements.size(); ++g) {
    for (std::size_t r = 0; r < placements[g].size(); ++r) {
      text += "  instance shard as " + kv_member_name(g, r) + " on \"" +
              placements[g][r] + "\" ::\n";
    }
  }
  text += "}\n";
  return text;
}

// --- KvRouter ----------------------------------------------------------------

KvRouter::KvRouter(bus::Bus& bus, std::string machine, std::size_t shards,
                   net::SimTime tick_us, net::SimTime retry_us)
    : bus_(&bus),
      module_("kv-router"),
      client_(bus, module_),
      shards_(shards),
      tick_us_(tick_us),
      retry_us_(retry_us),
      groups_(shards) {
  bus::ModuleInfo info;
  info.name = module_;
  info.machine = std::move(machine);
  info.interfaces.push_back(
      bus::InterfaceSpec{"cli", bus::IfaceRole::kServer, "iiii", "iiii"});
  for (std::size_t g = 0; g < shards_; ++g) {
    info.interfaces.push_back(bus::InterfaceSpec{
        group_iface(g), bus::IfaceRole::kServer, "iiii", "iiii"});
  }
  bus_->add_module(std::move(info));
  schedule_tick();
}

KvRouter::~KvRouter() {
  alive_.reset();
  if (bus_->has_module(module_)) bus_->remove_module(module_);
}

std::vector<std::string> KvRouter::members(std::size_t group) const {
  std::vector<std::string> out;
  for (const auto& peer :
       bus_->bound_peers(BindingEnd{module_, group_iface(group)})) {
    out.push_back(peer.module);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void KvRouter::nudge(std::size_t group) {
  // seq 0 never matches a pending operation, so every reply is discarded.
  client_.write(group_iface(group),
                {ser::Value{std::int64_t{2}}, ser::Value{std::int64_t{0}},
                 ser::Value{static_cast<std::int64_t>(group)},
                 ser::Value{std::int64_t{0}}});
}

std::size_t KvRouter::pending_ops() const noexcept {
  std::size_t n = 0;
  for (const Group& g : groups_) {
    n += g.waiting.size() + (g.inflight.has_value() ? 1 : 0);
  }
  return n;
}

void KvRouter::schedule_tick() {
  std::weak_ptr<int> alive = alive_;
  bus_->simulator().schedule_after(tick_us_, [this, alive] {
    if (alive.expired()) return;
    tick();
    schedule_tick();
  });
}

void KvRouter::fan_out(std::size_t g, PendingOp& op) {
  op.last_fanout_at = bus_->simulator().now();
  client_.write(group_iface(g),
                {ser::Value{op.op}, ser::Value{op.seq}, ser::Value{op.key},
                 ser::Value{op.value}});
}

void KvRouter::absorb_replies(std::size_t g) {
  while (auto msg = client_.try_read(group_iface(g))) {
    const auto& v = msg->values;
    if (v.size() != 4 || !v[1].is_int()) continue;
    const std::int64_t seq = v[1].as_int();
    if (seq == 0) continue;  // nudge echo
    Group& group = groups_[g];
    if (!group.inflight || group.inflight->seq != seq) {
      ++stats_.late_replies;
      continue;
    }
    group.inflight->replies[bus_->source_of(*msg).module] = v[3].as_int();
  }
}

void KvRouter::progress(std::size_t g) {
  Group& group = groups_[g];
  if (!group.inflight && !group.waiting.empty()) {
    group.inflight = std::move(group.waiting.front());
    group.waiting.pop_front();
    fan_out(g, *group.inflight);
    return;
  }
  if (!group.inflight) return;
  PendingOp& op = *group.inflight;
  // Completion is judged against the CURRENT membership: a rebuild that
  // swapped members mid-operation means the heir must reply too (the retry
  // below re-fans the operation so it can).
  const std::vector<std::string> now_members = members(g);
  bool complete = !now_members.empty();
  for (const auto& m : now_members) {
    if (!op.replies.contains(m)) {
      complete = false;
      break;
    }
  }
  const net::SimTime now = bus_->simulator().now();
  if (!complete) {
    if (now - op.last_fanout_at >= retry_us_) {
      ++stats_.refans;
      fan_out(g, op);
    }
    return;
  }
  std::int64_t result = op.value;
  if (op.op != 1) {
    // GET agreement: members that disagree mean some replica serves a
    // stale value -- invariant 7's "committed write resurfaces" half.
    result = op.replies.at(now_members.front());
    bool agree = true;
    for (const auto& m : now_members) {
      const std::int64_t v = op.replies.at(m);
      if (v != result) agree = false;
      result = std::max(result, v);
    }
    if (!agree) ++stats_.stale_gets;
    ++stats_.acked_gets;
  } else {
    ++stats_.acked_puts;
  }
  latencies_.push_back(KvLatencySample{now, now - op.accepted_at});
  client_.write("cli", {ser::Value{op.op}, ser::Value{op.seq},
                        ser::Value{op.key}, ser::Value{result}});
  group.inflight.reset();
  // Let the next waiting operation start on this same tick.
  progress(g);
}

void KvRouter::tick() {
  while (auto msg = client_.try_read("cli")) {
    const auto& v = msg->values;
    if (v.size() != 4) continue;
    PendingOp op;
    op.op = v[0].as_int();
    op.seq = v[1].as_int();
    op.key = v[2].as_int();
    op.value = v[3].as_int();
    op.accepted_at = bus_->simulator().now();
    const std::size_t g =
        static_cast<std::size_t>(op.key) % (shards_ == 0 ? 1 : shards_);
    groups_[g].waiting.push_back(std::move(op));
  }
  for (std::size_t g = 0; g < shards_; ++g) {
    absorb_replies(g);
    progress(g);
  }
}

// --- KvClient ----------------------------------------------------------------

KvClient::KvClient(bus::Bus& bus, std::string machine, std::size_t shards,
                   std::uint64_t seed, int ops, net::SimTime tick_us)
    : bus_(&bus),
      module_("kv-client"),
      client_(bus, module_),
      shards_(shards),
      tick_us_(tick_us) {
  bus::ModuleInfo info;
  info.name = module_;
  info.machine = std::move(machine);
  info.interfaces.push_back(
      bus::InterfaceSpec{"req", bus::IfaceRole::kClient, "iiii", "iiii"});
  bus_->add_module(std::move(info));

  // The operation script is fixed up front from the seed: roughly 60% PUT,
  // then a read-back GET of every key so the final report covers the whole
  // key space whether or not the random mix touched it.
  std::mt19937_64 rng(seed);
  const std::int64_t keys =
      static_cast<std::int64_t>(shards_) * kSlotsPerShard;
  for (int i = 0; i < ops; ++i) {
    Op op;
    op.key = static_cast<std::int64_t>(rng() % keys);
    if (rng() % 100 < 60) {
      op.op = 1;
      op.value = static_cast<std::int64_t>(1 + rng() % 1'000'000);
    } else {
      op.op = 2;
    }
    script_.push_back(op);
  }
  for (std::int64_t k = 0; k < keys; ++k) {
    script_.push_back(Op{3, k, 0});
  }
  schedule_tick();
}

KvClient::~KvClient() {
  alive_.reset();
  if (bus_->has_module(module_)) bus_->remove_module(module_);
}

void KvClient::schedule_tick() {
  std::weak_ptr<int> alive = alive_;
  bus_->simulator().schedule_after(tick_us_, [this, alive] {
    if (alive.expired()) return;
    tick();
    if (!done_) schedule_tick();
  });
}

void KvClient::send_next() {
  if (next_op_ >= script_.size()) {
    done_ = true;
    return;
  }
  const Op& op = script_[next_op_];
  inflight_seq_ = static_cast<std::int64_t>(next_op_) + 1;
  ++next_op_;
  ++stats_.sent;
  const std::int64_t wire_op = op.op == 3 ? 2 : op.op;
  client_.write("req", {ser::Value{wire_op}, ser::Value{inflight_seq_},
                        ser::Value{op.key}, ser::Value{op.value}});
}

void KvClient::tick() {
  while (auto msg = client_.try_read("req")) {
    const auto& v = msg->values;
    if (v.size() != 4 || v[1].as_int() != inflight_seq_) continue;
    const Op& op = script_[static_cast<std::size_t>(inflight_seq_) - 1];
    const std::int64_t value = v[3].as_int();
    ++stats_.acked;
    if (op.op == 1) {
      acked_[op.key] = op.value;
      acked_log_.push_back("acked put seq=" + std::to_string(inflight_seq_) +
                           " key=" + std::to_string(op.key) + " value=" +
                           std::to_string(op.value));
    } else {
      // Session guarantee: the client is FIFO with one outstanding
      // operation, so this GET follows every acknowledged PUT. Any other
      // value is a lost acknowledged write or a stale resurrection.
      const std::int64_t expected =
          acked_.contains(op.key) ? acked_.at(op.key) : 0;
      if (value != expected) {
        violations_.push_back(
            "ledger mismatch seq=" + std::to_string(inflight_seq_) + " key=" +
            std::to_string(op.key) + " got=" + std::to_string(value) +
            " expected=" + std::to_string(expected));
      }
      if (op.op == 3) {
        readback_[op.key] = value;
      } else {
        acked_log_.push_back("acked get seq=" + std::to_string(inflight_seq_) +
                             " key=" + std::to_string(op.key) + " value=" +
                             std::to_string(value));
      }
    }
    inflight_seq_ = 0;
  }
  if (inflight_seq_ == 0 && !done_) send_next();
}

std::vector<std::string> KvClient::report() const {
  std::vector<std::string> lines = acked_log_;
  for (const auto& [key, value] : readback_) {
    lines.push_back("readback key=" + std::to_string(key) + " value=" +
                    std::to_string(value));
  }
  for (const auto& v : violations_) lines.push_back("VIOLATION " + v);
  lines.push_back("kv-done acked=" + std::to_string(stats_.acked) +
                  " keys=" + std::to_string(readback_.size()));
  return lines;
}

// --- KvService ---------------------------------------------------------------

KvService::KvService(app::Runtime& rt, KvOptions options)
    : rt_(&rt), options_(std::move(options)), ring_(RingOptions{
          options_.vnodes, options_.seed}) {
  if (options_.machines.size() < options_.group_size) {
    throw support::BusError(
        "kv: need at least group_size machines for distinct placement");
  }
  for (const auto& m : options_.machines) ring_.add_machine(m);
  for (std::size_t g = 0; g < options_.shards; ++g) {
    placements_.push_back(ring_.place(kv_group_key(g), options_.group_size));
  }
}

void KvService::launch(int client_ops) {
  bus::Bus& bus = rt_->bus();
  router_ = std::make_unique<KvRouter>(bus, options_.control_machine,
                                       options_.shards, options_.tick_us,
                                       options_.retry_us);
  cfg::ConfigFile config = cfg::parse_config(kv_config_text(placements_));
  rt_->load_application(config, "kv", [&](const cfg::ModuleSpec&) {
    return kv_shard_source(options_.shards);
  });
  for (std::size_t g = 0; g < options_.shards; ++g) {
    for (std::size_t r = 0; r < placements_[g].size(); ++r) {
      bus.add_binding(BindingEnd{kv_member_name(g, r), "req"},
                      BindingEnd{router_->module_name(),
                                 KvRouter::group_iface(g)});
    }
  }
  client_ = std::make_unique<KvClient>(bus, options_.control_machine,
                                       options_.shards, options_.seed,
                                       client_ops, options_.tick_us);
  bus.add_binding(BindingEnd{client_->module_name(), "req"},
                  BindingEnd{router_->module_name(), "cli"});
}

std::size_t KvService::group_of_member(const std::string& instance) const {
  std::string stem = instance;
  if (auto pos = stem.rfind('@'); pos != std::string::npos) {
    stem = stem.substr(0, pos);
  }
  if (stem.size() < 3 || stem[0] != 's') {
    throw support::BusError("kv: not a shard member name: '" + instance + "'");
  }
  const auto x = stem.find('x');
  if (x == std::string::npos) {
    throw support::BusError("kv: not a shard member name: '" + instance + "'");
  }
  return static_cast<std::size_t>(std::stoul(stem.substr(1, x - 1)));
}

bool KvService::run_to_completion(net::SimTime budget_us,
                                  std::uint64_t max_rounds) {
  const net::SimTime deadline = rt_->now() + budget_us;
  (void)rt_->run_until(
      [&] { return client_->done() || rt_->now() >= deadline; }, max_rounds);
  return client_->done();
}

}  // namespace surgeon::replicate
