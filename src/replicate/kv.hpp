// Sharded key-value workload: the service that replica groups protect.
//
// Topology: one native router on a control machine fronts `shards` replica
// groups of MiniC shard modules placed on the ring machines. The router
// fans every operation out to ALL current members of the key's group (a
// bus send delivers to every bound peer) and acknowledges the client only
// when every member has replied -- so an acknowledged write is applied at
// every live replica, and capturing ANY survivor's state after a machine
// loss reproduces every acknowledged write. That property is exactly chaos
// invariant 7; the router's stale-read counter checks the other half (a
// read that disagrees across members means a committed write resurfaced
// stale somewhere).
//
// Operations are PUT (op 1, idempotent set) and GET (op 2); at-least-once
// redelivery during rebuild is therefore harmless, and the router's
// retry tick re-fans an operation whose member acks went missing (a member
// died mid-fanout, or a rebuilt heir adopted the binding after the send).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "app/runtime.hpp"
#include "bus/client.hpp"
#include "replicate/placement.hpp"

namespace surgeon::replicate {

struct KvOptions {
  std::size_t shards = 4;       // replica groups (keys map key % shards)
  std::size_t group_size = 2;   // members per group
  /// Machines that host shard members (the ring population).
  std::vector<std::string> machines = {"m0", "m1", "m2"};
  /// Machine hosting the router and client; never killed, never placed on.
  std::string control_machine = "ctl";
  /// Ring seed: same machines + same seed => same placement.
  std::uint64_t seed = 1;
  std::uint32_t vnodes = 64;
  net::SimTime tick_us = 500;       // router/client polling cadence
  net::SimTime retry_us = 20'000;   // re-fanout an op missing acks this long
};

/// KEYS per group: each shard module holds this many scalar slots, so the
/// key space is [0, shards * kSlotsPerShard).
inline constexpr int kSlotsPerShard = 4;

/// MiniC source for one shard member: four global slots, PUT/GET dispatch,
/// reconfiguration point right after the blocking read (the counter-server
/// shape the chaos harness has battle-tested).
[[nodiscard]] std::string kv_shard_source(std::size_t shards);

/// Configuration text declaring the shard module and one application
/// instance per (group, member) at the given placements:
/// placements[g][r] = machine for member r of group g.
[[nodiscard]] std::string kv_config_text(
    const std::vector<std::vector<std::string>>& placements);

/// Shard instance base name for member `r` of group `g` ("s2x0"); rebuilt
/// heirs get runtime-generated @n suffixes on the same stem.
[[nodiscard]] std::string kv_member_name(std::size_t group, std::size_t r);

/// Ring key for a group ("group-2"): what gets hashed for placement.
[[nodiscard]] std::string kv_group_key(std::size_t group);

struct KvRouterStats {
  std::uint64_t acked_puts = 0;
  std::uint64_t acked_gets = 0;
  std::uint64_t stale_gets = 0;   // members disagreed on a GET value
  std::uint64_t refans = 0;       // retry re-fanouts
  std::uint64_t late_replies = 0; // replies for ops already acked
};

/// One completed-operation latency sample, for the rebuild benchmark's
/// before/during/after p99 comparison.
struct KvLatencySample {
  net::SimTime completed_at = 0;
  net::SimTime latency_us = 0;
};

/// The native router module. Per-group FIFO: one operation is outstanding
/// per group; later operations for the same group wait in the router. An
/// operation completes when every CURRENT bound member of the group has
/// replied to its sequence number -- membership is re-read from the bus on
/// every check, so a rebuild that swaps members mid-operation simply
/// extends the ack set the operation must collect (fed by the retry tick).
class KvRouter {
 public:
  KvRouter(bus::Bus& bus, std::string machine, std::size_t shards,
           net::SimTime tick_us, net::SimTime retry_us);
  ~KvRouter();
  KvRouter(const KvRouter&) = delete;
  KvRouter& operator=(const KvRouter&) = delete;

  [[nodiscard]] const std::string& module_name() const noexcept {
    return module_;
  }
  [[nodiscard]] static std::string group_iface(std::size_t group) {
    return "g" + std::to_string(group);
  }
  /// Current members of a group: the modules bound to its interface.
  [[nodiscard]] std::vector<std::string> members(std::size_t group) const;

  /// Sends a side-effect-free GET (seq 0, discarded on reply) into a group
  /// so members blocked in mh_read wake up and reach their reconfiguration
  /// point. The rebuild script calls this after signalling a survivor.
  void nudge(std::size_t group);

  [[nodiscard]] const KvRouterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<KvLatencySample>& latencies() const noexcept {
    return latencies_;
  }
  [[nodiscard]] std::size_t pending_ops() const noexcept;

 private:
  struct PendingOp {
    std::int64_t op = 0;
    std::int64_t seq = 0;
    std::int64_t key = 0;
    std::int64_t value = 0;
    net::SimTime accepted_at = 0;
    net::SimTime last_fanout_at = 0;
    std::map<std::string, std::int64_t> replies;  // member -> replied value
  };
  struct Group {
    std::optional<PendingOp> inflight;
    std::deque<PendingOp> waiting;
  };

  void schedule_tick();
  void tick();
  void fan_out(std::size_t g, PendingOp& op);
  void absorb_replies(std::size_t g);
  void progress(std::size_t g);

  bus::Bus* bus_;
  std::string module_;
  bus::Client client_;
  std::size_t shards_;
  net::SimTime tick_us_;
  net::SimTime retry_us_;
  std::vector<Group> groups_;
  KvRouterStats stats_;
  std::vector<KvLatencySample> latencies_;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

struct KvClientStats {
  std::uint64_t sent = 0;
  std::uint64_t acked = 0;
};

/// The native client module: issues a seeded PUT/GET mix one operation at
/// a time (global FIFO, so every GET observes all earlier acked PUTs),
/// keeps a ledger of acknowledged writes, and finishes with a read-back of
/// every key. Output is emitted only after the run completes, in key/seq
/// order, so golden-vs-chaos comparison is insensitive to completion-time
/// jitter introduced by a rebuild.
class KvClient {
 public:
  KvClient(bus::Bus& bus, std::string machine, std::size_t shards,
           std::uint64_t seed, int ops, net::SimTime tick_us);
  ~KvClient();
  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  [[nodiscard]] const std::string& module_name() const noexcept {
    return module_;
  }
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const KvClientStats& stats() const noexcept { return stats_; }

  /// Last acknowledged PUT value per key (the ledger).
  [[nodiscard]] const std::map<std::int64_t, std::int64_t>& acked_writes()
      const noexcept {
    return acked_;
  }
  /// Final read-back value per key (filled when done()).
  [[nodiscard]] const std::map<std::int64_t, std::int64_t>& readback()
      const noexcept {
    return readback_;
  }
  /// Mid-run GETs whose reply did not match the ledger at issue time: each
  /// is an acknowledged write lost or a stale value resurfacing. Invariant
  /// 7's primary evidence.
  [[nodiscard]] const std::vector<std::string>& ledger_violations()
      const noexcept {
    return violations_;
  }
  /// Deterministic end-of-run report, one line per entry.
  [[nodiscard]] std::vector<std::string> report() const;

 private:
  struct Op {
    std::int64_t op = 0;  // 1 PUT, 2 GET, 3 read-back GET
    std::int64_t key = 0;
    std::int64_t value = 0;
  };
  void schedule_tick();
  void tick();
  void send_next();

  bus::Bus* bus_;
  std::string module_;
  bus::Client client_;
  std::size_t shards_;
  net::SimTime tick_us_;
  std::vector<Op> script_;      // the seeded op sequence + read-back tail
  std::size_t next_op_ = 0;
  std::int64_t inflight_seq_ = 0;  // 0 = idle
  std::map<std::int64_t, std::int64_t> acked_;
  std::map<std::int64_t, std::int64_t> readback_;
  std::vector<std::string> violations_;
  std::vector<std::string> acked_log_;  // "seq op key value", seq order
  KvClientStats stats_;
  bool done_ = false;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

/// The whole service: ring, placed shard groups, router, client.
class KvService {
 public:
  KvService(app::Runtime& rt, KvOptions options);

  /// Places every group on the ring, loads the shard application, creates
  /// the router and client, and binds everything.
  void launch(int client_ops);

  [[nodiscard]] app::Runtime& runtime() noexcept { return *rt_; }
  [[nodiscard]] const KvOptions& options() const noexcept { return options_; }
  [[nodiscard]] HashRing& ring() noexcept { return ring_; }
  [[nodiscard]] KvRouter& router() { return *router_; }
  [[nodiscard]] KvClient& client() { return *client_; }
  [[nodiscard]] std::size_t group_of_member(const std::string& instance) const;
  /// Initial placement, group-major (before any rebuild).
  [[nodiscard]] const std::vector<std::vector<std::string>>& placements()
      const noexcept {
    return placements_;
  }

  /// Runs until the client finishes or `budget_us` virtual time passes.
  /// Returns true when the client completed its script.
  bool run_to_completion(net::SimTime budget_us, std::uint64_t max_rounds);

 private:
  app::Runtime* rt_;
  KvOptions options_;
  HashRing ring_;
  std::vector<std::vector<std::string>> placements_;
  std::unique_ptr<KvRouter> router_;
  std::unique_ptr<KvClient> client_;
};

}  // namespace surgeon::replicate
