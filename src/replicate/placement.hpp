// Algorithmic placement: a consistent-hash ring over live machines.
//
// Each machine owns `vnodes` points on a 64-bit ring; a group key walks the
// ring clockwise from its own hash collecting the first `n` DISTINCT
// machines. Determinism is load-bearing here: the ring hash is a fixed
// splitmix64 (no std::hash, whose values vary across standard libraries),
// so the same machine set and seed always yield the same placement -- the
// replicate_test pins this, and rebuild after a machine loss recomputes
// placements instead of persisting them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace surgeon::replicate {

/// Stable 64-bit string hash (FNV-1a folded through splitmix64). Exposed so
/// tests can predict ring point ordering.
[[nodiscard]] std::uint64_t stable_hash(const std::string& s,
                                        std::uint64_t seed) noexcept;

struct RingOptions {
  /// Virtual nodes per machine. More vnodes spread group ownership more
  /// evenly; 64 keeps the max/mean machine load under ~1.3 for small
  /// clusters without making ring rebuilds noticeable.
  std::uint32_t vnodes = 64;
  /// Seed folded into every ring-point hash; two rings with the same
  /// machines but different seeds place groups differently.
  std::uint64_t seed = 0;
};

/// The ring itself. Machines can be added and removed at any time; lookups
/// walk the sorted point map, so placement is O(log points + n).
class HashRing {
 public:
  explicit HashRing(RingOptions options = {}) : options_(options) {}

  void add_machine(const std::string& machine);
  void remove_machine(const std::string& machine);
  [[nodiscard]] bool has_machine(const std::string& machine) const {
    return machine_points_.contains(machine);
  }
  [[nodiscard]] std::vector<std::string> machines() const;
  [[nodiscard]] std::size_t machine_count() const noexcept {
    return machine_points_.size();
  }

  /// The first `n` distinct machines clockwise from hash(key). Returns
  /// fewer than `n` when the ring holds fewer machines.
  [[nodiscard]] std::vector<std::string> place(const std::string& key,
                                               std::size_t n) const;

  [[nodiscard]] const RingOptions& options() const noexcept {
    return options_;
  }

 private:
  RingOptions options_;
  std::map<std::uint64_t, std::string> ring_;  // point -> machine
  std::map<std::string, std::vector<std::uint64_t>> machine_points_;
};

}  // namespace surgeon::replicate
