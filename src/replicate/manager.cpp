#include "replicate/manager.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace surgeon::replicate {

namespace {

/// Control re-entrancy flag holder (recover::Supervisor's ControlScope):
/// script waits pump the scheduler, which fires sweep ticks, which must
/// not start a second repair under the first.
struct ControlScope {
  explicit ControlScope(bool& flag) : flag_(flag) { flag_ = true; }
  ~ControlScope() { flag_ = false; }
  ControlScope(const ControlScope&) = delete;
  ControlScope& operator=(const ControlScope&) = delete;

 private:
  bool& flag_;
};

}  // namespace

GroupManager::GroupManager(KvService& service, ManagerOptions options)
    : service_(&service),
      rt_(&service.runtime()),
      options_(std::move(options)),
      detector_(options_.detector) {}

int GroupManager::member_role(const std::string& instance) {
  std::string stem = instance;
  if (auto pos = stem.rfind('@'); pos != std::string::npos) {
    stem = stem.substr(0, pos);
  }
  const auto x = stem.find('x');
  if (x == std::string::npos || x + 1 >= stem.size()) return 2;
  return stem.substr(x + 1) == "0" ? 1 : 2;
}

void GroupManager::start() {
  if (running_) return;
  running_ = true;
  const std::uint64_t epoch = ++epoch_;
  rt_->enable_heartbeats(
      options_.heartbeat_interval_us,
      [this](const std::string& module, net::SimTime at) {
        // Attribution comes from the bus at beat time, so a member that
        // migrated (rebalance) stops vouching for its old host.
        if (rt_->bus().has_module(module)) {
          detector_.beat(module, rt_->bus().module_info(module).machine, at);
        }
        if (options_.extra_beat) options_.extra_beat(module, at);
      });
  rt_->simulator().schedule_after(options_.sweep_interval_us,
                                  [this, epoch] { sweep(epoch); });
  publish_roles();
}

void GroupManager::stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;
  rt_->disable_heartbeats();
}

void GroupManager::prune_departed() {
  // Modules that left the bus (replaced, rebuilt away, removed) stop
  // beating for a reason; drop them before their silence slanders a
  // perfectly healthy machine.
  for (const std::string& machine : detector_.machine_names()) {
    for (const std::string& module : detector_.modules_on(machine)) {
      if (!rt_->bus().has_module(module)) detector_.forget_module(module);
    }
  }
}

void GroupManager::sweep(std::uint64_t epoch) {
  if (epoch != epoch_) return;
  if (!in_control_) {
    prune_departed();
    for (const std::string& machine : detector_.confirmed(rt_->now())) {
      (void)rebuild_machine(machine);
    }
  }
  rt_->simulator().schedule_after(options_.sweep_interval_us,
                                  [this, epoch] { sweep(epoch); });
}

bool GroupManager::member_dead(const std::string& member) const {
  if (rt_->module_crashed(member)) return true;
  if (!rt_->bus().has_module(member)) return false;
  return rt_->machine_dead(rt_->bus().module_info(member).machine);
}

std::string GroupManager::pick_spare() const {
  for (const std::string& spare : options_.spares) {
    if (!service_->ring().has_machine(spare) && !rt_->machine_dead(spare)) {
      return spare;
    }
  }
  return {};
}

std::string GroupManager::pick_target(
    std::size_t group, const std::set<std::string>& occupied) const {
  const auto candidates = service_->ring().place(
      kv_group_key(group), service_->options().group_size);
  for (const std::string& machine : candidates) {
    if (!occupied.contains(machine) && !rt_->machine_dead(machine)) {
      return machine;
    }
  }
  // Placement exhausted (every placed machine already hosts a member):
  // any live ring machine without a member keeps redundancy distinct.
  for (const std::string& machine : service_->ring().machines()) {
    if (!occupied.contains(machine) && !rt_->machine_dead(machine)) {
      return machine;
    }
  }
  return {};
}

bool GroupManager::rebuild_machine(const std::string& machine) {
  ControlScope scope(in_control_);
  if (service_->ring().has_machine(machine)) {
    service_->ring().remove_machine(machine);
    const std::string spare = pick_spare();
    if (!spare.empty()) service_->ring().add_machine(spare);
  }
  KvRouter& router = service_->router();
  bool all_ok = true;
  for (std::size_t g = 0; g < service_->options().shards; ++g) {
    // A group can hold several corpses (overlapping machine deaths); each
    // rebuild changes membership, so re-read it every round.
    for (std::size_t round = 0;; ++round) {
      const std::vector<std::string> members = router.members(g);
      std::string dead;
      std::string survivor;
      std::set<std::string> occupied;
      for (const std::string& m : members) {
        if (member_dead(m)) {
          if (dead.empty()) dead = m;
        } else {
          if (survivor.empty()) survivor = m;
          if (rt_->bus().has_module(m)) {
            occupied.insert(rt_->bus().module_info(m).machine);
          }
        }
      }
      if (dead.empty()) break;
      if (round >= members.size()) {
        all_ok = false;
        break;
      }
      const std::string group_tag = kv_group_key(g);
      if (survivor.empty()) {
        if (!lost_groups_.contains(group_tag)) {
          lost_groups_.insert(group_tag);
          ++stats_.data_loss_groups;
        }
        all_ok = false;
        break;
      }
      const std::string target = pick_target(g, occupied);
      if (target.empty()) {
        all_ok = false;
        break;
      }
      RebuildGroupOptions opts;
      opts.target_machine = target;
      opts.journal = options_.journal;
      opts.crash_hook = options_.crash_hook;
      opts.drain_us = options_.drain_us;
      opts.divulge_timeout_us = options_.divulge_timeout_us;
      opts.restore_timeout_us = options_.restore_timeout_us;
      opts.nudge = [&router, g] { router.nudge(g); };
      try {
        RebuildGroupReport report = rebuild_group(*rt_, survivor, dead, opts);
        detector_.forget_module(survivor);
        detector_.forget_module(dead);
        ++stats_.groups_rebuilt;
        rebuilds_.push_back(std::move(report));
      } catch (const reconfig::ScriptError&) {
        ++stats_.rebuild_failures;
        all_ok = false;
        break;
      }
    }
  }
  if (all_ok) {
    // Only a fully redundant fleet silences the verdict; a partial rebuild
    // keeps the machine confirmed so the next sweep finishes the job.
    detector_.forget_machine(machine);
    ++stats_.machines_rebuilt;
    publish_roles();
  }
  return all_ok;
}

std::size_t GroupManager::rebalance(const std::string& new_machine) {
  ControlScope scope(in_control_);
  if (!service_->ring().has_machine(new_machine)) {
    service_->ring().add_machine(new_machine);
  }
  KvRouter& router = service_->router();
  std::size_t moves = 0;
  for (std::size_t g = 0; g < service_->options().shards; ++g) {
    const auto placement = service_->ring().place(
        kv_group_key(g), service_->options().group_size);
    const std::vector<std::string> members = router.members(g);
    std::set<std::string> occupied;
    for (const std::string& m : members) {
      if (rt_->bus().has_module(m)) {
        occupied.insert(rt_->bus().module_info(m).machine);
      }
    }
    for (const std::string& m : members) {
      if (!rt_->bus().has_module(m) || member_dead(m)) continue;
      const std::string host = rt_->bus().module_info(m).machine;
      if (std::find(placement.begin(), placement.end(), host) !=
          placement.end()) {
        continue;
      }
      std::string target;
      for (const std::string& p : placement) {
        if (!occupied.contains(p)) {
          target = p;
          break;
        }
      }
      if (target.empty()) continue;
      // A member blocked in mh_read only reaches its reconfiguration point
      // when traffic arrives; keep nudging the group until the move's
      // divulge wait completes.
      auto nudging = std::make_shared<bool>(true);
      auto pump = std::make_shared<std::function<void()>>();
      std::weak_ptr<std::function<void()>> weak_pump = pump;
      *pump = [this, &router, g, nudging, weak_pump] {
        auto self = weak_pump.lock();  // chain dies with the move below
        if (self == nullptr || !*nudging) return;
        router.nudge(g);
        rt_->simulator().schedule_after(2'000, *self);
      };
      rt_->simulator().schedule_after(2'000, *pump);
      try {
        (void)reconfig::move_module(*rt_, m, target);
        detector_.forget_module(m);
        occupied.erase(host);
        occupied.insert(target);
        ++moves;
        ++stats_.rebalance_moves;
      } catch (const reconfig::ScriptError&) {
        ++stats_.rebuild_failures;
      }
      *nudging = false;
    }
  }
  publish_roles();
  return moves;
}

void GroupManager::publish_roles() {
  obs::MetricsRegistry& metrics = rt_->metrics();
  if (!metrics.enabled()) return;
  KvRouter& router = service_->router();
  for (std::size_t g = 0; g < service_->options().shards; ++g) {
    for (const std::string& m : router.members(g)) {
      metrics.gauge("surgeon_replica_role", {{"module", m}})
          .set(member_role(m));
    }
  }
}

}  // namespace surgeon::replicate
