// The sampling profiler for MiniC modules (surgeon::profile).
//
// The VM exposes a countdown-based sample hook (vm::SampleSink): when a
// sample fires, the machine is positioned at the instruction about to
// execute, and the sink reads the current function, the static opcode
// window at the pc, and the folded activation-record stack. app::Runtime
// drives the countdowns two ways — a virtual-clock sampling timer (one
// sample per live module per tick, the cluster-operator view) and an
// instruction-period mode (one sample every K executed instructions, the
// dense view opcode studies need) — and both feed this aggregator.
//
// The Profiler keeps per-module/per-function self+cumulative sample
// counts, per-opcode and per-opcode-sequence counts (the superinstruction
// evidence ROADMAP item 4 consumes), and folded stacks. Exporters:
//   to_folded()  flamegraph-collapsed lines: "module;main;bump 42"
//   to_json()    everything, deterministically ordered
//
// Cost model: a disarmed machine pays one integer compare per executed
// instruction; an armed one additionally pays the countdown decrement.
// Sample processing itself is off the dispatch loop's critical path only
// in the sense that it runs at the sampling rate, not the instruction
// rate — keep periods coarse (>= 64) in latency-sensitive runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/sim.hpp"
#include "vm/machine.hpp"

namespace surgeon::profile {

/// How app::Runtime drives the sample countdowns.
struct ProfileOptions {
  /// Virtual-clock sampling period: every `interval_us` the runtime arms a
  /// one-shot sample on every live module (0 disables the timer). NOTE:
  /// like heartbeats, the self-rescheduling tick keeps the simulator
  /// permanently non-idle — use predicate- or time-bounded runs.
  net::SimTime interval_us = 0;
  /// Instruction-period sampling: every `every_insns` executed
  /// instructions of each module (0 disables). Deterministic and dense;
  /// the mode used for opcode/superinstruction evidence.
  std::uint64_t every_insns = 0;
};

/// Per-(module, function) sample attribution.
struct FunctionStat {
  /// Samples whose innermost activation record was this function.
  std::uint64_t self = 0;
  /// Samples with this function anywhere on the stack (counted once per
  /// sample, so recursion does not inflate it).
  std::uint64_t cum = 0;
};

class Profiler : public vm::SampleSink {
 public:
  /// `opcode_window` is the number of static opcodes recorded per sample
  /// (the sampled instruction plus its followers); sequences of this
  /// length are what the superinstruction picker ranks.
  explicit Profiler(std::size_t opcode_window = 3)
      : opcode_window_(opcode_window) {}

  /// Aggregates one sample of `module`'s machine. app::Runtime calls this
  /// through its per-process taps; standalone tests may call it directly.
  void sample(const std::string& module, const vm::Machine& machine);

  /// vm::SampleSink for machines profiled outside a Runtime (the module
  /// name is then empty).
  void on_sample(const vm::Machine& machine) override {
    sample(std::string{}, machine);
  }

  void clear();

  // --- aggregates (maps iterate in key order: exporters are deterministic)

  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    return total_samples_;
  }
  using ModuleFnKey = std::pair<std::string, std::string>;
  [[nodiscard]] const std::map<ModuleFnKey, FunctionStat>& functions()
      const noexcept {
    return functions_;
  }
  /// (module, opcode name) -> samples that hit the opcode.
  [[nodiscard]] const std::map<ModuleFnKey, std::uint64_t>& opcodes()
      const noexcept {
    return opcodes_;
  }
  /// (module, "op1+op2+op3") -> samples that hit the static sequence.
  [[nodiscard]] const std::map<ModuleFnKey, std::uint64_t>& sequences()
      const noexcept {
    return sequences_;
  }
  /// folded stack ("module;main;bump") -> samples.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& folded()
      const noexcept {
    return folded_;
  }

  // --- exporters ----------------------------------------------------------

  /// Flamegraph-collapsed format, one "stack count" line per folded stack,
  /// sorted by stack string — pipe into flamegraph.pl as-is.
  [[nodiscard]] std::string to_folded() const;
  /// {"total_samples":N,"functions":[...],"opcodes":[...],
  ///  "sequences":[...],"stacks":[...]}.
  [[nodiscard]] std::string to_json() const;

 private:
  std::size_t opcode_window_;
  std::uint64_t total_samples_ = 0;
  std::map<ModuleFnKey, FunctionStat> functions_;
  std::map<ModuleFnKey, std::uint64_t> opcodes_;
  std::map<ModuleFnKey, std::uint64_t> sequences_;
  std::map<std::string, std::uint64_t> folded_;
  std::vector<std::uint32_t> stack_buf_;  // reused per sample
};

}  // namespace surgeon::profile
