#include "profile/profiler.hpp"

#include <algorithm>
#include <sstream>

#include "vm/bytecode.hpp"

namespace surgeon::profile {

namespace {

/// Identifier-grade JSON quoting (module/function/opcode names only hold
/// printable characters, but a paranoid escape is cheap on export).
std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Profiler::sample(const std::string& module, const vm::Machine& machine) {
  if (machine.stack_depth() == 0) return;
  ++total_samples_;

  // Self + cumulative function attribution. The stack is a handful of
  // frames; the linear dedup scan beats a per-sample set allocation.
  machine.stack_functions(stack_buf_);
  const std::uint32_t top_fn = stack_buf_.back();
  ++functions_[{module, machine.effective_function(top_fn).name}].self;
  for (std::size_t i = 0; i < stack_buf_.size(); ++i) {
    bool first_occurrence = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (stack_buf_[j] == stack_buf_[i]) {
        first_occurrence = false;
        break;
      }
    }
    if (first_occurrence) {
      ++functions_[{module, machine.effective_function(stack_buf_[i]).name}]
            .cum;
    }
  }

  // Folded stack for the flamegraph: module;fn1;fn2;... bottom to top.
  std::string stack = module;
  for (std::uint32_t fn : stack_buf_) {
    if (!stack.empty()) stack += ';';
    stack += machine.effective_function(fn).name;
  }
  ++folded_[stack];

  // Opcode and static-sequence evidence.
  const std::vector<vm::Op> window = machine.peek_ops(opcode_window_);
  if (window.empty()) return;
  ++opcodes_[{module, vm::op_name(window.front())}];
  if (window.size() == opcode_window_) {
    std::string seq;
    for (vm::Op op : window) {
      if (!seq.empty()) seq += '+';
      seq += vm::op_name(op);
    }
    ++sequences_[{module, std::move(seq)}];
  }
}

void Profiler::clear() {
  total_samples_ = 0;
  functions_.clear();
  opcodes_.clear();
  sequences_.clear();
  folded_.clear();
}

std::string Profiler::to_folded() const {
  std::ostringstream os;
  for (const auto& [stack, count] : folded_) {
    os << stack << " " << count << "\n";
  }
  return os.str();
}

std::string Profiler::to_json() const {
  std::ostringstream os;
  os << "{\"total_samples\":" << total_samples_ << ",\"functions\":[";
  bool first = true;
  for (const auto& [key, stat] : functions_) {
    if (!first) os << ",";
    first = false;
    os << "{\"module\":" << json_quote(key.first)
       << ",\"function\":" << json_quote(key.second)
       << ",\"self\":" << stat.self << ",\"cum\":" << stat.cum << "}";
  }
  os << "],\"opcodes\":[";
  first = true;
  for (const auto& [key, count] : opcodes_) {
    if (!first) os << ",";
    first = false;
    os << "{\"module\":" << json_quote(key.first)
       << ",\"op\":" << json_quote(key.second) << ",\"count\":" << count
       << "}";
  }
  os << "],\"sequences\":[";
  first = true;
  for (const auto& [key, count] : sequences_) {
    if (!first) os << ",";
    first = false;
    os << "{\"module\":" << json_quote(key.first)
       << ",\"seq\":" << json_quote(key.second) << ",\"count\":" << count
       << "}";
  }
  os << "],\"stacks\":[";
  first = true;
  for (const auto& [stack, count] : folded_) {
    if (!first) os << ",";
    first = false;
    os << "{\"stack\":" << json_quote(stack) << ",\"count\":" << count << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace surgeon::profile
