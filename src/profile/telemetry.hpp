// The cluster telemetry aggregation plane (surgeon::profile).
//
// Metrics (PR 1) and traces (PR 3) are per-machine: mh_stats answers from
// the local registry only. This plane adds the cluster view that
// metrics-driven reconfiguration (ROADMAP item 3, after Vogel et al.'s
// autonomous reconfiguration procedures) needs:
//
//   Reporter   one per machine. A real bus module (registered, bound,
//              streaming on its "deltas" interface) that ticks on the
//              virtual clock, diffs the machine's metric series against its
//              last report, and streams the *deltas* to the collector over
//              the ordinary message path — so telemetry traffic rides the
//              reliable delivery layer, is faulted by chaos like any other
//              traffic, and survives replacements via queue capture.
//
//   Collector  a native bus module maintaining sliding-window aggregates
//              (totals, rates, p50/p95/p99 via histogram bucket merge)
//              keyed by machine/module/iface/metric. Answers the new
//              mh_top query (bus::Client::mh_top / tools/mh_top). It is
//              itself replaceable by the Figure-5 script below: it
//              divulges its windows as an abstract state buffer when
//              signalled, and a clone installs them — no window is lost.
//
// Window semantics: the window advances with DATA, not with virtual time.
// A delta is accredited to the slot covering its arrival time; slots are
// created lazily and pruned to the configured depth. An idle cluster's
// mh_top therefore shows the last active window unchanged — which is what
// makes "byte-identical aggregates across the collector's own replacement"
// a meaningful, testable property.
//
// Delta-stream wire format, one message per changed series per tick on
// deltas -> ingest: [machine, module, iface, metric, kind, payload...]
//   kind "c": payload = [delta]                      (counter increment)
//   kind "g": payload = [value]                      (gauge, absolute)
//   kind "h": payload = [bound, delta]...            (histogram buckets;
//             bound -1 is the +Inf bucket)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/bus.hpp"
#include "bus/client.hpp"
#include "obs/metrics.hpp"
#include "serialize/state.hpp"

namespace surgeon::profile {

/// ModuleInfo.source tag marking telemetry-plane modules. Reporters skip
/// series belonging to tagged modules: streaming a delta bumps the bus
/// counters of the stream itself, and reporting those would feed back into
/// a self-sustaining telemetry loop that never quiesces.
inline constexpr const char* kTelemetrySource = "builtin:telemetry";

/// One aggregate key: where the series lives and what it measures.
struct SeriesId {
  std::string machine;
  std::string module;
  std::string iface;   // empty for module-level series
  std::string metric;  // registry family name

  friend auto operator<=>(const SeriesId&, const SeriesId&) = default;
};

// --- Reporter ----------------------------------------------------------------

class Reporter {
 public:
  /// Registers module "telemetry@<machine>" on `machine`, binds its
  /// "deltas" interface to `collector_module`.ingest, and starts ticking
  /// every `interval_us` of virtual time.
  Reporter(bus::Bus& bus, obs::MetricsRegistry& registry, std::string machine,
           std::string collector_module, net::SimTime interval_us = 100'000);
  ~Reporter();

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  [[nodiscard]] const std::string& module_name() const noexcept {
    return module_;
  }
  /// Diffs and streams immediately (tests; the tick calls this too).
  void flush();
  /// Stops the tick chain and stops streaming. The module stays registered
  /// (its in-flight deltas still need their endpoint) until destruction.
  void stop() noexcept { alive_.reset(); }

  [[nodiscard]] std::uint64_t deltas_sent() const noexcept {
    return deltas_sent_;
  }

 private:
  void schedule_tick();

  bus::Bus* bus_;
  obs::MetricsRegistry* registry_;
  std::string machine_;
  std::string module_;
  bus::Client client_;
  net::SimTime interval_us_;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  std::uint64_t deltas_sent_ = 0;
  // Last reported value per registry series, keyed exactly as the registry
  // keys them so renamed/re-labelled series never collide.
  std::map<obs::MetricsRegistry::SeriesKey, std::uint64_t> last_counter_;
  std::map<obs::MetricsRegistry::SeriesKey, std::int64_t> last_gauge_;
  std::map<obs::MetricsRegistry::SeriesKey, std::vector<std::uint64_t>>
      last_hist_;
};

// --- Collector ---------------------------------------------------------------

struct CollectorOptions {
  /// Processing cadence: drain the ingest queue and handle reconfiguration
  /// traffic every this many virtual microseconds.
  net::SimTime tick_us = 50'000;
  /// One window slot covers this much virtual time.
  net::SimTime slot_us = 1'000'000;
  /// Slots retained; the sliding window spans slot_us * slots.
  std::size_t slots = 8;
};

class Collector {
 public:
  /// Registers the collector module (interfaces: "ingest") on `machine`.
  /// STATUS "new" activates immediately; "clone" stays passive until a
  /// state buffer arrives (mh_decode discipline, Figure 4).
  Collector(bus::Bus& bus, std::string module_name, std::string machine,
            CollectorOptions options = {}, std::string status = "new");
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  [[nodiscard]] const std::string& module_name() const noexcept {
    return module_;
  }
  [[nodiscard]] const CollectorOptions& options() const noexcept {
    return options_;
  }
  /// Clone: has the state buffer been installed? ("new": true from start.)
  [[nodiscard]] bool active() const noexcept { return active_; }
  /// Signalled and divulged; no longer processing (awaiting retirement).
  [[nodiscard]] bool passivated() const noexcept { return passivated_; }
  [[nodiscard]] std::uint64_t deltas_applied() const noexcept {
    return deltas_applied_;
  }
  /// Messages that did not parse as delta-stream records (stale or foreign
  /// traffic swept into the ingest queue; counted, never fatal).
  [[nodiscard]] std::uint64_t malformed_dropped() const noexcept {
    return malformed_;
  }

  /// The mh_top rendering: "table" (fixed-width, rate-sorted) or "json"
  /// (deterministic; byte-stable across a replacement of the collector).
  [[nodiscard]] std::string top(const std::string& format) const;

  /// Removes the module from the bus and stops the tick chain.
  void retire();

  // --- Figure 5 participation (the native-module variant of the VM's
  // --- capture/restore blocks) --------------------------------------------

  /// The window state as an abstract state buffer (what a reconfiguration
  /// signal makes the collector divulge).
  [[nodiscard]] ser::StateBuffer encode_state() const;
  /// Installs a divulged window state and activates (clone side).
  void install_state(const ser::StateBuffer& state);

  /// One processing step, exposed for deterministic tests; normally driven
  /// by the virtual-clock tick chain.
  void tick();

 private:
  struct Slot {
    net::SimTime start_us = 0;
    std::map<SeriesId, std::uint64_t> counters;
    /// bound -> summed delta; bound -1 is the +Inf bucket.
    std::map<SeriesId, std::map<std::int64_t, std::uint64_t>> hists;
  };

  void schedule_tick();
  void activate();
  void apply(const bus::Message& msg);
  [[nodiscard]] Slot& slot_for(net::SimTime at);
  [[nodiscard]] std::string top_json() const;
  [[nodiscard]] std::string top_table() const;

  bus::Bus* bus_;
  std::string module_;
  std::string machine_;
  CollectorOptions options_;
  bus::Client client_;
  bool active_ = false;
  bool passivated_ = false;
  std::uint64_t deltas_applied_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t top_token_ = 0;
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
  std::vector<Slot> slots_;  // oldest first; size <= options_.slots
  std::map<SeriesId, std::int64_t> gauges_;
};

// --- Figure-5 replacement of the collector -----------------------------------

struct ReplaceCollectorReport {
  std::string old_instance;
  std::string new_instance;
  net::SimTime requested_at = 0;
  net::SimTime divulged_at = 0;
  net::SimTime restored_at = 0;
  std::size_t state_bytes = 0;
};

/// Replaces the collector with a clone (optionally on another machine),
/// following the Figure 5 steps — obj_cap, clone register, bind-edit prep,
/// objstate move, rebind, add, del — against the bus's native primitives;
/// each step runs under the same obs::Span names the VM-module script
/// records, so collector replacements appear on the same disruption
/// timeline. `pump` advances the world one scheduling round (typically
/// `[&] { return rt.step(); }`); `collector` is swapped for the clone on
/// success. Throws support::BusError when the script cannot complete.
ReplaceCollectorReport replace_collector(
    bus::Bus& bus, std::unique_ptr<Collector>& collector,
    const std::string& machine, const std::function<bool()>& pump,
    std::uint64_t max_rounds = 1'000'000);

}  // namespace surgeon::profile
