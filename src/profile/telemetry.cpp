#include "profile/telemetry.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/diag.hpp"

namespace surgeon::profile {

namespace {

const std::string* label_of(const obs::Labels& labels, const char* key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string fmt_fixed3(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

/// The +Inf bucket sentinel on the wire and in window slots.
constexpr std::int64_t kInfBound = -1;

}  // namespace

// --- Reporter ----------------------------------------------------------------

Reporter::Reporter(bus::Bus& bus, obs::MetricsRegistry& registry,
                   std::string machine, std::string collector_module,
                   net::SimTime interval_us)
    : bus_(&bus),
      registry_(&registry),
      machine_(std::move(machine)),
      module_("telemetry@" + machine_),
      client_(bus, module_),
      interval_us_(interval_us) {
  bus::ModuleInfo info;
  info.name = module_;
  info.machine = machine_;
  info.source = kTelemetrySource;
  info.interfaces.push_back(
      bus::InterfaceSpec{"deltas", bus::IfaceRole::kDefine, "", ""});
  bus_->add_module(std::move(info));
  bus_->add_binding(bus::BindingEnd{module_, "deltas"},
                    bus::BindingEnd{std::move(collector_module), "ingest"});
  schedule_tick();
}

Reporter::~Reporter() {
  stop();
  if (bus_->has_module(module_)) bus_->remove_module(module_);
}

void Reporter::schedule_tick() {
  std::weak_ptr<int> alive = alive_;
  bus_->simulator().schedule_after(interval_us_, [this, alive] {
    if (alive.expired()) return;
    flush();
    schedule_tick();
  });
}

void Reporter::flush() {
  // Which registry series are ours to report? Those labelled with a module
  // that is (a) still on the bus, (b) hosted on this machine, and (c) not
  // part of the telemetry plane itself (kTelemetrySource — reporting our
  // own stream's counters would be a feedback loop that never quiesces).
  const auto owner_iface =
      [&](const obs::Labels& labels) -> std::pair<const bus::ModuleInfo*,
                                                  std::string> {
    const std::string* module = label_of(labels, "module");
    if (module == nullptr || !bus_->has_module(*module)) return {nullptr, ""};
    const bus::ModuleInfo& info = bus_->module_info(*module);
    if (info.machine != machine_ || info.source == kTelemetrySource) {
      return {nullptr, ""};
    }
    const std::string* iface = label_of(labels, "iface");
    return {&info, iface != nullptr ? *iface : std::string{}};
  };

  for (const auto& [key, counter] : registry_->counters()) {
    const auto [info, iface] = owner_iface(key.second);
    if (info == nullptr) continue;
    std::uint64_t& last = last_counter_[key];
    const std::uint64_t value = counter.value();
    if (value < last) last = 0;  // registry was cleared: resynchronize
    if (value == last) continue;
    const std::uint64_t delta = value - last;
    last = value;
    client_.write("deltas",
                  {ser::Value{machine_}, ser::Value{info->name},
                   ser::Value{iface}, ser::Value{key.first},
                   ser::Value{std::string{"c"}},
                   ser::Value{static_cast<std::int64_t>(delta)}});
    ++deltas_sent_;
  }
  for (const auto& [key, gauge] : registry_->gauges()) {
    const auto [info, iface] = owner_iface(key.second);
    if (info == nullptr) continue;
    const std::int64_t value = gauge.value();
    auto it = last_gauge_.find(key);
    if (it != last_gauge_.end() && it->second == value) continue;
    last_gauge_[key] = value;
    client_.write("deltas", {ser::Value{machine_}, ser::Value{info->name},
                             ser::Value{iface}, ser::Value{key.first},
                             ser::Value{std::string{"g"}}, ser::Value{value}});
    ++deltas_sent_;
  }
  for (const auto& [key, hist] : registry_->histograms()) {
    const auto [info, iface] = owner_iface(key.second);
    if (info == nullptr) continue;
    const std::vector<std::uint64_t>& counts = hist.bucket_counts();
    std::vector<std::uint64_t>& last = last_hist_[key];
    if (last.size() != counts.size()) last.assign(counts.size(), 0);
    std::vector<ser::Value> values = {
        ser::Value{machine_}, ser::Value{info->name}, ser::Value{iface},
        ser::Value{key.first}, ser::Value{std::string{"h"}}};
    bool changed = false;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] < last[i]) last[i] = 0;  // registry cleared
      if (counts[i] == last[i]) continue;
      const std::int64_t bound =
          i < hist.upper_bounds().size()
              ? static_cast<std::int64_t>(hist.upper_bounds()[i])
              : kInfBound;
      values.emplace_back(bound);
      values.emplace_back(static_cast<std::int64_t>(counts[i] - last[i]));
      last[i] = counts[i];
      changed = true;
    }
    if (!changed) continue;
    client_.write("deltas", std::move(values));
    ++deltas_sent_;
  }
}

// --- Collector ---------------------------------------------------------------

Collector::Collector(bus::Bus& bus, std::string module_name,
                     std::string machine, CollectorOptions options,
                     std::string status)
    : bus_(&bus),
      module_(std::move(module_name)),
      machine_(std::move(machine)),
      options_(options),
      client_(bus, module_) {
  bus::ModuleInfo info;
  info.name = module_;
  info.machine = machine_;
  info.status = status;
  info.source = kTelemetrySource;
  info.interfaces.push_back(
      bus::InterfaceSpec{"ingest", bus::IfaceRole::kUse, "", ""});
  bus_->add_module(std::move(info));
  if (status == "new") activate();
  schedule_tick();
}

Collector::~Collector() {
  bus_->clear_top_handler(top_token_);
  retire();
}

void Collector::retire() {
  alive_.reset();
  if (bus_->has_module(module_)) bus_->remove_module(module_);
}

void Collector::activate() {
  active_ = true;
  top_token_ = bus_->set_top_handler(
      [this](const std::string& format) { return top(format); });
}

void Collector::schedule_tick() {
  std::weak_ptr<int> alive = alive_;
  bus_->simulator().schedule_after(options_.tick_us, [this, alive] {
    if (alive.expired()) return;
    tick();
  });
}

void Collector::tick() {
  if (passivated_) return;  // divulged; awaiting retirement, no reschedule
  if (!active_) {
    // Clone discipline (Figure 4): the ingest queue is untouched until the
    // state buffer arrives. Queued deltas wait, like application traffic.
    if (bus_->has_incoming_state(module_)) {
      auto bytes = bus_->take_incoming_state(module_);
      install_state(ser::StateBuffer::decode(*bytes));
      // The first drain happens on the NEXT tick: a query right after the
      // install reads exactly the divulged windows, byte-identical to the
      // old instance's last answer.
    }
    schedule_tick();
    return;
  }
  if (client_.take_pending_signal()) {
    // Passivate BEFORE draining: anything still queued (or in flight)
    // belongs to the successor and reaches it via queue capture.
    (void)client_.encode_state(encode_state());
    passivated_ = true;
    return;
  }
  while (auto msg = client_.try_read("ingest")) apply(*msg);
  schedule_tick();
}

Collector::Slot& Collector::slot_for(net::SimTime at) {
  const net::SimTime start = at - (at % options_.slot_us);
  if (slots_.empty() || start > slots_.back().start_us) {
    slots_.push_back(Slot{start, {}, {}});
    while (slots_.size() > options_.slots) slots_.erase(slots_.begin());
  }
  return slots_.back();
}

void Collector::apply(const bus::Message& msg) {
  const std::vector<ser::Value>& v = msg.values;
  const bool framed = v.size() >= 6 && v[0].is_string() && v[1].is_string() &&
                      v[2].is_string() && v[3].is_string() && v[4].is_string();
  if (!framed) {
    ++malformed_;
    return;
  }
  SeriesId id{v[0].as_string(), v[1].as_string(), v[2].as_string(),
              v[3].as_string()};
  const std::string& kind = v[4].as_string();
  const net::SimTime now = bus_->simulator().now();
  if (kind == "c" && v[5].is_int()) {
    slot_for(now).counters[std::move(id)] +=
        static_cast<std::uint64_t>(v[5].as_int());
  } else if (kind == "g" && v[5].is_int()) {
    gauges_[std::move(id)] = v[5].as_int();
  } else if (kind == "h" && (v.size() - 5) % 2 == 0) {
    for (std::size_t i = 5; i + 1 < v.size(); i += 2) {
      if (!v[i].is_int() || !v[i + 1].is_int()) {
        ++malformed_;
        return;
      }
    }
    auto& buckets = slot_for(now).hists[std::move(id)];
    for (std::size_t i = 5; i + 1 < v.size(); i += 2) {
      buckets[v[i].as_int()] +=
          static_cast<std::uint64_t>(v[i + 1].as_int());
    }
  } else {
    ++malformed_;
    return;
  }
  ++deltas_applied_;
}

// --- Collector: state divulge/install ---------------------------------------

ser::StateBuffer Collector::encode_state() const {
  using ser::StateFrame;
  using ser::Value;
  ser::StateBuffer state;
  const auto str = [](const std::string& s) { return Value{s}; };
  const auto num = [](auto n) {
    return Value{static_cast<std::int64_t>(n)};
  };
  state.push_frame(StateFrame{{num(1),  // format version
                               num(options_.tick_us), num(options_.slot_us),
                               num(options_.slots), num(slots_.size())}});
  for (const Slot& slot : slots_) {
    state.push_frame(StateFrame{{num(0), num(slot.start_us)}});
    for (const auto& [id, total] : slot.counters) {
      state.push_frame(StateFrame{{num(1), str(id.machine), str(id.module),
                                   str(id.iface), str(id.metric),
                                   num(total)}});
    }
    for (const auto& [id, buckets] : slot.hists) {
      StateFrame frame{{num(2), str(id.machine), str(id.module),
                        str(id.iface), str(id.metric)}};
      for (const auto& [bound, count] : buckets) {
        frame.values.push_back(num(bound));
        frame.values.push_back(num(count));
      }
      state.push_frame(std::move(frame));
    }
  }
  for (const auto& [id, value] : gauges_) {
    state.push_frame(StateFrame{{num(3), str(id.machine), str(id.module),
                                 str(id.iface), str(id.metric), num(value)}});
  }
  return state;
}

void Collector::install_state(const ser::StateBuffer& state) {
  const auto& frames = state.frames();
  if (frames.empty() || frames[0].values.size() < 5 ||
      frames[0].values[0].as_int() != 1) {
    throw support::BusError("collector state: unknown format");
  }
  // The divulged window geometry wins: merging slots cut at a different
  // grain would mis-attribute deltas.
  options_.tick_us = frames[0].values[1].as_int();
  options_.slot_us = frames[0].values[2].as_int();
  options_.slots = static_cast<std::size_t>(frames[0].values[3].as_int());
  slots_.clear();
  gauges_.clear();
  const auto id_of = [](const ser::StateFrame& f) {
    return SeriesId{f.values[1].as_string(), f.values[2].as_string(),
                    f.values[3].as_string(), f.values[4].as_string()};
  };
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const ser::StateFrame& f = frames[i];
    if (f.values.empty()) throw support::BusError("collector state: bad frame");
    switch (f.values[0].as_int()) {
      case 0:
        slots_.push_back(Slot{f.values[1].as_int(), {}, {}});
        break;
      case 1:
        if (slots_.empty()) {
          throw support::BusError("collector state: counter before slot");
        }
        slots_.back().counters[id_of(f)] =
            static_cast<std::uint64_t>(f.values[5].as_int());
        break;
      case 2: {
        if (slots_.empty()) {
          throw support::BusError("collector state: histogram before slot");
        }
        auto& buckets = slots_.back().hists[id_of(f)];
        for (std::size_t j = 5; j + 1 < f.values.size(); j += 2) {
          buckets[f.values[j].as_int()] =
              static_cast<std::uint64_t>(f.values[j + 1].as_int());
        }
        break;
      }
      case 3:
        gauges_[id_of(f)] = f.values[5].as_int();
        break;
      default:
        throw support::BusError("collector state: unknown frame kind");
    }
  }
  activate();
}

// --- Collector: the mh_top renderings ----------------------------------------

namespace {

/// One series aggregated across the window, ready to render.
struct TopRow {
  SeriesId id;
  bool is_hist = false;
  std::uint64_t total = 0;  // counter sum / histogram observation count
  double rate = 0.0;        // per second of window span
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

}  // namespace

std::string Collector::top(const std::string& format) const {
  if (format == "json") return top_json();
  if (format == "table") return top_table();
  throw support::BusError("mh_top: unknown format '" + format +
                          "' (expected \"table\" or \"json\")");
}

namespace {

/// Window aggregation shared by both renderings. The span is data-derived
/// (first slot start to last slot end), matching the data-driven window
/// advance — so the output is a pure function of collector state, which is
/// what makes the before/after-replacement byte-identity hold.
template <typename SlotRange>
std::vector<TopRow> aggregate_rows(const SlotRange& slots,
                                   net::SimTime slot_us) {
  std::map<SeriesId, std::uint64_t> totals;
  std::map<SeriesId, std::map<std::int64_t, std::uint64_t>> hists;
  for (const auto& slot : slots) {
    for (const auto& [id, n] : slot.counters) totals[id] += n;
    for (const auto& [id, buckets] : slot.hists) {
      auto& merged = hists[id];
      for (const auto& [bound, count] : buckets) merged[bound] += count;
    }
  }
  net::SimTime span = 0;
  if (!slots.empty()) {
    span = (slots.back().start_us + slot_us) - slots.front().start_us;
  }
  std::vector<TopRow> rows;
  for (const auto& [id, total] : totals) {
    TopRow row;
    row.id = id;
    row.total = total;
    if (span != 0) {
      row.rate = static_cast<double>(total) * 1e6 / static_cast<double>(span);
    }
    rows.push_back(std::move(row));
  }
  for (const auto& [id, buckets] : hists) {
    TopRow row;
    row.id = id;
    row.is_hist = true;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;
    for (const auto& [bound, count] : buckets) {
      if (bound == kInfBound) continue;
      bounds.push_back(static_cast<std::uint64_t>(bound));
      counts.push_back(count);
      row.total += count;
    }
    auto inf = buckets.find(kInfBound);
    counts.push_back(inf != buckets.end() ? inf->second : 0);
    row.total += counts.back();
    if (span != 0) {
      row.rate =
          static_cast<double>(row.total) * 1e6 / static_cast<double>(span);
    }
    row.p50 = obs::Histogram::quantile_from_buckets(bounds, counts, row.total,
                                                    0.50);
    row.p95 = obs::Histogram::quantile_from_buckets(bounds, counts, row.total,
                                                    0.95);
    row.p99 = obs::Histogram::quantile_from_buckets(bounds, counts, row.total,
                                                    0.99);
    rows.push_back(std::move(row));
  }
  // Busiest first; the full SeriesId breaks rate ties deterministically.
  std::sort(rows.begin(), rows.end(), [](const TopRow& a, const TopRow& b) {
    if (a.rate != b.rate) return a.rate > b.rate;
    return a.id < b.id;
  });
  return rows;
}

}  // namespace

std::string Collector::top_json() const {
  const std::vector<TopRow> rows = aggregate_rows(slots_, options_.slot_us);
  net::SimTime span = 0;
  if (!slots_.empty()) {
    span = (slots_.back().start_us + options_.slot_us) -
           slots_.front().start_us;
  }
  std::ostringstream os;
  os << "{\"window_us\":" << span << ",\"slots\":" << slots_.size()
     << ",\"series\":[";
  bool first = true;
  for (const TopRow& row : rows) {
    if (!first) os << ",";
    first = false;
    os << "{\"machine\":" << json_quote(row.id.machine)
       << ",\"module\":" << json_quote(row.id.module)
       << ",\"iface\":" << json_quote(row.id.iface)
       << ",\"metric\":" << json_quote(row.id.metric) << ",\"kind\":\""
       << (row.is_hist ? "histogram" : "counter")
       << "\",\"total\":" << row.total
       << ",\"rate_per_s\":" << fmt_fixed3(row.rate);
    if (row.is_hist) {
      os << ",\"p50\":" << fmt_fixed3(row.p50)
         << ",\"p95\":" << fmt_fixed3(row.p95)
         << ",\"p99\":" << fmt_fixed3(row.p99);
    }
    os << "}";
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& [id, value] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "{\"machine\":" << json_quote(id.machine)
       << ",\"module\":" << json_quote(id.module)
       << ",\"iface\":" << json_quote(id.iface)
       << ",\"metric\":" << json_quote(id.metric) << ",\"value\":" << value
       << "}";
  }
  os << "]}";
  return os.str();
}

std::string Collector::top_table() const {
  const std::vector<TopRow> rows = aggregate_rows(slots_, options_.slot_us);
  // Replica roles, published by replicate::GroupManager as the
  // surgeon_replica_role gauge (1 = primary, 2 = follower). Rendered as a
  // column so an operator can see primaries/followers per machine at a
  // glance; modules outside any replica group show "-".
  std::map<std::pair<std::string, std::string>, std::int64_t> roles;
  for (const auto& [id, value] : gauges_) {
    if (id.metric == "surgeon_replica_role") {
      roles[{id.machine, id.module}] = value;
    }
  }
  const auto role_of = [&](const SeriesId& id) -> std::string {
    const auto it = roles.find({id.machine, id.module});
    if (it == roles.end()) return "-";
    if (it->second == 1) return "primary";
    if (it->second == 2) return "follower";
    return "?";
  };
  std::ostringstream os;
  os << std::left << std::setw(10) << "MACHINE" << std::setw(22) << "MODULE"
     << std::setw(10) << "ROLE" << std::setw(12) << "IFACE" << std::setw(42)
     << "METRIC" << std::right << std::setw(12) << "TOTAL" << std::setw(12)
     << "RATE/S" << std::setw(10) << "P50" << std::setw(10) << "P95"
     << std::setw(10) << "P99" << "\n";
  const auto quant = [&](double v, bool is_hist) {
    return is_hist ? fmt_fixed3(v) : std::string{"-"};
  };
  for (const TopRow& row : rows) {
    os << std::left << std::setw(10) << row.id.machine << std::setw(22)
       << row.id.module << std::setw(10) << role_of(row.id) << std::setw(12)
       << row.id.iface << std::setw(42) << row.id.metric << std::right
       << std::setw(12) << row.total << std::setw(12) << fmt_fixed3(row.rate)
       << std::setw(10) << quant(row.p50, row.is_hist) << std::setw(10)
       << quant(row.p95, row.is_hist) << std::setw(10)
       << quant(row.p99, row.is_hist) << "\n";
  }
  for (const auto& [id, value] : gauges_) {
    os << std::left << std::setw(10) << id.machine << std::setw(22)
       << id.module << std::setw(10) << role_of(id) << std::setw(12)
       << id.iface << std::setw(42) << id.metric << std::right << std::setw(12)
       << value << std::setw(12) << "-" << std::setw(10) << "-"
       << std::setw(10) << "-" << std::setw(10) << "-" << "\n";
  }
  return os.str();
}

// --- replace_collector -------------------------------------------------------

ReplaceCollectorReport replace_collector(bus::Bus& bus,
                                         std::unique_ptr<Collector>& collector,
                                         const std::string& machine,
                                         const std::function<bool()>& pump,
                                         std::uint64_t max_rounds) {
  if (collector == nullptr) {
    throw support::BusError("replace_collector: no collector attached");
  }
  obs::MetricsRegistry* reg = bus.metrics();
  net::Simulator& sim = bus.simulator();
  ReplaceCollectorReport report;
  report.old_instance = collector->module_name();
  report.requested_at = sim.now();

  // obj_cap: the current specification of the running instance.
  bus::ModuleInfo info;
  {
    obs::Span span(reg, "obj_cap", report.old_instance);
    info = bus.module_info(report.old_instance);
  }

  // clone register: a passive twin under a fresh name, possibly elsewhere.
  std::unique_ptr<Collector> clone;
  {
    obs::Span span(reg, "clone_register", report.old_instance);
    std::string name;
    for (int k = 2;; ++k) {
      name = report.old_instance + "#" + std::to_string(k);
      if (!bus.has_module(name)) break;
    }
    report.new_instance = name;
    clone = std::make_unique<Collector>(bus, name, machine,
                                        collector->options(), "clone");
  }

  // bind_edit_prep: repoint every peer binding and capture queued traffic.
  bus::BindEditBatch batch;
  {
    obs::Span span(reg, "bind_edit_prep", report.old_instance);
    for (const std::string& iface :
         bus.interface_names(report.old_instance)) {
      bus::BindingEnd old_end{report.old_instance, iface};
      bus::BindingEnd new_end{report.new_instance, iface};
      for (const bus::BindingEnd& peer : bus.bound_peers(old_end)) {
        batch.add(bus::BindEdit{bus::BindEdit::Op::kDel, old_end, peer});
        batch.add(bus::BindEdit{bus::BindEdit::Op::kAdd, new_end, peer});
      }
      batch.add(bus::BindEdit{bus::BindEdit::Op::kCaptureQueue, old_end,
                              new_end});
    }
  }

  // objstate_move: signal, await the divulged windows, ship them over.
  {
    obs::Span span(reg, "objstate_move", report.old_instance);
    bus.signal_reconfig(report.old_instance);
    std::uint64_t rounds = 0;
    while (!bus.has_divulged_state(report.old_instance)) {
      if (++rounds > max_rounds) {
        throw support::BusError("replace_collector: " + report.old_instance +
                                " never divulged its state");
      }
      (void)pump();
    }
    report.divulged_at = sim.now();
    std::vector<std::uint8_t> bytes =
        bus.take_divulged_state(report.old_instance);
    report.state_bytes = bytes.size();
    bus.deliver_state(info.machine, report.new_instance, std::move(bytes));
  }

  // rebind: the batch lands atomically; streams and queues migrate.
  {
    obs::Span span(reg, "rebind", report.old_instance);
    bus.rebind(batch);
  }

  // add: the clone activates once the state buffer is installed.
  {
    obs::Span span(reg, "add", report.old_instance);
    std::uint64_t rounds = 0;
    while (!clone->active()) {
      if (++rounds > max_rounds) {
        throw support::BusError("replace_collector: " + report.new_instance +
                                " never restored");
      }
      (void)pump();
    }
  }
  report.restored_at = sim.now();

  // del: retire the passivated instance; the clone is the collector now.
  {
    obs::Span span(reg, "del", report.old_instance);
    collector->retire();
  }
  collector = std::move(clone);
  return report;
}

}  // namespace surgeon::profile
