#include "vm/machine.hpp"

#include <algorithm>
#include <sstream>

#include "minic/builtins.hpp"

// Computed goto (&&label) drives the direct-threaded dispatch loop; it is a
// GCC/Clang extension. SURGEON_VM_FORCE_SWITCH_DISPATCH (a configure-time
// option) forces the portable switch loop even where the extension exists.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(SURGEON_VM_FORCE_SWITCH_DISPATCH)
#define SURGEON_VM_HAVE_COMPUTED_GOTO 1
#else
#define SURGEON_VM_HAVE_COMPUTED_GOTO 0
#endif

namespace surgeon::vm {

using minic::BuiltinId;
using support::ValueKind;
using support::VmError;

namespace {
DispatchMode g_default_dispatch_mode = SURGEON_VM_HAVE_COMPUTED_GOTO
                                           ? DispatchMode::kThreaded
                                           : DispatchMode::kSwitch;
}  // namespace

bool threaded_dispatch_supported() noexcept {
  return SURGEON_VM_HAVE_COMPUTED_GOTO != 0;
}

void set_default_dispatch_mode(DispatchMode mode) noexcept {
  g_default_dispatch_mode =
      threaded_dispatch_supported() ? mode : DispatchMode::kSwitch;
}

DispatchMode default_dispatch_mode() noexcept {
  return g_default_dispatch_mode;
}

const char* run_state_name(RunState state) noexcept {
  switch (state) {
    case RunState::kRunnable: return "runnable";
    case RunState::kBlockedRead: return "blocked-read";
    case RunState::kBlockedDecode: return "blocked-decode";
    case RunState::kSleeping: return "sleeping";
    case RunState::kDone: return "done";
    case RunState::kFault: return "fault";
  }
  return "?";
}

std::string rt_to_string(const RtValue& v) {
  std::ostringstream os;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    os << *d;
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    os << *s;
  } else {
    const auto& r = std::get<Ref>(v);
    switch (r.kind) {
      case Ref::Kind::kNull:
        os << "null";
        break;
      case Ref::Kind::kGlobal:
        os << "&global[" << r.a << "]";
        break;
      case Ref::Kind::kFrame:
        os << "&frame[" << r.a << "][" << r.b << "]";
        break;
      case Ref::Kind::kHeap:
        os << "heap(" << r.a << "+" << r.b << ")";
        break;
    }
  }
  return os.str();
}

namespace {

[[nodiscard]] RtValue default_slot_value(SlotType type) {
  switch (type) {
    case SlotType::kInt:
      return std::int64_t{0};
    case SlotType::kReal:
      return 0.0;
    case SlotType::kString:
      return std::string{};
    case SlotType::kPointer:
      return Ref{};
  }
  return std::int64_t{0};
}

[[nodiscard]] RtValue from_abstract(const ser::Value& v) {
  if (v.is_int()) return v.as_int();
  if (v.is_real()) return v.as_real();
  if (v.is_string()) return v.as_string();
  // The only pointer that can appear outside a decoded state (constants,
  // global initializers) is null.
  if (v.as_pointer().is_null()) return Ref{};
  throw VmError("abstract pointer needs the decode id map");
}

[[nodiscard]] std::int64_t need_int(const RtValue& v, const char* what) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  throw VmError(std::string(what) + ": expected an integer, got " +
                rt_to_string(v));
}

[[nodiscard]] double need_num(const RtValue& v, const char* what) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) return *d;
  throw VmError(std::string(what) + ": expected a number, got " +
                rt_to_string(v));
}

[[nodiscard]] const std::string& need_str(const RtValue& v, const char* what) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  throw VmError(std::string(what) + ": expected a string, got " +
                rt_to_string(v));
}

[[nodiscard]] Ref need_ref(const RtValue& v, const char* what) {
  if (const auto* r = std::get_if<Ref>(&v)) return *r;
  throw VmError(std::string(what) + ": expected a pointer, got " +
                rt_to_string(v));
}

// --- dispatch-loop helpers (machine_loop.inc) ------------------------------

/// Sentinel opcode of the decode sentinel at index == code size; dispatches
/// to the pc-ran-off-the-end handler in both loop variants.
constexpr Op kOpOffEnd = static_cast<Op>(0xFF);

enum class CmpKind : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// One comparison predicate per opcode (instantiated per kind), replacing
/// the old dispatch-then-switch-again comparison path.
template <CmpKind K>
[[nodiscard]] bool compare_values(const RtValue& lhs, const RtValue& rhs) {
  if (std::holds_alternative<Ref>(lhs) || std::holds_alternative<Ref>(rhs)) {
    if constexpr (K != CmpKind::kEq && K != CmpKind::kNe) {
      throw VmError("pointers support only == and !=");
    } else {
      Ref a = need_ref(lhs, "compare");
      Ref b = need_ref(rhs, "compare");
      bool eq = (a == b) || (a.kind == Ref::Kind::kNull &&
                             b.kind == Ref::Kind::kNull);
      return (K == CmpKind::kEq) == eq;
    }
  }
  int cmp;  // -1 / 0 / +1
  if (std::holds_alternative<std::string>(lhs) ||
      std::holds_alternative<std::string>(rhs)) {
    const std::string& a = need_str(lhs, "compare");
    const std::string& b = need_str(rhs, "compare");
    cmp = a < b ? -1 : (a == b ? 0 : 1);
  } else {
    double a = need_num(lhs, "compare");
    double b = need_num(rhs, "compare");
    cmp = a < b ? -1 : (a == b ? 0 : 1);
  }
  switch (K) {
    case CmpKind::kEq: return cmp == 0;
    case CmpKind::kNe: return cmp != 0;
    case CmpKind::kLt: return cmp < 0;
    case CmpKind::kLe: return cmp <= 0;
    case CmpKind::kGt: return cmp > 0;
    case CmpKind::kGe: return cmp >= 0;
  }
  return false;
}

/// Runtime-kind comparison for kStmtSlotCmpConstJf, whose head `b` operand
/// carries the original comparison opcode.
[[nodiscard]] bool compare_values_dyn(Op cmp, const RtValue& lhs,
                                      const RtValue& rhs) {
  switch (cmp) {
    case Op::kEq: return compare_values<CmpKind::kEq>(lhs, rhs);
    case Op::kNe: return compare_values<CmpKind::kNe>(lhs, rhs);
    case Op::kLt: return compare_values<CmpKind::kLt>(lhs, rhs);
    case Op::kLe: return compare_values<CmpKind::kLe>(lhs, rhs);
    case Op::kGt: return compare_values<CmpKind::kGt>(lhs, rhs);
    default: return compare_values<CmpKind::kGe>(lhs, rhs);
  }
}

[[nodiscard]] RtValue arith_add(const RtValue& lhs, const RtValue& rhs) {
  if (std::holds_alternative<std::string>(lhs) &&
      std::holds_alternative<std::string>(rhs)) {
    return std::get<std::string>(lhs) + std::get<std::string>(rhs);
  }
  if (std::holds_alternative<std::int64_t>(lhs) &&
      std::holds_alternative<std::int64_t>(rhs)) {
    return std::get<std::int64_t>(lhs) + std::get<std::int64_t>(rhs);
  }
  return need_num(lhs, "+") + need_num(rhs, "+");
}

[[nodiscard]] RtValue arith_sub(const RtValue& lhs, const RtValue& rhs) {
  if (std::holds_alternative<std::int64_t>(lhs) &&
      std::holds_alternative<std::int64_t>(rhs)) {
    return std::get<std::int64_t>(lhs) - std::get<std::int64_t>(rhs);
  }
  return need_num(lhs, "arith") - need_num(rhs, "arith");
}

[[nodiscard]] RtValue arith_mul(const RtValue& lhs, const RtValue& rhs) {
  if (std::holds_alternative<std::int64_t>(lhs) &&
      std::holds_alternative<std::int64_t>(rhs)) {
    return std::get<std::int64_t>(lhs) * std::get<std::int64_t>(rhs);
  }
  return need_num(lhs, "arith") * need_num(rhs, "arith");
}

[[nodiscard]] RtValue arith_div(const RtValue& lhs, const RtValue& rhs) {
  if (std::holds_alternative<std::int64_t>(lhs) &&
      std::holds_alternative<std::int64_t>(rhs)) {
    std::int64_t b = std::get<std::int64_t>(rhs);
    if (b == 0) throw VmError("integer division by zero");
    return std::get<std::int64_t>(lhs) / b;
  }
  return need_num(lhs, "arith") / need_num(rhs, "arith");
}

/// Spills the cached pc and counters and reports the executed count when a
/// fault unwinds out of the dispatch loop (fr is nulled around
/// frame-structure mutations, so the spill can never write through a
/// dangling pointer).
template <typename FrameT>
struct UnwindSpill {
  std::uint64_t& n;
  std::uint64_t& insns_base;
  std::uint64_t& cd;
  std::uint64_t& instructions_executed;
  std::uint64_t& sample_countdown;
  FrameT*& fr;
  std::uint32_t& pc;
  StepResult* resultp;
  bool armed = true;
  ~UnwindSpill() {
    if (!armed) return;
    resultp->instructions = n;
    instructions_executed = insns_base + n;
    sample_countdown = cd;
    if (fr != nullptr) fr->pc = pc;
  }
};

}  // namespace

Machine::Machine(const CompiledProgram& program, net::Arch arch,
                 std::uint64_t seed)
    : prog_(&program), arch_(std::move(arch)), rng_(seed) {
  globals_.reserve(program.globals.size());
  for (const auto& g : program.globals) {
    // Pointer globals can only be initialized to null.
    globals_.push_back(g.init.is_pointer() ? RtValue{Ref{}}
                                           : from_abstract(g.init));
  }
  decoded_.resize(program.functions.size());
  sync_rt_consts();
  push_frame(program.main_index, 0);
}

void Machine::sync_rt_consts() {
  rt_consts_.clear();
  rt_consts_.reserve(prog_->constants.size() + extra_constants_.size());
  for (const auto& v : prog_->constants) rt_consts_.push_back(from_abstract(v));
  for (const auto& v : extra_constants_) rt_consts_.push_back(from_abstract(v));
}

void Machine::set_dispatch_mode(DispatchMode mode) noexcept {
  if (!threaded_dispatch_supported()) mode = DispatchMode::kSwitch;
  if (mode == dispatch_mode_) return;
  dispatch_mode_ = mode;
  // Decoded handler addresses are per-mode.
  for (auto& d : decoded_) d.reset();
}

const DecodedInsn* Machine::decoded_code(std::uint32_t fn_index,
                                         std::uint32_t& size) {
  auto& slot = decoded_[fn_index];
  if (!slot) {
    const CompiledFunction& fn = effective_function(fn_index);
    const void* const* targets = nullptr;
#if SURGEON_VM_HAVE_COMPUTED_GOTO
    if (dispatch_mode_ == DispatchMode::kThreaded) {
      targets = run_threaded(nullptr, 0);
    }
#endif
    auto vec = std::make_unique<std::vector<DecodedInsn>>();
    vec->reserve(fn.code.size() + 1);
    for (const Insn& insn : fn.code) {
      DecodedInsn d;
      d.op = insn.op;
      d.a = insn.a;
      d.b = insn.b;
      if (targets != nullptr) {
        d.target = targets[static_cast<std::size_t>(insn.op)];
      }
      vec->push_back(d);
    }
    // Sentinel: executing at index == size raises the off-the-end fault
    // without a per-instruction bounds check in the hot loop.
    DecodedInsn sentinel;
    sentinel.op = kOpOffEnd;
    if (targets != nullptr) sentinel.target = targets[kOpCount];
    vec->push_back(sentinel);
    slot = std::move(vec);
  }
  size = static_cast<std::uint32_t>(slot->size() - 1);
  return slot->data();
}

const CompiledFunction& Machine::effective_function(
    std::uint32_t fn_index) const {
  auto it = fn_overrides_.find(fn_index);
  if (it != fn_overrides_.end()) return it->second;
  return prog_->functions[fn_index];
}

void Machine::push_frame(std::uint32_t fn_index, std::size_t nargs) {
  const CompiledFunction& fn = effective_function(fn_index);
  if (nargs != fn.param_count) {
    throw VmError("call to " + fn.name + " with " + std::to_string(nargs) +
                  " args, expected " + std::to_string(fn.param_count));
  }
  Frame frame;
  frame.fn = fn_index;
  frame.pc = 0;
  frame.id = next_frame_id_++;
  frame.slots.reserve(fn.slot_types.size());
  for (SlotType t : fn.slot_types) frame.slots.push_back(default_slot_value(t));
  if (nargs > 0) {
    auto& caller_stack = frames_.back().stack;
    if (caller_stack.size() < nargs) {
      throw VmError("operand stack underflow in call to " + fn.name);
    }
    for (std::size_t i = 0; i < nargs; ++i) {
      frame.slots[nargs - 1 - i] = std::move(caller_stack.back());
      caller_stack.pop_back();
    }
  }
  frames_.push_back(std::move(frame));
  frame_by_id_[frames_.back().id] = frames_.size() - 1;
  if (frames_.size() > 100'000) {
    throw VmError("activation record stack overflow (100000 frames)");
  }
}

RtValue Machine::pop() {
  auto& stack = top().stack;
  if (stack.empty()) throw VmError("operand stack underflow");
  RtValue v = std::move(stack.back());
  stack.pop_back();
  return v;
}

RtValue Machine::load_ref(const Ref& r) {
  switch (r.kind) {
    case Ref::Kind::kNull:
      throw VmError("null pointer dereference");
    case Ref::Kind::kGlobal:
      if (r.a >= globals_.size()) throw VmError("bad global reference");
      return globals_[r.a];
    case Ref::Kind::kFrame: {
      auto it = frame_by_id_.find(r.a);
      if (it == frame_by_id_.end()) {
        throw VmError("dangling pointer: activation record no longer exists");
      }
      auto& frame = frames_[it->second];
      if (r.b >= frame.slots.size()) throw VmError("bad frame reference");
      return frame.slots[r.b];
    }
    case Ref::Kind::kHeap: {
      auto it = heap_.find(r.a);
      if (it == heap_.end()) {
        throw VmError("dangling heap pointer (freed object " +
                      std::to_string(r.a) + ")");
      }
      if (r.b >= it->second.cells.size()) {
        throw VmError("heap access out of bounds: offset " +
                      std::to_string(r.b) + " in object of " +
                      std::to_string(it->second.cells.size()) + " cells");
      }
      return it->second.cells[r.b];
    }
  }
  throw VmError("bad reference");
}

void Machine::store_ref(const Ref& r, RtValue v) {
  switch (r.kind) {
    case Ref::Kind::kNull:
      throw VmError("store through null pointer");
    case Ref::Kind::kGlobal:
      if (r.a >= globals_.size()) throw VmError("bad global reference");
      globals_[r.a] = std::move(v);
      return;
    case Ref::Kind::kFrame: {
      auto it = frame_by_id_.find(r.a);
      if (it == frame_by_id_.end()) {
        throw VmError("dangling pointer: activation record no longer exists");
      }
      auto& frame = frames_[it->second];
      if (r.b >= frame.slots.size()) throw VmError("bad frame reference");
      frame.slots[r.b] = std::move(v);
      return;
    }
    case Ref::Kind::kHeap: {
      auto it = heap_.find(r.a);
      if (it == heap_.end()) {
        throw VmError("dangling heap pointer (freed object " +
                      std::to_string(r.a) + ")");
      }
      if (r.b >= it->second.cells.size()) {
        throw VmError("heap store out of bounds");
      }
      it->second.cells[r.b] = std::move(v);
      return;
    }
  }
}

bool Machine::take_signal() {
  if (local_signal_) {
    local_signal_ = false;
    return true;
  }
  if (client_ != nullptr) return client_->take_pending_signal();
  return false;
}

StepResult Machine::step(std::uint64_t max_insns) {
  StepResult result;
  if (state_ == RunState::kDone || state_ == RunState::kFault) {
    result.state = state_;
    return result;
  }
  state_ = RunState::kRunnable;
  try {
#if SURGEON_VM_HAVE_COMPUTED_GOTO
    if (dispatch_mode_ == DispatchMode::kThreaded) {
      (void)run_threaded(&result, max_insns);
    } else {
      (void)run_switch(&result, max_insns);
    }
#else
    (void)run_switch(&result, max_insns);
#endif
  } catch (const support::Error& e) {
    state_ = RunState::kFault;
    fault_message_ = e.what();
  }
  result.state = state_;
  result.sleep_us = pending_sleep_us_;
  result.blocked_iface = blocked_iface_;
  pending_sleep_us_ = 0;
  return result;
}

StepResult Machine::run(std::uint64_t max_total_insns) {
  StepResult last = step(max_total_insns);
  return last;
}

void Machine::take_sample() {
  // Re-arm the periodic cadence first: a throwing sink must not wedge it.
  sample_countdown_ = sample_period_;
  if (sample_sink_ == nullptr || frames_.empty()) return;
  sample_sink_->on_sample(*this);
}

std::optional<Op> Machine::current_op() const noexcept {
  if (frames_.empty()) return std::nullopt;
  const Frame& frame = frames_.back();
  const CompiledFunction& fn = effective_function(frame.fn);
  if (frame.pc >= fn.code.size()) return std::nullopt;
  return fn.code[frame.pc].op;
}

std::vector<Op> Machine::peek_ops(std::size_t n) const {
  std::vector<Op> ops;
  if (frames_.empty()) return ops;
  const Frame& frame = frames_.back();
  const CompiledFunction& fn = effective_function(frame.fn);
  for (std::size_t i = 0; i < n && frame.pc + i < fn.code.size(); ++i) {
    ops.push_back(fn.code[frame.pc + i].op);
  }
  return ops;
}

void Machine::stack_functions(std::vector<std::uint32_t>& out) const {
  out.clear();
  out.reserve(frames_.size());
  for (const Frame& frame : frames_) out.push_back(frame.fn);
}

// --- dispatch loops ---------------------------------------------------------
//
// The handler bodies live in machine_loop.inc, included twice: once with
// computed-goto dispatch (run_threaded), once with the portable switch
// (run_switch). See the contract at the top of that file.

#if SURGEON_VM_HAVE_COMPUTED_GOTO
#define VM_THREADED 1
#include "vm/machine_loop.inc"
#undef VM_THREADED
#else
const void* const* Machine::run_threaded(StepResult* resultp,
                                         std::uint64_t max_insns) {
  // No computed goto on this toolchain: threaded mode degrades to the
  // portable loop (threaded_dispatch_supported() reports false).
  return run_switch(resultp, max_insns);
}
#endif

#include "vm/machine_loop.inc"

// --- builtins ---------------------------------------------------------------

ser::Value Machine::abstract_of(const RtValue& v, ValueKind kind) {
  switch (kind) {
    case ValueKind::kInt:
      if (const auto* d = std::get_if<double>(&v)) {
        return ser::Value(static_cast<std::int64_t>(*d));
      }
      return ser::Value(need_int(v, "capture int"));
    case ValueKind::kReal:
      return ser::Value(need_num(v, "capture real"));
    case ValueKind::kString:
      return ser::Value(need_str(v, "capture string"));
    case ValueKind::kPointer: {
      Ref r = need_ref(v, "capture pointer");
      switch (r.kind) {
        case Ref::Kind::kNull:
          return ser::Value(ser::AbstractPointer{});
        case Ref::Kind::kHeap: {
          std::set<std::uint64_t> visited;
          capture_heap_object(r.a, visited);
          return ser::Value(ser::AbstractPointer{r.a, r.b});
        }
        default:
          // The paper's noted difficulty: pointers into activation records
          // or the data area cannot be expressed in the abstract state.
          throw VmError(
              "cannot capture a pointer into the stack or data area; only "
              "null and managed-heap pointers are expressible in the "
              "abstract state format");
      }
    }
  }
  throw VmError("bad capture kind");
}

void Machine::capture_heap_object(std::uint64_t object_id,
                                  std::set<std::uint64_t>& visited) {
  if (!visited.insert(object_id).second) return;
  auto it = heap_.find(object_id);
  if (it == heap_.end()) {
    throw VmError("capture of dangling heap pointer (object " +
                  std::to_string(object_id) + ")");
  }
  std::vector<ser::Value> cells;
  cells.reserve(it->second.cells.size());
  for (const auto& cell : it->second.cells) {
    if (const auto* r = std::get_if<Ref>(&cell)) {
      if (r->kind == Ref::Kind::kNull) {
        cells.emplace_back(ser::AbstractPointer{});
      } else if (r->kind == Ref::Kind::kHeap) {
        capture_heap_object(r->a, visited);
        cells.emplace_back(ser::AbstractPointer{r->a, r->b});
      } else {
        throw VmError("heap object contains a stack pointer; not capturable");
      }
    } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
      cells.emplace_back(*i);
    } else if (const auto* d = std::get_if<double>(&cell)) {
      cells.emplace_back(*d);
    } else {
      cells.emplace_back(std::get<std::string>(cell));
    }
  }
  capture_buf_.put_heap_object(object_id, std::move(cells));
}

RtValue Machine::concrete_of(const ser::Value& v) {
  if (v.is_pointer()) {
    auto p = v.as_pointer();
    if (p.is_null()) return Ref{};
    auto it = decode_id_map_.find(p.object_id);
    if (it == decode_id_map_.end()) {
      throw VmError("abstract pointer to object " +
                    std::to_string(p.object_id) +
                    " has no materialized heap object");
    }
    return Ref{Ref::Kind::kHeap, it->second, p.offset};
  }
  return from_abstract(v);
}

void Machine::materialize_heap(const ser::StateBuffer& buf) {
  decode_id_map_.clear();
  for (const auto& [old_id, values] : buf.heap()) {
    std::uint64_t new_id = next_heap_id_++;
    heap_[new_id] = HeapObject{};
    heap_[new_id].cells.resize(values.size(), std::int64_t{0});
    decode_id_map_[old_id] = new_id;
  }
  for (const auto& [old_id, values] : buf.heap()) {
    auto& cells = heap_[decode_id_map_[old_id]].cells;
    for (std::size_t i = 0; i < values.size(); ++i) {
      cells[i] = concrete_of(values[i]);
    }
  }
}

bool Machine::exec_builtin(std::uint8_t id, std::uint32_t nargs) {
  Frame& frame = top();
  auto& stack = frame.stack;
  if (stack.size() < nargs) throw VmError("builtin argument underflow");
  const std::size_t base = stack.size() - nargs;
  auto arg = [&](std::uint32_t i) -> RtValue& { return stack[base + i]; };
  auto finish = [&](std::optional<RtValue> result) {
    stack.resize(base);
    if (result.has_value()) stack.push_back(std::move(*result));
    ++frame.pc;
  };
  auto require_client = [&](const char* what) {
    if (client_ == nullptr) {
      throw VmError(std::string(what) + " requires a software bus connection");
    }
  };

  switch (static_cast<BuiltinId>(id)) {
    case BuiltinId::kMhRead: {
      require_client("mh_read");
      const std::string& iface = need_str(arg(0), "mh_read interface");
      auto kinds = support::parse_format(need_str(arg(1), "mh_read format"));
      if (!client_->query_ifmsgs(iface)) {
        // Block without consuming anything: the retry re-executes this
        // instruction with the arguments still on the operand stack.
        state_ = RunState::kBlockedRead;
        blocked_iface_ = iface;
        --instructions_executed_;  // the retry will count it
        return false;
      }
      blocked_iface_.clear();
      auto msg = client_->try_read(iface);
      if (!msg.has_value()) throw VmError("mh_read: message vanished");
      if (msg->values.size() != kinds.size()) {
        throw VmError("mh_read on '" + iface + "': message has " +
                      std::to_string(msg->values.size()) +
                      " values, format expects " +
                      std::to_string(kinds.size()));
      }
      for (std::size_t i = 0; i < kinds.size(); ++i) {
        Ref target = need_ref(arg(static_cast<std::uint32_t>(i + 2)),
                              "mh_read target");
        const ser::Value& v = msg->values[i];
        switch (kinds[i]) {
          case ValueKind::kInt:
            store_ref(target, v.is_real()
                                  ? static_cast<std::int64_t>(v.as_real())
                                  : v.as_int());
            break;
          case ValueKind::kReal:
            store_ref(target, v.to_real());
            break;
          case ValueKind::kString:
            store_ref(target, v.as_string());
            break;
          case ValueKind::kPointer:
            throw VmError("mh_read: messages cannot carry pointers");
        }
      }
      finish(std::nullopt);
      return true;
    }
    case BuiltinId::kMhWrite: {
      require_client("mh_write");
      const std::string& iface = need_str(arg(0), "mh_write interface");
      auto kinds = support::parse_format(need_str(arg(1), "mh_write format"));
      std::vector<ser::Value> values;
      values.reserve(kinds.size());
      for (std::size_t i = 0; i < kinds.size(); ++i) {
        const RtValue& v = arg(static_cast<std::uint32_t>(i + 2));
        if (kinds[i] == ValueKind::kPointer) {
          Ref r = need_ref(v, "mh_write pointer");
          if (r.kind != Ref::Kind::kNull) {
            throw VmError(
                "mh_write: raw pointers cannot cross the bus; send the "
                "pointed-to values instead");
          }
          values.emplace_back(ser::AbstractPointer{});
        } else {
          values.push_back(abstract_of(v, kinds[i]));
        }
      }
      client_->write(iface, std::move(values));
      finish(std::nullopt);
      return true;
    }
    case BuiltinId::kMhQueryIfmsgs: {
      require_client("mh_query_ifmsgs");
      const std::string& iface = need_str(arg(0), "mh_query_ifmsgs");
      bool has = client_->query_ifmsgs(iface);
      finish(RtValue{std::int64_t{has}});
      return true;
    }
    case BuiltinId::kMhCapture: {
      auto kinds = support::parse_format(need_str(arg(0), "mh_capture format"));
      ser::StateFrame sframe;
      sframe.values.reserve(kinds.size());
      for (std::size_t i = 0; i < kinds.size(); ++i) {
        sframe.values.push_back(
            abstract_of(arg(static_cast<std::uint32_t>(i + 1)), kinds[i]));
      }
      capture_buf_.push_frame(std::move(sframe));
      ++capture_frames_total_;
      finish(std::nullopt);
      return true;
    }
    case BuiltinId::kMhRestore: {
      auto kinds = support::parse_format(need_str(arg(0), "mh_restore format"));
      if (!restore_buf_.has_value()) {
        throw VmError("mh_restore called before mh_decode");
      }
      ser::StateFrame sframe = restore_buf_->pop_frame();
      ++restore_frames_total_;
      if (sframe.values.size() != kinds.size()) {
        throw VmError("mh_restore: frame has " +
                      std::to_string(sframe.values.size()) +
                      " values, format expects " +
                      std::to_string(kinds.size()));
      }
      for (std::size_t i = 0; i < kinds.size(); ++i) {
        Ref target = need_ref(arg(static_cast<std::uint32_t>(i + 1)),
                              "mh_restore target");
        const ser::Value& v = sframe.values[i];
        switch (kinds[i]) {
          case ValueKind::kInt:
            store_ref(target, v.is_real()
                                  ? static_cast<std::int64_t>(v.as_real())
                                  : v.as_int());
            break;
          case ValueKind::kReal:
            store_ref(target, v.to_real());
            break;
          case ValueKind::kString:
            store_ref(target, v.as_string());
            break;
          case ValueKind::kPointer:
            store_ref(target, concrete_of(v));
            break;
        }
      }
      finish(std::nullopt);
      return true;
    }
    case BuiltinId::kMhEncode: {
      if (client_ != nullptr) {
        encoded_state_bytes_total_ += client_->encode_state(capture_buf_);
      } else {
        last_encoded_ = capture_buf_;
      }
      capture_buf_.clear();
      finish(std::nullopt);
      return true;
    }
    case BuiltinId::kMhDecode: {
      std::optional<ser::StateBuffer> incoming;
      if (client_ != nullptr) {
        incoming = client_->decode_state();
      } else {
        incoming = std::move(injected_state_);
        injected_state_.reset();
      }
      if (!incoming.has_value()) {
        state_ = RunState::kBlockedDecode;
        --instructions_executed_;
        return false;
      }
      materialize_heap(*incoming);
      restore_buf_ = std::move(incoming);
      ++decode_count_;
      finish(std::nullopt);
      return true;
    }
    case BuiltinId::kMhGetstatus:
      finish(RtValue{client_ != nullptr ? client_->status()
                                        : standalone_status_});
      return true;
    case BuiltinId::kMhSelf:
      finish(RtValue{client_ != nullptr ? client_->module_name()
                                        : std::string("standalone")});
      return true;
    case BuiltinId::kMhSignal: {
      signal_handler_fn_ =
          static_cast<std::int32_t>(need_int(arg(0), "mh_signal"));
      if (signal_handler_fn_ < 0 ||
          static_cast<std::size_t>(signal_handler_fn_) >=
              prog_->functions.size()) {
        throw VmError("mh_signal: bad handler function");
      }
      finish(std::nullopt);
      return true;
    }
    case BuiltinId::kSleep: {
      std::int64_t secs = need_int(arg(0), "sleep");
      pending_sleep_us_ =
          secs <= 0 ? 0 : static_cast<std::uint64_t>(secs) * 1'000'000ULL;
      finish(std::nullopt);
      state_ = RunState::kSleeping;
      return false;
    }
    case BuiltinId::kPrint: {
      std::string line;
      for (std::uint32_t i = 0; i < nargs; ++i) {
        if (i != 0) line += ' ';
        line += rt_to_string(arg(i));
      }
      output_.push_back(std::move(line));
      finish(std::nullopt);
      return true;
    }
    case BuiltinId::kRandom: {
      std::int64_t bound = need_int(arg(0), "random");
      if (bound <= 0) throw VmError("random: bound must be positive");
      finish(RtValue{static_cast<std::int64_t>(
          rng_.next_below(static_cast<std::uint64_t>(bound)))});
      return true;
    }
    case BuiltinId::kClock: {
      std::int64_t now =
          client_ != nullptr
              ? static_cast<std::int64_t>(client_->bus().simulator().now())
              : 0;
      finish(RtValue{now});
      return true;
    }
    case BuiltinId::kMhAllocInt:
    case BuiltinId::kMhAllocReal:
    case BuiltinId::kMhAllocStr: {
      std::int64_t n = need_int(arg(0), "mh_alloc");
      if (n < 0 || n > 1'000'000) {
        throw VmError("mh_alloc: bad size " + std::to_string(n));
      }
      HeapObject obj;
      RtValue fill = static_cast<BuiltinId>(id) == BuiltinId::kMhAllocInt
                         ? RtValue{std::int64_t{0}}
                     : static_cast<BuiltinId>(id) == BuiltinId::kMhAllocReal
                         ? RtValue{0.0}
                         : RtValue{std::string{}};
      obj.cells.assign(static_cast<std::size_t>(n), fill);
      std::uint64_t obj_id = next_heap_id_++;
      heap_[obj_id] = std::move(obj);
      finish(RtValue{Ref{Ref::Kind::kHeap, obj_id, 0}});
      return true;
    }
    case BuiltinId::kMhFree: {
      Ref r = need_ref(arg(0), "mh_free");
      if (r.kind == Ref::Kind::kNull) {
        finish(std::nullopt);  // free(NULL) is a no-op, as in C
        return true;
      }
      if (r.kind != Ref::Kind::kHeap || r.b != 0) {
        throw VmError("mh_free: not the start of a heap object");
      }
      if (heap_.erase(r.a) == 0) throw VmError("mh_free: double free");
      finish(std::nullopt);
      return true;
    }
    case BuiltinId::kMhPeekLocation: {
      if (!restore_buf_.has_value() || restore_buf_->empty()) {
        throw VmError("mh_peek_location: no pending restore frame");
      }
      const auto& values = restore_buf_->frames().back().values;
      if (values.empty() || !values.front().is_int()) {
        throw VmError("mh_peek_location: frame has no location value");
      }
      finish(RtValue{values.front().as_int()});
      return true;
    }
  }
  throw VmError("unknown builtin " + std::to_string(id));
}

// --- inspection --------------------------------------------------------------

RtValue Machine::global(const std::string& name) const {
  for (std::size_t i = 0; i < prog_->globals.size(); ++i) {
    if (prog_->globals[i].name == name) return globals_[i];
  }
  throw VmError("unknown global '" + name + "'");
}

void Machine::set_global(const std::string& name, RtValue value) {
  for (std::size_t i = 0; i < prog_->globals.size(); ++i) {
    if (prog_->globals[i].name == name) {
      globals_[i] = std::move(value);
      return;
    }
  }
  throw VmError("unknown global '" + name + "'");
}

bool Machine::function_active(std::uint32_t fn_index) const noexcept {
  for (const auto& f : frames_) {
    if (f.fn == fn_index) return true;
  }
  return false;
}

void Machine::replace_function(const CompiledProgram& donor,
                               const std::string& name) {
  std::uint32_t here = prog_->function_index(name);
  std::uint32_t there = donor.function_index(name);
  if (here == UINT32_MAX || there == UINT32_MAX) {
    throw VmError("replace_function: no function '" + name +
                  "' in both versions");
  }
  if (function_active(here)) {
    throw VmError("replace_function: '" + name +
                  "' has active activation records");
  }
  const CompiledFunction& current = effective_function(here);
  CompiledFunction replacement = donor.functions[there];
  if (replacement.param_count != current.param_count ||
      replacement.slot_types != current.slot_types) {
    throw VmError("replace_function: '" + name +
                  "' changes its frame shape (parameters/locals); "
                  "procedure-level update requires layout compatibility");
  }
  if (replacement.returns_value != current.returns_value) {
    throw VmError("replace_function: '" + name + "' changes its return kind");
  }
  // Remap donor constant-pool and call indices into this machine's tables.
  auto map_constant = [&](std::int32_t donor_idx) {
    const ser::Value& v = donor.constants[static_cast<std::size_t>(donor_idx)];
    for (std::size_t i = 0; i < prog_->constants.size(); ++i) {
      if (prog_->constants[i] == v) return static_cast<std::int32_t>(i);
    }
    for (std::size_t i = 0; i < extra_constants_.size(); ++i) {
      if (extra_constants_[i] == v) {
        return static_cast<std::int32_t>(prog_->constants.size() + i);
      }
    }
    extra_constants_.push_back(v);
    return static_cast<std::int32_t>(prog_->constants.size() +
                                     extra_constants_.size() - 1);
  };
  for (auto& insn : replacement.code) {
    switch (insn.op) {
      case Op::kPushConst:
      case Op::kPushConstAdd:
      case Op::kPushConstSub:
      case Op::kPushConstMul:
      case Op::kStmtPushConst:
      case Op::kPushConstAddStore:
      case Op::kPushConstSubStore:
        insn.a = map_constant(insn.a);
        break;
      case Op::kCall: {
        const std::string& callee =
            donor.functions[static_cast<std::size_t>(insn.a)].name;
        std::uint32_t target = prog_->function_index(callee);
        if (target == UINT32_MAX) {
          throw VmError("replace_function: '" + name + "' calls '" + callee +
                        "', which this program does not have (procedure-"
                        "level update cannot add procedures)");
        }
        insn.a = static_cast<std::int32_t>(target);
        break;
      }
      case Op::kBuiltin:
        if (static_cast<minic::BuiltinId>(insn.a) == BuiltinId::kMhSignal) {
          throw VmError("replace_function: '" + name +
                        "' registers a signal handler; function-index "
                        "constants cannot be remapped");
        }
        break;
      default:
        break;
    }
  }
  fn_overrides_[here] = std::move(replacement);
  decoded_[here].reset();  // the override is what decodes from now on
  sync_rt_consts();        // map_constant may have grown extra_constants_
}

std::string Machine::dump_stack() const {
  std::ostringstream os;
  for (std::size_t i = frames_.size(); i-- > 0;) {
    const Frame& f = frames_[i];
    const CompiledFunction& fn = fn_of(f);
    os << "#" << (frames_.size() - 1 - i) << " " << fn.name << " pc=" << f.pc;
    for (std::size_t s = 0; s < f.slots.size(); ++s) {
      os << " "
         << (s < fn.slot_names.size() ? fn.slot_names[s]
                                      : "slot" + std::to_string(s))
         << "=" << rt_to_string(f.slots[s]);
    }
    os << "\n";
  }
  return os.str();
}

Machine::HeapStats Machine::heap_stats() const noexcept {
  HeapStats stats;
  stats.objects = heap_.size();
  for (const auto& [id, obj] : heap_) stats.cells += obj.cells.size();
  return stats;
}

// --- native frame image -------------------------------------------------------

namespace {
constexpr std::uint32_t kImageMagic = 0x41524149;  // "ARAI" (AR image)

void write_rt_value(support::ByteWriter& w, const RtValue& v,
                    std::uint32_t padding) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    w.put_u8(0);
    w.put_u64(static_cast<std::uint64_t>(*i));
  } else if (const auto* d = std::get_if<double>(&v)) {
    w.put_u8(1);
    w.put_f64(*d);
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    w.put_u8(2);
    w.put_string(*s);
  } else {
    const Ref& r = std::get<Ref>(v);
    w.put_u8(3);
    w.put_u8(static_cast<std::uint8_t>(r.kind));
    w.put_u64(r.a);
    w.put_u64(r.b);
  }
  for (std::uint32_t p = 0; p < padding; ++p) w.put_u8(0);
}

RtValue read_rt_value(support::ByteReader& r, std::uint32_t padding) {
  RtValue v;
  switch (r.get_u8()) {
    case 0:
      v = static_cast<std::int64_t>(r.get_u64());
      break;
    case 1:
      v = r.get_f64();
      break;
    case 2:
      v = r.get_string();
      break;
    case 3: {
      Ref ref;
      ref.kind = static_cast<Ref::Kind>(r.get_u8());
      ref.a = r.get_u64();
      ref.b = r.get_u64();
      v = ref;
      break;
    }
    default:
      throw VmError("corrupt frame image: bad value tag");
  }
  for (std::uint32_t p = 0; p < padding; ++p) (void)r.get_u8();
  return v;
}
}  // namespace

std::vector<std::uint8_t> Machine::raw_frame_image() const {
  support::ByteWriter w(arch_.byte_order);
  w.put_u32(kImageMagic);
  w.put_u32(static_cast<std::uint32_t>(globals_.size()));
  for (const auto& g : globals_) write_rt_value(w, g, arch_.slot_padding);
  w.put_u32(static_cast<std::uint32_t>(frames_.size()));
  for (const auto& f : frames_) {
    w.put_u32(f.fn);
    w.put_u32(f.pc);
    w.put_u64(f.id);
    w.put_u32(static_cast<std::uint32_t>(f.slots.size()));
    for (const auto& s : f.slots) write_rt_value(w, s, arch_.slot_padding);
    w.put_u32(static_cast<std::uint32_t>(f.stack.size()));
    for (const auto& s : f.stack) write_rt_value(w, s, arch_.slot_padding);
  }
  return std::move(w).take();
}

void Machine::restore_raw_frame_image(std::span<const std::uint8_t> bytes) {
  support::ByteReader r(bytes, arch_.byte_order);
  if (r.get_u32() != kImageMagic) {
    throw VmError(
        "frame image rejected: magic number mismatch (the image was made on "
        "an architecture with a different byte order)");
  }
  auto nglobals = r.get_u32();
  if (nglobals != globals_.size()) {
    throw VmError("frame image global count mismatch");
  }
  for (auto& g : globals_) g = read_rt_value(r, arch_.slot_padding);
  auto nframes = r.get_u32();
  if (nframes == 0 || nframes > 100'000) {
    throw VmError("frame image corrupt: implausible frame count");
  }
  frames_.clear();
  frame_by_id_.clear();
  std::uint64_t max_id = 0;
  for (std::uint32_t i = 0; i < nframes; ++i) {
    Frame f;
    f.fn = r.get_u32();
    if (f.fn >= prog_->functions.size()) {
      throw VmError("frame image corrupt: bad function index");
    }
    f.pc = r.get_u32();
    f.id = r.get_u64();
    max_id = std::max(max_id, f.id);
    auto nslots = r.get_u32();
    for (std::uint32_t s = 0; s < nslots; ++s) {
      f.slots.push_back(read_rt_value(r, arch_.slot_padding));
    }
    auto nstack = r.get_u32();
    for (std::uint32_t s = 0; s < nstack; ++s) {
      f.stack.push_back(read_rt_value(r, arch_.slot_padding));
    }
    frames_.push_back(std::move(f));
    frame_by_id_[frames_.back().id] = frames_.size() - 1;
  }
  next_frame_id_ = max_id + 1;
  state_ = RunState::kRunnable;
}

// --- snapshot (checkpointing baseline) ----------------------------------------

struct Machine::Snapshot {
  std::vector<RtValue> globals;
  std::vector<Frame> frames;
  std::map<std::uint64_t, std::size_t> frame_by_id;
  std::map<std::uint64_t, HeapObject> heap;
  std::uint64_t next_frame_id = 1;
  std::uint64_t next_heap_id = 1;
  std::int32_t signal_handler_fn = -1;
  RunState state = RunState::kRunnable;
  std::uint64_t size_estimate = 0;
};

namespace {
std::size_t value_size(const RtValue& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return 5 + s->size();
  return 9;
}
}  // namespace

std::shared_ptr<Machine::Snapshot> Machine::checkpoint() const {
  auto snap = std::make_shared<Snapshot>();
  snap->globals = globals_;
  snap->frames = frames_;
  snap->frame_by_id = frame_by_id_;
  snap->heap = heap_;
  snap->next_frame_id = next_frame_id_;
  snap->next_heap_id = next_heap_id_;
  snap->signal_handler_fn = signal_handler_fn_;
  snap->state = state_;
  std::size_t size = 0;
  for (const auto& g : snap->globals) size += value_size(g);
  for (const auto& f : snap->frames) {
    size += 20;
    for (const auto& s : f.slots) size += value_size(s);
    for (const auto& s : f.stack) size += value_size(s);
  }
  for (const auto& [id, obj] : snap->heap) {
    size += 12;
    for (const auto& c : obj.cells) size += value_size(c);
  }
  snap->size_estimate = size;
  return snap;
}

void Machine::rollback(const Snapshot& snapshot) {
  globals_ = snapshot.globals;
  frames_ = snapshot.frames;
  frame_by_id_ = snapshot.frame_by_id;
  heap_ = snapshot.heap;
  next_frame_id_ = snapshot.next_frame_id;
  next_heap_id_ = snapshot.next_heap_id;
  signal_handler_fn_ = snapshot.signal_handler_fn;
  state_ = snapshot.state == RunState::kDone ? RunState::kDone
                                             : RunState::kRunnable;
  fault_message_.clear();
  capture_buf_.clear();
  restore_buf_.reset();
}

std::size_t Machine::snapshot_size(const Snapshot& snapshot) {
  return snapshot.size_estimate;
}

}  // namespace surgeon::vm
