// Bytecode for the MiniC virtual machine.
//
// The VM plays the role of "the standard compiler provided with the
// machine" (Section 1.1): it implements plain MiniC plus the mh_* builtins
// as library calls, and knows nothing about reconfiguration. Everything the
// paper adds -- flags, capture blocks, restore blocks -- arrives as
// ordinary compiled source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serialize/value.hpp"

namespace surgeon::vm {

enum class Op : std::uint8_t {
  kPushConst,    // a: constant pool index
  kLoadSlot,     // a: frame slot
  kStoreSlot,    // a: frame slot
  kLoadGlobal,   // a: global index
  kStoreGlobal,  // a: global index
  kAddrSlot,     // a: frame slot      -> push Ref to current frame slot
  kAddrGlobal,   // a: global index    -> push Ref to global
  kLoadInd,      // pop ref            -> push *ref
  kStoreInd,     // pop ref, pop value -> *ref = value
  kIndexPtr,     // pop idx, pop ptr   -> push ptr+idx (heap pointers only)
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kNeg, kNot,
  kCastInt, kCastReal,
  kJump,         // a: code offset
  kJumpIfFalse,  // a: code offset (pops condition)
  kJumpIfTrue,   // a: code offset (pops condition)
  kCall,         // a: function index, b: arg count
  kRet,          // return void (bottom frame: module done)
  kRetVal,       // return top of stack
  kBuiltin,      // a: BuiltinId, b: arg count
  kPop,          // discard top of stack
  kStmt,         // statement boundary: pending-signal delivery point

  // --- superinstructions -----------------------------------------------
  //
  // Fused forms of the sequences the xform pass puts on every hot path
  // (flag test + branch, compare + loop edge, operand load + arithmetic).
  // The peephole pass in compiler.cpp rewrites only the *head* instruction
  // of a matched sequence; the interior instructions stay in place, so
  // every code offset -- including jump targets that land mid-sequence and
  // the pc values in captured frame images -- remains valid. A fused
  // instruction executes its full sequence and is accounted as
  // op_width(op) instructions (virtual time, slice budgets, and profiler
  // countdowns are all denominated in component instructions).
  kStmtFlagJf,   // a: jump target, b: global index
                 //    = kStmt; kLoadGlobal b; kJumpIfFalse a   (width 3)
  kEqJf, kNeJf, kLtJf, kLeJf, kGtJf, kGeJf,
                 // a: jump target
                 //    = kCmp; kJumpIfFalse a                   (width 2)
  kLoadSlotAdd, kLoadSlotSub, kLoadSlotMul,
                 // a: frame slot
                 //    = kLoadSlot a; kAdd/kSub/kMul            (width 2)
  kPushConstAdd, kPushConstSub, kPushConstMul,
                 // a: constant pool index
                 //    = kPushConst a; kAdd/kSub/kMul           (width 2)

  // Wider fusions. The head instruction has only two operand fields, so
  // heads that stand for longer sequences read their remaining operands
  // from the preserved interior instructions (cur[1], cur[2], ...), which
  // the peephole pass leaves untouched.
  kStmtLoadSlot,   // a: frame slot (from the interior kLoadSlot)
                   //    = kStmt; kLoadSlot a                   (width 2)
  kStmtPushConst,  // a: constant pool index (from the interior kPushConst)
                   //    = kStmt; kPushConst a                  (width 2)
  kStmtSlotCmpConstJf,
                   // a: frame slot, b: the comparison opcode
                   //    = kStmt; kLoadSlot a; kPushConst; kCmp;
                   //      kJumpIfFalse                         (width 5)
                   //    constant index and branch target are read from the
                   //    interior instructions -- the full while-loop header
                   //    in one dispatch
  kPushConstAddStore, kPushConstSubStore,
                   // a: constant pool index
                   //    = kPushConst a; kAdd/kSub; kStoreSlot  (width 3)
                   //    store slot read from the interior kStoreSlot
  kStmtLoadGlobal, // a: global index (from the interior kLoadGlobal)
                   //    = kStmt; kLoadGlobal a                 (width 2)
};

/// Number of opcodes; the threaded dispatch table is indexed by opcode with
/// one extra slot for the decode sentinel.
inline constexpr std::size_t kOpCount =
    static_cast<std::size_t>(Op::kStmtLoadGlobal) + 1;

[[nodiscard]] const char* op_name(Op op) noexcept;

/// Number of component instructions a fused op stands for (1 for plain ops).
[[nodiscard]] constexpr std::uint32_t op_width(Op op) noexcept {
  switch (op) {
    case Op::kStmtSlotCmpConstJf:
      return 5;
    case Op::kStmtFlagJf:
    case Op::kPushConstAddStore: case Op::kPushConstSubStore:
      return 3;
    case Op::kEqJf: case Op::kNeJf: case Op::kLtJf:
    case Op::kLeJf: case Op::kGtJf: case Op::kGeJf:
    case Op::kLoadSlotAdd: case Op::kLoadSlotSub: case Op::kLoadSlotMul:
    case Op::kPushConstAdd: case Op::kPushConstSub: case Op::kPushConstMul:
    case Op::kStmtLoadSlot: case Op::kStmtPushConst:
    case Op::kStmtLoadGlobal:
      return 2;
    default:
      return 1;
  }
}

[[nodiscard]] constexpr bool is_superinstruction(Op op) noexcept {
  return op_width(op) > 1;
}

/// The first component of a fused sequence. When the VM cannot afford to
/// run a whole fused op (slice budget or profiler sample boundary inside
/// it), it executes just this head op -- kStmt-headed fusions carry an
/// interior operand in `a`, which the plain kStmt handler ignores; every
/// other fusion's `a` is the head's own operand.
[[nodiscard]] constexpr Op op_first_component(Op op) noexcept {
  switch (op) {
    case Op::kStmtFlagJf:
    case Op::kStmtLoadSlot:
    case Op::kStmtPushConst:
    case Op::kStmtSlotCmpConstJf:
    case Op::kStmtLoadGlobal:
      return Op::kStmt;
    case Op::kEqJf: return Op::kEq;
    case Op::kNeJf: return Op::kNe;
    case Op::kLtJf: return Op::kLt;
    case Op::kLeJf: return Op::kLe;
    case Op::kGtJf: return Op::kGt;
    case Op::kGeJf: return Op::kGe;
    case Op::kLoadSlotAdd: case Op::kLoadSlotSub: case Op::kLoadSlotMul:
      return Op::kLoadSlot;
    case Op::kPushConstAdd: case Op::kPushConstSub: case Op::kPushConstMul:
    case Op::kPushConstAddStore: case Op::kPushConstSubStore:
      return Op::kPushConst;
    default:
      return op;
  }
}

struct Insn {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

/// Static kind of one frame slot; determines the default value a slot holds
/// before its declaration executes, and the slot's native width/format in
/// the architecture-specific raw frame image.
enum class SlotType : std::uint8_t { kInt, kReal, kString, kPointer };

struct CompiledFunction {
  std::string name;
  std::uint32_t param_count = 0;
  std::vector<SlotType> slot_types;  // params first, then locals
  std::vector<std::string> slot_names;
  bool returns_value = false;
  std::vector<Insn> code;
};

struct GlobalSlot {
  std::string name;
  SlotType type = SlotType::kInt;
  /// Initial value (global initializers are restricted to literals).
  ser::Value init;
};

struct CompiledProgram {
  std::vector<ser::Value> constants;
  std::vector<GlobalSlot> globals;
  std::vector<CompiledFunction> functions;
  std::uint32_t main_index = 0;

  [[nodiscard]] std::uint32_t function_index(const std::string& name) const;
  /// Human-readable disassembly (tests, debugging, documentation).
  [[nodiscard]] std::string disassemble() const;
  [[nodiscard]] std::size_t total_instructions() const;
};

}  // namespace surgeon::vm
