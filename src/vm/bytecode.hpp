// Bytecode for the MiniC virtual machine.
//
// The VM plays the role of "the standard compiler provided with the
// machine" (Section 1.1): it implements plain MiniC plus the mh_* builtins
// as library calls, and knows nothing about reconfiguration. Everything the
// paper adds -- flags, capture blocks, restore blocks -- arrives as
// ordinary compiled source.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serialize/value.hpp"

namespace surgeon::vm {

enum class Op : std::uint8_t {
  kPushConst,    // a: constant pool index
  kLoadSlot,     // a: frame slot
  kStoreSlot,    // a: frame slot
  kLoadGlobal,   // a: global index
  kStoreGlobal,  // a: global index
  kAddrSlot,     // a: frame slot      -> push Ref to current frame slot
  kAddrGlobal,   // a: global index    -> push Ref to global
  kLoadInd,      // pop ref            -> push *ref
  kStoreInd,     // pop ref, pop value -> *ref = value
  kIndexPtr,     // pop idx, pop ptr   -> push ptr+idx (heap pointers only)
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kNeg, kNot,
  kCastInt, kCastReal,
  kJump,         // a: code offset
  kJumpIfFalse,  // a: code offset (pops condition)
  kJumpIfTrue,   // a: code offset (pops condition)
  kCall,         // a: function index, b: arg count
  kRet,          // return void (bottom frame: module done)
  kRetVal,       // return top of stack
  kBuiltin,      // a: BuiltinId, b: arg count
  kPop,          // discard top of stack
  kStmt,         // statement boundary: pending-signal delivery point
};

[[nodiscard]] const char* op_name(Op op) noexcept;

struct Insn {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

/// Static kind of one frame slot; determines the default value a slot holds
/// before its declaration executes, and the slot's native width/format in
/// the architecture-specific raw frame image.
enum class SlotType : std::uint8_t { kInt, kReal, kString, kPointer };

struct CompiledFunction {
  std::string name;
  std::uint32_t param_count = 0;
  std::vector<SlotType> slot_types;  // params first, then locals
  std::vector<std::string> slot_names;
  bool returns_value = false;
  std::vector<Insn> code;
};

struct GlobalSlot {
  std::string name;
  SlotType type = SlotType::kInt;
  /// Initial value (global initializers are restricted to literals).
  ser::Value init;
};

struct CompiledProgram {
  std::vector<ser::Value> constants;
  std::vector<GlobalSlot> globals;
  std::vector<CompiledFunction> functions;
  std::uint32_t main_index = 0;

  [[nodiscard]] std::uint32_t function_index(const std::string& name) const;
  /// Human-readable disassembly (tests, debugging, documentation).
  [[nodiscard]] std::string disassemble() const;
  [[nodiscard]] std::size_t total_instructions() const;
};

}  // namespace surgeon::vm
