// The MiniC virtual machine.
//
// One Machine executes one module's compiled program on one simulated host.
// It is resumable: step() runs until it exhausts its instruction budget,
// blocks (on mh_read / mh_decode), goes to sleep, finishes, or faults, and
// a later step() continues exactly where it left off. A blocking builtin
// that cannot proceed leaves the program counter in place, so re-stepping
// retries it -- the cooperative scheduler in surgeon::app wakes the machine
// when the bus delivers something.
//
// The machine knows nothing about reconfiguration. mh_capture/mh_restore/
// mh_encode/mh_decode are ordinary library builtins operating on the
// abstract state buffer; the logic of *when* to call them lives entirely in
// the transformed MiniC source, which is the paper's central claim.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "bus/client.hpp"
#include "net/arch.hpp"
#include "serialize/state.hpp"
#include "support/rng.hpp"
#include "vm/bytecode.hpp"

namespace surgeon::vm {

/// A runtime pointer. Frame references (to &locals) are meaningful only
/// while the frame lives; heap references survive capture/restore via the
/// abstract pointer swizzle; global references address the module's own
/// data area.
struct Ref {
  enum class Kind : std::uint8_t { kNull, kGlobal, kFrame, kHeap };
  Kind kind = Kind::kNull;
  std::uint64_t a = 0;  // global index / frame id / heap object id
  std::uint64_t b = 0;  // slot (frame) or element offset (heap)

  friend bool operator==(const Ref&, const Ref&) = default;
};

using RtValue = std::variant<std::int64_t, double, std::string, Ref>;

enum class RunState : std::uint8_t {
  kRunnable,
  kBlockedRead,    // waiting for a message on blocked_iface
  kBlockedDecode,  // waiting for an abstract state buffer
  kSleeping,       // sleep() called; resume after sleep_us
  kDone,           // main returned
  kFault,          // VmError; see fault_message()
};

struct StepResult {
  RunState state = RunState::kRunnable;
  std::uint64_t instructions = 0;   // executed during this slice
  std::uint64_t sleep_us = 0;       // when kSleeping
  std::string blocked_iface;        // when kBlockedRead
};

/// How the dispatch loop gets from one instruction to the next.
/// kThreaded (direct-threaded via computed goto) is the default wherever the
/// compiler supports `&&label`; kSwitch is the portable fallback and the
/// baseline the bench suite measures speedups against. Both modes execute
/// the same decoded code and are required to be observably identical --
/// the dispatch-parity test suite holds them to byte-identical output,
/// captured state, and instruction counts.
enum class DispatchMode : std::uint8_t { kSwitch, kThreaded };

/// False when the compiler has no computed goto (or the build forced the
/// portable loop with SURGEON_VM_FORCE_SWITCH_DISPATCH); requests for
/// kThreaded silently coerce to kSwitch then.
[[nodiscard]] bool threaded_dispatch_supported() noexcept;

/// Process-wide default mode for new machines (bench/test setup; not
/// thread-safe, not for flipping mid-run).
void set_default_dispatch_mode(DispatchMode mode) noexcept;
[[nodiscard]] DispatchMode default_dispatch_mode() noexcept;

/// One instruction decoded into dispatch-ready form: the operands, and (in
/// threaded mode) the handler address, so the hot loop never re-derives
/// either. Decoding is per-machine and lazy, cached per function.
struct DecodedInsn {
  const void* target = nullptr;  // threaded mode: handler label address
  std::int32_t a = 0;
  std::int32_t b = 0;
  Op op = Op::kStmt;
};

class Machine;

/// Receiver of sampling-profiler hits (surgeon::profile). on_sample is
/// invoked from inside the dispatch loop with the machine positioned at the
/// instruction about to execute, so the sink may read current_function(),
/// current_op(), peek_ops(), and stack_functions() to attribute the sample.
/// The sink must not re-enter the machine (no step/run calls).
class SampleSink {
 public:
  virtual ~SampleSink() = default;
  virtual void on_sample(const Machine& machine) = 0;
};

class Machine {
 public:
  /// `arch` is the architecture of the host this module instance runs on;
  /// it affects only the native frame image (raw_frame_image), never
  /// program semantics.
  Machine(const CompiledProgram& program, net::Arch arch,
          std::uint64_t seed = 7);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Connects the machine to the software bus as a named module. Without a
  /// client, bus builtins fault and status/clock report standalone values.
  void attach_client(bus::Client* client) noexcept { client_ = client; }

  /// Executes up to max_insns instructions. Never throws for program-level
  /// errors; they surface as RunState::kFault. A superinstruction counts as
  /// its op_width() component instructions against the budget; when fewer
  /// remain, only the head component executes, so a slice of k runs exactly
  /// k instructions regardless of fusion.
  StepResult step(std::uint64_t max_insns = UINT64_MAX);

  /// Selects the dispatch loop for this machine (coerced to kSwitch when
  /// threading is unsupported). Discards the decoded-code cache.
  void set_dispatch_mode(DispatchMode mode) noexcept;
  [[nodiscard]] DispatchMode dispatch_mode() const noexcept {
    return dispatch_mode_;
  }

  /// Test helper: steps until done/fault/blocked, up to a total budget.
  StepResult run(std::uint64_t max_total_insns = 10'000'000);

  /// Delivers a reconfiguration signal directly (standalone tests; modules
  /// under a bus receive signals through bus::Client instead).
  void raise_signal() noexcept { local_signal_ = true; }

  [[nodiscard]] RunState state() const noexcept { return state_; }
  [[nodiscard]] const std::string& fault_message() const noexcept {
    return fault_message_;
  }
  [[nodiscard]] std::uint64_t instructions_executed() const noexcept {
    return instructions_executed_;
  }
  [[nodiscard]] const std::vector<std::string>& output() const noexcept {
    return output_;
  }
  [[nodiscard]] const net::Arch& arch() const noexcept { return arch_; }
  [[nodiscard]] std::size_t stack_depth() const noexcept {
    return frames_.size();
  }
  /// Number of successful mh_decode calls (state installations begun).
  [[nodiscard]] std::uint64_t decode_count() const noexcept {
    return decode_count_;
  }
  /// Frames still waiting to be consumed by mh_restore. A clone has fully
  /// rebuilt its activation record stack when decode_count() > 0 and this
  /// returns 0.
  [[nodiscard]] std::size_t restore_frames_remaining() const noexcept {
    return restore_buf_.has_value() ? restore_buf_->frame_count() : 0;
  }

  // --- observability counters (sampled into obs::MetricsRegistry by the
  // --- app runtime after each scheduling slice) ---------------------------

  /// State frames appended by mh_capture over the machine's lifetime.
  [[nodiscard]] std::uint64_t capture_frames_total() const noexcept {
    return capture_frames_total_;
  }
  /// State frames consumed by mh_restore over the machine's lifetime.
  [[nodiscard]] std::uint64_t restore_frames_total() const noexcept {
    return restore_frames_total_;
  }
  /// Bytes of encoded abstract state divulged to the bus by mh_encode
  /// (0 while no client is attached; standalone encodes are not counted).
  [[nodiscard]] std::uint64_t encoded_state_bytes_total() const noexcept {
    return encoded_state_bytes_total_;
  }

  // --- sampling profiler hook (surgeon::profile) --------------------------
  // Cost model: one integer compare per executed instruction while no
  // sample is armed; the bench_obs_overhead/bench_disruption suites pin the
  // disabled path within the platform's 3% bar.

  /// Installs (or, with null, removes) the sample sink. The machine never
  /// samples without a sink, whatever the countdown says.
  void set_sample_sink(SampleSink* sink) noexcept { sample_sink_ = sink; }
  /// Periodic sampling: a sample fires every `period` executed
  /// instructions (0 disables and clears any armed countdown).
  void set_sample_period(std::uint64_t period) noexcept {
    sample_period_ = period;
    sample_countdown_ = period;
  }
  /// One-shot arm: the next `countdown`-th executed instruction is sampled
  /// (the virtual-clock sampling timer in app::Runtime arms 1 at each
  /// tick). Overrides any in-progress periodic countdown; after the hit the
  /// periodic cadence (if any) resumes.
  void arm_sample(std::uint64_t countdown) noexcept {
    sample_countdown_ = countdown;
  }

  /// Function index of the innermost activation record. Only meaningful
  /// while the stack is non-empty (stack_depth() > 0).
  [[nodiscard]] std::uint32_t current_function() const noexcept {
    return frames_.back().fn;
  }
  /// Opcode about to execute; nullopt when the pc ran off the function end
  /// (the next exec faults) or the stack is empty.
  [[nodiscard]] std::optional<Op> current_op() const noexcept;
  /// Static opcode window at the current pc: the sampled instruction plus
  /// up to `n - 1` followers from the same function body. This is the raw
  /// evidence for superinstruction selection — the profiler counts these
  /// windows to name the hot dispatch sequences worth fusing.
  [[nodiscard]] std::vector<Op> peek_ops(std::size_t n) const;
  /// Function index of every live activation record, bottom (main) to top;
  /// appends into `out` (cleared first) so periodic samplers reuse one
  /// buffer. This is the folded stack of one flamegraph sample.
  void stack_functions(std::vector<std::uint32_t>& out) const;

  /// Test access to a global by name. Throws VmError if unknown.
  [[nodiscard]] RtValue global(const std::string& name) const;
  void set_global(const std::string& name, RtValue value);

  /// The state buffer mh_encode would divulge, for standalone tests (when a
  /// client is attached, mh_encode posts to the bus instead).
  [[nodiscard]] const std::optional<ser::StateBuffer>& last_encoded_state()
      const noexcept {
    return last_encoded_;
  }
  /// Standalone counterpart of an arriving state buffer (mh_decode input).
  void inject_incoming_state(ser::StateBuffer state) {
    injected_state_ = std::move(state);
  }
  /// What mh_getstatus() reports when no client is attached ("new" by
  /// default; standalone clone tests set "clone").
  void set_standalone_status(std::string status) {
    standalone_status_ = std::move(status);
  }

  // --- native frame image (binary-copy baseline; see DESIGN.md §3.2) ------

  /// Serializes the activation record stack in this machine's *native*
  /// layout: scalar slots in arch byte order with arch-specific padding.
  /// This is what a naive binary process migration would copy.
  [[nodiscard]] std::vector<std::uint8_t> raw_frame_image() const;

  /// Rebuilds the stack from a native image, interpreting it with THIS
  /// machine's architecture. Restoring an image made on an unlike
  /// architecture yields scrambled values or a structural fault -- the
  /// negative result motivating the abstract state format.
  void restore_raw_frame_image(std::span<const std::uint8_t> bytes);

  // --- privileged whole-state snapshot (checkpointing baseline) -----------

  struct Snapshot;
  /// Deep copy of the entire machine state (globals, frames, heap, RNG).
  /// This models OS-level checkpointing: same machine, same architecture.
  /// (shared_ptr so the Snapshot type can stay private to the .cpp.)
  [[nodiscard]] std::shared_ptr<Snapshot> checkpoint() const;
  void rollback(const Snapshot& snapshot);
  /// Serialized size of a snapshot, for checkpoint-cost benchmarks.
  [[nodiscard]] static std::size_t snapshot_size(const Snapshot& snapshot);

  struct HeapStats {
    std::size_t objects = 0;
    std::size_t cells = 0;
  };
  [[nodiscard]] HeapStats heap_stats() const noexcept;

  // --- per-procedure code replacement (procedure-level update baseline) ---

  /// True if any activation record of function `fn_index` is on the stack.
  [[nodiscard]] bool function_active(std::uint32_t fn_index) const noexcept;

  /// Replaces the code of the function named `name` with the version from
  /// `donor` while the module runs. Refuses (with VmError) if the function
  /// is active, missing on either side, changes the frame shape, or calls
  /// procedures this program does not have -- the consistency rules of
  /// procedure-level dynamic updating (Frieder & Segal, ref [4] of the
  /// paper). Constant-pool and call indices are remapped from the donor.
  /// Limitation: a replacement that passes a function to mh_signal is
  /// rejected (function-index constants cannot be remapped soundly).
  void replace_function(const CompiledProgram& donor, const std::string& name);

  /// Code actually in effect for a function (override or original).
  [[nodiscard]] const CompiledFunction& effective_function(
      std::uint32_t fn_index) const;

  /// Human-readable activation record stack (diagnostics, tests).
  [[nodiscard]] std::string dump_stack() const;

 private:
  struct Frame {
    std::uint32_t fn = 0;
    std::uint32_t pc = 0;
    std::uint64_t id = 0;
    std::vector<RtValue> slots;
    std::vector<RtValue> stack;
  };
  struct HeapObject {
    std::vector<RtValue> cells;
  };

  void push_frame(std::uint32_t fn_index, std::size_t nargs);
  [[nodiscard]] Frame& top() { return frames_.back(); }
  [[nodiscard]] const CompiledFunction& fn_of(const Frame& f) const {
    return effective_function(f.fn);
  }

  [[nodiscard]] RtValue pop();
  void push(RtValue v) { top().stack.push_back(std::move(v)); }

  // The dispatch loops (bodies in machine_loop.inc, included twice from
  // machine.cpp). Passing resultp == nullptr asks the threaded variant for
  // its handler-label table (used by decode) instead of executing.
  const void* const* run_threaded(StepResult* resultp,
                                  std::uint64_t max_insns);
  const void* const* run_switch(StepResult* resultp, std::uint64_t max_insns);

  /// Lazily decoded code of effective_function(fn_index), with a sentinel
  /// entry at index `size` whose handler raises the pc-ran-off-the-end
  /// fault. Invalidated by replace_function and set_dispatch_mode.
  const DecodedInsn* decoded_code(std::uint32_t fn_index,
                                  std::uint32_t& size);
  /// Rebuilds rt_consts_ from the program + extra constant pools.
  void sync_rt_consts();

  bool exec_builtin(std::uint8_t id, std::uint32_t nargs);

  // Pointer plumbing.
  [[nodiscard]] RtValue load_ref(const Ref& r);
  void store_ref(const Ref& r, RtValue v);

  // Abstract state capture/restore (the mh_capture/mh_restore builtins).
  [[nodiscard]] ser::Value abstract_of(const RtValue& v,
                                       support::ValueKind kind);
  void capture_heap_object(std::uint64_t object_id, std::set<std::uint64_t>&
                                                        visited);
  [[nodiscard]] RtValue concrete_of(const ser::Value& v);
  void materialize_heap(const ser::StateBuffer& buf);

  [[nodiscard]] bool take_signal();

  const CompiledProgram* prog_;
  net::Arch arch_;
  bus::Client* client_ = nullptr;

  std::vector<RtValue> globals_;
  std::vector<Frame> frames_;
  /// frame id -> index in frames_. An index is stable for the frame's whole
  /// lifetime (frames_ only pushes and pops at the back).
  std::map<std::uint64_t, std::size_t> frame_by_id_;
  std::map<std::uint64_t, HeapObject> heap_;
  std::uint64_t next_frame_id_ = 1;
  std::uint64_t next_heap_id_ = 1;

  ser::StateBuffer capture_buf_;
  std::optional<ser::StateBuffer> restore_buf_;
  std::map<std::uint64_t, std::uint64_t> decode_id_map_;
  std::optional<ser::StateBuffer> last_encoded_;
  std::optional<ser::StateBuffer> injected_state_;

  void take_sample();

  std::int32_t signal_handler_fn_ = -1;
  bool local_signal_ = false;
  SampleSink* sample_sink_ = nullptr;
  std::uint64_t sample_period_ = 0;     // 0 = no periodic cadence
  std::uint64_t sample_countdown_ = 0;  // 0 = nothing armed
  std::uint64_t decode_count_ = 0;
  std::uint64_t capture_frames_total_ = 0;
  std::uint64_t restore_frames_total_ = 0;
  std::uint64_t encoded_state_bytes_total_ = 0;
  std::string standalone_status_ = "new";

  RunState state_ = RunState::kRunnable;
  std::string fault_message_;
  std::string blocked_iface_;
  std::uint64_t pending_sleep_us_ = 0;
  std::uint64_t instructions_executed_ = 0;

  support::SplitMix64 rng_;
  std::vector<std::string> output_;
  /// Per-function code overrides installed by replace_function, and the
  /// extra constants their remapped kPushConst instructions refer to
  /// (indices >= prog_->constants.size() address extra_constants_).
  std::map<std::uint32_t, CompiledFunction> fn_overrides_;
  std::vector<ser::Value> extra_constants_;

  DispatchMode dispatch_mode_ = default_dispatch_mode();
  /// Per-function decoded code, indexed by function index; entries are
  /// stable once created (unique_ptr to a vector that never grows).
  std::vector<std::unique_ptr<std::vector<DecodedInsn>>> decoded_;
  /// Constants pre-materialized as runtime values, so kPushConst is a copy
  /// instead of a per-execution abstract-value conversion.
  std::vector<RtValue> rt_consts_;
};

/// Printable name of a run state (diagnostics and test failure messages).
[[nodiscard]] const char* run_state_name(RunState state) noexcept;

/// Renders an RtValue for logs and tests.
[[nodiscard]] std::string rt_to_string(const RtValue& v);

}  // namespace surgeon::vm
