// MiniC -> bytecode compiler.
//
// Requires a program that sema has analyzed (slots resolved, types
// annotated). Each simulated machine conceptually runs its own copy of this
// compiler; the bytecode itself is architecture-neutral, and architecture
// differences live in the VM's frame images (net::Arch).
#pragma once

#include "minic/ast.hpp"
#include "vm/bytecode.hpp"

namespace surgeon::vm {

/// Compiles an analyzed program. Throws SemaError on constructs the
/// backend cannot express (e.g. non-literal global initializers).
[[nodiscard]] CompiledProgram compile(const minic::Program& program);

/// Convenience: parse + analyze + compile a source text.
[[nodiscard]] CompiledProgram compile_source(std::string_view source);

}  // namespace surgeon::vm
