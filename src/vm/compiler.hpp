// MiniC -> bytecode compiler.
//
// Requires a program that sema has analyzed (slots resolved, types
// annotated). Each simulated machine conceptually runs its own copy of this
// compiler; the bytecode itself is architecture-neutral, and architecture
// differences live in the VM's frame images (net::Arch).
#pragma once

#include "minic/ast.hpp"
#include "vm/bytecode.hpp"

namespace surgeon::vm {

struct CompileOptions {
  /// Run the superinstruction peephole pass after codegen. On by default;
  /// benches flip it off (via set_default_compile_options, so the toggle
  /// reaches compiles buried inside app::Runtime::load_application) to
  /// measure the unfused baseline.
  bool fuse = true;
};

/// Process-wide default used by the option-less compile()/compile_source()
/// entry points. Not thread-safe; meant for bench/test setup, not for
/// flipping mid-run.
void set_default_compile_options(const CompileOptions& options) noexcept;
[[nodiscard]] CompileOptions default_compile_options() noexcept;

/// Compiles an analyzed program. Throws SemaError on constructs the
/// backend cannot express (e.g. non-literal global initializers).
[[nodiscard]] CompiledProgram compile(const minic::Program& program,
                                      const CompileOptions& options);
[[nodiscard]] CompiledProgram compile(const minic::Program& program);

/// Convenience: parse + analyze + compile a source text.
[[nodiscard]] CompiledProgram compile_source(std::string_view source);

/// The superinstruction peephole pass (exposed for tests). Rewrites only
/// the head instruction of each matched sequence; interior instructions
/// stay in place, so code offsets, jump targets into the interior, and
/// captured pc values all remain valid.
void fuse_superinstructions(CompiledProgram& program);

}  // namespace surgeon::vm
