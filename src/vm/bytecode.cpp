#include "vm/bytecode.hpp"

#include <sstream>

namespace surgeon::vm {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kPushConst: return "push_const";
    case Op::kLoadSlot: return "load_slot";
    case Op::kStoreSlot: return "store_slot";
    case Op::kLoadGlobal: return "load_global";
    case Op::kStoreGlobal: return "store_global";
    case Op::kAddrSlot: return "addr_slot";
    case Op::kAddrGlobal: return "addr_global";
    case Op::kLoadInd: return "load_ind";
    case Op::kStoreInd: return "store_ind";
    case Op::kIndexPtr: return "index_ptr";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kNeg: return "neg";
    case Op::kNot: return "not";
    case Op::kCastInt: return "cast_int";
    case Op::kCastReal: return "cast_real";
    case Op::kJump: return "jump";
    case Op::kJumpIfFalse: return "jump_if_false";
    case Op::kJumpIfTrue: return "jump_if_true";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kRetVal: return "ret_val";
    case Op::kBuiltin: return "builtin";
    case Op::kPop: return "pop";
    case Op::kStmt: return "stmt";
    case Op::kStmtFlagJf: return "stmt+flag+jf";
    case Op::kEqJf: return "eq+jf";
    case Op::kNeJf: return "ne+jf";
    case Op::kLtJf: return "lt+jf";
    case Op::kLeJf: return "le+jf";
    case Op::kGtJf: return "gt+jf";
    case Op::kGeJf: return "ge+jf";
    case Op::kLoadSlotAdd: return "load_slot+add";
    case Op::kLoadSlotSub: return "load_slot+sub";
    case Op::kLoadSlotMul: return "load_slot+mul";
    case Op::kPushConstAdd: return "push_const+add";
    case Op::kPushConstSub: return "push_const+sub";
    case Op::kPushConstMul: return "push_const+mul";
    case Op::kStmtLoadSlot: return "stmt+load_slot";
    case Op::kStmtPushConst: return "stmt+push_const";
    case Op::kStmtSlotCmpConstJf: return "stmt+slot_cmp_const+jf";
    case Op::kPushConstAddStore: return "push_const+add+store";
    case Op::kPushConstSubStore: return "push_const+sub+store";
    case Op::kStmtLoadGlobal: return "stmt+load_global";
  }
  return "?";
}

std::uint32_t CompiledProgram::function_index(const std::string& name) const {
  for (std::uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return i;
  }
  return UINT32_MAX;
}

std::size_t CompiledProgram::total_instructions() const {
  std::size_t n = 0;
  for (const auto& f : functions) n += f.code.size();
  return n;
}

std::string CompiledProgram::disassemble() const {
  std::ostringstream os;
  for (const auto& f : functions) {
    os << f.name << " (params=" << f.param_count
       << ", slots=" << f.slot_types.size() << "):\n";
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const auto& insn = f.code[i];
      os << "  " << i << ": " << op_name(insn.op);
      switch (insn.op) {
        case Op::kPushConst:
        case Op::kPushConstAdd:
        case Op::kPushConstSub:
        case Op::kPushConstMul:
        case Op::kStmtPushConst:
        case Op::kPushConstAddStore:
        case Op::kPushConstSubStore:
          os << " " << constants[static_cast<std::size_t>(insn.a)].to_string();
          break;
        case Op::kLoadSlot:
        case Op::kStoreSlot:
        case Op::kAddrSlot:
        case Op::kLoadSlotAdd:
        case Op::kLoadSlotSub:
        case Op::kLoadSlotMul:
        case Op::kStmtLoadSlot:
        case Op::kStmtSlotCmpConstJf: {
          auto slot = static_cast<std::size_t>(insn.a);
          os << " " << insn.a;
          if (slot < f.slot_names.size()) os << " (" << f.slot_names[slot]
                                             << ")";
          break;
        }
        case Op::kLoadGlobal:
        case Op::kStoreGlobal:
        case Op::kAddrGlobal:
        case Op::kStmtLoadGlobal: {
          auto g = static_cast<std::size_t>(insn.a);
          os << " " << insn.a;
          if (g < globals.size()) os << " (" << globals[g].name << ")";
          break;
        }
        case Op::kJump:
        case Op::kJumpIfFalse:
        case Op::kJumpIfTrue:
        case Op::kEqJf:
        case Op::kNeJf:
        case Op::kLtJf:
        case Op::kLeJf:
        case Op::kGtJf:
        case Op::kGeJf:
          os << " -> " << insn.a;
          break;
        case Op::kStmtFlagJf: {
          auto g = static_cast<std::size_t>(insn.b);
          os << " " << insn.b;
          if (g < globals.size()) os << " (" << globals[g].name << ")";
          os << " -> " << insn.a;
          break;
        }
        case Op::kCall:
          os << " " << functions[static_cast<std::size_t>(insn.a)].name << "/"
             << insn.b;
          break;
        case Op::kBuiltin:
          os << " #" << insn.a << "/" << insn.b;
          break;
        default:
          break;
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace surgeon::vm
