#include "vm/bytecode.hpp"

#include <sstream>

namespace surgeon::vm {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kPushConst: return "push_const";
    case Op::kLoadSlot: return "load_slot";
    case Op::kStoreSlot: return "store_slot";
    case Op::kLoadGlobal: return "load_global";
    case Op::kStoreGlobal: return "store_global";
    case Op::kAddrSlot: return "addr_slot";
    case Op::kAddrGlobal: return "addr_global";
    case Op::kLoadInd: return "load_ind";
    case Op::kStoreInd: return "store_ind";
    case Op::kIndexPtr: return "index_ptr";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kNeg: return "neg";
    case Op::kNot: return "not";
    case Op::kCastInt: return "cast_int";
    case Op::kCastReal: return "cast_real";
    case Op::kJump: return "jump";
    case Op::kJumpIfFalse: return "jump_if_false";
    case Op::kJumpIfTrue: return "jump_if_true";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kRetVal: return "ret_val";
    case Op::kBuiltin: return "builtin";
    case Op::kPop: return "pop";
    case Op::kStmt: return "stmt";
  }
  return "?";
}

std::uint32_t CompiledProgram::function_index(const std::string& name) const {
  for (std::uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return i;
  }
  return UINT32_MAX;
}

std::size_t CompiledProgram::total_instructions() const {
  std::size_t n = 0;
  for (const auto& f : functions) n += f.code.size();
  return n;
}

std::string CompiledProgram::disassemble() const {
  std::ostringstream os;
  for (const auto& f : functions) {
    os << f.name << " (params=" << f.param_count
       << ", slots=" << f.slot_types.size() << "):\n";
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const auto& insn = f.code[i];
      os << "  " << i << ": " << op_name(insn.op);
      switch (insn.op) {
        case Op::kPushConst:
          os << " " << constants[static_cast<std::size_t>(insn.a)].to_string();
          break;
        case Op::kLoadSlot:
        case Op::kStoreSlot:
        case Op::kAddrSlot: {
          auto slot = static_cast<std::size_t>(insn.a);
          os << " " << insn.a;
          if (slot < f.slot_names.size()) os << " (" << f.slot_names[slot]
                                             << ")";
          break;
        }
        case Op::kLoadGlobal:
        case Op::kStoreGlobal:
        case Op::kAddrGlobal: {
          auto g = static_cast<std::size_t>(insn.a);
          os << " " << insn.a;
          if (g < globals.size()) os << " (" << globals[g].name << ")";
          break;
        }
        case Op::kJump:
        case Op::kJumpIfFalse:
        case Op::kJumpIfTrue:
          os << " -> " << insn.a;
          break;
        case Op::kCall:
          os << " " << functions[static_cast<std::size_t>(insn.a)].name << "/"
             << insn.b;
          break;
        case Op::kBuiltin:
          os << " #" << insn.a << "/" << insn.b;
          break;
        default:
          break;
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace surgeon::vm
