#include "vm/compiler.hpp"

#include <map>

#include "minic/builtins.hpp"
#include "minic/parser.hpp"
#include "minic/sema.hpp"

namespace surgeon::vm {

using namespace minic;
using support::SemaError;

namespace {

[[nodiscard]] SlotType slot_type_of(const Type& t) {
  if (t.is_pointer) return SlotType::kPointer;
  switch (t.base) {
    case BaseType::kInt:
      return SlotType::kInt;
    case BaseType::kReal:
      return SlotType::kReal;
    case BaseType::kString:
      return SlotType::kString;
    case BaseType::kVoid:
      break;
  }
  throw SemaError({}, "cannot map void to a slot type");
}

class FnCompiler {
 public:
  FnCompiler(const Program& prog, const Function& fn, CompiledProgram& out)
      : prog_(prog), fn_(fn), out_(out) {}

  CompiledFunction run() {
    cf_.name = fn_.name;
    cf_.param_count = static_cast<std::uint32_t>(fn_.params.size());
    cf_.returns_value = !fn_.return_type.is_void();
    for (const auto& p : fn_.params) {
      cf_.slot_types.push_back(slot_type_of(p.type));
      cf_.slot_names.push_back(p.name);
    }
    for (const auto& l : fn_.locals) {
      cf_.slot_types.push_back(slot_type_of(l.type));
      cf_.slot_names.push_back(l.name);
    }
    stmt(*fn_.body);
    // Falling off the end: return a default value for non-void functions
    // (benign version of C's undefined behaviour), plain return otherwise.
    if (cf_.returns_value) {
      emit(Op::kPushConst, constant(ser::default_value(
                               fn_.return_type.base == BaseType::kReal
                                   ? support::ValueKind::kReal
                               : fn_.return_type.base == BaseType::kString
                                   ? support::ValueKind::kString
                               : fn_.return_type.is_pointer
                                   ? support::ValueKind::kPointer
                                   : support::ValueKind::kInt)));
      emit(Op::kRetVal);
    } else {
      emit(Op::kRet);
    }
    // Resolve gotos now that all labels have offsets.
    for (const auto& [index, label] : pending_gotos_) {
      auto it = labels_.find(label);
      if (it == labels_.end()) {
        throw SemaError({}, "goto to unknown label '" + label +
                                "' survived sema in '" + fn_.name + "'");
      }
      cf_.code[index].a = static_cast<std::int32_t>(it->second);
    }
    return std::move(cf_);
  }

 private:
  std::size_t emit(Op op, std::int32_t a = 0, std::int32_t b = 0) {
    cf_.code.push_back(Insn{op, a, b});
    return cf_.code.size() - 1;
  }

  [[nodiscard]] std::int32_t here() const noexcept {
    return static_cast<std::int32_t>(cf_.code.size());
  }

  void patch(std::size_t index, std::int32_t target) {
    cf_.code[index].a = target;
  }

  std::int32_t constant(ser::Value v) {
    for (std::size_t i = 0; i < out_.constants.size(); ++i) {
      if (out_.constants[i] == v) return static_cast<std::int32_t>(i);
    }
    out_.constants.push_back(std::move(v));
    return static_cast<std::int32_t>(out_.constants.size() - 1);
  }

  [[nodiscard]] std::int32_t abs_slot(const VarExpr& v) const {
    switch (v.storage) {
      case VarStorage::kParam:
        return static_cast<std::int32_t>(v.slot);
      case VarStorage::kLocal:
        return static_cast<std::int32_t>(fn_.params.size() + v.slot);
      default:
        throw SemaError(v.loc, "variable '" + v.name + "' is not frame-local");
    }
  }

  /// Emits a numeric conversion when the value on the stack (static type
  /// `from`) must be stored as `to`. Sema guarantees only int -> real.
  void convert(const Type& from, const Type& to) {
    if (from == to) return;
    if (from == kIntType && to == kRealType) emit(Op::kCastReal);
    // null -> typed pointer needs no representation change.
  }

  // --- expressions ---------------------------------------------------------

  void expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        emit(Op::kPushConst,
             constant(ser::Value(static_cast<const IntLit&>(e).value)));
        return;
      case ExprKind::kRealLit:
        emit(Op::kPushConst,
             constant(ser::Value(static_cast<const RealLit&>(e).value)));
        return;
      case ExprKind::kStrLit:
        emit(Op::kPushConst,
             constant(ser::Value(static_cast<const StrLit&>(e).value)));
        return;
      case ExprKind::kNullLit:
        emit(Op::kPushConst, constant(ser::Value(ser::AbstractPointer{})));
        return;
      case ExprKind::kVar: {
        const auto& v = static_cast<const VarExpr&>(e);
        if (v.storage == VarStorage::kGlobal) {
          emit(Op::kLoadGlobal, static_cast<std::int32_t>(v.slot));
        } else if (v.storage == VarStorage::kFunc) {
          // Function used as a value: its index (mh_signal argument).
          emit(Op::kPushConst,
               constant(ser::Value(static_cast<std::int64_t>(v.slot))));
        } else {
          emit(Op::kLoadSlot, abs_slot(v));
        }
        return;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        expr(*u.operand);
        emit(u.op == UnaryOp::kNeg ? Op::kNeg : Op::kNot);
        return;
      }
      case ExprKind::kBinary:
        binary(static_cast<const BinaryExpr&>(e));
        return;
      case ExprKind::kCall:
        call(static_cast<const CallExpr&>(e));
        return;
      case ExprKind::kCast: {
        const auto& c = static_cast<const CastExpr&>(e);
        expr(*c.operand);
        emit(c.target == kRealType ? Op::kCastReal : Op::kCastInt);
        return;
      }
      case ExprKind::kAddrOf:
        addr_of(static_cast<const AddrOfExpr&>(e));
        return;
      case ExprKind::kDeref:
        expr(*static_cast<const DerefExpr&>(e).operand);
        emit(Op::kLoadInd);
        return;
      case ExprKind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(e);
        expr(*i.base);
        expr(*i.index);
        emit(Op::kIndexPtr);
        emit(Op::kLoadInd);
        return;
      }
    }
    throw SemaError(e.loc, "unknown expression in compiler");
  }

  void addr_of(const AddrOfExpr& a) {
    const auto& v = static_cast<const VarExpr&>(*a.operand);
    if (v.storage == VarStorage::kGlobal) {
      emit(Op::kAddrGlobal, static_cast<std::int32_t>(v.slot));
    } else {
      emit(Op::kAddrSlot, abs_slot(v));
    }
  }

  void binary(const BinaryExpr& b) {
    if (b.op == BinaryOp::kAnd || b.op == BinaryOp::kOr) {
      // Short-circuit, normalizing the result to 0/1.
      expr(*b.lhs);
      auto first = emit(
          b.op == BinaryOp::kAnd ? Op::kJumpIfFalse : Op::kJumpIfTrue);
      expr(*b.rhs);
      auto second = emit(
          b.op == BinaryOp::kAnd ? Op::kJumpIfFalse : Op::kJumpIfTrue);
      emit(Op::kPushConst,
           constant(ser::Value(std::int64_t{b.op == BinaryOp::kAnd})));
      auto done = emit(Op::kJump);
      patch(first, here());
      patch(second, here());
      emit(Op::kPushConst,
           constant(ser::Value(std::int64_t{b.op == BinaryOp::kOr})));
      patch(done, here());
      return;
    }
    expr(*b.lhs);
    expr(*b.rhs);
    switch (b.op) {
      case BinaryOp::kAdd: emit(Op::kAdd); return;
      case BinaryOp::kSub: emit(Op::kSub); return;
      case BinaryOp::kMul: emit(Op::kMul); return;
      case BinaryOp::kDiv: emit(Op::kDiv); return;
      case BinaryOp::kMod: emit(Op::kMod); return;
      case BinaryOp::kEq: emit(Op::kEq); return;
      case BinaryOp::kNe: emit(Op::kNe); return;
      case BinaryOp::kLt: emit(Op::kLt); return;
      case BinaryOp::kLe: emit(Op::kLe); return;
      case BinaryOp::kGt: emit(Op::kGt); return;
      case BinaryOp::kGe: emit(Op::kGe); return;
      default:
        throw SemaError(b.loc, "unexpected binary op in compiler");
    }
  }

  void call(const CallExpr& c) {
    if (c.is_builtin) {
      for (const auto& a : c.args) expr(*a);
      emit(Op::kBuiltin, static_cast<std::int32_t>(c.callee_index),
           static_cast<std::int32_t>(c.args.size()));
      return;
    }
    const Function& callee = *prog_.functions[c.callee_index];
    for (std::size_t i = 0; i < c.args.size(); ++i) {
      expr(*c.args[i]);
      convert(c.args[i]->type, callee.params[i].type);
    }
    emit(Op::kCall, static_cast<std::int32_t>(c.callee_index),
         static_cast<std::int32_t>(c.args.size()));
  }

  // --- statements ----------------------------------------------------------

  void stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& child : static_cast<const BlockStmt&>(s).stmts) {
          stmt(*child);
        }
        return;
      case StmtKind::kDecl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init) {
          emit(Op::kStmt);
          expr(*d.init);
          convert(d.init->type, d.type);
          emit(Op::kStoreSlot,
               static_cast<std::int32_t>(fn_.params.size() + d.slot));
        }
        return;
      }
      case StmtKind::kAssign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        emit(Op::kStmt);
        assign(a);
        return;
      }
      case StmtKind::kExpr: {
        const auto& e = static_cast<const ExprStmt&>(s);
        emit(Op::kStmt);
        expr(*e.expr);
        if (!e.expr->type.is_void()) emit(Op::kPop);
        return;
      }
      case StmtKind::kIf: {
        const auto& i = static_cast<const IfStmt&>(s);
        emit(Op::kStmt);
        expr(*i.cond);
        auto to_else = emit(Op::kJumpIfFalse);
        stmt(*i.then_branch);
        if (i.else_branch) {
          auto over_else = emit(Op::kJump);
          patch(to_else, here());
          stmt(*i.else_branch);
          patch(over_else, here());
        } else {
          patch(to_else, here());
        }
        return;
      }
      case StmtKind::kWhile: {
        const auto& w = static_cast<const WhileStmt&>(s);
        auto top = here();
        emit(Op::kStmt);
        expr(*w.cond);
        auto out = emit(Op::kJumpIfFalse);
        loops_.push_back(LoopContext{static_cast<std::size_t>(top), {}, {}});
        stmt(*w.body);
        emit(Op::kJump, top);
        patch(out, here());
        for (auto b : loops_.back().break_patches) patch(b, here());
        loops_.pop_back();
        return;
      }
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init) stmt(*f.init);
        auto top = here();
        std::size_t out = SIZE_MAX;
        emit(Op::kStmt);
        if (f.cond) {
          expr(*f.cond);
          out = emit(Op::kJumpIfFalse);
        }
        // `continue` must execute the step, so its target is recorded
        // after the body compiles; collect patches meanwhile.
        loops_.push_back(LoopContext{SIZE_MAX, {}, {}});
        stmt(*f.body);
        auto continue_target = here();
        if (f.step) stmt(*f.step);
        emit(Op::kJump, top);
        if (out != SIZE_MAX) patch(out, here());
        for (auto b : loops_.back().break_patches) patch(b, here());
        for (auto c : loops_.back().continue_patches) {
          patch(c, continue_target);
        }
        loops_.pop_back();
        return;
      }
      case StmtKind::kBreak: {
        emit(Op::kStmt);
        loops_.back().break_patches.push_back(emit(Op::kJump));
        return;
      }
      case StmtKind::kContinue: {
        emit(Op::kStmt);
        if (loops_.back().continue_offset != SIZE_MAX) {
          emit(Op::kJump,
               static_cast<std::int32_t>(loops_.back().continue_offset));
        } else {
          loops_.back().continue_patches.push_back(emit(Op::kJump));
        }
        return;
      }
      case StmtKind::kReturn: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        emit(Op::kStmt);
        if (r.value) {
          expr(*r.value);
          convert(r.value->type, fn_.return_type);
          emit(Op::kRetVal);
        } else {
          emit(Op::kRet);
        }
        return;
      }
      case StmtKind::kGoto: {
        const auto& g = static_cast<const GotoStmt&>(s);
        emit(Op::kStmt);
        pending_gotos_.emplace_back(emit(Op::kJump), g.label);
        return;
      }
      case StmtKind::kLabeled: {
        const auto& l = static_cast<const LabeledStmt&>(s);
        labels_[l.label] = static_cast<std::size_t>(here());
        stmt(*l.inner);
        return;
      }
      case StmtKind::kEmpty:
        return;
    }
    throw SemaError(s.loc, "unknown statement in compiler");
  }

  void assign(const AssignStmt& a) {
    switch (a.target->kind) {
      case ExprKind::kVar: {
        const auto& v = static_cast<const VarExpr&>(*a.target);
        expr(*a.value);
        convert(a.value->type, v.type);
        if (v.storage == VarStorage::kGlobal) {
          emit(Op::kStoreGlobal, static_cast<std::int32_t>(v.slot));
        } else {
          emit(Op::kStoreSlot, abs_slot(v));
        }
        return;
      }
      case ExprKind::kDeref: {
        const auto& d = static_cast<const DerefExpr&>(*a.target);
        expr(*a.value);
        convert(a.value->type, d.type);
        expr(*d.operand);
        emit(Op::kStoreInd);
        return;
      }
      case ExprKind::kIndex: {
        const auto& i = static_cast<const IndexExpr&>(*a.target);
        expr(*a.value);
        convert(a.value->type, i.type);
        expr(*i.base);
        expr(*i.index);
        emit(Op::kIndexPtr);
        emit(Op::kStoreInd);
        return;
      }
      default:
        throw SemaError(a.loc, "bad assignment target in compiler");
    }
  }

  struct LoopContext {
    /// Jump target of `continue`; SIZE_MAX when not yet known (for loops
    /// record continue sites and patch them to the step code afterwards).
    std::size_t continue_offset = SIZE_MAX;
    std::vector<std::size_t> break_patches;
    std::vector<std::size_t> continue_patches;
  };

  const Program& prog_;
  const Function& fn_;
  CompiledProgram& out_;
  CompiledFunction cf_;
  std::map<std::string, std::size_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> pending_gotos_;
  std::vector<LoopContext> loops_;
};

[[nodiscard]] ser::Value literal_init(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return ser::Value(static_cast<const IntLit&>(e).value);
    case ExprKind::kRealLit:
      return ser::Value(static_cast<const RealLit&>(e).value);
    case ExprKind::kStrLit:
      return ser::Value(static_cast<const StrLit&>(e).value);
    case ExprKind::kNullLit:
      return ser::Value(ser::AbstractPointer{});
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op == UnaryOp::kNeg) {
        ser::Value v = literal_init(*u.operand);
        if (v.is_int()) return ser::Value(-v.as_int());
        if (v.is_real()) return ser::Value(-v.as_real());
      }
      break;
    }
    default:
      break;
  }
  throw SemaError(e.loc, "global initializers must be literals");
}

[[nodiscard]] bool is_cmp(Op op) noexcept {
  return op == Op::kEq || op == Op::kNe || op == Op::kLt || op == Op::kLe ||
         op == Op::kGt || op == Op::kGe;
}

[[nodiscard]] Op cmp_jf(Op op) noexcept {
  switch (op) {
    case Op::kEq: return Op::kEqJf;
    case Op::kNe: return Op::kNeJf;
    case Op::kLt: return Op::kLtJf;
    case Op::kLe: return Op::kLeJf;
    case Op::kGt: return Op::kGtJf;
    default: return Op::kGeJf;
  }
}

void fuse_function(CompiledFunction& fn) {
  auto& code = fn.code;
  // Left-to-right, head replacement only, longest match first at each
  // position. Interiors we inspect when matching at i are always to the
  // right of i, so they are still the original plain ops. A later pass
  // position can rewrite the *interior* of an earlier fusion (e.g. the
  // kLtJf inside a kStmtSlotCmpConstJf): that is safe because every
  // rewrite is head-only and semantics-preserving, so both the fast path
  // (which skips the interior) and the head's slow path (which falls
  // through and dispatches it) observe the same behavior -- but wide
  // heads that read interior *operands* at runtime rely on the peephole
  // never changing an insn's a/b fields, only its op.
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Op op = code[i].op;
    if (op == Op::kStmt) {
      if (i + 2 < code.size() && code[i + 1].op == Op::kLoadGlobal &&
          code[i + 2].op == Op::kJumpIfFalse) {
        // The xform flag test: `if (mh_reconfig) {...}` and friends.
        code[i] = Insn{Op::kStmtFlagJf, code[i + 2].a, code[i + 1].a};
      } else if (i + 4 < code.size() && code[i + 1].op == Op::kLoadSlot &&
                 code[i + 2].op == Op::kPushConst && is_cmp(code[i + 3].op) &&
                 code[i + 4].op == Op::kJumpIfFalse) {
        // The while-loop header: `while (local <op> literal)`. Constant
        // index and branch target stay in the interiors.
        code[i] = Insn{Op::kStmtSlotCmpConstJf, code[i + 1].a,
                       static_cast<std::int32_t>(code[i + 3].op)};
      } else if (i + 1 < code.size() && code[i + 1].op == Op::kLoadSlot) {
        code[i] = Insn{Op::kStmtLoadSlot, code[i + 1].a, 0};
      } else if (i + 1 < code.size() && code[i + 1].op == Op::kLoadGlobal) {
        code[i] = Insn{Op::kStmtLoadGlobal, code[i + 1].a, 0};
      } else if (i + 1 < code.size() && code[i + 1].op == Op::kPushConst &&
                 (i + 2 >= code.size() ||
                  (code[i + 2].op != Op::kAdd && code[i + 2].op != Op::kSub &&
                   code[i + 2].op != Op::kMul))) {
        // When arithmetic follows, the push is more valuable as the head
        // of a kPushConst* fusion; leave the kStmt plain.
        code[i] = Insn{Op::kStmtPushConst, code[i + 1].a, 0};
      }
    } else if (is_cmp(op) && i + 1 < code.size() &&
               code[i + 1].op == Op::kJumpIfFalse) {
      code[i] = Insn{cmp_jf(op), code[i + 1].a, 0};
    } else if (op == Op::kLoadSlot && i + 1 < code.size()) {
      const Op next = code[i + 1].op;
      if (next == Op::kAdd) code[i].op = Op::kLoadSlotAdd;
      else if (next == Op::kSub) code[i].op = Op::kLoadSlotSub;
      else if (next == Op::kMul) code[i].op = Op::kLoadSlotMul;
    } else if (op == Op::kPushConst && i + 1 < code.size()) {
      const Op next = code[i + 1].op;
      const Op after = i + 2 < code.size() ? code[i + 2].op : Op::kStmt;
      if (next == Op::kAdd && after == Op::kStoreSlot) {
        code[i].op = Op::kPushConstAddStore;
      } else if (next == Op::kSub && after == Op::kStoreSlot) {
        code[i].op = Op::kPushConstSubStore;
      } else if (next == Op::kAdd) {
        code[i].op = Op::kPushConstAdd;
      } else if (next == Op::kSub) {
        code[i].op = Op::kPushConstSub;
      } else if (next == Op::kMul) {
        code[i].op = Op::kPushConstMul;
      }
    }
  }
}

CompileOptions g_default_options{};

}  // namespace

void set_default_compile_options(const CompileOptions& options) noexcept {
  g_default_options = options;
}

CompileOptions default_compile_options() noexcept { return g_default_options; }

void fuse_superinstructions(CompiledProgram& program) {
  for (auto& fn : program.functions) fuse_function(fn);
}

CompiledProgram compile(const Program& program) {
  return compile(program, g_default_options);
}

CompiledProgram compile(const Program& program, const CompileOptions& options) {
  CompiledProgram out;
  for (const auto& g : program.globals) {
    GlobalSlot slot;
    slot.name = g.name;
    slot.type = slot_type_of(g.type);
    if (g.init) {
      slot.init = literal_init(*g.init);
      if (slot.init.is_int() && g.type == kRealType) {
        slot.init = ser::Value(static_cast<double>(slot.init.as_int()));
      }
    } else {
      switch (slot.type) {
        case SlotType::kInt:
          slot.init = ser::Value(std::int64_t{0});
          break;
        case SlotType::kReal:
          slot.init = ser::Value(0.0);
          break;
        case SlotType::kString:
          slot.init = ser::Value(std::string{});
          break;
        case SlotType::kPointer:
          slot.init = ser::Value(ser::AbstractPointer{});
          break;
      }
    }
    out.globals.push_back(std::move(slot));
  }
  for (const auto& fn : program.functions) {
    out.functions.push_back(FnCompiler(program, *fn, out).run());
  }
  out.main_index = out.function_index("main");
  if (out.main_index == UINT32_MAX) {
    throw SemaError({}, "compiled program has no main()");
  }
  if (options.fuse) fuse_superinstructions(out);
  return out;
}

CompiledProgram compile_source(std::string_view source) {
  Program prog = parse_program(source);
  analyze(prog);
  return compile(prog);
}

}  // namespace surgeon::vm
