#include "net/sim.hpp"

#include "support/diag.hpp"

namespace surgeon::net {

using support::BusError;

void Simulator::add_machine(const std::string& name, Arch arch) {
  auto [it, inserted] = machines_.emplace(name, Machine{name, std::move(arch)});
  if (!inserted) throw BusError("machine already registered: " + name);
}

const Machine& Simulator::machine(const std::string& name) const {
  auto it = machines_.find(name);
  if (it == machines_.end()) throw BusError("unknown machine: " + name);
  return it->second;
}

DurableStore& Simulator::durable_store(const std::string& machine) {
  if (!machines_.contains(machine)) {
    throw BusError("unknown machine: " + machine);
  }
  return stores_[machine];
}

const DurableStore& Simulator::durable_store(const std::string& machine) const {
  return const_cast<Simulator*>(this)->durable_store(machine);
}

std::vector<std::string> Simulator::machine_names() const {
  std::vector<std::string> names;
  names.reserve(machines_.size());
  for (const auto& [name, m] : machines_) names.push_back(name);
  return names;
}

SimTime Simulator::message_latency(const std::string& a, const std::string& b) {
  return link_latency(a == b);
}

void Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_us_) t = now_us_;
  events_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (events_.empty()) return false;
  // priority_queue::top is const; copy the function out before popping.
  Event ev{events_.top().time, events_.top().seq, events_.top().fn};
  events_.pop();
  // Monotone clock: advance_time (instruction cost) may have pushed `now`
  // past already-scheduled events; those fire late -- the compute consumed
  // their interval -- rather than rewinding virtual time.
  if (ev.time > now_us_) now_us_ = ev.time;
  ev.fn();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace surgeon::net
