// Per-machine durable storage for the simulated network.
//
// A DurableStore models a machine's disk: append-only logs (the recovery
// subsystem's write-ahead log) and a small key/value area (module
// checkpoints). "Durable" is relative to the fault model of surgeon::chaos:
// a module or coordinator PROCESS crash loses all in-memory state, but the
// store — like the bus daemon — belongs to the host, so a restarted
// process reads back exactly what was written. Machine/host failures are
// out of scope (the paper's model has no persistent storage at all; this
// is the minimum addition that makes reconfiguration transactions
// recoverable).
//
// Everything is deterministic and in-memory; the counters exist so tests
// and benchmarks can assert how much "disk" traffic a protocol generates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace surgeon::net {

class DurableStore {
 public:
  using Record = std::vector<std::uint8_t>;

  // --- append-only logs ----------------------------------------------------

  /// Appends one record to the named log (created on first use).
  void append(const std::string& log, Record record);
  /// All records of a log, in append order; empty for an unknown log.
  [[nodiscard]] const std::vector<Record>& log(const std::string& log) const;
  /// Drops every record of a log (checkpoint compaction).
  void truncate(const std::string& log);

  // --- key/value area ------------------------------------------------------

  void put(const std::string& key, Record value);
  /// Null when the key is absent. The pointer is invalidated by the next
  /// put/erase on the same store.
  [[nodiscard]] const Record* get(const std::string& key) const;
  bool erase(const std::string& key);
  [[nodiscard]] std::vector<std::string> keys_with_prefix(
      const std::string& prefix) const;

  // --- accounting ----------------------------------------------------------

  [[nodiscard]] std::uint64_t appends() const noexcept { return appends_; }
  [[nodiscard]] std::uint64_t puts() const noexcept { return puts_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  std::map<std::string, std::vector<Record>> logs_;
  std::map<std::string, Record> kv_;
  std::uint64_t appends_ = 0;
  std::uint64_t puts_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace surgeon::net
