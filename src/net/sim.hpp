// Deterministic discrete-event simulator: machines, virtual clock, events.
//
// The bus schedules message deliveries and timers here; modules' sleep()
// calls become timer events. Time is virtual (microseconds), so integration
// tests of multi-machine reconfigurations run in milliseconds of wall time
// and are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "net/arch.hpp"
#include "net/durable.hpp"
#include "support/rng.hpp"

namespace surgeon::net {

using SimTime = std::uint64_t;  // microseconds of virtual time

struct Machine {
  std::string name;
  Arch arch;
};

/// Identity of a directed network link, the unit of event independence for
/// systematic fault-schedule exploration (surgeon::chaos). Two wire events
/// are *independent* -- injecting faults into them in either order yields
/// the same execution -- when they ride different directed links, or the
/// same link at different per-link copy indices: the simulator delivers
/// each link's copies in a deterministic order, and a fault decision for
/// copy k neither observes nor perturbs the decision for copy j != k.
/// Dependent (non-commuting) choices are only ever *alternatives at the
/// same point* (drop copy k vs. deliver copy k), which an explorer
/// branches on rather than reorders. The canonical ordering below lets an
/// explorer enumerate unordered fault *sets* instead of ordered sequences,
/// pruning every schedule that differs only by a reordering of
/// independent events.
struct LinkKey {
  std::string src;
  std::string dst;

  [[nodiscard]] bool loopback() const noexcept { return src == dst; }
  [[nodiscard]] std::string describe() const { return src + "->" + dst; }
  auto operator<=>(const LinkKey&) const = default;
};

/// A point in the space of wire events: the `index`-th copy put on `link`
/// during a deterministic run (0-based, counted per link). The total order
/// (link, index) is the canonical order used to enumerate commutative
/// fault sets exactly once.
struct WirePoint {
  LinkKey link;
  std::uint32_t index = 0;

  [[nodiscard]] std::string describe() const {
    return link.describe() + "#" + std::to_string(index);
  }
  auto operator<=>(const WirePoint&) const = default;
};

/// True when faulting `a` and `b` commutes (see LinkKey): distinct wire
/// points are always independent; only the same point conflicts with
/// itself.
[[nodiscard]] inline bool independent(const WirePoint& a,
                                      const WirePoint& b) noexcept {
  return a != b;
}

/// Network cost model. Delivery latency between two machines; same-machine
/// messages pay only the local cost.
struct LatencyModel {
  SimTime local_us = 10;
  SimTime remote_us = 2000;
  /// Max uniform jitter added to remote deliveries (0 = none).
  SimTime remote_jitter_us = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  /// Registers a machine. Throws BusError if the name is taken.
  void add_machine(const std::string& name, Arch arch);
  [[nodiscard]] bool has_machine(const std::string& name) const {
    return machines_.contains(name);
  }
  /// Throws BusError for an unknown machine.
  [[nodiscard]] const Machine& machine(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> machine_names() const;

  /// The machine's durable storage (disk): survives module and coordinator
  /// process crashes, which lose only in-memory state. Throws BusError for
  /// an unknown machine.
  [[nodiscard]] DurableStore& durable_store(const std::string& machine);
  [[nodiscard]] const DurableStore& durable_store(
      const std::string& machine) const;

  void set_latency_model(LatencyModel model) noexcept { latency_ = model; }
  [[nodiscard]] const LatencyModel& latency_model() const noexcept {
    return latency_;
  }
  /// Latency charged for a message from machine `a` to machine `b`.
  [[nodiscard]] SimTime message_latency(const std::string& a,
                                        const std::string& b);
  /// Same cost model for a link whose same-machine test is pre-resolved
  /// (the bus's compiled adjacency stores it), skipping the string compare.
  /// Consumes the jitter RNG exactly as message_latency does.
  [[nodiscard]] SimTime link_latency(bool same_machine) {
    if (same_machine) return latency_.local_us;
    SimTime jitter = latency_.remote_jitter_us == 0
                         ? 0
                         : rng_.next_below(latency_.remote_jitter_us + 1);
    return latency_.remote_us + jitter;
  }

  [[nodiscard]] SimTime now() const noexcept { return now_us_; }

  /// Advances the clock directly. Used by the scheduler to charge virtual
  /// time for computation (per-instruction cost model); pending events whose
  /// time has passed will run at the advanced clock.
  void advance_time(SimTime dt) noexcept { now_us_ += dt; }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now).
  void schedule_at(SimTime t, std::function<void()> fn);
  void schedule_after(SimTime dt, std::function<void()> fn) {
    schedule_at(now_us_ + dt, std::move(fn));
  }

  /// Runs the earliest pending event. Returns false when none remain.
  bool step();
  /// Runs events until the queue is empty or `max_events` is hit.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);
  [[nodiscard]] bool idle() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return events_.size();
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-break so equal-time events run FIFO
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimTime now_us_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  std::map<std::string, Machine> machines_;
  std::map<std::string, DurableStore> stores_;
  LatencyModel latency_;
  support::SplitMix64 rng_;
};

}  // namespace surgeon::net
