#include "net/durable.hpp"

namespace surgeon::net {

void DurableStore::append(const std::string& log, Record record) {
  ++appends_;
  bytes_written_ += record.size();
  logs_[log].push_back(std::move(record));
}

const std::vector<DurableStore::Record>& DurableStore::log(
    const std::string& log) const {
  static const std::vector<Record> kEmpty;
  auto it = logs_.find(log);
  return it == logs_.end() ? kEmpty : it->second;
}

void DurableStore::truncate(const std::string& log) { logs_.erase(log); }

void DurableStore::put(const std::string& key, Record value) {
  ++puts_;
  bytes_written_ += value.size();
  kv_[key] = std::move(value);
}

const DurableStore::Record* DurableStore::get(const std::string& key) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? nullptr : &it->second;
}

bool DurableStore::erase(const std::string& key) {
  return kv_.erase(key) != 0;
}

std::vector<std::string> DurableStore::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = kv_.lower_bound(prefix); it != kv_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

}  // namespace surgeon::net
