// Simulated machine architectures.
//
// The paper's platform runs on heterogeneous hosts; the abstract state
// format exists precisely because the native representations differ. Our
// simulated machines differ in byte order and in activation-record slot
// padding, which is enough to make a raw binary copy of VM frames
// non-portable between unlike architectures (tests assert this), while the
// abstract format crosses freely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.hpp"

namespace surgeon::net {

struct Arch {
  std::string name;
  support::ByteOrder byte_order = support::ByteOrder::kLittle;
  /// Bytes of padding inserted after every 8-byte frame slot; models the
  /// compiler-and-ABI-specific activation record layout of Section 1.2.
  std::uint32_t slot_padding = 0;

  friend bool operator==(const Arch&, const Arch&) = default;
};

/// The reference architectures used throughout tests and examples, named
/// for the kinds of machines a 1993 POLYLITH deployment spanned. They
/// differ pairwise in byte order and/or frame layout.
[[nodiscard]] inline Arch arch_vax() {
  return Arch{"vax", support::ByteOrder::kLittle, 0};
}
[[nodiscard]] inline Arch arch_sparc() {
  return Arch{"sparc", support::ByteOrder::kBig, 8};
}
[[nodiscard]] inline Arch arch_mips() {
  return Arch{"mips", support::ByteOrder::kBig, 0};
}

/// All reference architectures (property sweeps iterate over pairs).
[[nodiscard]] inline std::vector<Arch> reference_arches() {
  return {arch_vax(), arch_sparc(), arch_mips()};
}

}  // namespace surgeon::net
