#include "reconfig/scripts.hpp"

#include "obs/metrics.hpp"
#include "serialize/state.hpp"
#include "trace/recorder.hpp"

namespace surgeon::reconfig {

using bus::BindEdit;
using bus::BindEditBatch;
using bus::BindingEnd;

/// mh_edit_bind commands that repoint every binding of `from` to `to` and
/// move queued messages across (Figure 5's loop over the interfaces).
BindEditBatch make_rebind_batch(bus::Bus& bus, const std::string& from,
                                const std::string& to) {
  BindEditBatch batch;
  for (const auto& iface : bus.interface_names(from)) {
    BindingEnd old_end{from, iface};
    BindingEnd new_end{to, iface};
    for (const auto& peer : bus.bound_peers(old_end)) {
      batch.add(BindEdit{BindEdit::Op::kDel, old_end, peer});
      batch.add(BindEdit{BindEdit::Op::kAdd, new_end, peer});
    }
    batch.add(BindEdit{BindEdit::Op::kCaptureQueue, old_end, new_end});
    batch.add(BindEdit{BindEdit::Op::kRemoveQueue, old_end, {}});
  }
  return batch;
}

/// Late queue sweep: messages that were in flight toward the old instance
/// during the rebind have now landed in its unbound queues; move them.
std::size_t sweep_queues(bus::Bus& bus, const std::string& from,
                         const std::string& to) {
  if (!bus.has_module(from)) return 0;
  BindEditBatch batch;
  std::size_t moved = 0;
  for (const auto& iface : bus.interface_names(from)) {
    moved += bus.queue_depth(from, iface);
    batch.add(BindEdit{BindEdit::Op::kCaptureQueue,
                       BindingEnd{from, iface},
                       BindingEnd{to, iface}});
  }
  if (moved != 0) bus.rebind(batch);
  return moved;
}

std::size_t copy_bindings(bus::Bus& bus, const std::string& from,
                          const std::string& to) {
  BindEditBatch batch;
  std::size_t added = 0;
  for (const auto& iface : bus.interface_names(from)) {
    for (const auto& peer : bus.bound_peers(BindingEnd{from, iface})) {
      batch.add(BindEdit{BindEdit::Op::kAdd, BindingEnd{to, iface}, peer});
      ++added;
    }
  }
  if (added != 0) bus.rebind(batch);
  return added;
}

namespace {

std::size_t queued_total(bus::Bus& bus, const std::string& module) {
  std::size_t n = 0;
  for (const auto& iface : bus.interface_names(module)) {
    n += bus.queue_depth(module, iface);
  }
  return n;
}

/// ScriptError text naming the Figure 5 step and the instance at which the
/// script failed: "replace_module[<step>] <role> '<instance>': <what>".
ScriptError step_error(const char* step, const char* role,
                       const std::string& instance, const std::string& what) {
  return ScriptError(std::string("replace_module[") + step + "] " + role +
                     " '" + instance + "': " + what);
}

/// Closes the flight recorder's current trace grouping when the script
/// leaves, normally or by throw, so later traffic is not misattributed.
struct TraceScope {
  explicit TraceScope(trace::Recorder& recorder) : recorder_(recorder) {}
  ~TraceScope() { recorder_.end_trace(); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  trace::Recorder& recorder_;
};

enum class RestoreOutcome { kOk, kCrashed, kFault, kTimeout };

/// Waits for the clone to finish installing its state. Unlike the original
/// single-shot wait this reports HOW the wait ended, so the caller can
/// retry after a crash or give-up instead of wedging.
RestoreOutcome await_restore(app::Runtime& rt, const std::string& instance,
                             std::uint64_t max_rounds,
                             net::SimTime timeout_us) {
  auto settled = [&] {
    if (rt.module_crashed(instance)) return true;
    vm::Machine* m = rt.machine_of(instance);
    if (m == nullptr) return false;
    if (m->state() == vm::RunState::kFault) return true;
    return m->decode_count() > 0 && m->restore_frames_remaining() == 0;
  };
  bool ok;
  if (timeout_us > 0) {
    net::SimTime deadline = rt.now() + timeout_us;
    (void)rt.run_until([&] { return settled() || rt.now() >= deadline; },
                       max_rounds);
    ok = settled();
  } else {
    ok = rt.run_until(settled, max_rounds);
  }
  if (rt.module_crashed(instance)) return RestoreOutcome::kCrashed;
  vm::Machine* m = rt.machine_of(instance);
  if (m != nullptr && m->state() == vm::RunState::kFault) {
    return RestoreOutcome::kFault;
  }
  if (ok && m != nullptr && m->decode_count() > 0 &&
      m->restore_frames_remaining() == 0) {
    return RestoreOutcome::kOk;
  }
  return RestoreOutcome::kTimeout;
}

void wait_for_restore(app::Runtime& rt, const std::string& instance,
                      std::uint64_t max_rounds) {
  switch (await_restore(rt, instance, max_rounds, 0)) {
    case RestoreOutcome::kOk:
      return;
    case RestoreOutcome::kFault:
      throw step_error(kStepAdd, "clone", instance,
                       "faulted while installing state: " +
                           rt.machine_of(instance)->fault_message());
    case RestoreOutcome::kCrashed:
      throw step_error(kStepAdd, "clone", instance, "crashed while restoring");
    case RestoreOutcome::kTimeout:
      throw step_error(kStepAdd, "clone", instance,
                       "did not finish restoring within the budget");
  }
}

}  // namespace

ReplaceReport replace_module(app::Runtime& rt, const std::string& instance,
                             const ReplaceOptions& options) {
  bus::Bus& bus = rt.bus();
  if (!bus.has_module(instance)) {
    throw ScriptError("replace_module: unknown module '" + instance + "'");
  }
  const app::ModuleImage* image = rt.image_of(instance);
  if (image == nullptr) {
    throw ScriptError("replace_module: no image registered for '" + instance +
                      "'");
  }
  ReplaceReport report;
  report.old_instance = instance;
  // Each script step runs under an obs::Span: a no-op while metrics are
  // disabled, a virtual-time span per Figure 5 phase when enabled.
  obs::MetricsRegistry* metrics = &rt.metrics();
  // Open a trace grouping so the flight recorder attributes the whole
  // replacement (signal, divulge, state move, rebind, captures) to one
  // trace id; a no-op while causal tracing is disabled.
  TraceScope trace_scope(rt.tracer());
  if (rt.tracer().enabled()) {
    report.trace_id = rt.tracer().begin_trace("replace:" + instance);
  }

  // The clone's name is assigned before step 1 so the journal's begin
  // record can name both transaction parties up front; a recovering
  // coordinator then knows exactly which instance to look for.
  report.new_instance = rt.fresh_instance_name(instance);
  if (options.journal != nullptr) {
    options.journal->begin(instance, report.new_instance, options.machine);
  }
  // Write-ahead discipline: the intent record hits the log before the step
  // runs, and the crash hook fires between the two -- a throw from it
  // models the coordinator dying at exactly that boundary.
  auto boundary = [&options](const char* step) {
    if (options.journal != nullptr) options.journal->intent(step);
    if (options.crash_hook) options.crash_hook(step);
  };

  // 1. mh_obj_cap: the current specification (machine may have changed in a
  //    previous reconfiguration, so read it from the bus, not the config).
  bus::ModuleInfo old_info;
  {
    boundary(kStepObjCap);
    obs::Span span(metrics, kStepObjCap, instance);
    old_info = bus.module_info(instance);
  }

  // 2. The new module: same specification, new MACHINE, STATUS = clone.
  {
    boundary(kStepCloneRegister);
    obs::Span span(metrics, kStepCloneRegister, instance);
    app::ModuleImage new_image = *image;
    if (options.program != nullptr) new_image.program = options.program;
    const std::string target =
        options.machine.empty() ? old_info.machine : options.machine;
    rt.install_module(report.new_instance, std::move(new_image), target,
                      "clone");
  }
  // From here on, a failure must not leave the half-born clone behind.
  auto cleanup_clone = [&rt, &report]() noexcept {
    try {
      rt.remove_module(report.new_instance);
    } catch (...) {
    }
  };

  // 3. Prepare the rebinding commands (applied later, all at once), as in
  //    Figure 5 -- the queue capture commands act on whatever is queued
  //    when the batch applies.
  BindEditBatch rebind_batch;
  {
    boundary(kStepBindEditPrep);
    obs::Span span(metrics, kStepBindEditPrep, instance);
    rebind_batch = make_rebind_batch(bus, instance, report.new_instance);
  }

  // 4. mh_objstate_move: signal, await compliance, move the state. A
  //    divulge timeout aborts and rolls back: nothing structural has
  //    changed yet, so cancelling the control traffic and removing the
  //    clone leaves the application serving on the old instance.
  std::vector<std::uint8_t> saved_state;  // re-delivered on retries
  {
    boundary(kStepObjstateMove);
    obs::Span span(metrics, kStepObjstateMove, instance);
    report.requested_at = rt.now();
    bus.signal_reconfig(instance);
    bool divulged;
    if (options.divulge_timeout_us > 0) {
      net::SimTime deadline = rt.now() + options.divulge_timeout_us;
      (void)rt.run_until(
          [&] {
            return bus.has_divulged_state(instance) || rt.now() >= deadline;
          },
          options.max_rounds);
      divulged = bus.has_divulged_state(instance);
    } else {
      divulged = rt.run_until([&] { return bus.has_divulged_state(instance); },
                              options.max_rounds);
    }
    if (!divulged) {
      bus.cancel_pending_control(instance);
      (void)bus.take_pending_signal(instance);
      cleanup_clone();
      if (options.journal != nullptr) {
        options.journal->aborted("divulge timeout");
      }
      throw step_error(kStepObjstateMove, "module", instance,
                       "never divulged its state (does execution reach a "
                       "reconfiguration point?)");
    }
    report.divulged_at = rt.now();
    std::vector<std::uint8_t> state_bytes = bus.take_divulged_state(instance);
    report.state_bytes = state_bytes.size();
    report.state_frames = ser::StateBuffer::decode(state_bytes).frame_count();
    // The divulged record is the roll-forward watershed: it must be durable
    // before the state buffer enters the delivery pipeline.
    if (options.journal != nullptr) options.journal->divulged(state_bytes);
    if (options.state_sink) options.state_sink(state_bytes);
    if (options.max_attempts > 1) saved_state = state_bytes;
    bus.deliver_state(old_info.machine, report.new_instance,
                      std::move(state_bytes));
  }

  // 5. mh_rebind: atomically repoint bindings and move queued messages.
  {
    boundary(kStepRebind);
    obs::Span span(metrics, kStepRebind, instance);
    report.queued_messages_moved = queued_total(bus, instance);
    bus.rebind(rebind_batch);
    report.rebound_at = rt.now();
  }

  // 6. mh_chg_obj "add": start the clone; it decodes and restores itself.
  {
    boundary(kStepAdd);
    obs::Span span(metrics, kStepAdd, instance);
    rt.start_module(report.new_instance);
  }

  // 7. mh_chg_obj "del": retire the old instance. With a drain window,
  //    in-flight messages land first and are swept across; the drain span
  //    nests inside the del span on the timeline.
  {
    boundary(kStepDel);
    obs::Span span(metrics, kStepDel, instance);
    rt.stop_module(instance);
    if (options.drain_us > 0) {
      obs::Span drain(metrics, kStepDrain, instance);
      rt.run_for(options.drain_us, options.max_rounds);
      report.queued_messages_moved +=
          sweep_queues(bus, instance, report.new_instance);
    }
    rt.remove_module(instance);
  }

  if (options.wait_for_restore) {
    // Installation attempts: a clone that crashes (or whose state transfer
    // gave up) becomes a binding/queue holder for a fresh clone, which gets
    // the saved state buffer re-delivered. The old instance is already
    // gone, so there is no rollback past this point -- only retry until
    // max_attempts, then a ScriptError describing the last failure.
    for (;; ++report.attempts) {
      RestoreOutcome outcome =
          await_restore(rt, report.new_instance, options.max_rounds,
                        options.restore_timeout_us);
      if (outcome == RestoreOutcome::kOk) break;
      if (outcome == RestoreOutcome::kFault) {
        throw step_error(
            kStepAdd, "clone", report.new_instance,
            "faulted while installing state: " +
                rt.machine_of(report.new_instance)->fault_message());
      }
      if (report.attempts >= options.max_attempts) {
        if (outcome == RestoreOutcome::kCrashed) {
          throw step_error(kStepAdd, "clone", report.new_instance,
                           "crashed while restoring");
        }
        throw step_error(kStepAdd, "clone", report.new_instance,
                         "did not finish restoring within the budget");
      }
      const std::string holder = report.new_instance;
      bus.cancel_pending_control(holder);
      const app::ModuleImage* holder_image = rt.image_of(holder);
      const bus::ModuleInfo holder_info = bus.module_info(holder);
      report.new_instance = rt.fresh_instance_name(instance);
      rt.install_module(report.new_instance, *holder_image,
                        holder_info.machine, "clone");
      bus.deliver_state(old_info.machine, report.new_instance, saved_state);
      bus.rebind(make_rebind_batch(bus, holder, report.new_instance));
      rt.start_module(report.new_instance);
      rt.remove_module(holder);
    }
    report.restored_at = rt.now();
  }
  // Commit boundary: all structural steps (and any retry chain) are done;
  // the commit record closes the WAL transaction.
  boundary(kStepCommit);
  if (options.journal != nullptr) options.journal->committed();
  report.completed_at = rt.now();
  // Disruption metrics: how long the application was without this module,
  // and how much state the replacement moved. The per-message queueing
  // delay distribution (surgeon_reconfig_queued_delay_us) is recorded by
  // the bus at queue-capture time.
  if (metrics->enabled()) {
    obs::Labels labels{{"module", instance}};
    metrics->counter("surgeon_reconfig_replacements_total", labels).inc();
    if (report.restored_at != 0) {
      metrics->histogram("surgeon_reconfig_blackout_us", labels)
          .observe(report.blackout_us());
    }
    metrics->histogram("surgeon_reconfig_total_us", labels)
        .observe(report.total_delay());
    metrics
        ->histogram("surgeon_reconfig_state_bytes", labels,
                    {64, 256, 1'024, 4'096, 16'384, 65'536, 262'144,
                     1'048'576})
        .observe(report.state_bytes);
    metrics->counter("surgeon_reconfig_queued_moved_total", labels)
        .inc(report.queued_messages_moved);
  }
  return report;
}

ReplaceReport move_module(app::Runtime& rt, const std::string& instance,
                          const std::string& machine) {
  ReplaceOptions options;
  options.machine = machine;
  return replace_module(rt, instance, options);
}

ReplaceReport update_module(
    app::Runtime& rt, const std::string& instance,
    std::shared_ptr<const vm::CompiledProgram> program) {
  ReplaceOptions options;
  options.program = std::move(program);
  return replace_module(rt, instance, options);
}

ReplicateReport replicate_module(app::Runtime& rt,
                                 const std::string& instance,
                                 const std::string& replica_machine,
                                 bool bind_replica) {
  bus::Bus& bus = rt.bus();
  if (!bus.has_module(instance)) {
    throw ScriptError("replicate_module: unknown module '" + instance + "'");
  }
  const app::ModuleImage* image = rt.image_of(instance);
  if (image == nullptr) {
    throw ScriptError("replicate_module: no image for '" + instance + "'");
  }
  ReplicateReport report;
  const bus::ModuleInfo old_info = bus.module_info(instance);

  // Two clones: the primary continues in the original's place; the replica
  // starts fresh on the other machine with the same installed state.
  report.primary.old_instance = instance;
  report.primary.new_instance = rt.fresh_instance_name(instance);
  rt.install_module(report.primary.new_instance, *image, old_info.machine,
                    "clone");
  report.replica_instance = rt.fresh_instance_name(instance);
  rt.install_module(report.replica_instance, *image, replica_machine,
                    "clone");

  // Divulge once; install the same abstract state twice. This is the
  // portability property of the abstract format at work: the state buffer
  // is plain data that can be copied to any number of clones.
  report.primary.requested_at = rt.now();
  bus.signal_reconfig(instance);
  if (!rt.run_until([&] { return bus.has_divulged_state(instance); },
                    1'000'000)) {
    throw ScriptError("module '" + instance + "' never divulged its state");
  }
  report.primary.divulged_at = rt.now();
  std::vector<std::uint8_t> state_bytes = bus.take_divulged_state(instance);
  report.primary.state_bytes = state_bytes.size();
  report.primary.state_frames =
      ser::StateBuffer::decode(state_bytes).frame_count();
  bus.deliver_state(old_info.machine, report.primary.new_instance,
                    state_bytes);
  bus.deliver_state(old_info.machine, report.replica_instance,
                    std::move(state_bytes));

  report.primary.queued_messages_moved = queued_total(bus, instance);
  bus.rebind(make_rebind_batch(bus, instance, report.primary.new_instance));
  if (bind_replica) {
    // The primary clone holds exactly the original's bindings now; give the
    // replica copies of the same ends.
    copy_bindings(bus, report.primary.new_instance, report.replica_instance);
  }
  report.primary.rebound_at = rt.now();

  rt.start_module(report.primary.new_instance);
  rt.start_module(report.replica_instance);
  rt.stop_module(instance);
  rt.run_for(10'000);
  report.primary.queued_messages_moved +=
      sweep_queues(bus, instance, report.primary.new_instance);
  rt.remove_module(instance);

  wait_for_restore(rt, report.primary.new_instance, 1'000'000);
  wait_for_restore(rt, report.replica_instance, 1'000'000);
  report.primary.completed_at = rt.now();
  return report;
}

}  // namespace surgeon::reconfig
