// Reconfiguration scripts: the procedural descriptions of Figure 5,
// parameterized over module name and attributes as Section 2.2 proposes.
//
// A script coordinates the application-level reconfiguration primitives
// (ref [9]: bind edits, queue capture, state movement, module add/remove)
// with the module-level participation that the transformer installed
// (divulging state at a reconfiguration point, installing it in a clone).
//
// The canonical replacement script, step by step (Figure 5):
//   1. mh_obj_cap        -- obtain the current specification of the module
//   2. register the new instance (same spec, new MACHINE, STATUS="clone")
//   3. mh_bind_cap / mh_edit_bind -- prepare del/add rebinding commands plus
//      "cap" (move queued messages) and "rmq" (clear old queues)
//   4. mh_objstate_move  -- signal the old module, wait for it to divulge,
//      move the abstract state to the new module's decode mailbox
//   5. mh_rebind         -- apply the binding commands atomically
//   6. mh_chg_obj "add"  -- start the new module (it restores itself)
//   7. mh_chg_obj "del"  -- remove the old module
//
// Our addition beyond the figure: an optional drain window between rebind
// and removal, during which messages that were already in flight toward the
// old instance land in its (now unbound) queues and are moved to the new
// instance. The 1993 bus had no delivery latency, so the paper never faced
// in-flight messages; the simulated network does.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "app/runtime.hpp"

namespace surgeon::reconfig {

// Span names of the replacement script's phases, as recorded into
// rt.metrics() (scope = the replaced instance) and into the
// surgeon_reconfig_step_us histogram. The first seven are the Figure 5
// steps in script order; kStepDrain is our drain-window addition, nested
// inside kStepDel on the timeline. Span timestamps are virtual
// microseconds, so they correlate 1:1 with TraceEvent timestamps.
inline constexpr const char* kStepObjCap = "obj_cap";
inline constexpr const char* kStepCloneRegister = "clone_register";
inline constexpr const char* kStepBindEditPrep = "bind_edit_prep";
inline constexpr const char* kStepObjstateMove = "objstate_move";
inline constexpr const char* kStepRebind = "rebind";
inline constexpr const char* kStepAdd = "add";
inline constexpr const char* kStepDel = "del";
inline constexpr const char* kStepDrain = "drain";
/// Not a Figure 5 step: the journal boundary just before the commit record
/// is written, i.e. after kStepDel completed (surgeon::recover).
inline constexpr const char* kStepCommit = "commit";

/// The seven Figure 5 steps, in the order the script performs them.
inline constexpr std::array<const char*, 7> kFigure5Steps = {
    kStepObjCap,  kStepCloneRegister, kStepBindEditPrep, kStepObjstateMove,
    kStepRebind,  kStepAdd,           kStepDel};

/// Thrown when a script cannot complete (module missing, no divulged state
/// within the budget, faulted clone). The message names the Figure 5 step
/// and module instance at which the script failed, e.g.
///   replace_module[objstate_move] module 'server': never divulged ...
class ScriptError : public support::Error {
 public:
  using Error::Error;
};

/// Observer for write-ahead journaling of a replacement (surgeon::recover
/// implements it over the per-machine durable store). The script reports
/// every transaction boundary *before* acting on it, so a coordinator that
/// crashes mid-script leaves enough on disk for a successor to roll the
/// replacement forward (post-divulge) or back (pre-divulge).
///
/// The boundary sequence is a verified contract: verify's plans carry the
/// same tags and verify_test pins them against a recording journal, so a
/// new or reordered boundary must be reflected in verify::shipped_plans()
/// (where the static checker will prove invariants 1-6 across it).
class ScriptJournal {
 public:
  virtual ~ScriptJournal() = default;
  /// A replacement transaction opened: old instance, the pre-assigned clone
  /// name, and the requested target machine ("" = stay in place).
  virtual void begin(const std::string& old_instance,
                     const std::string& new_instance,
                     const std::string& machine) = 0;
  /// About to execute the named step (one of kFigure5Steps, or kStepCommit
  /// just before the commit record is written).
  virtual void intent(const char* step) = 0;
  /// The old module divulged; `state` is the abstract state buffer. This is
  /// the roll-forward watershed: once logged, the replacement can always be
  /// completed from the log alone.
  virtual void divulged(const std::vector<std::uint8_t>& state) = 0;
  /// The script finished; the transaction is closed.
  virtual void committed() = 0;
  /// The script rolled back before the divulge point.
  virtual void aborted(const std::string& reason) = 0;
};

struct ReplaceOptions {
  /// Target machine; empty keeps the module's current machine.
  std::string machine;
  /// Replacement program; null migrates the existing program unchanged.
  /// A replacement must be reconfiguration-compatible: same reconfiguration
  /// graph shape (edge numbering) and captured-variable layouts, so the old
  /// instance's frames install cleanly in the new code.
  std::shared_ptr<const vm::CompiledProgram> program;
  /// Scheduling budget for each wait inside the script.
  std::uint64_t max_rounds = 1'000'000;
  /// Drain window (virtual us) before the old instance is removed; 0
  /// removes it immediately, as the paper's script does.
  net::SimTime drain_us = 10'000;
  /// Wait until the clone has fully restored (reached its reconfiguration
  /// point) before returning.
  bool wait_for_restore = true;
  // --- fault tolerance (surgeon::chaos; appended so positional
  // --- initialization of the original five fields stays valid) ------------
  /// Attempts for the post-divulge installation: when a clone crashes or
  /// its state transfer gives up, the script registers a fresh clone, moves
  /// the bindings/queues across, and re-delivers the saved state buffer.
  /// 1 (the default) reproduces the original single-shot script.
  int max_attempts = 1;
  /// Virtual-time budget for the old module to divulge after the signal.
  /// 0 = wait forever in virtual time (only the scheduling-rounds budget
  /// bounds the wait — a module that never reaches a reconfiguration point
  /// burns all of max_rounds before the script aborts). On expiry the
  /// script aborts and rolls back: the clone is removed, pending control
  /// traffic is cancelled, and the application keeps serving on the old
  /// instance. The default is deliberately generous: 5 virtual seconds
  /// dwarfs any drain/retransmit window the chaos harness produces.
  net::SimTime divulge_timeout_us = 5'000'000;
  /// Virtual-time budget per attempt for the clone to finish restoring;
  /// 0 = wait forever in virtual time (rounds budget only), as above.
  net::SimTime restore_timeout_us = 10'000'000;
  // --- crash recovery (surgeon::recover) ----------------------------------
  /// When set, the script reports each transaction boundary here before
  /// acting on it (write-ahead journaling).
  ScriptJournal* journal = nullptr;
  /// Test/fault-injection hook invoked at every step boundary, after the
  /// journal intent is written and before the step executes. Throwing from
  /// it models a coordinator crash at exactly that boundary.
  std::function<void(const char* step)> crash_hook;
  /// Observes the divulged state buffer (the production capture path);
  /// surgeon::recover persists it as the module's checkpoint.
  std::function<void(const std::vector<std::uint8_t>&)> state_sink;
};

struct ReplaceReport {
  std::string old_instance;
  std::string new_instance;
  net::SimTime requested_at = 0;   // when the signal was sent
  net::SimTime divulged_at = 0;    // when the old module divulged its state
  net::SimTime rebound_at = 0;     // when bindings were switched
  net::SimTime restored_at = 0;    // when the clone finished restoring
                                   // (0 when wait_for_restore was off)
  net::SimTime completed_at = 0;   // when the script finished
  std::size_t state_bytes = 0;
  std::size_t state_frames = 0;
  std::size_t queued_messages_moved = 0;
  /// Installation attempts consumed (1 = no retry was needed).
  int attempts = 1;
  /// Flight-recorder trace grouping of this replacement (0 when causal
  /// tracing was off); filter exporters on it to isolate the operation.
  std::uint64_t trace_id = 0;

  [[nodiscard]] net::SimTime total_delay() const noexcept {
    return completed_at - requested_at;
  }
  [[nodiscard]] net::SimTime reaction_delay() const noexcept {
    return divulged_at - requested_at;
  }
  /// The disruption window: from the moment the old instance passivated
  /// (divulged -- it serves no request after this) until the clone finished
  /// restoring and can serve. Zero when the script did not wait for the
  /// restore. Also observed into surgeon_reconfig_blackout_us.
  [[nodiscard]] net::SimTime blackout_us() const noexcept {
    return restored_at > divulged_at ? restored_at - divulged_at : 0;
  }
};

/// The parameterized replacement script. Works on any module that was
/// prepared for reconfiguration. Returns a report with the new instance
/// name and the timing/size measurements the benchmarks consume.
ReplaceReport replace_module(app::Runtime& rt, const std::string& instance,
                             const ReplaceOptions& options = {});

/// Process migration: replacement with the same program on another machine
/// (the Monitor example's reconfiguration, Figure 1).
ReplaceReport move_module(app::Runtime& rt, const std::string& instance,
                          const std::string& machine);

/// Software maintenance: replacement with a new program version in place.
ReplaceReport update_module(
    app::Runtime& rt, const std::string& instance,
    std::shared_ptr<const vm::CompiledProgram> program);

struct ReplicateReport {
  ReplaceReport primary;          // the in-place clone that continues
  std::string replica_instance;   // the additional clone
};

/// Replication (the SURGEON activity of ref [5]): divulge once, install the
/// same abstract state in TWO clones -- one replacing the original in its
/// bindings, one fresh replica on another machine. The replica gets copies
/// of the original's bindings unless `bind_replica` is false.
ReplicateReport replicate_module(app::Runtime& rt, const std::string& instance,
                                 const std::string& replica_machine,
                                 bool bind_replica = true);

// --- script building blocks, exposed for surgeon::recover -----------------

/// mh_edit_bind command batch repointing every binding of `from` to `to`:
/// del/add per bound peer plus queue capture and queue removal for each
/// interface (Figure 5's loop). Recovery re-derives the same batch when it
/// rolls a logged replacement forward.
bus::BindEditBatch make_rebind_batch(bus::Bus& bus, const std::string& from,
                                     const std::string& to);

/// Late queue sweep: moves messages that landed in `from`'s unbound queues
/// over to `to`; returns how many moved. No-op when `from` is gone.
std::size_t sweep_queues(bus::Bus& bus, const std::string& from,
                         const std::string& to);

/// Copies every binding of `from` onto `to` without disturbing `from`
/// (add-only, no queue capture): the replica half of replicate_module, and
/// the way surgeon::replicate attaches a fresh group member to the router.
/// Returns the number of bindings added.
std::size_t copy_bindings(bus::Bus& bus, const std::string& from,
                          const std::string& to);

}  // namespace surgeon::reconfig
