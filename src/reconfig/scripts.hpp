// Reconfiguration scripts: the procedural descriptions of Figure 5,
// parameterized over module name and attributes as Section 2.2 proposes.
//
// A script coordinates the application-level reconfiguration primitives
// (ref [9]: bind edits, queue capture, state movement, module add/remove)
// with the module-level participation that the transformer installed
// (divulging state at a reconfiguration point, installing it in a clone).
//
// The canonical replacement script, step by step (Figure 5):
//   1. mh_obj_cap        -- obtain the current specification of the module
//   2. register the new instance (same spec, new MACHINE, STATUS="clone")
//   3. mh_bind_cap / mh_edit_bind -- prepare del/add rebinding commands plus
//      "cap" (move queued messages) and "rmq" (clear old queues)
//   4. mh_objstate_move  -- signal the old module, wait for it to divulge,
//      move the abstract state to the new module's decode mailbox
//   5. mh_rebind         -- apply the binding commands atomically
//   6. mh_chg_obj "add"  -- start the new module (it restores itself)
//   7. mh_chg_obj "del"  -- remove the old module
//
// Our addition beyond the figure: an optional drain window between rebind
// and removal, during which messages that were already in flight toward the
// old instance land in its (now unbound) queues and are moved to the new
// instance. The 1993 bus had no delivery latency, so the paper never faced
// in-flight messages; the simulated network does.
#pragma once

#include <array>
#include <string>

#include "app/runtime.hpp"

namespace surgeon::reconfig {

// Span names of the replacement script's phases, as recorded into
// rt.metrics() (scope = the replaced instance) and into the
// surgeon_reconfig_step_us histogram. The first seven are the Figure 5
// steps in script order; kStepDrain is our drain-window addition, nested
// inside kStepDel on the timeline. Span timestamps are virtual
// microseconds, so they correlate 1:1 with TraceEvent timestamps.
inline constexpr const char* kStepObjCap = "obj_cap";
inline constexpr const char* kStepCloneRegister = "clone_register";
inline constexpr const char* kStepBindEditPrep = "bind_edit_prep";
inline constexpr const char* kStepObjstateMove = "objstate_move";
inline constexpr const char* kStepRebind = "rebind";
inline constexpr const char* kStepAdd = "add";
inline constexpr const char* kStepDel = "del";
inline constexpr const char* kStepDrain = "drain";

/// The seven Figure 5 steps, in the order the script performs them.
inline constexpr std::array<const char*, 7> kFigure5Steps = {
    kStepObjCap,  kStepCloneRegister, kStepBindEditPrep, kStepObjstateMove,
    kStepRebind,  kStepAdd,           kStepDel};

/// Thrown when a script cannot complete (module missing, no divulged state
/// within the budget, faulted clone).
class ScriptError : public support::Error {
 public:
  using Error::Error;
};

struct ReplaceOptions {
  /// Target machine; empty keeps the module's current machine.
  std::string machine;
  /// Replacement program; null migrates the existing program unchanged.
  /// A replacement must be reconfiguration-compatible: same reconfiguration
  /// graph shape (edge numbering) and captured-variable layouts, so the old
  /// instance's frames install cleanly in the new code.
  std::shared_ptr<const vm::CompiledProgram> program;
  /// Scheduling budget for each wait inside the script.
  std::uint64_t max_rounds = 1'000'000;
  /// Drain window (virtual us) before the old instance is removed; 0
  /// removes it immediately, as the paper's script does.
  net::SimTime drain_us = 10'000;
  /// Wait until the clone has fully restored (reached its reconfiguration
  /// point) before returning.
  bool wait_for_restore = true;
  // --- fault tolerance (surgeon::chaos; appended so positional
  // --- initialization of the original five fields stays valid) ------------
  /// Attempts for the post-divulge installation: when a clone crashes or
  /// its state transfer gives up, the script registers a fresh clone, moves
  /// the bindings/queues across, and re-delivers the saved state buffer.
  /// 1 (the default) reproduces the original single-shot script.
  int max_attempts = 1;
  /// Virtual-time budget for the old module to divulge after the signal;
  /// 0 = scheduling-rounds budget only (the original behavior). On expiry
  /// the script aborts and rolls back: the clone is removed, pending
  /// control traffic is cancelled, and the application keeps serving on
  /// the old instance.
  net::SimTime divulge_timeout_us = 0;
  /// Virtual-time budget per attempt for the clone to finish restoring;
  /// 0 = scheduling-rounds budget only.
  net::SimTime restore_timeout_us = 0;
};

struct ReplaceReport {
  std::string old_instance;
  std::string new_instance;
  net::SimTime requested_at = 0;   // when the signal was sent
  net::SimTime divulged_at = 0;    // when the old module divulged its state
  net::SimTime rebound_at = 0;     // when bindings were switched
  net::SimTime completed_at = 0;   // when the script finished
  std::size_t state_bytes = 0;
  std::size_t state_frames = 0;
  std::size_t queued_messages_moved = 0;
  /// Installation attempts consumed (1 = no retry was needed).
  int attempts = 1;
  /// Flight-recorder trace grouping of this replacement (0 when causal
  /// tracing was off); filter exporters on it to isolate the operation.
  std::uint64_t trace_id = 0;

  [[nodiscard]] net::SimTime total_delay() const noexcept {
    return completed_at - requested_at;
  }
  [[nodiscard]] net::SimTime reaction_delay() const noexcept {
    return divulged_at - requested_at;
  }
};

/// The parameterized replacement script. Works on any module that was
/// prepared for reconfiguration. Returns a report with the new instance
/// name and the timing/size measurements the benchmarks consume.
ReplaceReport replace_module(app::Runtime& rt, const std::string& instance,
                             const ReplaceOptions& options = {});

/// Process migration: replacement with the same program on another machine
/// (the Monitor example's reconfiguration, Figure 1).
ReplaceReport move_module(app::Runtime& rt, const std::string& instance,
                          const std::string& machine);

/// Software maintenance: replacement with a new program version in place.
ReplaceReport update_module(
    app::Runtime& rt, const std::string& instance,
    std::shared_ptr<const vm::CompiledProgram> program);

struct ReplicateReport {
  ReplaceReport primary;          // the in-place clone that continues
  std::string replica_instance;   // the additional clone
};

/// Replication (the SURGEON activity of ref [5]): divulge once, install the
/// same abstract state in TWO clones -- one replacing the original in its
/// bindings, one fresh replica on another machine. The replica gets copies
/// of the original's bindings unless `bind_replica` is false.
ReplicateReport replicate_module(app::Runtime& rt, const std::string& instance,
                                 const std::string& replica_machine,
                                 bool bind_replica = true);

}  // namespace surgeon::reconfig
