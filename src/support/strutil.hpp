// Small string helpers shared by the front ends and the report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace surgeon::support {

[[nodiscard]] std::string_view trim(std::string_view s) noexcept;
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;
/// Quotes a string for diagnostics and source emission: wraps in double
/// quotes and escapes backslash, quote, and newline.
[[nodiscard]] std::string quote(std::string_view s);

}  // namespace surgeon::support
