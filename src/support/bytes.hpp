// Byte buffers with explicit endianness control.
//
// The simulated machines in surgeon::net have different native byte orders;
// the abstract state format is always big-endian ("network order", as the
// POLYLITH bus would marshal it). These helpers make every conversion
// explicit so a raw memcpy can never silently cross an architecture
// boundary.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace surgeon::support {

enum class ByteOrder { kLittle, kBig };

/// Appends scalar values to a byte vector in a chosen byte order.
class ByteWriter {
 public:
  explicit ByteWriter(ByteOrder order = ByteOrder::kBig) : order_(order) {}

  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v) { put_uint(v, 2); }
  void put_u32(std::uint32_t v) { put_uint(v, 4); }
  void put_u64(std::uint64_t v) { put_uint(v, 8); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  /// Length-prefixed (u32) byte string.
  void put_string(std::string_view s);
  void put_raw(std::span<const std::uint8_t> raw);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(bytes_); }
  [[nodiscard]] ByteOrder order() const noexcept { return order_; }

 private:
  void put_uint(std::uint64_t v, int width);

  ByteOrder order_;
  std::vector<std::uint8_t> bytes_;
};

/// Reads scalar values back out of a byte span. Throws VmError on underrun,
/// because a short read always indicates a corrupted state buffer.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> bytes,
             ByteOrder order = ByteOrder::kBig)
      : bytes_(bytes), order_(order) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16() {
    return static_cast<std::uint16_t>(get_uint(2));
  }
  [[nodiscard]] std::uint32_t get_u32() {
    return static_cast<std::uint32_t>(get_uint(4));
  }
  [[nodiscard]] std::uint64_t get_u64() { return get_uint(8); }
  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_string();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool at_end() const noexcept { return remaining() == 0; }

 private:
  [[nodiscard]] std::uint64_t get_uint(int width);
  void require(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  ByteOrder order_;
  std::size_t pos_ = 0;
};

/// Host-independent scalar store/load used for VM frame slots: the value is
/// laid out in `order` byte order at `dst`, which must have 8 bytes.
void store_u64(std::uint8_t* dst, std::uint64_t v, ByteOrder order) noexcept;
[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* src,
                                     ByteOrder order) noexcept;

}  // namespace surgeon::support
