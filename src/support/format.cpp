#include "support/format.hpp"

namespace surgeon::support {

const char* value_kind_name(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kInt:
      return "int";
    case ValueKind::kReal:
      return "real";
    case ValueKind::kString:
      return "string";
    case ValueKind::kPointer:
      return "pointer";
  }
  return "?";
}

char value_kind_code(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kInt:
      return 'i';
    case ValueKind::kReal:
      return 'F';
    case ValueKind::kString:
      return 's';
    case ValueKind::kPointer:
      return 'p';
  }
  return '?';
}

std::vector<ValueKind> parse_format(std::string_view format) {
  std::vector<ValueKind> kinds;
  kinds.reserve(format.size());
  for (std::size_t i = 0; i < format.size(); ++i) {
    switch (format[i]) {
      case 'i':
      case 'I':
      case 'l':
      case 'L':
        kinds.push_back(ValueKind::kInt);
        break;
      case 'f':
      case 'F':
        kinds.push_back(ValueKind::kReal);
        break;
      case 's':
      case 'S':
        kinds.push_back(ValueKind::kString);
        break;
      case 'p':
      case 'P':
        kinds.push_back(ValueKind::kPointer);
        break;
      default:
        throw ParseError(
            SourceLoc{},
            std::string("bad format character '") + format[i] +
                "' at position " + std::to_string(i) + " in format \"" +
                std::string(format) + "\"");
    }
  }
  return kinds;
}

std::string format_of(const std::vector<ValueKind>& kinds) {
  std::string s;
  s.reserve(kinds.size());
  for (ValueKind k : kinds) s.push_back(value_kind_code(k));
  return s;
}

}  // namespace surgeon::support
