#include "support/strutil.hpp"

namespace surgeon::support {

std::string_view trim(std::string_view s) noexcept {
  const char* ws = " \t\r\n";
  auto first = s.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  auto last = s.find_last_not_of(ws);
  return s.substr(first, last - first + 1);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      return parts;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace surgeon::support
