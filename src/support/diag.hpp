// Diagnostics: source locations, error kinds, and the exception types used
// across the SURGEON++ front ends and runtime.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace surgeon::support {

/// A position in a source text (configuration spec or MiniC program).
/// Lines and columns are 1-based; line 0 means "unknown".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool known() const noexcept { return line != 0; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Severity of a collected diagnostic.
enum class Severity { kNote, kWarning, kError };

/// One diagnostic message attached to a source location.
struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Accumulates diagnostics during a front-end pass. Front ends report
/// problems here and throw only when they cannot make progress.
class DiagnosticEngine {
 public:
  void report(Severity severity, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::kError, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::kWarning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::kNote, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const noexcept { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const noexcept { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  /// All diagnostics joined with newlines, for error messages and tests.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Base class for all SURGEON++ errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed source text (configuration spec or MiniC program).
class ParseError : public Error {
 public:
  ParseError(SourceLoc loc, const std::string& message)
      : Error(loc.known() ? loc.to_string() + ": " + message : message),
        loc_(loc) {}
  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }

 private:
  SourceLoc loc_;
};

/// Semantic error (type mismatch, undefined symbol, bad reconfiguration point).
class SemaError : public Error {
 public:
  SemaError(SourceLoc loc, const std::string& message)
      : Error(loc.known() ? loc.to_string() + ": " + message : message),
        loc_(loc) {}
  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }

 private:
  SourceLoc loc_;
};

/// Error raised by the VM while executing a module.
class VmError : public Error {
 public:
  using Error::Error;
};

/// Error raised by the software bus or reconfiguration runtime.
class BusError : public Error {
 public:
  using Error::Error;
};

}  // namespace surgeon::support
