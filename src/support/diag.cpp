#include "support/diag.hpp"

#include <sstream>

namespace surgeon::support {

std::string SourceLoc::to_string() const {
  if (!known()) return "<unknown>";
  std::ostringstream os;
  os << "line " << line << ":" << column;
  return os.str();
}

namespace {
const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << loc.to_string() << ": " << severity_name(severity) << ": " << message;
  return os.str();
}

void DiagnosticEngine::report(Severity severity, SourceLoc loc,
                              std::string message) {
  if (severity == Severity::kError) ++error_count_;
  diags_.push_back(Diagnostic{severity, loc, std::move(message)});
}

std::string DiagnosticEngine::summary() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.to_string() << "\n";
  return os.str();
}

}  // namespace surgeon::support
