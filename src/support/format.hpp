// POLYLITH-style format strings.
//
// The paper's bus primitives name the shape of a message or state frame with
// a short format string: mh_read("display","i",...), mh_capture("llF",...),
// mh_restore("iif",...). Each character describes one value:
//
//   'i', 'l'  -- integer            (we store 64-bit signed)
//   'f', 'F'  -- floating point     (we store IEEE double)
//   's', 'S'  -- character string
//   'p', 'P'  -- abstract pointer   (symbolic heap reference; our extension)
//
// The original POLYLITH distinguished int/long and float/double widths; the
// abstract state format makes that distinction unnecessary, so upper- and
// lower-case letters are synonyms, exactly wide enough for the paper's
// examples ("llF", "iiF", "iif") to parse unchanged.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/diag.hpp"

namespace surgeon::support {

/// The kind of one value slot in a message or state frame.
enum class ValueKind : std::uint8_t { kInt, kReal, kString, kPointer };

[[nodiscard]] const char* value_kind_name(ValueKind kind) noexcept;
[[nodiscard]] char value_kind_code(ValueKind kind) noexcept;

/// Parses a format string into value kinds. Throws ParseError on an
/// unrecognized character.
[[nodiscard]] std::vector<ValueKind> parse_format(std::string_view format);

/// Inverse of parse_format.
[[nodiscard]] std::string format_of(const std::vector<ValueKind>& kinds);

}  // namespace surgeon::support
