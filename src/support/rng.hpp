// Deterministic pseudo-random numbers (SplitMix64).
//
// Everything in the simulator that needs randomness -- network jitter,
// workload generators, property-test sweeps -- draws from a seeded
// SplitMix64 stream so every run is exactly reproducible.
#pragma once

#include <cstdint>

namespace surgeon::support {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace surgeon::support
