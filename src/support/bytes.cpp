#include "support/bytes.hpp"

#include <bit>

namespace surgeon::support {

void ByteWriter::put_uint(std::uint64_t v, int width) {
  for (int i = 0; i < width; ++i) {
    int shift = (order_ == ByteOrder::kBig) ? (width - 1 - i) * 8 : i * 8;
    bytes_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void ByteWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::put_raw(std::span<const std::uint8_t> raw) {
  bytes_.insert(bytes_.end(), raw.begin(), raw.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw VmError("byte buffer underrun: need " + std::to_string(n) +
                  " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return bytes_[pos_++];
}

std::uint64_t ByteReader::get_uint(int width) {
  require(static_cast<std::size_t>(width));
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    int shift = (order_ == ByteOrder::kBig) ? (width - 1 - i) * 8 : i * 8;
    v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
         << shift;
  }
  pos_ += static_cast<std::size_t>(width);
  return v;
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string ByteReader::get_string() {
  std::uint32_t n = get_u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

void store_u64(std::uint8_t* dst, std::uint64_t v, ByteOrder order) noexcept {
  for (int i = 0; i < 8; ++i) {
    int shift = (order == ByteOrder::kBig) ? (7 - i) * 8 : i * 8;
    dst[i] = static_cast<std::uint8_t>((v >> shift) & 0xff);
  }
}

std::uint64_t load_u64(const std::uint8_t* src, ByteOrder order) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    int shift = (order == ByteOrder::kBig) ? (7 - i) * 8 : i * 8;
    v |= static_cast<std::uint64_t>(src[i]) << shift;
  }
  return v;
}

}  // namespace surgeon::support
