// The Section-3 source transformation: prepare a module for reconfiguration.
//
// Given a MiniC program and the reconfiguration points named in its module
// specification, this pass rewrites the program so that it can divulge and
// install its own process state -- including the activation record stack in
// the middle of recursive calls -- using only ordinary source statements:
//
//  1. Normalize the program (if/while bodies become blocks).
//  2. Build the reconfiguration graph (graph::build_reconfig_graph).
//  3. Add the reconfiguration globals (mh_reconfig, mh_capturestack,
//     mh_restoring, mh_location) and the signal handler mh_catchreconfig.
//  4. For every edge (i, Si): install a capture block after Si and a label
//     Li; for every reconfiguration edge (j, R): install a capture block
//     immediately before label R (Figure 7).
//  5. Install a restore block at the top of every function in the graph,
//     with restore code per edge; main's restore block additionally checks
//     mh_getstatus(), calls mh_decode(), and restores the data area
//     (Figure 8 / Figure 4).
//  6. In restore code, repeat the interrupted call with dummy arguments
//     substituted for expressions whose evaluation could fault under the
//     restored state (Section 3, last paragraph). Pointer arguments are
//     repeated verbatim: they re-establish the aliasing that lets a callee
//     restore values through its pointer parameters.
//
// The output is ordinary MiniC: the unmodified compiler and VM rebuild the
// activation record stack during restoration, with no reference to a
// program counter or saved call/return information.
#pragma once

#include <string>
#include <vector>

#include "cfg/spec.hpp"
#include "graph/callgraph.hpp"
#include "minic/ast.hpp"

namespace surgeon::xform {

struct XformOptions {
  /// Capture the module's global (static data area) state in a dedicated
  /// final frame, restored first. Figure 4 has no globals; Section 1.2
  /// lists static data as part of the process state, so this defaults on.
  bool capture_globals = true;
  /// Use live-variable analysis to shrink the captured state at each site
  /// to the variables live there (the paper's suggested data-flow
  /// refinement). Off by default: capture all parameters and locals.
  bool use_liveness = false;
};

/// An error in the transformation inputs (bad reconfiguration point, name
/// collision with the mh_ machinery, non-statement call on the path).
class XformError : public support::Error {
 public:
  using Error::Error;
};

struct XformResult {
  /// The reconfiguration graph the instrumentation was generated from.
  graph::ReconfigGraph graph;
  /// Labels the pass inserted ("L1", "L2", ...), in edge order.
  std::vector<std::string> labels_added;
  /// Per-function captured-variable counts (diagnostics and the liveness
  /// ablation benchmark).
  std::vector<std::pair<std::string, std::size_t>> captured_var_counts;
};

/// Rewrites every if/while body into a block, in place. Idempotent. The
/// transformation requires this shape; it is exposed separately for tests.
void normalize_blocks(minic::Program& program);

/// Transforms `program` in place. The program must already be analyzed
/// (sema); it is re-analyzed after transformation so it can be compiled
/// directly. Throws XformError / SemaError on invalid input.
XformResult prepare_module(minic::Program& program,
                           const std::vector<cfg::ReconfigPointSpec>& points,
                           const XformOptions& options = {});

/// Convenience for tools and tests: parse, analyze, transform, and return
/// the transformed source text alongside the result.
struct PreparedSource {
  std::string source;
  XformResult result;
};
PreparedSource prepare_source(std::string_view source,
                              const std::vector<cfg::ReconfigPointSpec>& points,
                              const XformOptions& options = {});

}  // namespace surgeon::xform
