#include "xform/transform.hpp"

#include <map>

#include "dataflow/liveness.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "minic/sema.hpp"
#include "support/format.hpp"

namespace surgeon::xform {

using namespace minic;
using support::ValueKind;

namespace {

constexpr const char* kFlagReconfig = "mh_reconfig";
constexpr const char* kFlagCaptureStack = "mh_capturestack";
constexpr const char* kFlagRestoring = "mh_restoring";
constexpr const char* kVarLocation = "mh_location";
constexpr const char* kHandlerName = "mh_catchreconfig";

// ---------------------------------------------------------------------------
// Normalization

void normalize_stmt(StmtPtr& slot);

void wrap_in_block(StmtPtr& slot) {
  if (slot->kind == StmtKind::kBlock) {
    normalize_stmt(slot);
    return;
  }
  auto block = std::make_unique<BlockStmt>(slot->loc);
  block->stmts.push_back(std::move(slot));
  normalize_stmt(block->stmts.front());
  slot = std::move(block);
}

void normalize_stmt(StmtPtr& slot) {
  switch (slot->kind) {
    case StmtKind::kBlock: {
      auto& b = static_cast<BlockStmt&>(*slot);
      for (auto& child : b.stmts) normalize_stmt(child);
      return;
    }
    case StmtKind::kIf: {
      auto& s = static_cast<IfStmt&>(*slot);
      wrap_in_block(s.then_branch);
      if (s.else_branch) wrap_in_block(s.else_branch);
      return;
    }
    case StmtKind::kWhile: {
      auto& s = static_cast<WhileStmt&>(*slot);
      wrap_in_block(s.body);
      return;
    }
    case StmtKind::kFor: {
      auto& s = static_cast<ForStmt&>(*slot);
      wrap_in_block(s.body);
      return;
    }
    case StmtKind::kLabeled: {
      auto& s = static_cast<LabeledStmt&>(*slot);
      normalize_stmt(s.inner);
      return;
    }
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// Small AST factories

ExprPtr call_expr(const char* name, std::vector<ExprPtr> args = {}) {
  return make_call(name, std::move(args));
}

StmtPtr call_stmt(const char* name, std::vector<ExprPtr> args = {}) {
  return std::make_unique<ExprStmt>(call_expr(name, std::move(args)),
                                    support::SourceLoc{});
}

StmtPtr assign_var(const char* name, std::int64_t value) {
  return std::make_unique<AssignStmt>(make_var(name), make_int(value),
                                      support::SourceLoc{});
}

ExprPtr default_literal(const Type& type) {
  if (type.is_pointer) return std::make_unique<NullLit>(support::SourceLoc{});
  switch (type.base) {
    case BaseType::kReal:
      return make_real(0.0);
    case BaseType::kString:
      return make_str("");
    default:
      return make_int(0);
  }
}

StmtPtr return_stmt(const Function& fn) {
  ExprPtr value;
  if (!fn.return_type.is_void()) value = default_literal(fn.return_type);
  return std::make_unique<ReturnStmt>(std::move(value), support::SourceLoc{});
}

// ---------------------------------------------------------------------------
// Capture variable descriptors

struct CapVar {
  std::string name;
  Type type;
  bool deref = false;  // pointer parameter captured as *name
};

char kind_code_of(const CapVar& v) {
  Type t = v.deref ? v.type.pointee() : v.type;
  if (t.is_pointer) return 'p';
  switch (t.base) {
    case BaseType::kReal:
      return 'F';
    case BaseType::kString:
      return 's';
    default:
      return 'i';
  }
}

/// Expression placed in a mh_capture argument list for this variable.
ExprPtr capture_arg(const CapVar& v) {
  if (v.deref) {
    return std::make_unique<DerefExpr>(make_var(v.name), support::SourceLoc{});
  }
  return make_var(v.name);
}

/// Expression placed in a mh_restore target list for this variable.
ExprPtr restore_target(const CapVar& v) {
  // A dereferenced pointer parameter is restored *through* the pointer, so
  // the pointer itself is the target (Figure 4 passes rp, not &rp).
  if (v.deref) return make_var(v.name);
  return make_addr_of(v.name);
}

// ---------------------------------------------------------------------------
// Dummy-argument analysis (Section 3, final paragraph)

/// Can evaluating this expression fault at run time? Division and modulo
/// can trap; calls can do anything; dereferences and indexing can hit
/// dangling or null pointers. Everything else built from safe parts is safe.
bool expr_is_safe(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kRealLit:
    case ExprKind::kStrLit:
    case ExprKind::kNullLit:
    case ExprKind::kVar:
      return true;
    case ExprKind::kUnary:
      return expr_is_safe(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kCast:
      return expr_is_safe(*static_cast<const CastExpr&>(e).operand);
    case ExprKind::kAddrOf:
      return true;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      if (b.op == BinaryOp::kDiv || b.op == BinaryOp::kMod) return false;
      return expr_is_safe(*b.lhs) && expr_is_safe(*b.rhs);
    }
    default:
      return false;  // calls, derefs, indexing
  }
}

}  // namespace

void normalize_blocks(Program& program) {
  for (auto& fn : program.functions) {
    for (auto& stmt : fn->body->stmts) normalize_stmt(stmt);
  }
}

// ---------------------------------------------------------------------------
// The transformer

namespace {

class Transformer {
 public:
  Transformer(Program& prog, const std::vector<cfg::ReconfigPointSpec>& points,
              const XformOptions& opts)
      : prog_(prog), points_(points), opts_(opts) {}

  XformResult run() {
    check_reserved_names();
    normalize_blocks(prog_);

    std::vector<std::string> labels;
    labels.reserve(points_.size());
    for (const auto& p : points_) labels.push_back(p.label);
    result_.graph = graph::build_reconfig_graph(prog_, labels);

    collect_used_labels();
    if (opts_.use_liveness) {
      for (const auto& fn_name : result_.graph.nodes) {
        Function* fn = prog_.find_function(fn_name);
        liveness_.emplace(fn_name, dataflow::Liveness::analyze(*fn));
      }
    }
    gather_globals();
    inject_machinery();

    // Instrument functions in program order for deterministic output.
    for (auto& fn : prog_.functions) {
      if (!result_.graph.nodes.contains(fn->name)) continue;
      if (fn->name == kHandlerName) continue;
      instrument(*fn);
    }

    reanalyze(prog_);
    return std::move(result_);
  }

 private:
  void check_reserved_names() {
    auto reserved = {kFlagReconfig, kFlagCaptureStack, kFlagRestoring,
                     kVarLocation, kHandlerName};
    for (const char* name : reserved) {
      for (const auto& g : prog_.globals) {
        if (g.name == name) {
          throw XformError("program already defines '" + std::string(name) +
                           "'; it was either transformed twice or uses a "
                           "reserved mh_ name");
        }
      }
      if (prog_.find_function(name) != nullptr) {
        throw XformError("program already defines function '" +
                         std::string(name) + "'");
      }
    }
  }

  void collect_used_labels() {
    // Walk every statement for labels so generated Li names cannot collide.
    struct Walk {
      std::set<std::string>* labels;
      void stmt(const Stmt& s) {
        switch (s.kind) {
          case StmtKind::kLabeled: {
            const auto& l = static_cast<const LabeledStmt&>(s);
            labels->insert(l.label);
            stmt(*l.inner);
            return;
          }
          case StmtKind::kBlock:
            for (const auto& c : static_cast<const BlockStmt&>(s).stmts) {
              stmt(*c);
            }
            return;
          case StmtKind::kIf: {
            const auto& i = static_cast<const IfStmt&>(s);
            stmt(*i.then_branch);
            if (i.else_branch) stmt(*i.else_branch);
            return;
          }
          case StmtKind::kWhile:
            stmt(*static_cast<const WhileStmt&>(s).body);
            return;
          case StmtKind::kFor:
            stmt(*static_cast<const ForStmt&>(s).body);
            return;
          default:
            return;
        }
      }
    };
    Walk walk{&used_labels_};
    for (const auto& fn : prog_.functions) walk.stmt(*fn->body);
  }

  [[nodiscard]] std::string edge_label(int id) {
    std::string name = "L" + std::to_string(id);
    if (used_labels_.contains(name)) name = "mh_L" + std::to_string(id);
    used_labels_.insert(name);
    return name;
  }

  void gather_globals() {
    if (!opts_.capture_globals) return;
    for (const auto& g : prog_.globals) {
      CapVar v;
      v.name = g.name;
      v.type = g.type;
      user_globals_.push_back(std::move(v));
    }
  }

  void inject_machinery() {
    // int mh_reconfig; int mh_capturestack; int mh_restoring; int mh_location;
    for (const char* name :
         {kFlagReconfig, kFlagCaptureStack, kFlagRestoring, kVarLocation}) {
      GlobalDecl g;
      g.type = kIntType;
      g.name = name;
      prog_.globals.push_back(std::move(g));
    }
    // void mh_catchreconfig() { mh_reconfig = 1; }
    auto handler = std::make_unique<Function>();
    handler->name = kHandlerName;
    handler->return_type = kVoidType;
    handler->body = std::make_unique<BlockStmt>(support::SourceLoc{});
    handler->body->stmts.push_back(assign_var(kFlagReconfig, 1));
    prog_.functions.push_back(std::move(handler));
  }

  // --- captured variable sets ----------------------------------------------

  /// All parameters and locals of `fn`, pointer parameters dereferenced.
  [[nodiscard]] std::vector<CapVar> all_frame_vars(const Function& fn) const {
    std::vector<CapVar> vars;
    for (const auto& p : fn.params) {
      vars.push_back(CapVar{p.name, p.type, p.type.is_pointer});
    }
    for (const auto& l : fn.locals) {
      vars.push_back(CapVar{l.name, l.type, false});
    }
    return vars;
  }

  /// Spec-provided variable list for reconfiguration points in `fn`
  /// (union, in spec order, deduplicated); empty when none was given.
  [[nodiscard]] std::vector<CapVar> spec_vars_of(const Function& fn) const {
    std::vector<CapVar> vars;
    std::set<std::string> seen;
    for (const auto& point : result_.graph.points) {
      if (point.function != fn.name) continue;
      for (const auto& p : points_) {
        if (p.label != point.label) continue;
        for (const auto& sv : p.vars) {
          if (seen.insert(sv.name).second) {
            vars.push_back(resolve_spec_var(fn, sv));
          }
        }
      }
    }
    return vars;
  }

  /// Default (Figure 4) mode: one uniform captured set per function, since
  /// every capture block must match the single mh_restore in the shared
  /// restore block. The programmer's reconfiguration-point list governs
  /// when present (Figure 4 captures {num, n, *rp} everywhere in compute,
  /// omitting the dead `temper`); otherwise all parameters and locals.
  [[nodiscard]] std::vector<CapVar> function_vars(const Function& fn) const {
    std::vector<CapVar> vars = spec_vars_of(fn);
    if (!vars.empty()) return vars;
    return all_frame_vars(fn);
  }

  /// The captured set for a specific edge. In liveness mode each edge gets
  /// its own (smaller) set and the restore block dispatches on
  /// mh_peek_location() before popping; otherwise the per-function set.
  [[nodiscard]] std::vector<CapVar> edge_vars(
      const Function& fn, const graph::ReconfigEdge& edge) const {
    if (!opts_.use_liveness) return function_vars(fn);
    if (edge.is_reconfig_point) {
      std::vector<CapVar> spec = spec_vars_of(fn);
      if (!spec.empty()) return spec;
    }
    std::vector<CapVar> vars = all_frame_vars(fn);
    const auto& lv = liveness_.at(fn.name);
    std::set<std::string> live =
        edge.is_reconfig_point ? lv.live_before(edge.point.stmt)
                               : lv.live_after(edge.site.stmt);
    std::erase_if(vars,
                  [&](const CapVar& v) { return !live.contains(v.name); });
    return vars;
  }

  [[nodiscard]] CapVar resolve_spec_var(const Function& fn,
                                        const cfg::StateVar& sv) const {
    for (const auto& p : fn.params) {
      if (p.name == sv.name) {
        if (sv.deref && !p.type.is_pointer) {
          throw XformError("reconfiguration point variable *" + sv.name +
                           " is not a pointer");
        }
        return CapVar{p.name, p.type, sv.deref || p.type.is_pointer};
      }
    }
    for (const auto& l : fn.locals) {
      if (l.name == sv.name) {
        if (sv.deref && !l.type.is_pointer) {
          throw XformError("reconfiguration point variable *" + sv.name +
                           " is not a pointer");
        }
        return CapVar{l.name, l.type, sv.deref};
      }
    }
    throw XformError("reconfiguration point variable '" + sv.name +
                     "' is not a parameter or local of function '" + fn.name +
                     "'");
  }

  [[nodiscard]] std::string fmt_of(const std::vector<CapVar>& vars) const {
    std::string fmt;
    for (const auto& v : vars) fmt.push_back(kind_code_of(v));
    return fmt;
  }

  // --- code fragments -------------------------------------------------------

  /// mh_capture("i<fmt>", <id>, vars...);
  StmtPtr make_capture_call(int id, const std::vector<CapVar>& vars) {
    std::vector<ExprPtr> args;
    args.push_back(make_str("i" + fmt_of(vars)));
    args.push_back(make_int(id));
    for (const auto& v : vars) args.push_back(capture_arg(v));
    return call_stmt("mh_capture", std::move(args));
  }

  /// mh_restore("i<fmt>", &mh_location, targets...);
  StmtPtr make_restore_call(const std::vector<CapVar>& vars) {
    std::vector<ExprPtr> args;
    args.push_back(make_str("i" + fmt_of(vars)));
    args.push_back(make_addr_of(kVarLocation));
    for (const auto& v : vars) args.push_back(restore_target(v));
    return call_stmt("mh_restore", std::move(args));
  }

  /// The extra statements a capture block in main needs: divulge the data
  /// area and hand the whole abstract state to the bus.
  void append_main_capture_tail(BlockStmt& block) {
    if (!user_globals_.empty()) {
      std::vector<ExprPtr> args;
      args.push_back(make_str(fmt_of(user_globals_)));
      for (const auto& v : user_globals_) args.push_back(capture_arg(v));
      block.stmts.push_back(call_stmt("mh_capture", std::move(args)));
    }
    block.stmts.push_back(call_stmt("mh_encode"));
  }

  /// Capture block for call edge (i, Si) -- Figure 7, first form.
  StmtPtr make_call_capture_block(const Function& fn,
                                  const graph::ReconfigEdge& edge) {
    auto body = std::make_unique<BlockStmt>(support::SourceLoc{});
    body->stmts.push_back(make_capture_call(edge.id, edge_vars(fn, edge)));
    if (fn.name == "main") append_main_capture_tail(*body);
    body->stmts.push_back(return_stmt(fn));
    auto block = std::make_unique<IfStmt>(make_var(kFlagCaptureStack),
                                          std::move(body), nullptr,
                                          support::SourceLoc{});
    block->xform_note = "capture (edge " + std::to_string(edge.id) + ")";
    return block;
  }

  /// Capture block for reconfiguration edge (j, R) -- Figure 7, second form.
  StmtPtr make_point_capture_block(const Function& fn,
                                   const graph::ReconfigEdge& edge) {
    auto body = std::make_unique<BlockStmt>(support::SourceLoc{});
    body->stmts.push_back(assign_var(kFlagReconfig, 0));
    body->stmts.push_back(assign_var(kFlagCaptureStack, 1));
    body->stmts.push_back(make_capture_call(edge.id, edge_vars(fn, edge)));
    if (fn.name == "main") append_main_capture_tail(*body);
    body->stmts.push_back(return_stmt(fn));
    auto block = std::make_unique<IfStmt>(make_var(kFlagReconfig),
                                          std::move(body), nullptr,
                                          support::SourceLoc{});
    block->xform_note = "capture (reconfiguration point " + edge.point.label +
                        ", edge " + std::to_string(edge.id) + ")";
    return block;
  }

  /// The repeated call of restore code, with dummy arguments substituted
  /// for fault-prone expressions. Pointer arguments are kept verbatim to
  /// re-establish aliasing.
  ExprPtr make_restore_call_expr(const graph::ReconfigEdge& edge) {
    const CallExpr& original = *edge.site.call;
    const Function& callee = *prog_.find_function(edge.to);
    std::vector<ExprPtr> args;
    args.reserve(original.args.size());
    for (std::size_t i = 0; i < original.args.size(); ++i) {
      const Expr& a = *original.args[i];
      const Type& param_type = callee.params[i].type;
      if (param_type.is_pointer) {
        if (!(a.kind == ExprKind::kAddrOf || a.kind == ExprKind::kVar ||
              a.kind == ExprKind::kNullLit)) {
          throw XformError(
              "pointer argument of a call on the reconfiguration path must "
              "be a variable, &variable, or null so the call can be "
              "repeated during restoration (function '" + edge.to + "')");
        }
        args.push_back(clone_expr(a));
      } else if (expr_is_safe(a)) {
        args.push_back(clone_expr(a));
      } else {
        args.push_back(default_literal(param_type));
      }
    }
    return make_call(edge.to, std::move(args));
  }

  /// Restore code for one edge (Figure 8).
  StmtPtr make_restore_dispatch(const Function& fn,
                                const graph::ReconfigEdge& edge,
                                const std::string& label) {
    auto body = std::make_unique<BlockStmt>(support::SourceLoc{});
    if (opts_.use_liveness) {
      // Per-edge frame layout: pop this edge's frame now that the location
      // identified it.
      body->stmts.push_back(make_restore_call(edge_vars(fn, edge)));
    }
    if (edge.is_reconfig_point) {
      body->stmts.push_back(assign_var(kFlagRestoring, 0));
      std::vector<ExprPtr> sig;
      sig.push_back(make_var(kHandlerName));
      body->stmts.push_back(call_stmt("mh_signal", std::move(sig)));
      body->stmts.push_back(std::make_unique<GotoStmt>(edge.point.label,
                                                       support::SourceLoc{}));
    } else {
      body->stmts.push_back(std::make_unique<ExprStmt>(
          make_restore_call_expr(edge), support::SourceLoc{}));
      body->stmts.push_back(
          std::make_unique<GotoStmt>(label, support::SourceLoc{}));
    }
    auto cond = make_binary(BinaryOp::kEq, make_var(kVarLocation),
                            make_int(edge.id));
    return std::make_unique<IfStmt>(std::move(cond), std::move(body), nullptr,
                                    support::SourceLoc{});
  }

  /// The whole restore block installed at the top of `fn` (Figure 8; for
  /// main, the Figure 4 shape with the status check and mh_decode).
  std::vector<StmtPtr> make_restore_block(
      const Function& fn, const std::vector<const graph::ReconfigEdge*>& edges,
      const std::map<int, std::string>& edge_labels) {
    std::vector<StmtPtr> out;
    const bool is_main = fn.name == "main";

    if (is_main) {
      // if (mh_getstatus() == "clone") mh_restoring = 1; else mh_restoring = 0;
      auto cond = make_binary(BinaryOp::kEq, call_expr("mh_getstatus"),
                              make_str("clone"));
      auto status_check = std::make_unique<IfStmt>(
          std::move(cond), assign_var(kFlagRestoring, 1),
          assign_var(kFlagRestoring, 0), support::SourceLoc{});
      status_check->xform_note = "restore (status check)";
      out.push_back(std::move(status_check));
    }

    auto body = std::make_unique<BlockStmt>(support::SourceLoc{});
    if (is_main) {
      body->stmts.push_back(call_stmt("mh_decode"));
      if (!user_globals_.empty()) {
        std::vector<ExprPtr> args;
        args.push_back(make_str(fmt_of(user_globals_)));
        for (const auto& v : user_globals_) {
          args.push_back(restore_target(v));
        }
        body->stmts.push_back(call_stmt("mh_restore", std::move(args)));
      }
    }
    if (opts_.use_liveness) {
      // mh_location = mh_peek_location(); per-edge frames pop in dispatch.
      body->stmts.push_back(std::make_unique<AssignStmt>(
          make_var(kVarLocation), call_expr("mh_peek_location"),
          support::SourceLoc{}));
    } else {
      body->stmts.push_back(make_restore_call(function_vars(fn)));
    }
    for (const auto* edge : edges) {
      std::string label =
          edge->is_reconfig_point ? "" : edge_labels.at(edge->id);
      body->stmts.push_back(make_restore_dispatch(fn, *edge, label));
    }
    auto restore_if = std::make_unique<IfStmt>(make_var(kFlagRestoring),
                                               std::move(body), nullptr,
                                               support::SourceLoc{});
    restore_if->xform_note = "restore";
    out.push_back(std::move(restore_if));

    if (is_main) {
      std::vector<ExprPtr> sig;
      sig.push_back(make_var(kHandlerName));
      auto install = call_stmt("mh_signal", std::move(sig));
      install->xform_note = "install reconfiguration signal handler";
      out.push_back(std::move(install));
    }
    return out;
  }

  // --- instrumentation ------------------------------------------------------

  /// Does the block-level statement `s` contain `target` in its chain of
  /// labels (L1: L2: stmt)?
  static bool label_chain_contains(const Stmt* s, const Stmt* target) {
    while (s != nullptr) {
      if (s == target) return true;
      if (s->kind != StmtKind::kLabeled) return false;
      s = static_cast<const LabeledStmt*>(s)->inner.get();
    }
    return false;
  }

  void instrument(Function& fn) {
    auto edges = result_.graph.edges_from(fn.name);
    if (edges.empty()) return;

    // Record the captured-variable counts for diagnostics / ablation.
    std::size_t total_vars = 0;
    for (const auto* e : edges) total_vars += edge_vars(fn, *e).size();
    result_.captured_var_counts.emplace_back(fn.name, total_vars);

    // Generate labels for call edges up front (the restore block needs
    // them, and they are announced in the result).
    std::map<int, std::string> edge_labels;
    for (const auto* e : edges) {
      if (e->is_reconfig_point) continue;
      edge_labels[e->id] = edge_label(e->id);
      result_.labels_added.push_back(edge_labels[e->id]);
    }

    // Install capture blocks, rebuilding each affected block's statement
    // list in one pass.
    std::set<BlockStmt*> blocks;
    for (const auto* e : edges) {
      blocks.insert(e->is_reconfig_point ? e->point.block : e->site.block);
    }
    for (BlockStmt* block : blocks) {
      std::vector<StmtPtr> out;
      out.reserve(block->stmts.size() * 2);
      for (auto& stmt : block->stmts) {
        for (const auto* e : edges) {
          if (e->is_reconfig_point && e->point.block == block &&
              label_chain_contains(stmt.get(), e->point.stmt)) {
            out.push_back(make_point_capture_block(fn, *e));
          }
        }
        Stmt* raw = stmt.get();
        out.push_back(std::move(stmt));
        for (const auto* e : edges) {
          if (!e->is_reconfig_point && e->site.block == block &&
              e->site.stmt == raw) {
            // The label comes BEFORE the capture block (Figure 7 draws it
            // after). Restore code re-enters at Li, so with the label
            // first, the return path of a restored call passes through the
            // capture block exactly like a normal return -- which is what
            // keeps a capture cascade correct when a new reconfiguration
            // request arrives during the first unwind after a restoration
            // (tested by SignalDuringRestoreIsHonoredAfterwards).
            out.push_back(std::make_unique<LabeledStmt>(
                edge_labels.at(e->id),
                std::make_unique<EmptyStmt>(support::SourceLoc{}),
                support::SourceLoc{}));
            out.push_back(make_call_capture_block(fn, *e));
          }
        }
      }
      block->stmts = std::move(out);
    }

    // Install the restore block after the leading declarations.
    auto restore = make_restore_block(fn, edges, edge_labels);
    auto& stmts = fn.body->stmts;
    std::size_t pos = 0;
    while (pos < stmts.size() && stmts[pos]->kind == StmtKind::kDecl) ++pos;
    stmts.insert(stmts.begin() + static_cast<std::ptrdiff_t>(pos),
                 std::make_move_iterator(restore.begin()),
                 std::make_move_iterator(restore.end()));
  }

  Program& prog_;
  const std::vector<cfg::ReconfigPointSpec>& points_;
  XformOptions opts_;
  XformResult result_;
  std::map<std::string, dataflow::Liveness> liveness_;
  std::set<std::string> used_labels_;
  std::vector<CapVar> user_globals_;
};

}  // namespace

XformResult prepare_module(Program& program,
                           const std::vector<cfg::ReconfigPointSpec>& points,
                           const XformOptions& options) {
  if (points.empty()) {
    throw XformError("no reconfiguration points specified");
  }
  return Transformer(program, points, options).run();
}

PreparedSource prepare_source(std::string_view source,
                              const std::vector<cfg::ReconfigPointSpec>& points,
                              const XformOptions& options) {
  Program prog = parse_program(source);
  analyze(prog);
  PreparedSource out{std::string{}, prepare_module(prog, points, options)};
  out.source = print_program(prog);
  return out;
}

}  // namespace surgeon::xform
