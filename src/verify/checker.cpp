#include "verify/checker.hpp"

#include <sstream>

namespace surgeon::verify {

const char* invariant_name(int id) noexcept {
  switch (id) {
    case 1: return "binding integrity: exactly one live routing target";
    case 2: return "captured state equals restored state (single lineage)";
    case 3: return "rebind only after quiescence/divulge (the watershed)";
    case 4: return "service continuity across the replacement";
    case 5: return "transition monotonicity (no watershed reversal)";
    case 6: return "exactly one live instance of the replaced module";
    case 7: return "acked-write durability across machine loss";
  }
  return "plan well-formedness";
}

char inv_status_letter(InvStatus s) noexcept {
  switch (s) {
    case InvStatus::kPreserved: return 'P';
    case InvStatus::kEstablished: return 'E';
    case InvStatus::kViolated: return 'V';
  }
  return '?';
}

bool invariant_holds(int id, const AbsState& s) {
  switch (id) {
    case 1:
      // The binding set routes to exactly one instance, and that instance
      // exists.
      return (s.bound_to_old != s.bound_to_new) &&
             (!s.bound_to_old || s.old_life != OldLife::kRemoved) &&
             (!s.bound_to_new || s.clone != CloneLife::kAbsent);
    case 2:
      // Only the divulged capture ever reaches a successor, and nothing
      // claims to be restored without having received it.
      return (!s.state_delivered || s.divulged) &&
             (s.clone != CloneLife::kRestored || s.state_delivered) &&
             (!s.replica_has_state || s.divulged) &&
             (s.replica != CloneLife::kRestored || s.replica_has_state);
    case 3:
      // Bindings and streams move only after the watershed, and the
      // watershed implies the module left its main loop.
      return (!s.bound_to_new || s.divulged) &&
             (s.streams != StreamOwner::kNew || s.divulged) &&
             (!s.divulged || s.old_life != OldLife::kActive);
    case 4:
      // Removing the old instance requires a successor holding the
      // bindings; an abort restores the pre-script configuration.
      return (s.old_life != OldLife::kRemoved ||
              (s.bound_to_new && s.clone != CloneLife::kAbsent)) &&
             (!s.aborted ||
              (s.old_life == OldLife::kActive && s.bound_to_old &&
               s.clone == CloneLife::kAbsent));
    case 6:
      // Never two serving instances of the replaced module.
      return !(s.old_life == OldLife::kActive &&
               (s.clone == CloneLife::kStarted ||
                s.clone == CloneLife::kRestored)) &&
             !(s.old_life == OldLife::kActive &&
               (s.replica == CloneLife::kStarted ||
                s.replica == CloneLife::kRestored));
    case 7:
      // No acked write lost, none resurfacing stale: the dead member's
      // traffic only ever routes to an heir holding the divulged capture
      // (every acked write lives in any survivor's state), and the corpse
      // is only retired once that heir took over.
      return (!s.dead_adopted || (s.divulged && s.replica_has_state)) &&
             (!s.dead_retired || s.dead_adopted);
    default:
      return true;
  }
}

namespace {

/// Invariant 5 (transition property): monotone facts never revert across a
/// step. Returns the violated-clause text, or nullptr if the transition is
/// clean.
const char* transition_violation(const AbsState& before,
                                 const AbsState& after) {
  if (before.divulged && !after.divulged) {
    return "the divulge watershed was reversed";
  }
  if (before.state_durable && !after.state_durable) {
    return "the durable watershed record vanished";
  }
  if (before.committed && !after.committed) return "a commit was undone";
  if (before.aborted && !after.aborted) return "an abort was undone";
  if (before.old_life == OldLife::kRemoved &&
      after.old_life != OldLife::kRemoved) {
    return "a removed instance was resurrected";
  }
  if (before.clone == CloneLife::kRestored &&
      after.clone != CloneLife::kRestored) {
    return "a restored clone regressed";
  }
  if (before.machine_lost && !after.machine_lost) {
    return "a dead machine came back mid-plan";
  }
  if (before.dead_adopted && !after.dead_adopted) {
    return "the heir un-adopted the dead member's bindings";
  }
  if (before.dead_retired && !after.dead_retired) {
    return "a retired member was resurrected";
  }
  if (after.committed && after.aborted) {
    return "the transaction both committed and aborted";
  }
  return nullptr;
}

/// The declared-outcome check: does the final state match what the plan
/// promises? Returns the violated-clause text or nullptr.
const char* outcome_violation(Outcome outcome, const AbsState& s) {
  if (outcome == Outcome::kCommitted) {
    if (!s.committed) return "the plan never committed";
    if (s.old_life != OldLife::kRemoved) {
      return "committed with the old instance still present";
    }
    if (s.clone != CloneLife::kRestored) {
      return "committed before the clone restored the state";
    }
    if (!s.bound_to_new) return "committed with bindings off the clone";
    if (s.streams != StreamOwner::kNew) {
      return "committed with streams still owned by the old instance";
    }
    if (s.replica != CloneLife::kAbsent &&
        s.replica != CloneLife::kRestored) {
      return "committed with a half-installed replica";
    }
    if (s.machine_lost && !s.dead_retired) {
      return "committed with the dead member still registered";
    }
  } else {
    if (!s.aborted) return "the plan never aborted";
    if (s.committed) return "aborted after committing";
    if (s.old_life != OldLife::kActive || !s.bound_to_old ||
        s.clone != CloneLife::kAbsent) {
      return "abort did not restore the pre-script configuration";
    }
  }
  return nullptr;
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

PlanReport check_plan(const Plan& plan) {
  PlanReport report;
  report.plan = plan.name;
  report.description = plan.description;

  AbsState state;
  int index = 0;
  for (const Step& step : plan.steps) {
    ++index;
    StepReport sr;
    sr.index = index;
    sr.prim = step.prim;
    sr.label = step.label;
    sr.before = state;

    for (const PreViolation& pv : precondition(step.prim, state)) {
      sr.pre_ok = false;
      report.violations.push_back(Violation{
          index, step.label, pv.invariant, "precondition", pv.clause,
          state.describe()});
    }

    // Postcondition applies even after a failed precondition: a broken
    // plan's downstream damage must surface, not stop at the first clause.
    apply(step.prim, state, plan.journaled);
    sr.after = state;

    for (int inv = 1; inv <= 7; ++inv) {
      InvStatus status;
      if (inv == 5) {
        const char* bad = transition_violation(sr.before, sr.after);
        status = bad == nullptr ? InvStatus::kPreserved : InvStatus::kViolated;
        if (bad != nullptr) {
          report.violations.push_back(Violation{index, step.label, 5,
                                                "boundary", bad,
                                                state.describe()});
        }
      } else {
        const bool held = invariant_holds(inv, sr.before);
        const bool holds = invariant_holds(inv, sr.after);
        status = !holds ? InvStatus::kViolated
                 : held ? InvStatus::kPreserved
                        : InvStatus::kEstablished;
        if (!holds) {
          report.violations.push_back(Violation{
              index, step.label, inv, "boundary",
              std::string("invariant does not hold after the step: ") +
                  invariant_name(inv),
              state.describe()});
        }
      }
      sr.invariants[static_cast<std::size_t>(inv - 1)] = status;
    }
    report.steps.push_back(std::move(sr));
  }

  report.end_state = state;
  if (const char* bad = outcome_violation(plan.outcome, state)) {
    report.violations.push_back(Violation{index, "end", 6, "outcome", bad,
                                          state.describe()});
  }
  report.ok = report.violations.empty();
  return report;
}

std::string PlanReport::to_text() const {
  std::ostringstream os;
  os << "plan " << plan << " -- " << description << "\n";
  os << "   # step                       prim                   pre  "
        "i1 i2 i3 i4 i5 i6 i7\n";
  for (const StepReport& sr : steps) {
    os << "  ";
    std::string idx = std::to_string(sr.index);
    if (idx.size() < 2) os << ' ';
    os << idx << ' ' << sr.label;
    for (std::size_t i = sr.label.size(); i < 26; ++i) os << ' ';
    const std::string prim = prim_name(sr.prim);
    os << ' ' << prim;
    for (std::size_t i = prim.size(); i < 22; ++i) os << ' ';
    os << (sr.pre_ok ? " ok  " : " BAD ");
    for (InvStatus s : sr.invariants) {
      os << ' ' << inv_status_letter(s) << ' ';
    }
    os << "\n";
    for (const Violation& v : violations) {
      if (v.step_index != sr.index || v.kind == "outcome") continue;
      os << "       !! invariant " << v.invariant << " (" << v.kind
         << "): " << v.detail << "\n";
      os << "          state: " << v.state << "\n";
    }
  }
  os << "  end: " << end_state.describe() << "\n";
  for (const Violation& v : violations) {
    if (v.kind != "outcome") continue;
    os << "  !! invariant " << v.invariant << " (outcome): " << v.detail
       << "\n";
  }
  if (ok) {
    os << "  result: PASS (" << steps.size() << " steps)\n";
  } else {
    os << "  result: FAIL (" << violations.size() << " violation"
       << (violations.size() == 1 ? "" : "s") << ")\n";
  }
  return os.str();
}

std::string PlanReport::to_json() const {
  std::ostringstream os;
  os << "{\"plan\":\"" << json_escape(plan) << "\",\"ok\":"
     << (ok ? "true" : "false") << ",\"steps\":[";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const StepReport& sr = steps[i];
    if (i != 0) os << ",";
    os << "{\"index\":" << sr.index << ",\"step\":\""
       << json_escape(sr.label) << "\",\"prim\":\"" << prim_name(sr.prim)
       << "\",\"pre_ok\":" << (sr.pre_ok ? "true" : "false")
       << ",\"invariants\":\"";
    for (InvStatus s : sr.invariants) os << inv_status_letter(s);
    os << "\",\"state\":\"" << json_escape(sr.after.describe()) << "\"}";
  }
  os << "],\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i != 0) os << ",";
    os << "{\"step_index\":" << v.step_index << ",\"step\":\""
       << json_escape(v.step) << "\",\"invariant\":" << v.invariant
       << ",\"kind\":\"" << v.kind << "\",\"detail\":\""
       << json_escape(v.detail) << "\",\"state\":\"" << json_escape(v.state)
       << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace surgeon::verify
