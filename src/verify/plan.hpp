// Reconfiguration plans and their primitives' pre/postconditions.
//
// A plan is the declarative skeleton of a reconfiguration script: the
// ordered sequence of primitives (passivate, capture/divulge, rebind,
// restore, commit, abort/rollback, restart-from-WAL, ...) the script
// executes, stripped of timing, retries-not-taken, and transport detail.
// Each primitive carries a declared precondition and postcondition over an
// ABSTRACT configuration state -- module liveness, the binding set, the
// divulge watershed, stream ownership -- in the spirit of the Hoare-style
// reconfiguration calculus (arXiv 2107.05253) and Lanoix-Kouchnarenko's
// verified component substitution (arXiv 1404.0848).
//
// The checker (verify/checker.hpp) symbolically executes a plan over this
// state and reports, per step boundary, which of the chaos harness's
// invariants 1-7 are established, preserved, or violated -- BEFORE the
// script ever runs against a simulator. Every shipped script in
// src/reconfig/scripts.cpp and src/recover/recovery.cpp has its plan here,
// and verify_test pins the plans to the scripts' journal boundaries so the
// two cannot drift apart silently.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace surgeon::verify {

// --- abstract configuration state -------------------------------------------

/// Liveness of the module being replaced ("old" instance).
enum class OldLife : std::uint8_t {
  kActive,   // serving in its main loop
  kPassive,  // reached its reconfiguration point and divulged control
  kRemoved,  // deregistered from the bus
};

/// Liveness of the replacement ("clone") instance.
enum class CloneLife : std::uint8_t {
  kAbsent,      // not registered
  kRegistered,  // registered (STATUS=clone), process not started
  kStarted,     // process running, restoring or about to
  kRestored,    // finished installing the abstract state; serving
  kCrashed,     // process died (retry chain takes over)
};

/// Who owns the replaced module's message queues (streams).
enum class StreamOwner : std::uint8_t { kOld, kNew };

const char* old_life_name(OldLife v) noexcept;
const char* clone_life_name(CloneLife v) noexcept;

/// The abstract configuration state a plan transforms. One replaced module,
/// its clone, and (for the replication script) one extra replica.
struct AbsState {
  OldLife old_life = OldLife::kActive;
  CloneLife clone = CloneLife::kAbsent;
  bool bound_to_old = true;   // binding set routes to the old instance
  bool bound_to_new = false;  // binding set routes to the clone
  StreamOwner streams = StreamOwner::kOld;
  bool divulged = false;         // the watershed: abstract state captured
  bool state_durable = false;    // divulged record hit the WAL
  bool state_delivered = false;  // buffer in the clone's decode mailbox
  bool txn_open = false;         // WAL transaction open
  bool committed = false;
  bool aborted = false;
  // Replication only: the additional replica instance.
  CloneLife replica = CloneLife::kAbsent;
  bool replica_has_state = false;
  // Machine loss (group rebuild) only: a replica-group member's machine
  // died; the plan must hand its bindings to an heir that can restore the
  // divulged capture, then retire the corpse (invariant 7).
  bool machine_lost = false;   // a member's machine is dead
  bool dead_adopted = false;   // the dead member's bindings found an heir
  bool dead_retired = false;   // the dead member left the bus

  [[nodiscard]] std::string describe() const;
  bool operator==(const AbsState&) const = default;
};

// --- primitives -------------------------------------------------------------

/// The reconfiguration primitives plans are built from. Read-only markers
/// (kObjCap, kPrepBindings, kSignal, kCoordinatorCrash) transform nothing
/// but still carry preconditions and mark journal boundaries.
enum class Prim : std::uint8_t {
  kBeginTxn,         // open the WAL transaction
  kObjCap,           // mh_obj_cap: read the current specification
  kRegisterClone,    // register the clone (STATUS=clone, not started)
  kPrepBindings,     // mh_bind_cap/mh_edit_bind: prepare the rebind batch
  kSignal,           // signal the module; compliance not yet observed
  kPassivate,        // module reached its reconfiguration point
  kDivulge,          // capture the abstract state (the watershed)
  kDeliverState,     // move the state buffer toward the clone's mailbox
  kRebind,           // mh_rebind: atomically repoint bindings + queues
  kStartClone,       // mh_chg_obj "add": start the clone
  kSweepQueues,      // drain window: late in-flight messages swept across
  kRemoveOld,        // mh_chg_obj "del": retire the old instance
  kAwaitRestore,     // clone finished installing the state
  kCommit,           // close the transaction (commit record)
  kAbortRollback,    // pre-divulge rollback: clone gone, old keeps serving
  kCloneCrashed,     // environment: the clone process died
  kRetrySwap,        // retry chain: fresh clone adopts bindings + state
  kCoordinatorCrash, // environment: the coordinator process died
  kRestartFromWal,   // successor coordinator scans the WAL and resumes
  kRegisterReplica,  // replication: register the extra replica
  kDeliverStateReplica,
  kBindReplica,      // replica receives copies of the original's bindings
  kStartReplica,
  kAwaitRestoreReplica,
  kMachineKill,       // environment: a group member's machine dies
  kAdoptDeadBindings, // heir adopts the dead member's bindings + queues
  kRetireDead,        // the dead member is deregistered from the bus
};

const char* prim_name(Prim p) noexcept;

/// Every primitive, for table-driven tests and the DESIGN.md table.
inline constexpr std::array<Prim, 27> kAllPrims = {
    Prim::kBeginTxn,        Prim::kObjCap,
    Prim::kRegisterClone,   Prim::kPrepBindings,
    Prim::kSignal,          Prim::kPassivate,
    Prim::kDivulge,         Prim::kDeliverState,
    Prim::kRebind,          Prim::kStartClone,
    Prim::kSweepQueues,     Prim::kRemoveOld,
    Prim::kAwaitRestore,    Prim::kCommit,
    Prim::kAbortRollback,   Prim::kCloneCrashed,
    Prim::kRetrySwap,       Prim::kCoordinatorCrash,
    Prim::kRestartFromWal,  Prim::kRegisterReplica,
    Prim::kDeliverStateReplica, Prim::kBindReplica,
    Prim::kStartReplica,    Prim::kAwaitRestoreReplica,
    Prim::kMachineKill,     Prim::kAdoptDeadBindings,
    Prim::kRetireDead,
};

/// One violated precondition clause: which invariant the clause guards
/// (1-7, or 0 for plan well-formedness) and the clause's text.
struct PreViolation {
  int invariant = 0;
  std::string clause;
};

/// Evaluates `prim`'s precondition against `s`; empty result = enabled.
[[nodiscard]] std::vector<PreViolation> precondition(Prim prim,
                                                     const AbsState& s);

/// Applies `prim`'s postcondition to `s` (unconditionally -- the checker
/// applies it even after a failed precondition so downstream damage
/// surfaces too). `journaled` selects whether kDivulge makes the state
/// durable and kBeginTxn/kCommit touch the transaction.
void apply(Prim prim, AbsState& s, bool journaled);

// --- plans ------------------------------------------------------------------

/// One plan step: the primitive, a label for diagnostics, and the journal
/// boundary the real script writes just before it ("" = none). The
/// non-empty journal fields of a plan, in order, must equal the intent
/// sequence the script reports through reconfig::ScriptJournal -- pinned
/// by verify_test so plans cannot drift from the code.
struct Step {
  Prim prim;
  std::string label;
  std::string journal;
};

/// What a plan promises about its final state.
enum class Outcome : std::uint8_t { kCommitted, kAborted };

struct Plan {
  std::string name;
  std::string description;
  bool journaled = true;
  Outcome outcome = Outcome::kCommitted;
  std::vector<Step> steps;

  /// The journal boundary names, in order (the ScriptJournal intent
  /// sequence, plus "begin").
  [[nodiscard]] std::vector<std::string> journal_boundaries() const;
};

/// replace_module's happy path (Figure 5 + drain window + WAL).
[[nodiscard]] Plan plan_replace();
/// move_module: replacement with the same program on another machine.
[[nodiscard]] Plan plan_move();
/// update_module: replacement with a new program version in place.
[[nodiscard]] Plan plan_update();
/// replace_module's divulge-timeout abort: signal sent, module never
/// complied, everything rolled back (journaled as aborted).
[[nodiscard]] Plan plan_abort_divulge_timeout();
/// replace_module's post-divulge retry chain: the clone crashes while
/// restoring and a fresh clone adopts bindings, queues, and saved state.
[[nodiscard]] Plan plan_retry_reinstall();
/// recover_coordinator's rollback path: coordinator dies before the
/// watershed; the successor removes the clone and the old keeps serving.
[[nodiscard]] Plan plan_recover_rollback();
/// recover_coordinator's roll-forward path: coordinator dies after the
/// watershed; the successor finishes the script from the WAL.
[[nodiscard]] Plan plan_recover_rollforward();
/// replicate_module: divulge once, install the state in a replacing clone
/// AND a fresh replica (unjournaled, as the script is today).
[[nodiscard]] Plan plan_replicate();
/// replicate::rebuild_group: a member's machine died; the survivor
/// divulges once, its continuation stays in place, and a fresh heir on a
/// spare adopts the dead member's bindings (journaled).
[[nodiscard]] Plan plan_group_rebuild();
/// replicate::GroupManager::rebalance: a machine joined the ring; members
/// off their placement migrate via the Figure 5 move script.
[[nodiscard]] Plan plan_rebalance();

/// Every plan shipped above, in a stable order (the plan_check default).
[[nodiscard]] std::vector<Plan> shipped_plans();

/// Deliberately broken: rebind BEFORE the module divulged. Violates
/// invariant 3 (rebind-after-quiescence); plan_check must reject it, and
/// verify_test pins the invariant id. Not part of shipped_plans().
[[nodiscard]] Plan plan_broken_rebind_before_divulge();

/// Deliberately broken: the heir adopts the dead member's bindings BEFORE
/// the survivor divulged. Violates invariant 7 (acked-write durability);
/// not part of shipped_plans().
[[nodiscard]] Plan plan_broken_adopt_before_divulge();

}  // namespace surgeon::verify
