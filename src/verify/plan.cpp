#include "verify/plan.hpp"

#include <sstream>

#include "reconfig/scripts.hpp"

namespace surgeon::verify {

const char* old_life_name(OldLife v) noexcept {
  switch (v) {
    case OldLife::kActive: return "active";
    case OldLife::kPassive: return "passive";
    case OldLife::kRemoved: return "removed";
  }
  return "?";
}

const char* clone_life_name(CloneLife v) noexcept {
  switch (v) {
    case CloneLife::kAbsent: return "absent";
    case CloneLife::kRegistered: return "registered";
    case CloneLife::kStarted: return "started";
    case CloneLife::kRestored: return "restored";
    case CloneLife::kCrashed: return "crashed";
  }
  return "?";
}

std::string AbsState::describe() const {
  std::ostringstream os;
  os << "old=" << old_life_name(old_life)
     << " clone=" << clone_life_name(clone) << " bound="
     << (bound_to_old ? (bound_to_new ? "both" : "old")
                      : (bound_to_new ? "new" : "none"))
     << " streams=" << (streams == StreamOwner::kOld ? "old" : "new")
     << " divulged=" << (divulged ? 1 : 0)
     << " durable=" << (state_durable ? 1 : 0)
     << " delivered=" << (state_delivered ? 1 : 0)
     << " txn=" << (txn_open ? "open" : committed ? "committed"
                                    : aborted     ? "aborted"
                                                  : "none");
  if (replica != CloneLife::kAbsent || replica_has_state) {
    os << " replica=" << clone_life_name(replica)
       << " replica_state=" << (replica_has_state ? 1 : 0);
  }
  if (machine_lost || dead_adopted || dead_retired) {
    os << " machine_lost=" << (machine_lost ? 1 : 0)
       << " dead_adopted=" << (dead_adopted ? 1 : 0)
       << " dead_retired=" << (dead_retired ? 1 : 0);
  }
  return os.str();
}

const char* prim_name(Prim p) noexcept {
  switch (p) {
    case Prim::kBeginTxn: return "begin_txn";
    case Prim::kObjCap: return "obj_cap";
    case Prim::kRegisterClone: return "register_clone";
    case Prim::kPrepBindings: return "prep_bindings";
    case Prim::kSignal: return "signal";
    case Prim::kPassivate: return "passivate";
    case Prim::kDivulge: return "divulge";
    case Prim::kDeliverState: return "deliver_state";
    case Prim::kRebind: return "rebind";
    case Prim::kStartClone: return "start_clone";
    case Prim::kSweepQueues: return "sweep_queues";
    case Prim::kRemoveOld: return "remove_old";
    case Prim::kAwaitRestore: return "await_restore";
    case Prim::kCommit: return "commit";
    case Prim::kAbortRollback: return "abort_rollback";
    case Prim::kCloneCrashed: return "clone_crashed";
    case Prim::kRetrySwap: return "retry_swap";
    case Prim::kCoordinatorCrash: return "coordinator_crash";
    case Prim::kRestartFromWal: return "restart_from_wal";
    case Prim::kRegisterReplica: return "register_replica";
    case Prim::kDeliverStateReplica: return "deliver_state_replica";
    case Prim::kBindReplica: return "bind_replica";
    case Prim::kStartReplica: return "start_replica";
    case Prim::kAwaitRestoreReplica: return "await_restore_replica";
    case Prim::kMachineKill: return "machine_kill";
    case Prim::kAdoptDeadBindings: return "adopt_dead_bindings";
    case Prim::kRetireDead: return "retire_dead";
  }
  return "?";
}

std::vector<PreViolation> precondition(Prim prim, const AbsState& s) {
  std::vector<PreViolation> v;
  auto need = [&v](bool ok, int invariant, const char* clause) {
    if (!ok) v.push_back(PreViolation{invariant, clause});
  };
  switch (prim) {
    case Prim::kBeginTxn:
      need(!s.txn_open, 0, "a transaction is already open");
      break;
    case Prim::kObjCap:
    case Prim::kPrepBindings:
      need(s.old_life != OldLife::kRemoved, 0,
           "the module is already removed");
      break;
    case Prim::kRegisterClone:
      need(s.clone == CloneLife::kAbsent, 6,
           "a clone is already registered (two replacement instances)");
      need(s.old_life != OldLife::kRemoved, 0,
           "the module is already removed");
      break;
    case Prim::kSignal:
    case Prim::kPassivate:
      need(s.old_life == OldLife::kActive, 0,
           "the module is not running its main loop");
      break;
    case Prim::kDivulge:
      need(s.old_life == OldLife::kPassive, 3,
           "divulge requires the module at its reconfiguration point "
           "(quiescence)");
      need(!s.divulged, 2, "the state was already captured (double capture "
                           "would fork the state)");
      break;
    case Prim::kDeliverState:
      need(s.divulged, 2, "only the divulged capture may be delivered");
      need(s.clone == CloneLife::kRegistered ||
               s.clone == CloneLife::kStarted,
           0, "no clone to deliver the state to");
      break;
    case Prim::kRebind:
      need(s.divulged, 3,
           "rebind before the module divulged (quiescence) routes live "
           "traffic away from undivulged state");
      need(s.clone != CloneLife::kAbsent, 1,
           "bindings must route to a registered instance");
      need(s.bound_to_old, 0, "bindings were already moved");
      break;
    case Prim::kStartClone:
      need(s.clone == CloneLife::kRegistered, 0,
           "the clone is not in the registered state");
      need(s.old_life != OldLife::kActive, 6,
           "starting the clone while the old instance serves gives two "
           "live instances");
      break;
    case Prim::kSweepQueues:
      need(s.bound_to_new, 0,
           "queue sweep runs only after the bindings moved");
      break;
    case Prim::kRemoveOld:
      need(s.old_life != OldLife::kActive, 4,
           "removing a serving instance loses requests");
      need(s.old_life != OldLife::kRemoved, 0,
           "the module is already removed");
      need(s.divulged, 2,
           "the state must be captured before its holder is removed");
      need(s.bound_to_new, 1,
           "bindings must be off the instance being removed");
      need(s.state_delivered, 4,
           "the successor must hold the state before the old is removed");
      break;
    case Prim::kAwaitRestore:
      need(s.clone == CloneLife::kStarted, 0, "the clone is not running");
      need(s.state_delivered, 2,
           "nothing to restore: the state was never delivered");
      break;
    case Prim::kCommit:
      need(s.old_life == OldLife::kRemoved, 6,
           "commit with the old instance still present leaves two "
           "instances");
      need(s.clone == CloneLife::kRestored, 4,
           "commit before the clone restored breaks service continuity");
      need(s.bound_to_new, 1, "commit with bindings off the clone");
      break;
    case Prim::kAbortRollback:
      need(!s.divulged, 2,
           "post-divulge rollback discards the captured state (the "
           "watershed only rolls forward)");
      need(s.clone == CloneLife::kAbsent ||
               s.clone == CloneLife::kRegistered,
           6, "a started clone cannot be silently discarded");
      break;
    case Prim::kCloneCrashed:
      need(s.clone == CloneLife::kRegistered ||
               s.clone == CloneLife::kStarted,
           0, "no live clone process to crash");
      break;
    case Prim::kRetrySwap:
      need(s.clone == CloneLife::kCrashed, 0,
           "retry runs only after the clone crashed");
      need(s.divulged, 2, "retry re-delivers the divulged capture");
      need(s.bound_to_new, 1,
           "the fresh clone adopts the holder's bindings");
      break;
    case Prim::kCoordinatorCrash:
      need(s.txn_open, 0,
           "only a journaled script survives its coordinator");
      break;
    case Prim::kRestartFromWal:
      need(s.txn_open, 0, "no open transaction to recover");
      need(!s.divulged || s.state_durable, 2,
           "roll-forward needs the watershed record durable");
      break;
    case Prim::kRegisterReplica:
      need(s.replica == CloneLife::kAbsent, 0,
           "a replica is already registered");
      break;
    case Prim::kDeliverStateReplica:
      need(s.divulged, 2, "only the divulged capture may be delivered");
      need(s.replica == CloneLife::kRegistered ||
               s.replica == CloneLife::kStarted,
           0, "no replica to deliver the state to");
      break;
    case Prim::kBindReplica:
      need(s.replica != CloneLife::kAbsent, 1,
           "bindings must route to a registered replica");
      break;
    case Prim::kStartReplica:
      need(s.replica == CloneLife::kRegistered, 0,
           "the replica is not in the registered state");
      need(s.old_life != OldLife::kActive, 6,
           "starting the replica while the old instance serves gives two "
           "live instances");
      break;
    case Prim::kAwaitRestoreReplica:
      need(s.replica == CloneLife::kStarted, 0,
           "the replica is not running");
      need(s.replica_has_state, 2,
           "nothing to restore: the state was never delivered");
      break;
    case Prim::kMachineKill:
      need(!s.machine_lost, 0, "the machine is already dead");
      break;
    case Prim::kAdoptDeadBindings:
      need(s.machine_lost, 0,
           "no dead member whose bindings need an heir");
      need(s.replica != CloneLife::kAbsent, 1,
           "the dead member's bindings must route to a registered heir");
      need(s.divulged, 7,
           "adopting the dead member's traffic before the survivor "
           "divulged serves requests from a state missing acked writes");
      need(s.replica_has_state, 7,
           "the heir must hold the divulged capture before it takes the "
           "dead member's traffic (else acked writes resurface stale)");
      break;
    case Prim::kRetireDead:
      need(s.machine_lost, 0, "no dead member to retire");
      need(s.dead_adopted, 7,
           "retiring the dead member before an heir adopted its bindings "
           "drops its queued acked traffic");
      break;
  }
  return v;
}

void apply(Prim prim, AbsState& s, bool journaled) {
  switch (prim) {
    case Prim::kBeginTxn:
      if (journaled) s.txn_open = true;
      break;
    case Prim::kObjCap:
    case Prim::kPrepBindings:
    case Prim::kSignal:
    case Prim::kCoordinatorCrash:
    case Prim::kRestartFromWal:
    case Prim::kBindReplica:
      break;  // read-only / marker
    case Prim::kRegisterClone:
      s.clone = CloneLife::kRegistered;
      break;
    case Prim::kPassivate:
      s.old_life = OldLife::kPassive;
      break;
    case Prim::kDivulge:
      s.divulged = true;
      if (journaled) s.state_durable = true;
      break;
    case Prim::kDeliverState:
      s.state_delivered = true;
      break;
    case Prim::kRebind:
      s.bound_to_old = false;
      s.bound_to_new = true;
      s.streams = StreamOwner::kNew;
      break;
    case Prim::kStartClone:
      s.clone = CloneLife::kStarted;
      break;
    case Prim::kSweepQueues:
      s.streams = StreamOwner::kNew;
      break;
    case Prim::kRemoveOld:
      s.old_life = OldLife::kRemoved;
      break;
    case Prim::kAwaitRestore:
      s.clone = CloneLife::kRestored;
      break;
    case Prim::kCommit:
      s.committed = true;
      s.txn_open = false;
      break;
    case Prim::kAbortRollback:
      s.clone = CloneLife::kAbsent;
      s.aborted = true;
      s.txn_open = false;
      break;
    case Prim::kCloneCrashed:
      s.clone = CloneLife::kCrashed;
      s.state_delivered = false;  // the mailbox copy dies with the process
      break;
    case Prim::kRetrySwap:
      s.clone = CloneLife::kStarted;
      s.state_delivered = true;
      s.streams = StreamOwner::kNew;
      break;
    case Prim::kRegisterReplica:
      s.replica = CloneLife::kRegistered;
      break;
    case Prim::kDeliverStateReplica:
      s.replica_has_state = true;
      break;
    case Prim::kStartReplica:
      s.replica = CloneLife::kStarted;
      break;
    case Prim::kAwaitRestoreReplica:
      s.replica = CloneLife::kRestored;
      break;
    case Prim::kMachineKill:
      s.machine_lost = true;
      break;
    case Prim::kAdoptDeadBindings:
      s.dead_adopted = true;
      break;
    case Prim::kRetireDead:
      s.dead_retired = true;
      break;
  }
}

std::vector<std::string> Plan::journal_boundaries() const {
  std::vector<std::string> out;
  for (const Step& step : steps) {
    if (!step.journal.empty()) out.push_back(step.journal);
  }
  return out;
}

namespace {

/// The Figure 5 happy path, shared by replace/move/update (they are the
/// same script parameterized over target machine and program).
std::vector<Step> figure5_steps() {
  using reconfig::kStepAdd;
  using reconfig::kStepBindEditPrep;
  using reconfig::kStepCloneRegister;
  using reconfig::kStepCommit;
  using reconfig::kStepDel;
  using reconfig::kStepObjCap;
  using reconfig::kStepObjstateMove;
  using reconfig::kStepRebind;
  return {
      {Prim::kBeginTxn, "begin", "begin"},
      {Prim::kObjCap, "obj_cap", kStepObjCap},
      {Prim::kRegisterClone, "clone_register", kStepCloneRegister},
      {Prim::kPrepBindings, "bind_edit_prep", kStepBindEditPrep},
      {Prim::kSignal, "objstate_move.signal", kStepObjstateMove},
      {Prim::kPassivate, "objstate_move.passivate", ""},
      {Prim::kDivulge, "objstate_move.divulge", ""},
      {Prim::kDeliverState, "objstate_move.deliver", ""},
      {Prim::kRebind, "rebind", kStepRebind},
      {Prim::kStartClone, "add", kStepAdd},
      {Prim::kSweepQueues, "del.drain", kStepDel},
      {Prim::kRemoveOld, "del.remove", ""},
      {Prim::kAwaitRestore, "restore", ""},
      {Prim::kCommit, "commit", kStepCommit},
  };
}

}  // namespace

Plan plan_replace() {
  return Plan{"replace",
              "Figure 5 replacement: divulge, move state, rebind, swap "
              "instances (reconfig::replace_module)",
              /*journaled=*/true, Outcome::kCommitted, figure5_steps()};
}

Plan plan_move() {
  Plan p = plan_replace();
  p.name = "move";
  p.description =
      "process migration: the Figure 5 script with the same program on "
      "another machine (reconfig::move_module)";
  return p;
}

Plan plan_update() {
  Plan p = plan_replace();
  p.name = "update";
  p.description =
      "software maintenance: the Figure 5 script with a new program "
      "version in place (reconfig::update_module)";
  return p;
}

Plan plan_abort_divulge_timeout() {
  Plan p;
  p.name = "abort_divulge_timeout";
  p.description =
      "divulge timeout: the module never complied, everything rolls back "
      "and the old instance keeps serving (reconfig::replace_module abort "
      "path)";
  p.journaled = true;
  p.outcome = Outcome::kAborted;
  p.steps = {
      {Prim::kBeginTxn, "begin", "begin"},
      {Prim::kObjCap, "obj_cap", reconfig::kStepObjCap},
      {Prim::kRegisterClone, "clone_register", reconfig::kStepCloneRegister},
      {Prim::kPrepBindings, "bind_edit_prep", reconfig::kStepBindEditPrep},
      {Prim::kSignal, "objstate_move.signal", reconfig::kStepObjstateMove},
      {Prim::kAbortRollback, "abort", "abort"},
  };
  return p;
}

Plan plan_retry_reinstall() {
  Plan p = plan_replace();
  p.name = "retry_reinstall";
  p.description =
      "post-divulge retry chain: the clone crashes while restoring; a "
      "fresh clone adopts bindings, queues, and the saved state "
      "(reconfig::replace_module, max_attempts > 1)";
  // The crash lands during the first await; the retry replaces it.
  p.steps.pop_back();  // commit
  p.steps.pop_back();  // the successful await_restore
  p.steps.push_back({Prim::kCloneCrashed, "clone_crash", ""});
  p.steps.push_back({Prim::kRetrySwap, "retry_swap", ""});
  p.steps.push_back({Prim::kAwaitRestore, "restore", ""});
  p.steps.push_back({Prim::kCommit, "commit", reconfig::kStepCommit});
  return p;
}

Plan plan_recover_rollback() {
  Plan p;
  p.name = "recover_rollback";
  p.description =
      "coordinator dies before the watershed; the successor scans the WAL, "
      "removes the clone, and the old instance keeps serving "
      "(recover::recover_coordinator)";
  p.journaled = true;
  p.outcome = Outcome::kAborted;
  p.steps = {
      {Prim::kBeginTxn, "begin", "begin"},
      {Prim::kObjCap, "obj_cap", reconfig::kStepObjCap},
      {Prim::kRegisterClone, "clone_register", reconfig::kStepCloneRegister},
      {Prim::kPrepBindings, "bind_edit_prep", reconfig::kStepBindEditPrep},
      {Prim::kCoordinatorCrash, "crash", ""},
      {Prim::kRestartFromWal, "recover.scan", ""},
      {Prim::kAbortRollback, "recover.rollback", "abort"},
  };
  return p;
}

Plan plan_recover_rollforward() {
  Plan p;
  p.name = "recover_rollforward";
  p.description =
      "coordinator dies after the watershed; the successor finishes the "
      "script from the WAL: re-deliver, rebind remnants, start, retire "
      "(recover::recover_coordinator)";
  p.journaled = true;
  p.outcome = Outcome::kCommitted;
  p.steps = {
      {Prim::kBeginTxn, "begin", "begin"},
      {Prim::kObjCap, "obj_cap", reconfig::kStepObjCap},
      {Prim::kRegisterClone, "clone_register", reconfig::kStepCloneRegister},
      {Prim::kPrepBindings, "bind_edit_prep", reconfig::kStepBindEditPrep},
      {Prim::kSignal, "objstate_move.signal", reconfig::kStepObjstateMove},
      {Prim::kPassivate, "objstate_move.passivate", ""},
      {Prim::kDivulge, "objstate_move.divulge", ""},
      {Prim::kDeliverState, "objstate_move.deliver", ""},
      {Prim::kRebind, "rebind", reconfig::kStepRebind},
      {Prim::kCoordinatorCrash, "crash", ""},
      {Prim::kRestartFromWal, "recover.scan", ""},
      {Prim::kDeliverState, "recover.redeliver", ""},
      {Prim::kSweepQueues, "recover.sweep", ""},
      {Prim::kStartClone, "recover.add", ""},
      {Prim::kRemoveOld, "recover.del", ""},
      {Prim::kAwaitRestore, "recover.restore", ""},
      {Prim::kCommit, "recover.commit", reconfig::kStepCommit},
  };
  return p;
}

Plan plan_replicate() {
  Plan p;
  p.name = "replicate";
  p.description =
      "replication: divulge once, install the state in a replacing clone "
      "AND a fresh replica (reconfig::replicate_module, unjournaled)";
  p.journaled = false;
  p.outcome = Outcome::kCommitted;
  p.steps = {
      {Prim::kObjCap, "obj_cap", ""},
      {Prim::kRegisterClone, "clone_register", ""},
      {Prim::kRegisterReplica, "replica_register", ""},
      {Prim::kSignal, "objstate_move.signal", ""},
      {Prim::kPassivate, "objstate_move.passivate", ""},
      {Prim::kDivulge, "objstate_move.divulge", ""},
      {Prim::kDeliverState, "deliver_primary", ""},
      {Prim::kDeliverStateReplica, "deliver_replica", ""},
      {Prim::kRebind, "rebind", ""},
      {Prim::kBindReplica, "bind_replica", ""},
      {Prim::kStartClone, "add_primary", ""},
      {Prim::kStartReplica, "add_replica", ""},
      {Prim::kSweepQueues, "sweep", ""},
      {Prim::kRemoveOld, "del", ""},
      {Prim::kAwaitRestore, "restore_primary", ""},
      {Prim::kAwaitRestoreReplica, "restore_replica", ""},
      {Prim::kCommit, "done", ""},
  };
  return p;
}

Plan plan_group_rebuild() {
  using reconfig::kStepAdd;
  using reconfig::kStepBindEditPrep;
  using reconfig::kStepCloneRegister;
  using reconfig::kStepCommit;
  using reconfig::kStepDel;
  using reconfig::kStepObjCap;
  using reconfig::kStepObjstateMove;
  using reconfig::kStepRebind;
  Plan p;
  p.name = "group_rebuild";
  p.description =
      "machine loss: a group member died with its machine; the survivor "
      "divulges once, its continuation stays in place, and a fresh heir on "
      "a spare adopts the dead member's bindings "
      "(replicate::rebuild_group)";
  p.journaled = true;
  p.outcome = Outcome::kCommitted;
  p.steps = {
      {Prim::kMachineKill, "machine_kill", ""},
      {Prim::kBeginTxn, "begin", "begin"},
      {Prim::kObjCap, "obj_cap", kStepObjCap},
      {Prim::kRegisterClone, "clone_register", kStepCloneRegister},
      {Prim::kRegisterReplica, "heir_register", ""},
      {Prim::kPrepBindings, "bind_edit_prep", kStepBindEditPrep},
      {Prim::kSignal, "objstate_move.signal", kStepObjstateMove},
      {Prim::kPassivate, "objstate_move.passivate", ""},
      {Prim::kDivulge, "objstate_move.divulge", ""},
      {Prim::kDeliverState, "deliver_survivor", ""},
      {Prim::kDeliverStateReplica, "deliver_heir", ""},
      {Prim::kRebind, "rebind", kStepRebind},
      {Prim::kAdoptDeadBindings, "adopt_dead_bindings", ""},
      {Prim::kStartClone, "add_survivor", kStepAdd},
      {Prim::kStartReplica, "add_heir", ""},
      {Prim::kSweepQueues, "del.drain", kStepDel},
      {Prim::kRemoveOld, "del.remove_survivor", ""},
      {Prim::kRetireDead, "del.retire_dead", ""},
      {Prim::kAwaitRestore, "restore_survivor", ""},
      {Prim::kAwaitRestoreReplica, "restore_heir", ""},
      {Prim::kCommit, "commit", kStepCommit},
  };
  return p;
}

Plan plan_rebalance() {
  Plan p = plan_replace();
  p.name = "rebalance";
  p.description =
      "placement repair: a machine joined the ring and a member off its "
      "placement migrates via the Figure 5 move script "
      "(replicate::GroupManager::rebalance)";
  return p;
}

std::vector<Plan> shipped_plans() {
  return {plan_replace(),
          plan_move(),
          plan_update(),
          plan_abort_divulge_timeout(),
          plan_retry_reinstall(),
          plan_recover_rollback(),
          plan_recover_rollforward(),
          plan_replicate(),
          plan_group_rebuild(),
          plan_rebalance()};
}

Plan plan_broken_rebind_before_divulge() {
  Plan p = plan_replace();
  p.name = "broken_rebind_before_divulge";
  p.description =
      "SEEDED BROKEN PLAN: the rebind runs before the module divulged -- "
      "invariant 3 must flag it (checker self-test, not shipped)";
  // Move the rebind step from after the objstate_move block to before it.
  Step rebind;
  for (auto it = p.steps.begin(); it != p.steps.end(); ++it) {
    if (it->prim == Prim::kRebind) {
      rebind = *it;
      p.steps.erase(it);
      break;
    }
  }
  for (auto it = p.steps.begin(); it != p.steps.end(); ++it) {
    if (it->prim == Prim::kSignal) {
      p.steps.insert(it, rebind);
      break;
    }
  }
  return p;
}

Plan plan_broken_adopt_before_divulge() {
  Plan p = plan_group_rebuild();
  p.name = "broken_adopt_before_divulge";
  p.description =
      "SEEDED BROKEN PLAN: the heir adopts the dead member's bindings "
      "before the survivor divulged -- invariant 7 must flag it (checker "
      "self-test, not shipped)";
  // Move the adoption from after the objstate_move block to before it.
  Step adopt;
  for (auto it = p.steps.begin(); it != p.steps.end(); ++it) {
    if (it->prim == Prim::kAdoptDeadBindings) {
      adopt = *it;
      p.steps.erase(it);
      break;
    }
  }
  for (auto it = p.steps.begin(); it != p.steps.end(); ++it) {
    if (it->prim == Prim::kSignal) {
      p.steps.insert(it, adopt);
      break;
    }
  }
  return p;
}

}  // namespace surgeon::verify
