// Static plan checker: symbolic execution of reconfiguration plans.
//
// check_plan() walks a verify::Plan over the abstract configuration state,
// evaluating each primitive's precondition, applying its postcondition
// (unconditionally, so damage propagates past a failed precondition), and
// classifying every invariant 1-7 at every step boundary as established,
// preserved, or violated. The result carries machine-readable diagnostics
// -- step name, invariant id, counterexample state -- consumed by the
// tools/plan_check CLI (text and JSON) and pinned by verify_test.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "verify/plan.hpp"

namespace surgeon::verify {

/// Names of the seven chaos invariants, 1-indexed ([0] unused), as the
/// checker reports them. Same numbering as chaos/scenario.cpp.
[[nodiscard]] const char* invariant_name(int id) noexcept;

/// Status of one invariant at one step boundary.
enum class InvStatus : std::uint8_t {
  kPreserved,    // held before the step, still holds after
  kEstablished,  // did not hold before the step, holds after
  kViolated,     // does not hold after the step
};

[[nodiscard]] char inv_status_letter(InvStatus s) noexcept;

/// Does invariant `id` (1,2,3,4,6,7 -- the state predicates) hold in `s`?
/// Invariant 5 is a transition property; see the checker.
[[nodiscard]] bool invariant_holds(int id, const AbsState& s);

/// One machine-readable diagnostic: which step broke which invariant, with
/// the abstract counterexample state at that boundary.
struct Violation {
  int step_index = 0;      // 1-based position in the plan
  std::string step;        // step label
  int invariant = 0;       // 1-7, or 0 for plan well-formedness
  std::string kind;        // "precondition" | "boundary" | "outcome"
  std::string detail;      // human-readable clause
  std::string state;       // AbsState::describe() counterexample
};

/// Per-step-boundary report: the state before/after and every invariant's
/// status. invariants[i] is invariant i+1.
struct StepReport {
  int index = 0;  // 1-based
  Prim prim = Prim::kObjCap;
  std::string label;
  bool pre_ok = true;
  std::array<InvStatus, 7> invariants{};
  AbsState before;
  AbsState after;
};

struct PlanReport {
  std::string plan;
  std::string description;
  bool ok = false;
  std::vector<StepReport> steps;
  std::vector<Violation> violations;
  AbsState end_state;

  /// Stable human-readable table (the plan_check default, golden-pinned).
  [[nodiscard]] std::string to_text() const;
  /// Machine-readable diagnostics (plan_check --json).
  [[nodiscard]] std::string to_json() const;
};

/// Symbolically executes `plan` from the initial configuration (old
/// instance active and bound, no clone) and reports every invariant at
/// every step boundary plus the declared-outcome check at the end.
[[nodiscard]] PlanReport check_plan(const Plan& plan);

}  // namespace surgeon::verify
