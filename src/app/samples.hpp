// Sample applications shared by tests, examples, and benchmarks.
//
// monitor_*: the paper's Monitor example (Section 2, Figures 1-3) --
// a sensor producing temperature values, a display requesting averages,
// and a compute module averaging recursively with reconfiguration point R
// inside the recursive procedure.
//
// counter_*: a deterministic request/accumulate app used for exact
// state-fidelity checks (its output is a pure function of request count,
// unaffected by timing).
//
// pipeline_*: a three-stage stream pipeline used for queue-preservation
// tests and the migration-under-load example.
#pragma once

#include <string>

#include "cfg/spec.hpp"

namespace surgeon::app::samples {

/// Figure 2: the monitor configuration (machines "vax" and "sparc" are
/// declared by the caller; display+compute start on vax, sensor on sparc).
[[nodiscard]] std::string monitor_config_text();
/// Figure 3: the original compute module, MiniC syntax.
[[nodiscard]] std::string monitor_compute_source();
[[nodiscard]] std::string monitor_display_source();
[[nodiscard]] std::string monitor_sensor_source();

/// Resolves a monitor module spec to its source (a SourceProvider).
[[nodiscard]] std::string monitor_source_of(const cfg::ModuleSpec& spec);

/// Deterministic counter app: `client` sends k=1..N requests; `server`
/// accumulates a running total with a recursive helper containing
/// reconfiguration point RP; replies with the total. Output depends only on
/// the request sequence.
[[nodiscard]] std::string counter_config_text();
[[nodiscard]] std::string counter_client_source(int requests);
[[nodiscard]] std::string counter_server_source();

/// Pipeline app: source -> filter -> sink over `count` items; filter is
/// reconfigurable at RP between items and keeps a running item count that
/// must survive replacement.
[[nodiscard]] std::string pipeline_config_text();
[[nodiscard]] std::string pipeline_source_source(int count);
[[nodiscard]] std::string pipeline_filter_source();
[[nodiscard]] std::string pipeline_sink_source();

/// Open pipeline: the same filter -> sink stages without the MiniC feeder,
/// so a native workload generator (bench/workload.hpp) can bind straight
/// into "filter in" and drive millions of requests without a VM on the
/// producing side. The filter keeps its reconfiguration point.
[[nodiscard]] std::string pipeline_open_config_text();
/// A sink that consumes without printing: per-item print() lines are fine
/// for queue-preservation tests, ruinous for million-request load runs.
[[nodiscard]] std::string pipeline_quiet_sink_source();

}  // namespace surgeon::app::samples
