#include "app/samples.hpp"

#include "support/diag.hpp"

namespace surgeon::app::samples {

// --- Monitor (the paper's example) -------------------------------------------

std::string monitor_config_text() {
  return R"cfg(
/* Figure 2: configuration of the Monitor application. */
module display {
  source = "./display.mc" ::
  client interface temper pattern = {integer} accepts = {float} ::
}

module compute {
  source = "./compute.mc" ::
  server interface display pattern = {integer} returns = {float} ::
  use interface sensor pattern = {integer} ::
  reconfiguration point = {R} vars = {num, n, *rp} ::
}

module sensor {
  source = "./sensor.mc" ::
  define interface out pattern = {integer} ::
}

application monitor {
  instance display on "vax" ::
  instance compute on "vax" ::
  instance sensor on "sparc" ::
  bind "display temper" "compute display" ::
  bind "sensor out" "compute sensor" ::
}
)cfg";
}

std::string monitor_compute_source() {
  // Figure 3, in MiniC syntax: averages n temperature values recursively;
  // the reconfiguration point R sits inside the recursive procedure, so
  // moving the module mid-computation must capture the AR stack.
  return R"mc(
void compute(int num, int n, float *rp)
{
  int temper;
  if (n <= 0) { *rp = 0.0; return; }
  compute(num, n - 1, rp);
R:
  mh_read("sensor", "i", &temper);
  *rp = *rp + (float)temper / (float)num;
}

void main()
{
  int n;
  float response;
  while (1) {
    /* handle requests for updated temperature */
    while (mh_query_ifmsgs("display")) {
      mh_read("display", "i", &n);
      compute(n, n, &response);
      mh_write("display", "F", response);
    }
    /* keep sensor buffer clear */
    if (mh_query_ifmsgs("sensor")) {
      compute(1, 1, &response);
    }
    sleep(2);
  }
}
)mc";
}

std::string monitor_display_source() {
  return R"mc(
void main()
{
  int n;
  float avg;
  n = 4;
  while (1) {
    mh_write("temper", "i", n);
    mh_read("temper", "F", &avg);
    print("avg", avg);
    sleep(2);
  }
}
)mc";
}

std::string monitor_sensor_source() {
  return R"mc(
void main()
{
  int t;
  while (1) {
    t = 15 + random(10);
    mh_write("out", "i", t);
    sleep(1);
  }
}
)mc";
}

std::string monitor_source_of(const cfg::ModuleSpec& spec) {
  if (spec.name == "display") return monitor_display_source();
  if (spec.name == "compute") return monitor_compute_source();
  if (spec.name == "sensor") return monitor_sensor_source();
  throw support::BusError("no source for module '" + spec.name + "'");
}

// --- Counter (deterministic fidelity fixture) --------------------------------

std::string counter_config_text() {
  return R"cfg(
module client {
  source = "./client.mc" ::
  client interface svc pattern = {integer} accepts = {integer} ::
}

module server {
  source = "./server.mc" ::
  server interface req pattern = {integer} returns = {integer} ::
  reconfiguration point = {RP} ::
}

application counter {
  instance client on "vax" ::
  instance server on "vax" ::
  bind "client svc" "server req" ::
}
)cfg";
}

std::string counter_client_source(int requests) {
  return R"mc(
void main()
{
  int i;
  int reply;
  i = 1;
  while (i <= )mc" +
         std::to_string(requests) + R"mc() {
    mh_write("svc", "i", i);
    mh_read("svc", "i", &reply);
    print("reply", i, reply);
    sleep(1);
    i = i + 1;
  }
  print("client-done");
}
)mc";
}

std::string counter_server_source() {
  // total accumulates across requests (static data area); bump recurses so
  // the reconfiguration point RP sits above a non-trivial AR stack.
  return R"mc(
int total = 0;

void bump(int k, int *out)
{
  if (k <= 0) { return; }
  bump(k - 1, out);
RP:
  total = total + k;
  *out = total;
}

void main()
{
  int k;
  int result;
  while (1) {
    mh_read("req", "i", &k);
    bump(k, &result);
    mh_write("req", "i", result);
  }
}
)mc";
}

// --- Pipeline (queue preservation under migration) ----------------------------

std::string pipeline_config_text() {
  return R"cfg(
module feeder {
  source = "./feeder.mc" ::
  define interface out pattern = {integer} ::
}

module filter {
  source = "./filter.mc" ::
  use interface in pattern = {integer} ::
  define interface out pattern = {integer, integer} ::
  reconfiguration point = {RP} ::
}

module sink {
  source = "./sink.mc" ::
  use interface in pattern = {integer, integer} ::
}

application pipeline {
  instance feeder on "vax" ::
  instance filter on "vax" ::
  instance sink on "sparc" ::
  bind "feeder out" "filter in" ::
  bind "filter out" "sink in" ::
}
)cfg";
}

std::string pipeline_source_source(int count) {
  return R"mc(
void main()
{
  int i;
  i = 1;
  while (i <= )mc" +
         std::to_string(count) + R"mc() {
    mh_write("out", "i", i);
    if (i % 8 == 0) { sleep(1); }
    i = i + 1;
  }
  print("feeder-done");
}
)mc";
}

std::string pipeline_filter_source() {
  // `seen` is part of the process state: after a replacement it must
  // continue from its old value or the sink sees a sequence gap.
  return R"mc(
int seen = 0;

void main()
{
  int x;
  int y;
  while (1) {
    mh_read("in", "i", &x);
RP:
    y = x * 2;
    seen = seen + 1;
    mh_write("out", "ii", y, seen);
  }
}
)mc";
}

std::string pipeline_sink_source() {
  return R"mc(
void main()
{
  int y;
  int s;
  while (1) {
    mh_read("in", "ii", &y, &s);
    print("item", y, s);
  }
}
)mc";
}

std::string pipeline_open_config_text() {
  return R"cfg(
module filter {
  source = "./filter.mc" ::
  use interface in pattern = {integer} ::
  define interface out pattern = {integer, integer} ::
  reconfiguration point = {RP} ::
}

module sink {
  source = "./sink.mc" ::
  use interface in pattern = {integer, integer} ::
}

application pipeline {
  instance filter on "vax" ::
  instance sink on "sparc" ::
  bind "filter out" "sink in" ::
}
)cfg";
}

std::string pipeline_quiet_sink_source() {
  return R"mc(
int got = 0;

void main()
{
  int y;
  int s;
  while (1) {
    mh_read("in", "ii", &y, &s);
    got = got + 1;
  }
}
)mc";
}

}  // namespace surgeon::app::samples
