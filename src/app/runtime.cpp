#include "app/runtime.hpp"

#include <algorithm>

#include "minic/parser.hpp"
#include "minic/sema.hpp"
#include "opt/optimizer.hpp"

namespace surgeon::app {

using support::BusError;

Runtime::Runtime(std::uint64_t seed) : sim_(seed), bus_(sim_), seed_(seed) {
  bus_.set_wake_callback([this](const std::string& module) { wake(module); });
  // The registry rides along from the start (disabled, so a no-op) so that
  // endpoint and process handles resolve exactly once, at registration.
  metrics_.set_clock([this] { return sim_.now(); });
  bus_.set_metrics(&metrics_);
  // Same pattern for the causal flight recorder: attached from the start,
  // inert until enable_causal_tracing().
  tracer_.set_clock(&sim_);
  bus_.set_tracer(&tracer_);
}

void Runtime::record_trace(const bus::TraceEvent& ev) {
  if (trace_.size() >= trace_capacity_) {
    ++trace_dropped_;
    if (metrics_.enabled()) {
      metrics_.counter("surgeon_trace_dropped_total").inc();
    }
    if (trace_capacity_ == 0) return;
    trace_.pop_front();
  }
  trace_.push_back(ev);
}

void Runtime::publish_vm_metrics(ProcessRec& rec, std::uint64_t instructions) {
  const vm::Machine& m = *rec.machine;
  rec.insn_ctr->inc(instructions);
  rec.capture_frames_gauge->set(
      static_cast<std::int64_t>(m.capture_frames_total()));
  rec.restore_frames_gauge->set(
      static_cast<std::int64_t>(m.restore_frames_total()));
  rec.state_bytes_gauge->set(
      static_cast<std::int64_t>(m.encoded_state_bytes_total()));
}

void Runtime::wake(const std::string& instance) {
  auto it = processes_.find(instance);
  // A sleeping module is not disturbed by message arrival; only its timer
  // wakes it (sleep() already completed inside the VM).
  if (it != processes_.end() && !it->second.sleeping) {
    it->second.waiting = false;
  }
}

void Runtime::install_module(const std::string& instance, ModuleImage image,
                             const std::string& machine,
                             const std::string& status) {
  bus::ModuleInfo info;
  info.name = instance;
  info.machine = !machine.empty()      ? machine
                 : !image.spec.machine.empty() ? image.spec.machine
                                               : std::string{};
  if (info.machine.empty()) {
    throw BusError("module " + instance + " has no machine assignment");
  }
  info.status = status;
  info.source = image.spec.source;
  info.interfaces = image.spec.interfaces;
  bus_.add_module(std::move(info));
  images_[instance] = std::move(image);
}

void Runtime::start_module(const std::string& instance) {
  auto img = images_.find(instance);
  if (img == images_.end()) {
    throw BusError("start_module: unknown instance " + instance);
  }
  if (processes_.contains(instance)) {
    throw BusError("start_module: " + instance + " is already running");
  }
  const auto& info = bus_.module_info(instance);
  const net::Machine& host = sim_.machine(info.machine);
  ProcessRec rec;
  rec.client = std::make_unique<bus::Client>(bus_, instance);
  rec.machine = std::make_unique<vm::Machine>(*img->second.program, host.arch,
                                              seed_ ^ std::hash<std::string>{}(
                                                          instance));
  rec.machine->attach_client(rec.client.get());
  obs::Labels labels{{"module", instance}};
  rec.insn_ctr = &metrics_.counter("surgeon_vm_instructions_total", labels);
  rec.capture_frames_gauge =
      &metrics_.gauge("surgeon_vm_capture_frames", labels);
  rec.restore_frames_gauge =
      &metrics_.gauge("surgeon_vm_restore_frames", labels);
  rec.state_bytes_gauge =
      &metrics_.gauge("surgeon_vm_encoded_state_bytes", labels);
  if (profiler_ != nullptr) attach_tap(instance, rec);
  processes_[instance] = std::move(rec);
}

void Runtime::stop_module(const std::string& instance) {
  processes_.erase(instance);
  crashed_.erase(instance);
}

void Runtime::remove_module(const std::string& instance) {
  processes_.erase(instance);
  crashed_.erase(instance);
  images_.erase(instance);
  if (bus_.has_module(instance)) bus_.remove_module(instance);
}

void Runtime::crash_now(const std::string& instance, ProcessRec& rec,
                        const std::string& detail) {
  rec.finished = true;
  rec.crash_in_insns.reset();
  crashed_.insert(instance);
  bus_.note_module_crashed(instance, detail);
  if (rec.restart_after_us > 0) {
    net::SimTime delay = rec.restart_after_us;
    rec.restart_after_us = 0;
    sim_.schedule_after(delay, [this, instance] {
      // The script may have removed the module while it was down.
      if (crashed_.contains(instance) && images_.contains(instance)) {
        restart_module(instance);
      }
    });
  }
}

void Runtime::crash_module(const std::string& instance,
                           const std::string& detail) {
  auto it = processes_.find(instance);
  if (it == processes_.end()) {
    throw BusError("crash_module: " + instance + " has no process");
  }
  if (it->second.finished) return;  // already dead or done
  crash_now(instance, it->second, detail);
}

std::vector<std::string> Runtime::crash_machine(const std::string& machine,
                                                const std::string& detail) {
  // Kill every live process hosted on the machine, in name order (the
  // iteration is over the process map, which is ordered). Bus registrations
  // -- endpoints, queues, bindings -- survive, exactly as when a POLYLITH
  // host dies but the nameserver still lists its modules; the rebuild
  // script retires the corpses.
  std::vector<std::string> killed;
  for (auto& [name, rec] : processes_) {
    if (rec.finished) continue;
    if (!bus_.has_module(name)) continue;
    if (bus_.module_info(name).machine != machine) continue;
    crash_now(name, rec, detail);
    killed.push_back(name);
  }
  dead_machines_.insert(machine);
  return killed;
}

void Runtime::crash_after(const std::string& instance, std::uint64_t insns,
                          net::SimTime restart_after_us) {
  auto it = processes_.find(instance);
  if (it == processes_.end()) {
    throw BusError("crash_after: " + instance + " has no process");
  }
  it->second.crash_in_insns = insns;
  it->second.restart_after_us = restart_after_us;
}

void Runtime::restart_module(const std::string& instance) {
  if (!images_.contains(instance)) {
    throw BusError("restart_module: unknown instance " + instance);
  }
  processes_.erase(instance);
  crashed_.erase(instance);
  start_module(instance);
}

bool Runtime::module_running(const std::string& instance) const {
  auto it = processes_.find(instance);
  return it != processes_.end() && !it->second.finished;
}

bool Runtime::module_finished(const std::string& instance) const {
  auto it = processes_.find(instance);
  return it != processes_.end() && it->second.finished;
}

vm::Machine* Runtime::machine_of(const std::string& instance) {
  auto it = processes_.find(instance);
  return it == processes_.end() ? nullptr : it->second.machine.get();
}

const ModuleImage* Runtime::image_of(const std::string& instance) const {
  auto it = images_.find(instance);
  return it == images_.end() ? nullptr : &it->second;
}

std::string Runtime::fresh_instance_name(const std::string& base) {
  // Strip a previous @n suffix so repeated reconfigurations of the same
  // logical module stay readable (compute -> compute@2 -> compute@3).
  std::string stem = base;
  if (auto pos = stem.rfind('@'); pos != std::string::npos) {
    stem = stem.substr(0, pos);
  }
  int n = ++name_counters_[stem];
  std::string name = stem + "@" + std::to_string(n + 1);
  while (bus_.has_module(name) || images_.contains(name)) {
    n = ++name_counters_[stem];
    name = stem + "@" + std::to_string(n + 1);
  }
  return name;
}

void Runtime::load_application(const cfg::ConfigFile& config,
                               const std::string& application,
                               const SourceProvider& source_of,
                               const xform::XformOptions& xform_options,
                               bool optimize) {
  const cfg::ApplicationSpec* app = config.find_application(application);
  if (app == nullptr) {
    throw BusError("configuration has no application '" + application + "'");
  }
  for (const auto& inst : app->instances) {
    const cfg::ModuleSpec* spec = config.find_module(inst.module);
    if (spec == nullptr) {
      throw BusError("application instantiates unknown module '" +
                     inst.module + "'");
    }
    minic::Program prog = minic::parse_program(source_of(*spec));
    minic::analyze(prog);
    if (!spec->reconfig_points.empty()) {
      xform::prepare_module(prog, spec->reconfig_points, xform_options);
    }
    if (optimize) {
      // The optimizer models the machine's optimizing compiler: it runs on
      // whatever source the module ships with, transformed or not.
      (void)opt::optimize(prog);
      minic::analyze(prog);
    }
    ModuleImage image;
    image.spec = *spec;
    image.program =
        std::make_shared<const vm::CompiledProgram>(vm::compile(prog));
    install_module(inst.instance_name(), std::move(image), inst.machine,
                   "new");
    start_module(inst.instance_name());
  }
  for (const auto& b : app->binds) {
    bus_.add_binding(b.a, b.b);
  }
}

bool Runtime::step() {
  bool ran = false;
  // Snapshot names first: a module's slice can add/remove modules only via
  // scripts between rounds, but bus wakes mutate flags freely.
  for (auto& [name, rec] : processes_) {
    if (rec.finished || rec.waiting) continue;
    std::uint64_t slice = slice_insns_;
    if (rec.crash_in_insns.has_value()) {
      if (*rec.crash_in_insns == 0) {
        crash_now(name, rec, "crash_after fired");
        ran = true;
        continue;
      }
      slice = std::min(slice, *rec.crash_in_insns);
    }
    vm::StepResult r = rec.machine->step(slice);
    ran = true;
    if (rec.crash_in_insns.has_value()) {
      *rec.crash_in_insns -= std::min<std::uint64_t>(*rec.crash_in_insns,
                                                     r.instructions);
    }
    if (insn_cost_ns_ != 0 && r.instructions > 0) {
      sim_.advance_time(r.instructions * insn_cost_ns_ / 1000);
    }
    if (metrics_.enabled()) publish_vm_metrics(rec, r.instructions);
    switch (r.state) {
      case vm::RunState::kSleeping: {
        rec.waiting = true;
        rec.sleeping = true;
        std::string instance = name;
        sim_.schedule_after(r.sleep_us, [this, instance] {
          auto it = processes_.find(instance);
          if (it != processes_.end()) {
            it->second.sleeping = false;
            it->second.waiting = false;
          }
        });
        break;
      }
      case vm::RunState::kBlockedRead:
      case vm::RunState::kBlockedDecode:
        rec.waiting = true;
        break;
      case vm::RunState::kDone:
        rec.finished = true;
        break;
      case vm::RunState::kFault:
        rec.finished = true;
        if (!first_fault_.has_value()) {
          first_fault_ = {name, rec.machine->fault_message()};
        }
        break;
      case vm::RunState::kRunnable:
        break;  // slice exhausted; runs again next round
    }
  }
  if (ran) return true;
  return sim_.step();
}

bool Runtime::run_until(const std::function<bool()>& pred,
                        std::uint64_t max_rounds) {
  for (std::uint64_t i = 0; i < max_rounds; ++i) {
    if (pred()) return true;
    if (!step()) return pred();
  }
  return pred();
}

void Runtime::run_for(net::SimTime duration_us, std::uint64_t max_rounds) {
  net::SimTime deadline = sim_.now() + duration_us;
  (void)run_until([&] { return sim_.now() >= deadline; }, max_rounds);
}

void Runtime::run_until_idle(std::uint64_t max_rounds) {
  for (std::uint64_t i = 0; i < max_rounds; ++i) {
    if (!step()) return;
  }
}

void Runtime::enable_profiler(profile::Profiler& profiler,
                              profile::ProfileOptions options) {
  profiler_ = &profiler;
  profile_options_ = options;
  for (auto& [name, rec] : processes_) {
    attach_tap(name, rec);
  }
  if (options.interval_us != 0) {
    std::uint64_t epoch = ++profile_epoch_;
    sim_.schedule_after(options.interval_us,
                        [this, epoch] { profile_tick(epoch); });
  }
}

void Runtime::disable_profiler() noexcept {
  ++profile_epoch_;  // an in-flight tick event becomes a no-op
  profiler_ = nullptr;
  for (auto& [name, rec] : processes_) {
    rec.machine->set_sample_sink(nullptr);
    rec.machine->set_sample_period(0);
    rec.tap.reset();
  }
}

void Runtime::attach_tap(const std::string& instance, ProcessRec& rec) {
  rec.tap = std::make_unique<SampleTap>();
  rec.tap->profiler = profiler_;
  rec.tap->module = instance;
  rec.machine->set_sample_sink(rec.tap.get());
  if (profile_options_.every_insns != 0) {
    rec.machine->set_sample_period(profile_options_.every_insns);
  }
}

void Runtime::profile_tick(std::uint64_t epoch) {
  if (epoch != profile_epoch_ || profiler_ == nullptr) return;
  for (auto& [name, rec] : processes_) {
    if (rec.finished) continue;
    // One-shot: the next instruction the module executes is sampled. A
    // blocked module contributes nothing this tick — virtual-time sampling
    // measures where execution goes, not where modules idle.
    rec.machine->arm_sample(1);
  }
  sim_.schedule_after(profile_options_.interval_us,
                      [this, epoch] { profile_tick(epoch); });
}

void Runtime::enable_heartbeats(net::SimTime interval_us, HeartbeatSink sink) {
  if (interval_us == 0) {
    throw BusError("enable_heartbeats: interval must be nonzero");
  }
  hb_interval_us_ = interval_us;
  hb_sink_ = std::move(sink);
  std::uint64_t epoch = ++hb_epoch_;
  sim_.schedule_after(hb_interval_us_,
                      [this, epoch] { heartbeat_tick(epoch); });
}

void Runtime::heartbeat_tick(std::uint64_t epoch) {
  // A tick scheduled before disable/re-enable is stale; drop it so exactly
  // one tick chain is live per enable_heartbeats() call.
  if (epoch != hb_epoch_ || !hb_sink_) return;
  for (auto& [name, rec] : processes_) {
    if (rec.finished) continue;  // crashed/done processes stop beating
    hb_sink_(name, sim_.now());
  }
  sim_.schedule_after(hb_interval_us_,
                      [this, epoch] { heartbeat_tick(epoch); });
}

void Runtime::check_faults() const {
  if (first_fault_.has_value()) {
    throw BusError("module '" + first_fault_->first +
                   "' faulted: " + first_fault_->second);
  }
}

}  // namespace surgeon::app
