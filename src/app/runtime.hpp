// The application runtime: builds a distributed application from its
// configuration specification and schedules its modules cooperatively over
// the simulated network.
//
// Each module instance is a VM executing (transformed) MiniC bytecode,
// attached to the bus under its instance name. The scheduler interleaves
// runnable modules with simulator events; virtual time advances through
// message latencies, sleeps, and (optionally) a per-instruction compute
// cost. Everything is deterministic for a given seed.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "bus/bus.hpp"
#include "bus/client.hpp"
#include "cfg/spec.hpp"
#include "net/sim.hpp"
#include "obs/metrics.hpp"
#include "profile/profiler.hpp"
#include "vm/compiler.hpp"
#include "vm/machine.hpp"
#include "xform/transform.hpp"

namespace surgeon::app {

/// Everything needed to instantiate (or clone) a module.
struct ModuleImage {
  cfg::ModuleSpec spec;
  std::shared_ptr<const vm::CompiledProgram> program;
};

class Runtime {
 public:
  explicit Runtime(std::uint64_t seed = 1);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] net::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] bus::Bus& bus() noexcept { return bus_; }
  [[nodiscard]] net::SimTime now() const noexcept { return sim_.now(); }

  void add_machine(const std::string& name, net::Arch arch) {
    sim_.add_machine(name, std::move(arch));
  }

  /// Virtual nanoseconds charged per executed VM instruction (0 = pure
  /// discrete-event time; computation is instantaneous).
  void set_instruction_cost_ns(std::uint64_t ns) noexcept {
    insn_cost_ns_ = ns;
  }
  /// Instructions a module may run per scheduling slice.
  void set_slice(std::uint64_t insns) noexcept { slice_insns_ = insns; }

  // --- module lifecycle -----------------------------------------------------

  /// Registers a module instance with the bus (not yet running).
  /// `machine` overrides the spec's MACHINE attribute when non-empty.
  void install_module(const std::string& instance, ModuleImage image,
                      const std::string& machine, const std::string& status);
  /// Creates the module's VM and makes it schedulable (mh_chg_obj "add").
  void start_module(const std::string& instance);
  /// Stops scheduling the module; the bus registration remains.
  void stop_module(const std::string& instance);
  /// Stops and removes the module and its bindings (mh_chg_obj "del").
  void remove_module(const std::string& instance);

  [[nodiscard]] bool module_running(const std::string& instance) const;
  [[nodiscard]] bool module_finished(const std::string& instance) const;

  // --- crash injection (surgeon::chaos) -------------------------------------

  /// Kills the instance's process immediately: the VM stops, in-memory state
  /// is lost, but the bus registration (endpoints, queues, bindings) stays,
  /// exactly as when a POLYLITH process dies on its host. Reconfiguration
  /// scripts observe the death through module_crashed().
  void crash_module(const std::string& instance,
                    const std::string& detail = "injected");
  /// Machine failure: kills EVERY live process hosted on `machine` at once
  /// (heartbeats from all of them stop on the same tick -- what a machine-
  /// level failure detector aggregates). Bus registrations stay, like
  /// crash_module; the machine is remembered as dead (machine_dead()) so
  /// placement layers exclude it. Returns the killed instances, name order.
  std::vector<std::string> crash_machine(
      const std::string& machine, const std::string& detail = "machine lost");
  /// Has crash_machine been called for this machine?
  [[nodiscard]] bool machine_dead(const std::string& machine) const {
    return dead_machines_.contains(machine);
  }
  /// Clears the dead mark (a repaired host rejoining under the same name).
  void revive_machine(const std::string& machine) {
    dead_machines_.erase(machine);
  }
  /// Arms a deterministic crash: the process dies after executing `insns`
  /// more VM instructions (0 = at its next scheduling point). When
  /// `restart_after_us` is nonzero the module is restarted with a fresh VM
  /// that many virtual microseconds later.
  void crash_after(const std::string& instance, std::uint64_t insns,
                   net::SimTime restart_after_us = 0);
  /// Restarts a crashed module from its installed image (state lost).
  void restart_module(const std::string& instance);
  [[nodiscard]] bool module_crashed(const std::string& instance) const {
    return crashed_.contains(instance);
  }
  /// Direct access to a running module's VM (tests and benchmarks); null if
  /// the instance has no process.
  [[nodiscard]] vm::Machine* machine_of(const std::string& instance);
  [[nodiscard]] const ModuleImage* image_of(const std::string& instance) const;

  /// Unique instance name derived from a base module name ("compute@2").
  [[nodiscard]] std::string fresh_instance_name(const std::string& base);

  // --- whole applications ----------------------------------------------------

  using SourceProvider =
      std::function<std::string(const cfg::ModuleSpec& spec)>;

  /// Builds an application from its configuration: for every instance,
  /// fetches the module's MiniC source, transforms it when the module
  /// declares reconfiguration points, optionally optimizes it (constant
  /// folding + loop-invariant hoisting; see surgeon::opt), compiles,
  /// installs, and starts it; then applies the bindings. Instance names
  /// equal module names (the configuration language instantiates each
  /// module once, as in Figure 2).
  void load_application(const cfg::ConfigFile& config,
                        const std::string& application,
                        const SourceProvider& source_of,
                        const xform::XformOptions& xform_options = {},
                        bool optimize = false);

  // --- scheduling -------------------------------------------------------------

  /// One scheduling round: runs every runnable module for a slice, then (if
  /// nothing ran) advances the simulator by one event. Returns false when
  /// the whole system is idle (nothing runnable, no pending events).
  bool step();

  /// Runs until `pred()` is true. Returns true on success, false when the
  /// system went idle or `max_rounds` elapsed first.
  bool run_until(const std::function<bool()>& pred,
                 std::uint64_t max_rounds = 1'000'000);

  /// Runs until virtual time reaches now()+duration_us (or idle).
  void run_for(net::SimTime duration_us, std::uint64_t max_rounds = 1'000'000);

  /// Runs until nothing can make progress.
  void run_until_idle(std::uint64_t max_rounds = 1'000'000);

  /// Starts recording every bus event (messages, signals, state movement,
  /// bind-table changes, module lifecycle) with virtual timestamps. The
  /// buffer is a bounded ring (set_trace_capacity): when full, the oldest
  /// events are discarded and counted, so long-running applications do not
  /// grow memory without limit.
  void enable_tracing() {
    bus_.set_trace([this](const bus::TraceEvent& ev) { record_trace(ev); });
  }
  [[nodiscard]] const std::deque<bus::TraceEvent>& trace() const noexcept {
    return trace_;
  }
  /// Ring capacity of the trace buffer. The default (1M events) is large
  /// enough that every existing test and example sees every event.
  void set_trace_capacity(std::size_t capacity) noexcept {
    trace_capacity_ = capacity;
  }
  /// Events discarded because the trace ring was full (also exported as
  /// the surgeon_trace_dropped_total counter when metrics are enabled).
  [[nodiscard]] std::uint64_t trace_dropped() const noexcept {
    return trace_dropped_;
  }

  // --- observability ----------------------------------------------------------

  /// The platform metrics registry: attached to the bus and the scheduler
  /// at construction (so hot-path handles resolve once), but disabled --
  /// a no-op -- until enable_metrics() is called. Spans, counters, and
  /// timers all use the simulator's virtual clock.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  void enable_metrics() noexcept { metrics_.set_enabled(true); }
  void disable_metrics() noexcept { metrics_.set_enabled(false); }

  /// The causal flight recorder (trace/recorder.hpp): attached to the bus
  /// at construction, disabled -- messages carry no headers and no events
  /// record -- until enable_causal_tracing() is called. Like the metrics
  /// registry it runs on the virtual clock. Distinct from enable_tracing()
  /// above, which streams flat legacy TraceEvents without causal edges.
  [[nodiscard]] ::surgeon::trace::Recorder& tracer() noexcept { return tracer_; }
  void enable_causal_tracing() noexcept { tracer_.set_enabled(true); }
  void disable_causal_tracing() noexcept { tracer_.set_enabled(false); }

  // --- sampling profiler (surgeon::profile) ---------------------------------

  /// Attaches the sampling profiler to every module VM (current and future)
  /// and starts whichever sampling drivers the options enable:
  /// `interval_us` arms one sample per live module per virtual-clock tick
  /// (the cluster-operator view; like heartbeats, the tick chain keeps the
  /// simulator non-idle, so use predicate- or time-bounded runs), and
  /// `every_insns` samples each module every K executed instructions (the
  /// dense, deterministic view opcode studies need). `profiler` must
  /// outlive the runtime or a disable_profiler() call.
  void enable_profiler(profile::Profiler& profiler,
                       profile::ProfileOptions options);
  /// Detaches every tap; armed countdowns fire into nothing (one compare
  /// per instruction remains, the disarmed cost).
  void disable_profiler() noexcept;
  [[nodiscard]] bool profiler_enabled() const noexcept {
    return profiler_ != nullptr;
  }

  // --- heartbeats (surgeon::recover) ----------------------------------------

  /// Called once per heartbeat tick for every live (non-finished) process:
  /// (instance, virtual time of the beat). The recover::FailureDetector is
  /// the intended sink.
  using HeartbeatSink = std::function<void(const std::string&, net::SimTime)>;

  /// Starts a periodic virtual-clock heartbeat: every `interval_us` the
  /// runtime reports each live process to `sink`. Crashed and finished
  /// processes stop beating, which is exactly what a timeout detector
  /// watches for. NOTE: the self-rescheduling tick keeps the simulator
  /// permanently non-idle, so run_until_idle() will burn its whole rounds
  /// budget while heartbeats are on -- use predicate- or time-bounded runs,
  /// or disable_heartbeats() first.
  void enable_heartbeats(net::SimTime interval_us, HeartbeatSink sink);
  /// Stops the heartbeat tick (any in-flight tick event becomes a no-op).
  void disable_heartbeats() noexcept { ++hb_epoch_; hb_sink_ = nullptr; }
  [[nodiscard]] bool heartbeats_enabled() const noexcept {
    return hb_sink_ != nullptr;
  }

  /// A module faulted during this run? (instance, message) of the first.
  [[nodiscard]] const std::optional<std::pair<std::string, std::string>>&
  first_fault() const noexcept {
    return first_fault_;
  }
  /// Throws BusError if any module has faulted (call from tests).
  void check_faults() const;

 private:
  /// Per-process adapter: forwards VM sample callbacks to the shared
  /// profiler with the instance name attached. Heap-owned so the pointer
  /// the Machine holds stays valid when the ProcessRec moves.
  struct SampleTap final : vm::SampleSink {
    profile::Profiler* profiler = nullptr;
    std::string module;
    void on_sample(const vm::Machine& machine) override {
      profiler->sample(module, machine);
    }
  };

  struct ProcessRec {
    std::unique_ptr<bus::Client> client;
    std::unique_ptr<vm::Machine> machine;
    bool waiting = false;   // blocked or sleeping
    bool sleeping = false;  // waiting on a timer: only the timer may wake it
    bool finished = false;  // done or fault
    /// Armed crash countdown: instructions left before the process dies.
    std::optional<std::uint64_t> crash_in_insns;
    net::SimTime restart_after_us = 0;
    // Metric handles (owned by metrics_), resolved at start_module so the
    // per-slice publish below is map-free.
    obs::Counter* insn_ctr = nullptr;
    obs::Gauge* capture_frames_gauge = nullptr;
    obs::Gauge* restore_frames_gauge = nullptr;
    obs::Gauge* state_bytes_gauge = nullptr;
    std::unique_ptr<SampleTap> tap;
  };

  void wake(const std::string& instance);
  void heartbeat_tick(std::uint64_t epoch);
  void profile_tick(std::uint64_t epoch);
  void attach_tap(const std::string& instance, ProcessRec& rec);
  void record_trace(const bus::TraceEvent& ev);
  void publish_vm_metrics(ProcessRec& rec, std::uint64_t instructions);
  void crash_now(const std::string& instance, ProcessRec& rec,
                 const std::string& detail);

  net::Simulator sim_;
  bus::Bus bus_;
  std::map<std::string, ModuleImage> images_;
  std::map<std::string, ProcessRec> processes_;
  std::set<std::string> crashed_;
  std::set<std::string> dead_machines_;
  std::map<std::string, int> name_counters_;
  std::uint64_t slice_insns_ = 10'000;
  std::uint64_t insn_cost_ns_ = 0;
  std::uint64_t seed_ = 1;
  std::optional<std::pair<std::string, std::string>> first_fault_;
  HeartbeatSink hb_sink_;
  net::SimTime hb_interval_us_ = 0;
  std::uint64_t hb_epoch_ = 0;  // stale tick events compare and bail
  profile::Profiler* profiler_ = nullptr;
  profile::ProfileOptions profile_options_;
  std::uint64_t profile_epoch_ = 0;  // same staleness guard as heartbeats
  std::deque<bus::TraceEvent> trace_;
  std::size_t trace_capacity_ = 1'048'576;
  std::uint64_t trace_dropped_ = 0;
  obs::MetricsRegistry metrics_;
  ::surgeon::trace::Recorder tracer_;
};

}  // namespace surgeon::app
