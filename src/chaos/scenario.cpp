#include "chaos/scenario.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string_view>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "net/arch.hpp"
#include "reconfig/scripts.hpp"
#include "recover/recovery.hpp"
#include "replicate/kv.hpp"
#include "replicate/manager.hpp"
#include "trace/checker.hpp"

namespace surgeon::chaos {

const char* sample_app_name(SampleApp app) noexcept {
  switch (app) {
    case SampleApp::kCounter: return "counter";
    case SampleApp::kPipeline: return "pipeline";
    case SampleApp::kMonitor: return "monitor";
    case SampleApp::kKv: return "kv";
  }
  return "?";
}

std::string ScenarioSpec::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " app=" << sample_app_name(app)
     << " items=" << work_items << " drop=" << faults.drop
     << " dup=" << faults.duplicate << " delay=" << faults.delay
     << " jitter=" << faults.jitter_us << "us partitions=" << partitions.size()
     << " crash_clone=" << (crash_clone ? 1 : 0)
     << " crash_coordinator_at_step=" << crash_coordinator_at_step
     << " replace_after=" << replace_after_outputs << " machine="
     << (target_machine.empty() ? "<same>" : target_machine);
  if (app == SampleApp::kKv) {
    // The artifact line must name the killed machine(s): a failing-seed
    // report is only actionable when it says which host died and when.
    os << " kv_shards=" << kv_shards << " kv_group=" << kv_group_size
       << " kv_machines=" << kv_machines << " kv_spares=" << kv_spares;
    if (kv_kill_machine >= 0) {
      os << " kill=m" << kv_kill_machine << "@" << kv_kill_at_us << "us";
    } else {
      os << " kill=none";
    }
    if (kv_second_kill_machine >= 0) {
      os << " second_kill=m" << kv_second_kill_machine << "@"
         << kv_second_kill_at_us << "us";
    }
  }
  return os.str();
}

namespace {

struct AppRoles {
  const char* application;
  const char* target;    // the module the scenario replaces
  const char* observer;  // the module whose printed output is checked
};

AppRoles roles_for(SampleApp app) {
  switch (app) {
    case SampleApp::kCounter: return {"counter", "server", "client"};
    case SampleApp::kPipeline: return {"pipeline", "filter", "sink"};
    case SampleApp::kMonitor: return {"monitor", "compute", "display"};
    case SampleApp::kKv: return {"kv", "shard", "client"};
  }
  return {"counter", "server", "client"};
}

constexpr std::uint64_t kRounds = 100'000'000;

/// Chaos variant of the pipeline feeder: one item per virtual second.
/// The stock feeder floods every item at t~0, so in a fault-free run the
/// filter drains the whole stream before a mid-run replacement signal can
/// land and then blocks in mh_read, never reaching its reconfiguration
/// point again. Pacing the feeder keeps items flowing across the
/// replacement window -- which is the situation the scenario is about.
std::string paced_feeder_source(int count) {
  return R"mc(
void main()
{
  int i;
  i = 1;
  while (i <= )mc" +
         std::to_string(count) + R"mc() {
    mh_write("out", "i", i);
    sleep(1);
    i = i + 1;
  }
  print("feeder-done");
}
)mc";
}

std::unique_ptr<app::Runtime> build_app(const ScenarioSpec& spec) {
  auto rt = std::make_unique<app::Runtime>(spec.seed);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  rt->bus().set_delivery(spec.delivery);
  // The reconfiguration scripts "run" on sparc, so control-plane traffic
  // (signal, state buffer, their acks) crosses a real, faultable link even
  // when the whole application lives on vax.
  rt->bus().set_control_machine("sparc");
  cfg::ConfigFile config;
  app::Runtime::SourceProvider provider;
  switch (spec.app) {
    case SampleApp::kCounter:
      config = cfg::parse_config(app::samples::counter_config_text());
      provider = [&spec](const cfg::ModuleSpec& s) {
        return s.name == "client"
                   ? app::samples::counter_client_source(spec.work_items)
                   : app::samples::counter_server_source();
      };
      break;
    case SampleApp::kPipeline:
      config = cfg::parse_config(app::samples::pipeline_config_text());
      provider = [&spec](const cfg::ModuleSpec& s) {
        if (s.name == "feeder") return paced_feeder_source(spec.work_items);
        if (s.name == "filter") return app::samples::pipeline_filter_source();
        return app::samples::pipeline_sink_source();
      };
      break;
    case SampleApp::kMonitor:
      config = cfg::parse_config(app::samples::monitor_config_text());
      provider = [](const cfg::ModuleSpec& s) {
        return app::samples::monitor_source_of(s);
      };
      break;
    case SampleApp::kKv:
      // kv scenarios take the run_kv_pass path; they never build the
      // two-machine replacement topology.
      throw support::Error("kv scenarios do not run through run_pass");
  }
  rt->load_application(config, roles_for(spec.app).application, provider);
  return rt;
}

/// Everything one pass (golden or chaos) produces.
struct PassResult {
  std::vector<std::string> output;
  bool app_done = false;
  std::string vm_fault;  // "module X faulted: ..." or empty
  bool replaced = false;
  bool recovered_forward = false;
  int attempts = 0;
  std::string new_instance;
  std::string abort_reason;
  net::SimTime replace_started_at = 0;
  std::vector<std::string> final_modules;  // bus registry when the pass ends
  std::vector<bus::TraceEvent> trace;
  std::vector<std::vector<std::uint8_t>> divulged;
  std::vector<std::vector<std::uint8_t>> delivered;
  bus::ReliableStats rstats;
  std::string drain_failure;
  std::vector<std::string> hb_violations;
  std::uint64_t hb_events = 0;
};

PassResult run_pass(const ScenarioSpec& spec, FaultSource* injector) {
  PassResult pr;
  const AppRoles roles = roles_for(spec.app);
  auto rt_owner = build_app(spec);
  app::Runtime& rt = *rt_owner;
  if (injector != nullptr) injector->attach(rt.bus());
  rt.enable_metrics();
  // Invariant 5 runs online over the flight recorder: the checker sees
  // every event as it is recorded, before the ring can evict it.
  rt.enable_causal_tracing();
  trace::HbChecker hb_checker;
  rt.tracer().set_observer(
      [&hb_checker](const trace::Event& ev) { hb_checker.observe(ev); });
  rt.bus().set_state_observer(
      [&pr](const std::string&, const char* phase,
            const std::vector<std::uint8_t>& bytes) {
        if (std::string_view(phase) == "divulged") {
          pr.divulged.push_back(bytes);
        } else {
          pr.delivered.push_back(bytes);
        }
      });
  // Trace sink doubles as the crash trigger: killing the clone exactly when
  // its first state buffer lands is deterministic across retransmissions
  // (the buffer arrives once; duplicates are deduplicated before tracing).
  bool crash_armed = injector != nullptr && spec.crash_clone;
  rt.bus().set_trace([&pr, &rt, &crash_armed](const bus::TraceEvent& ev) {
    pr.trace.push_back(ev);
    if (crash_armed && ev.kind == bus::TraceEvent::Kind::kStateDelivered &&
        ev.module.find('@') != std::string::npos &&
        rt.module_running(ev.module)) {
      crash_armed = false;
      rt.crash_module(ev.module, "chaos: crashed on first state delivery");
    }
  });

  auto out_size = [&rt, &roles] {
    vm::Machine* m = rt.machine_of(roles.observer);
    return m == nullptr ? std::size_t{0} : m->output().size();
  };

  // Phase 1: let the application serve before interfering.
  (void)rt.run_until(
      [&] {
        return out_size() >=
               static_cast<std::size_t>(spec.replace_after_outputs);
      },
      kRounds);

  // Phase 2: the Figure 5 replacement, with the chaos retry/abort options.
  // Chaos passes journal every boundary to the control machine's WAL, so a
  // coordinator crash (crash_coordinator_at_step) leaves a log for the
  // recovery path to roll forward or back, just as ISSUE 5's restarted
  // coordinator would.
  reconfig::ReplaceOptions options;
  options.machine = spec.target_machine;
  options.max_attempts = spec.max_attempts;
  options.divulge_timeout_us = spec.divulge_timeout_us;
  options.restore_timeout_us = spec.restore_timeout_us;
  std::optional<recover::Wal> wal;
  if (injector != nullptr) {
    wal.emplace(rt.simulator().durable_store("sparc"));
    options.journal = &*wal;
    if (spec.crash_coordinator_at_step >= 0) {
      const char* boundary = recover::kCrashBoundaries
          [static_cast<std::size_t>(spec.crash_coordinator_at_step) %
           recover::kCrashBoundaries.size()];
      options.crash_hook = [boundary](const char* step) {
        if (std::string_view(step) == boundary) {
          throw recover::CoordinatorCrash(
              std::string("chaos: coordinator crashed at '") + step + "'");
        }
      };
    }
  }
  pr.replace_started_at = rt.now();
  try {
    reconfig::ReplaceReport report =
        reconfig::replace_module(rt, roles.target, options);
    pr.replaced = true;
    pr.attempts = report.attempts;
    pr.new_instance = report.new_instance;
  } catch (const recover::CoordinatorCrash& e) {
    // The coordinator process died mid-script. Its successor scans the WAL
    // and completes or rolls back the open transaction.
    recover::RecoveryReport rec = recover::recover_coordinator(rt, *wal);
    if (rec.rolled_forward) {
      pr.replaced = true;
      pr.recovered_forward = true;
      pr.attempts = 1;
      pr.new_instance = rec.new_instance;
    } else {
      pr.abort_reason = e.what();
    }
  } catch (const reconfig::ScriptError& e) {
    pr.abort_reason = e.what();
  }

  // Phase 3: run the application to its finish line.
  switch (spec.app) {
    case SampleApp::kCounter:
      pr.app_done = rt.run_until(
          [&] { return rt.module_finished("client"); }, kRounds);
      break;
    case SampleApp::kPipeline:
      pr.app_done = rt.run_until(
          [&] {
            return rt.module_finished("feeder") &&
                   out_size() >= static_cast<std::size_t>(spec.work_items);
          },
          kRounds);
      break;
    case SampleApp::kMonitor: {
      // The monitor serves forever; liveness = the display kept printing
      // for another window of virtual time.
      std::size_t before = out_size();
      rt.run_for(10'000'000, kRounds);
      pr.app_done = out_size() > before;
      break;
    }
    case SampleApp::kKv:
      break;  // unreachable: build_app rejected the spec already
  }
  if (rt.first_fault().has_value()) {
    pr.vm_fault = "module '" + rt.first_fault()->first +
                  "' faulted: " + rt.first_fault()->second;
  }

  // Phase 4: quiesce and check that the reliable layer drained. The
  // monitor never idles (its modules loop on timers), so the drain check
  // applies to the finite apps only.
  if (spec.app != SampleApp::kMonitor) {
    rt.run_until_idle(kRounds);
    pr.rstats = rt.bus().reliable_stats();
    if (pr.rstats.gave_up == 0) {
      std::ostringstream os;
      if (rt.bus().unacked_total() != 0) {
        os << "unacked_total=" << rt.bus().unacked_total() << " after idle; ";
      }
      if (rt.bus().ooo_total() != 0) {
        os << "ooo_total=" << rt.bus().ooo_total() << " after idle; ";
      }
      if (rt.bus().pending_control_total() != 0) {
        os << "pending_control=" << rt.bus().pending_control_total()
           << " after idle; ";
      }
      for (const auto& [key, gauge] : rt.metrics().gauges()) {
        if (key.first == "surgeon_bus_queue_depth" && gauge.value() != 0) {
          os << "queue-depth gauge nonzero for";
          for (const auto& [k, v] : key.second) os << " " << k << "=" << v;
          os << "; ";
        }
      }
      pr.drain_failure = os.str();
    }
  } else {
    pr.rstats = rt.bus().reliable_stats();
  }

  vm::Machine* observer = rt.machine_of(roles.observer);
  if (observer != nullptr) pr.output = observer->output();
  pr.final_modules = rt.bus().module_names();
  pr.hb_violations = hb_checker.violations();
  pr.hb_events = hb_checker.observed();
  if (injector != nullptr && spec.chaos_pass_observer) {
    spec.chaos_pass_observer(rt);
  }
  return pr;
}

/// Records a violation (all are kept; `failure` mirrors the first) and
/// returns false, for use in check chains.
bool fail(ScenarioResult& result, const std::string& message) {
  result.violations.push_back(message);
  if (result.failure.empty()) result.failure = message;
  return false;
}

/// Invariant 1, counter: replies 1..N each exactly once, in order, then
/// "client-done". Pipeline: the sink's `seen` sequence is exactly 1..N.
bool check_no_loss_no_dup(const ScenarioSpec& spec,
                          const std::vector<std::string>& output,
                          ScenarioResult& result) {
  const std::size_t n = static_cast<std::size_t>(spec.work_items);
  if (spec.app == SampleApp::kCounter) {
    if (output.size() != n + 1) {
      return fail(result, "invariant 1: expected " + std::to_string(n + 1) +
                              " client lines, got " +
                              std::to_string(output.size()));
    }
    for (std::size_t i = 1; i <= n; ++i) {
      const std::string prefix = "reply " + std::to_string(i) + " ";
      if (output[i - 1].rfind(prefix, 0) != 0) {
        return fail(result, "invariant 1: line " + std::to_string(i - 1) +
                                " is '" + output[i - 1] + "', expected '" +
                                prefix + "...'");
      }
    }
    if (output[n] != "client-done") {
      return fail(result, "invariant 1: missing client-done line");
    }
    return true;
  }
  if (spec.app == SampleApp::kPipeline) {
    if (output.size() != n) {
      return fail(result, "invariant 1: expected " + std::to_string(n) +
                              " sink lines, got " +
                              std::to_string(output.size()));
    }
    for (std::size_t i = 1; i <= n; ++i) {
      // sink prints "item <2*i> <seen>": `seen` must count 1..N with no
      // gap (lost item) and no repeat (double-applied item).
      const std::string expect = "item " + std::to_string(2 * i) + " " +
                                 std::to_string(i);
      if (output[i - 1] != expect) {
        return fail(result, "invariant 1: line " + std::to_string(i - 1) +
                                " is '" + output[i - 1] + "', expected '" +
                                expect + "'");
      }
    }
    return true;
  }
  return true;  // monitor: sensor is random; liveness checked elsewhere
}

/// Invariant 2: every delivered state buffer is byte-identical to the most
/// recently divulged one (retries re-deliver the same capture).
bool check_state_fidelity(const PassResult& pass, ScenarioResult& result) {
  if (!pass.delivered.empty() && pass.divulged.empty()) {
    return fail(result, "invariant 2: state delivered but never divulged");
  }
  for (const auto& bytes : pass.delivered) {
    if (bytes != pass.divulged.back()) {
      return fail(result,
                  "invariant 2: delivered state (" +
                      std::to_string(bytes.size()) +
                      " bytes) differs from divulged state (" +
                      std::to_string(pass.divulged.back().size()) + " bytes)");
    }
  }
  if (pass.replaced && pass.divulged.empty()) {
    return fail(result, "invariant 2: replacement completed without a "
                        "divulged state capture");
  }
  return true;
}

/// Invariant 3: no rebind of the replacement fires before the old module
/// reached quiescence (divulged its state).
bool check_rebind_after_quiescence(const PassResult& pass,
                                   ScenarioResult& result) {
  if (!pass.replaced) return true;
  net::SimTime divulged_at = 0;
  bool saw_divulge = false;
  for (const auto& ev : pass.trace) {
    if (ev.kind == bus::TraceEvent::Kind::kStateDivulged) {
      divulged_at = ev.at;
      saw_divulge = true;
      break;
    }
  }
  if (!saw_divulge) {
    return fail(result, "invariant 3: no state-divulged trace event");
  }
  for (const auto& ev : pass.trace) {
    if (ev.kind != bus::TraceEvent::Kind::kRebind) continue;
    if (ev.at < pass.replace_started_at) continue;  // application load
    if (ev.at < divulged_at) {
      return fail(result, "invariant 3: rebind at t=" +
                              std::to_string(ev.at) +
                              "us before quiescence at t=" +
                              std::to_string(divulged_at) + "us");
    }
    break;  // only the first post-launch rebind switches the bindings
  }
  return true;
}

/// Invariant 6: the final configuration is consistent. Exactly one
/// instance of the replaced logical module (any @generation) remains
/// registered -- a crash that leaves the old instance AND a half-installed
/// clone behind, or neither, has wedged the application.
bool check_consistent_configuration(const ScenarioSpec& spec,
                                    const PassResult& pass,
                                    ScenarioResult& result) {
  const std::string target = roles_for(spec.app).target;
  std::vector<std::string> generations;
  for (const std::string& name : pass.final_modules) {
    std::string stem = name.substr(0, name.rfind('@'));  // npos keeps all
    if (stem == target) generations.push_back(name);
  }
  if (generations.size() != 1) {
    std::string listing;
    for (const auto& g : generations) listing += " " + g;
    return fail(result, "invariant 6: expected exactly one '" + target +
                            "' instance after the run, found " +
                            std::to_string(generations.size()) + ":" +
                            listing);
  }
  return true;
}

/// Invariant 5: the online happens-before checker saw a nonempty causal
/// event stream and flagged nothing.
bool check_happens_before_stream(std::uint64_t events,
                                 const std::vector<std::string>& violations,
                                 const char* which, ScenarioResult& result) {
  if (events == 0) {
    return fail(result, std::string("invariant 5: ") + which +
                            " pass recorded no causal events (tracing "
                            "was not running)");
  }
  if (!violations.empty()) {
    std::string msg = std::string("invariant 5: ") + which + " pass: " +
                      violations.front();
    if (violations.size() > 1) {
      msg += " (+" + std::to_string(violations.size() - 1) +
             " more violations)";
    }
    return fail(result, msg);
  }
  return true;
}

bool check_happens_before(const PassResult& pass, const char* which,
                          ScenarioResult& result) {
  return check_happens_before_stream(pass.hb_events, pass.hb_violations,
                                     which, result);
}

/// Joins the first violation with a "+N more" suffix, so one invariant
/// contributes one comparable message however many witnesses it has.
std::string first_plus_more(const std::vector<std::string>& all) {
  std::string msg = all.front();
  if (all.size() > 1) {
    msg += " (+" + std::to_string(all.size() - 1) + " more)";
  }
  return msg;
}

// --- kv (replica-group machine-loss) scenarios ------------------------------

/// Everything one kv pass produces. The chaos pass runs the kills and the
/// injected link faults; the golden pass is the same service fault-free
/// and kill-free (the client's report is emitted post-run in key/seq
/// order, so the two are comparable line-for-line).
struct KvPassResult {
  std::vector<std::string> output;  // client report
  bool app_done = false;
  std::string vm_fault;
  std::vector<std::string> ledger_violations;
  std::uint64_t stale_gets = 0;
  std::uint64_t data_loss_groups = 0;
  std::uint64_t machines_rebuilt = 0;
  std::uint64_t groups_rebuilt = 0;
  std::vector<std::string> redundancy_violations;  // invariant 6 evidence
  std::vector<std::string> hb_violations;
  std::uint64_t hb_events = 0;
  bus::ReliableStats rstats;
};

KvPassResult run_kv_pass(const ScenarioSpec& spec, FaultSource* injector) {
  KvPassResult pr;
  auto rt_owner = std::make_unique<app::Runtime>(spec.seed);
  app::Runtime& rt = *rt_owner;

  replicate::KvOptions kv;
  kv.seed = spec.seed;
  kv.shards = static_cast<std::size_t>(spec.kv_shards);
  kv.group_size = static_cast<std::size_t>(spec.kv_group_size);
  kv.machines.clear();
  for (int i = 0; i < spec.kv_machines; ++i) {
    kv.machines.push_back("m" + std::to_string(i));
    rt.add_machine(kv.machines.back(), net::arch_vax());
  }
  std::vector<std::string> spares;
  for (int i = 0; i < spec.kv_spares; ++i) {
    spares.push_back("sp" + std::to_string(i));
    rt.add_machine(spares.back(), net::arch_sparc());
  }
  rt.add_machine(kv.control_machine, net::arch_vax());
  rt.bus().set_delivery(spec.delivery);
  rt.bus().set_control_machine(kv.control_machine);
  if (injector != nullptr) injector->attach(rt.bus());
  rt.enable_metrics();
  rt.enable_causal_tracing();
  trace::HbChecker hb_checker;
  rt.tracer().set_observer(
      [&hb_checker](const trace::Event& ev) { hb_checker.observe(ev); });

  replicate::KvService service(rt, kv);
  service.launch(spec.work_items);

  // Production cadence, scaled down so a confirm-then-rebuild cycle fits
  // inside the workload: heartbeats every 5ms, confirmed dead after 60ms
  // of host-wide silence. Heartbeats are direct runtime callbacks, not
  // wire messages, so the injected link faults can delay the service's
  // traffic but never forge a machine death.
  replicate::ManagerOptions mopts;
  mopts.heartbeat_interval_us = 5'000;
  mopts.sweep_interval_us = 20'000;
  mopts.detector.suspicion_timeout_us = 30'000;
  mopts.detector.confirm_timeout_us = 60'000;
  mopts.spares = spares;
  mopts.divulge_timeout_us = spec.divulge_timeout_us;
  mopts.restore_timeout_us = spec.restore_timeout_us;
  replicate::GroupManager manager(service, mopts);
  manager.start();

  // Kills run on the virtual clock, chaos pass only: the golden pass is
  // the same spec with neither faults nor machine loss.
  auto advance_to = [&rt](net::SimTime t) {
    if (rt.now() < t) (void)rt.run_for(t - rt.now(), kRounds);
  };
  if (injector != nullptr && spec.kv_kill_machine >= 0) {
    advance_to(spec.kv_kill_at_us);
    (void)rt.crash_machine("m" + std::to_string(spec.kv_kill_machine));
    if (spec.kv_second_kill_machine >= 0) {
      advance_to(spec.kv_second_kill_at_us);
      const std::string second =
          "m" + std::to_string(spec.kv_second_kill_machine);
      if (!rt.machine_dead(second)) (void)rt.crash_machine(second);
    }
  }

  pr.app_done = service.run_to_completion(60'000'000, 400'000'000);
  // A kill near the end of the workload can leave the rebuild in flight
  // when the client finishes; give the manager time to restore redundancy
  // before the final configuration check.
  (void)rt.run_for(500'000, kRounds);
  manager.stop();

  if (rt.first_fault().has_value()) {
    pr.vm_fault = "module '" + rt.first_fault()->first +
                  "' faulted: " + rt.first_fault()->second;
  }
  pr.output = service.client().report();
  pr.ledger_violations = service.client().ledger_violations();
  pr.stale_gets = service.router().stats().stale_gets;
  pr.data_loss_groups = manager.stats().data_loss_groups;
  pr.machines_rebuilt = manager.stats().machines_rebuilt;
  pr.groups_rebuilt = manager.stats().groups_rebuilt;
  pr.rstats = rt.bus().reliable_stats();

  // Final-configuration evidence for invariant 6: every group at full
  // strength, members running, on distinct live machines.
  for (std::size_t g = 0; g < kv.shards; ++g) {
    const auto members = service.router().members(g);
    const std::string tag = "group " + std::to_string(g);
    if (members.size() != kv.group_size) {
      pr.redundancy_violations.push_back(
          tag + " has " + std::to_string(members.size()) + " members, want " +
          std::to_string(kv.group_size));
      continue;
    }
    std::set<std::string> hosts;
    for (const auto& m : members) {
      if (!rt.module_running(m)) {
        pr.redundancy_violations.push_back(tag + " member " + m +
                                           " is not running");
      }
      const std::string host = rt.bus().module_info(m).machine;
      if (rt.machine_dead(host)) {
        pr.redundancy_violations.push_back(tag + " member " + m +
                                           " sits on dead machine " + host);
      }
      hosts.insert(host);
    }
    if (hosts.size() != members.size()) {
      pr.redundancy_violations.push_back(tag +
                                         " has co-located members");
    }
  }

  pr.hb_violations = hb_checker.violations();
  pr.hb_events = hb_checker.observed();
  if (injector != nullptr && spec.chaos_pass_observer) {
    spec.chaos_pass_observer(rt);
  }
  return pr;
}

ScenarioResult run_kv_scenario_with(const ScenarioSpec& spec,
                                    FaultSource& source,
                                    const std::vector<std::string>* golden) {
  ScenarioResult result;
  result.old_instance = roles_for(spec.app).target;

  KvPassResult chaos = run_kv_pass(spec, &source);
  result.replaced = chaos.machines_rebuilt > 0;
  result.attempts = static_cast<int>(chaos.groups_rebuilt);
  result.output = chaos.output;
  result.rstats = chaos.rstats;
  result.fstats = source.stats();
  result.hb_events = chaos.hb_events;

  // Fatal harness failures first, alone, exactly like the replacement
  // scenarios: a wedged pass makes the invariant verdicts below noise.
  if (!chaos.vm_fault.empty()) {
    fail(result, "chaos pass: " + chaos.vm_fault);
    return result;
  }
  if (!chaos.app_done) {
    fail(result, "kv client did not finish its script (kill=" +
                     (spec.kv_kill_machine >= 0
                          ? "m" + std::to_string(spec.kv_kill_machine)
                          : std::string("none")) +
                     ")");
    return result;
  }

  // Invariant 7, the scenario's reason to exist: acked-write durability
  // across the machine loss. Three independent witnesses.
  if (!chaos.ledger_violations.empty()) {
    fail(result, "invariant 7: " + first_plus_more(chaos.ledger_violations));
  }
  if (chaos.stale_gets != 0) {
    fail(result, "invariant 7: " + std::to_string(chaos.stale_gets) +
                     " stale GETs (replica members disagreed on a "
                     "committed value)");
  }
  if (chaos.data_loss_groups != 0) {
    fail(result, "invariant 7: " + std::to_string(chaos.data_loss_groups) +
                     " group(s) lost every member (no survivor to pull "
                     "state from)");
  }
  check_happens_before_stream(chaos.hb_events, chaos.hb_violations, "chaos",
                              result);
  if (!chaos.redundancy_violations.empty()) {
    fail(result,
         "invariant 6: " + first_plus_more(chaos.redundancy_violations));
  }

  // Invariant 4: the client's deterministic post-run report matches the
  // fault-free, kill-free reference. Sound because the client is globally
  // FIFO and the router acks a write only once EVERY member applied it --
  // the values a GET observes are a function of the op script alone, not
  // of fault or rebuild timing.
  ScenarioSpec reference = spec;
  reference.kv_kill_machine = -1;
  reference.kv_second_kill_machine = -1;
  if (golden != nullptr) {
    result.golden = *golden;
  } else {
    KvPassResult ref = run_kv_pass(reference, nullptr);
    result.golden = ref.output;
    if (!ref.vm_fault.empty() || !ref.app_done) {
      fail(result, "golden pass failed: " +
                       (ref.vm_fault.empty() ? "kv client did not finish"
                                             : ref.vm_fault));
      return result;
    }
    check_happens_before_stream(ref.hb_events, ref.hb_violations, "golden",
                                result);
  }
  if (chaos.output != result.golden) {
    fail(result, "invariant 4: output (" +
                     std::to_string(chaos.output.size()) +
                     " lines) differs from fault-free golden run (" +
                     std::to_string(result.golden.size()) + " lines)");
  }
  return result;
}

}  // namespace

ScenarioResult run_scenario_with(const ScenarioSpec& spec, FaultSource& source,
                                 const std::vector<std::string>* golden) {
  if (spec.app == SampleApp::kKv) {
    return run_kv_scenario_with(spec, source, golden);
  }
  ScenarioResult result;
  result.old_instance = roles_for(spec.app).target;

  // Chaos pass first (it is the one under test); golden pass only for the
  // apps with deterministic output.
  PassResult chaos = run_pass(spec, &source);
  result.replaced = chaos.replaced;
  result.recovered_forward = chaos.recovered_forward;
  result.abort_reason = chaos.abort_reason;
  result.new_instance = chaos.new_instance;
  result.attempts = chaos.attempts;
  result.output = chaos.output;
  result.rstats = chaos.rstats;
  result.fstats = source.stats();
  result.hb_events = chaos.hb_events;

  // Fatal harness failures: the pass never produced a checkable run, so
  // the invariant checks below would only report noise about its wreckage.
  if (!chaos.vm_fault.empty()) {
    fail(result, "chaos pass: " + chaos.vm_fault);
    return result;
  }
  if (!chaos.app_done) {
    fail(result, result.replaced
                     ? "application did not finish after replacement"
                     : "application did not keep serving after abort ('" +
                           chaos.abort_reason + "')");
    return result;
  }
  if (!chaos.drain_failure.empty()) {
    fail(result, "bookkeeping leak: " + chaos.drain_failure);
    return result;
  }

  // Every invariant is checked even after one fails: a schedule is
  // described by the full set of invariants it violates, so the sweep,
  // the systematic explorer, and plan_check report comparable verdicts.
  check_no_loss_no_dup(spec, chaos.output, result);
  check_state_fidelity(chaos, result);
  check_rebind_after_quiescence(chaos, result);
  check_happens_before(chaos, "chaos", result);
  check_consistent_configuration(spec, chaos, result);

  if (spec.app != SampleApp::kMonitor) {
    if (golden != nullptr) {
      result.golden = *golden;
    } else {
      PassResult reference = run_pass(spec, nullptr);
      result.golden = reference.output;
      if (!reference.vm_fault.empty() || !reference.app_done ||
          !reference.replaced) {
        fail(result, "golden pass failed: " +
                         (reference.vm_fault.empty() ? reference.abort_reason
                                                     : reference.vm_fault));
        return result;
      }
      check_happens_before(reference, "golden", result);
    }
    if (chaos.output != result.golden) {
      fail(result, "invariant 4: output (" +
                       std::to_string(chaos.output.size()) +
                       " lines) differs from fault-free golden run (" +
                       std::to_string(result.golden.size()) + " lines)");
    }
  }
  return result;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  FaultInjector injector(spec.seed);
  injector.set_default(spec.faults);
  for (const auto& p : spec.partitions) injector.add_partition(p);
  return run_scenario_with(spec, injector);
}

std::vector<std::string> golden_output(const ScenarioSpec& spec) {
  if (spec.app == SampleApp::kKv) {
    ScenarioSpec reference = spec;
    reference.kv_kill_machine = -1;
    reference.kv_second_kill_machine = -1;
    KvPassResult golden = run_kv_pass(reference, nullptr);
    if (!golden.vm_fault.empty() || !golden.app_done) {
      throw support::Error(
          "golden pass failed for '" + spec.describe() + "': " +
          (golden.vm_fault.empty() ? "kv client did not finish"
                                   : golden.vm_fault));
    }
    return golden.output;
  }
  PassResult golden = run_pass(spec, nullptr);
  if (!golden.vm_fault.empty() || !golden.app_done || !golden.replaced) {
    throw support::Error(
        "golden pass failed for '" + spec.describe() + "': " +
        (golden.vm_fault.empty()
             ? (golden.abort_reason.empty() ? "application did not finish"
                                            : golden.abort_reason)
             : golden.vm_fault));
  }
  return golden.output;
}

std::vector<int> violated_invariants(const ScenarioResult& r) {
  std::vector<int> ids;
  for (const std::string& v : r.violations) {
    int id = 0;  // fatal harness failure
    if (v.rfind("invariant ", 0) == 0 && v.size() > 10) {
      id = v[10] - '0';
      if (id < 1 || id > 7) id = 0;
    }
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

ScenarioSpec random_scenario(std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  std::uint64_t pick = rng.next_below(10);
  spec.app = pick < 5   ? SampleApp::kCounter
             : pick < 8 ? SampleApp::kPipeline
                        : SampleApp::kMonitor;
  spec.work_items = 6 + static_cast<int>(rng.next_below(10));
  spec.faults.drop = rng.next_double() * 0.12;
  spec.faults.duplicate = rng.next_double() * 0.10;
  spec.faults.delay = rng.next_double() * 0.20;
  spec.faults.jitter_us = 500 + rng.next_below(4'500);
  if (rng.next_below(10) < 3) {
    // A vax--sparc partition that always heals well inside the divulge and
    // restore timeouts, so partitions delay replacements without forcing
    // aborts (the deliberate-abort path has its own directed test).
    net::SimTime from = 1'000'000 + rng.next_below(3'000'000);
    spec.partitions.push_back(
        Partition{"vax", "sparc", from, from + 300'000 + rng.next_below(1'200'000)});
  }
  spec.crash_clone = rng.next_below(10) < 2;
  if (rng.next_below(10) < 2) {
    // Coordinator-crash scenario: pick one of the eight boundaries. The
    // clone-crash trigger is disabled for these -- recovery's roll-forward
    // is single-shot (no retry chain), so a clone killed on state delivery
    // mid-recovery is a different scenario, covered by directed tests.
    spec.crash_coordinator_at_step = static_cast<int>(
        rng.next_below(recover::kCrashBoundaries.size()));
    spec.crash_clone = false;
  }
  spec.replace_after_outputs = 1 + static_cast<int>(rng.next_below(4));
  spec.target_machine = rng.next_below(2) == 0 ? "" : "sparc";
  spec.max_attempts = 4 + static_cast<int>(rng.next_below(3));
  return spec;
}

ScenarioSpec random_kv_scenario(std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  spec.app = SampleApp::kKv;
  spec.work_items = 20 + static_cast<int>(rng.next_below(20));
  // Milder link faults than the replacement scenarios: the kv pass runs a
  // whole self-healing cycle (detect, rebuild, rebalance traffic), so the
  // interesting adversary is the machine kill, with the faults keeping
  // the wire honest rather than dominating the schedule.
  spec.faults.drop = rng.next_double() * 0.06;
  spec.faults.duplicate = rng.next_double() * 0.05;
  spec.faults.delay = rng.next_double() * 0.10;
  spec.faults.jitter_us = 200 + rng.next_below(2'800);
  spec.kv_shards = 2 + static_cast<int>(rng.next_below(3));
  spec.kv_group_size = 2 + static_cast<int>(rng.next_below(2));
  spec.kv_machines =
      spec.kv_group_size + 1 + static_cast<int>(rng.next_below(2));
  spec.kv_spares = 2;
  spec.kv_kill_machine = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(spec.kv_machines)));
  spec.kv_kill_at_us = 8'000 + static_cast<net::SimTime>(rng.next_below(40'000));
  if (spec.kv_group_size >= 3 && rng.next_below(3) == 0) {
    // Overlapping loss: the second machine dies while the first rebuild
    // is likely mid-flight. 3-groups tolerate it; 2-groups would not.
    spec.kv_second_kill_machine = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(spec.kv_machines)));
    if (spec.kv_second_kill_machine == spec.kv_kill_machine) {
      spec.kv_second_kill_machine =
          (spec.kv_second_kill_machine + 1) % spec.kv_machines;
    }
    spec.kv_second_kill_at_us =
        spec.kv_kill_at_us + 40'000 +
        static_cast<net::SimTime>(rng.next_below(100'000));
  }
  return spec;
}

}  // namespace surgeon::chaos
