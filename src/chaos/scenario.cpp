#include "chaos/scenario.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <string_view>

#include "app/runtime.hpp"
#include "app/samples.hpp"
#include "cfg/parser.hpp"
#include "net/arch.hpp"
#include "reconfig/scripts.hpp"
#include "recover/recovery.hpp"
#include "trace/checker.hpp"

namespace surgeon::chaos {

const char* sample_app_name(SampleApp app) noexcept {
  switch (app) {
    case SampleApp::kCounter: return "counter";
    case SampleApp::kPipeline: return "pipeline";
    case SampleApp::kMonitor: return "monitor";
  }
  return "?";
}

std::string ScenarioSpec::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " app=" << sample_app_name(app)
     << " items=" << work_items << " drop=" << faults.drop
     << " dup=" << faults.duplicate << " delay=" << faults.delay
     << " jitter=" << faults.jitter_us << "us partitions=" << partitions.size()
     << " crash_clone=" << (crash_clone ? 1 : 0)
     << " crash_coordinator_at_step=" << crash_coordinator_at_step
     << " replace_after=" << replace_after_outputs << " machine="
     << (target_machine.empty() ? "<same>" : target_machine);
  return os.str();
}

namespace {

struct AppRoles {
  const char* application;
  const char* target;    // the module the scenario replaces
  const char* observer;  // the module whose printed output is checked
};

AppRoles roles_for(SampleApp app) {
  switch (app) {
    case SampleApp::kCounter: return {"counter", "server", "client"};
    case SampleApp::kPipeline: return {"pipeline", "filter", "sink"};
    case SampleApp::kMonitor: return {"monitor", "compute", "display"};
  }
  return {"counter", "server", "client"};
}

constexpr std::uint64_t kRounds = 100'000'000;

/// Chaos variant of the pipeline feeder: one item per virtual second.
/// The stock feeder floods every item at t~0, so in a fault-free run the
/// filter drains the whole stream before a mid-run replacement signal can
/// land and then blocks in mh_read, never reaching its reconfiguration
/// point again. Pacing the feeder keeps items flowing across the
/// replacement window -- which is the situation the scenario is about.
std::string paced_feeder_source(int count) {
  return R"mc(
void main()
{
  int i;
  i = 1;
  while (i <= )mc" +
         std::to_string(count) + R"mc() {
    mh_write("out", "i", i);
    sleep(1);
    i = i + 1;
  }
  print("feeder-done");
}
)mc";
}

std::unique_ptr<app::Runtime> build_app(const ScenarioSpec& spec) {
  auto rt = std::make_unique<app::Runtime>(spec.seed);
  rt->add_machine("vax", net::arch_vax());
  rt->add_machine("sparc", net::arch_sparc());
  rt->bus().set_delivery(spec.delivery);
  // The reconfiguration scripts "run" on sparc, so control-plane traffic
  // (signal, state buffer, their acks) crosses a real, faultable link even
  // when the whole application lives on vax.
  rt->bus().set_control_machine("sparc");
  cfg::ConfigFile config;
  app::Runtime::SourceProvider provider;
  switch (spec.app) {
    case SampleApp::kCounter:
      config = cfg::parse_config(app::samples::counter_config_text());
      provider = [&spec](const cfg::ModuleSpec& s) {
        return s.name == "client"
                   ? app::samples::counter_client_source(spec.work_items)
                   : app::samples::counter_server_source();
      };
      break;
    case SampleApp::kPipeline:
      config = cfg::parse_config(app::samples::pipeline_config_text());
      provider = [&spec](const cfg::ModuleSpec& s) {
        if (s.name == "feeder") return paced_feeder_source(spec.work_items);
        if (s.name == "filter") return app::samples::pipeline_filter_source();
        return app::samples::pipeline_sink_source();
      };
      break;
    case SampleApp::kMonitor:
      config = cfg::parse_config(app::samples::monitor_config_text());
      provider = [](const cfg::ModuleSpec& s) {
        return app::samples::monitor_source_of(s);
      };
      break;
  }
  rt->load_application(config, roles_for(spec.app).application, provider);
  return rt;
}

/// Everything one pass (golden or chaos) produces.
struct PassResult {
  std::vector<std::string> output;
  bool app_done = false;
  std::string vm_fault;  // "module X faulted: ..." or empty
  bool replaced = false;
  bool recovered_forward = false;
  int attempts = 0;
  std::string new_instance;
  std::string abort_reason;
  net::SimTime replace_started_at = 0;
  std::vector<std::string> final_modules;  // bus registry when the pass ends
  std::vector<bus::TraceEvent> trace;
  std::vector<std::vector<std::uint8_t>> divulged;
  std::vector<std::vector<std::uint8_t>> delivered;
  bus::ReliableStats rstats;
  std::string drain_failure;
  std::vector<std::string> hb_violations;
  std::uint64_t hb_events = 0;
};

PassResult run_pass(const ScenarioSpec& spec, FaultSource* injector) {
  PassResult pr;
  const AppRoles roles = roles_for(spec.app);
  auto rt_owner = build_app(spec);
  app::Runtime& rt = *rt_owner;
  if (injector != nullptr) injector->attach(rt.bus());
  rt.enable_metrics();
  // Invariant 5 runs online over the flight recorder: the checker sees
  // every event as it is recorded, before the ring can evict it.
  rt.enable_causal_tracing();
  trace::HbChecker hb_checker;
  rt.tracer().set_observer(
      [&hb_checker](const trace::Event& ev) { hb_checker.observe(ev); });
  rt.bus().set_state_observer(
      [&pr](const std::string&, const char* phase,
            const std::vector<std::uint8_t>& bytes) {
        if (std::string_view(phase) == "divulged") {
          pr.divulged.push_back(bytes);
        } else {
          pr.delivered.push_back(bytes);
        }
      });
  // Trace sink doubles as the crash trigger: killing the clone exactly when
  // its first state buffer lands is deterministic across retransmissions
  // (the buffer arrives once; duplicates are deduplicated before tracing).
  bool crash_armed = injector != nullptr && spec.crash_clone;
  rt.bus().set_trace([&pr, &rt, &crash_armed](const bus::TraceEvent& ev) {
    pr.trace.push_back(ev);
    if (crash_armed && ev.kind == bus::TraceEvent::Kind::kStateDelivered &&
        ev.module.find('@') != std::string::npos &&
        rt.module_running(ev.module)) {
      crash_armed = false;
      rt.crash_module(ev.module, "chaos: crashed on first state delivery");
    }
  });

  auto out_size = [&rt, &roles] {
    vm::Machine* m = rt.machine_of(roles.observer);
    return m == nullptr ? std::size_t{0} : m->output().size();
  };

  // Phase 1: let the application serve before interfering.
  (void)rt.run_until(
      [&] {
        return out_size() >=
               static_cast<std::size_t>(spec.replace_after_outputs);
      },
      kRounds);

  // Phase 2: the Figure 5 replacement, with the chaos retry/abort options.
  // Chaos passes journal every boundary to the control machine's WAL, so a
  // coordinator crash (crash_coordinator_at_step) leaves a log for the
  // recovery path to roll forward or back, just as ISSUE 5's restarted
  // coordinator would.
  reconfig::ReplaceOptions options;
  options.machine = spec.target_machine;
  options.max_attempts = spec.max_attempts;
  options.divulge_timeout_us = spec.divulge_timeout_us;
  options.restore_timeout_us = spec.restore_timeout_us;
  std::optional<recover::Wal> wal;
  if (injector != nullptr) {
    wal.emplace(rt.simulator().durable_store("sparc"));
    options.journal = &*wal;
    if (spec.crash_coordinator_at_step >= 0) {
      const char* boundary = recover::kCrashBoundaries
          [static_cast<std::size_t>(spec.crash_coordinator_at_step) %
           recover::kCrashBoundaries.size()];
      options.crash_hook = [boundary](const char* step) {
        if (std::string_view(step) == boundary) {
          throw recover::CoordinatorCrash(
              std::string("chaos: coordinator crashed at '") + step + "'");
        }
      };
    }
  }
  pr.replace_started_at = rt.now();
  try {
    reconfig::ReplaceReport report =
        reconfig::replace_module(rt, roles.target, options);
    pr.replaced = true;
    pr.attempts = report.attempts;
    pr.new_instance = report.new_instance;
  } catch (const recover::CoordinatorCrash& e) {
    // The coordinator process died mid-script. Its successor scans the WAL
    // and completes or rolls back the open transaction.
    recover::RecoveryReport rec = recover::recover_coordinator(rt, *wal);
    if (rec.rolled_forward) {
      pr.replaced = true;
      pr.recovered_forward = true;
      pr.attempts = 1;
      pr.new_instance = rec.new_instance;
    } else {
      pr.abort_reason = e.what();
    }
  } catch (const reconfig::ScriptError& e) {
    pr.abort_reason = e.what();
  }

  // Phase 3: run the application to its finish line.
  switch (spec.app) {
    case SampleApp::kCounter:
      pr.app_done = rt.run_until(
          [&] { return rt.module_finished("client"); }, kRounds);
      break;
    case SampleApp::kPipeline:
      pr.app_done = rt.run_until(
          [&] {
            return rt.module_finished("feeder") &&
                   out_size() >= static_cast<std::size_t>(spec.work_items);
          },
          kRounds);
      break;
    case SampleApp::kMonitor: {
      // The monitor serves forever; liveness = the display kept printing
      // for another window of virtual time.
      std::size_t before = out_size();
      rt.run_for(10'000'000, kRounds);
      pr.app_done = out_size() > before;
      break;
    }
  }
  if (rt.first_fault().has_value()) {
    pr.vm_fault = "module '" + rt.first_fault()->first +
                  "' faulted: " + rt.first_fault()->second;
  }

  // Phase 4: quiesce and check that the reliable layer drained. The
  // monitor never idles (its modules loop on timers), so the drain check
  // applies to the finite apps only.
  if (spec.app != SampleApp::kMonitor) {
    rt.run_until_idle(kRounds);
    pr.rstats = rt.bus().reliable_stats();
    if (pr.rstats.gave_up == 0) {
      std::ostringstream os;
      if (rt.bus().unacked_total() != 0) {
        os << "unacked_total=" << rt.bus().unacked_total() << " after idle; ";
      }
      if (rt.bus().ooo_total() != 0) {
        os << "ooo_total=" << rt.bus().ooo_total() << " after idle; ";
      }
      if (rt.bus().pending_control_total() != 0) {
        os << "pending_control=" << rt.bus().pending_control_total()
           << " after idle; ";
      }
      for (const auto& [key, gauge] : rt.metrics().gauges()) {
        if (key.first == "surgeon_bus_queue_depth" && gauge.value() != 0) {
          os << "queue-depth gauge nonzero for";
          for (const auto& [k, v] : key.second) os << " " << k << "=" << v;
          os << "; ";
        }
      }
      pr.drain_failure = os.str();
    }
  } else {
    pr.rstats = rt.bus().reliable_stats();
  }

  vm::Machine* observer = rt.machine_of(roles.observer);
  if (observer != nullptr) pr.output = observer->output();
  pr.final_modules = rt.bus().module_names();
  pr.hb_violations = hb_checker.violations();
  pr.hb_events = hb_checker.observed();
  if (injector != nullptr && spec.chaos_pass_observer) {
    spec.chaos_pass_observer(rt);
  }
  return pr;
}

/// Records a violation (all are kept; `failure` mirrors the first) and
/// returns false, for use in check chains.
bool fail(ScenarioResult& result, const std::string& message) {
  result.violations.push_back(message);
  if (result.failure.empty()) result.failure = message;
  return false;
}

/// Invariant 1, counter: replies 1..N each exactly once, in order, then
/// "client-done". Pipeline: the sink's `seen` sequence is exactly 1..N.
bool check_no_loss_no_dup(const ScenarioSpec& spec,
                          const std::vector<std::string>& output,
                          ScenarioResult& result) {
  const std::size_t n = static_cast<std::size_t>(spec.work_items);
  if (spec.app == SampleApp::kCounter) {
    if (output.size() != n + 1) {
      return fail(result, "invariant 1: expected " + std::to_string(n + 1) +
                              " client lines, got " +
                              std::to_string(output.size()));
    }
    for (std::size_t i = 1; i <= n; ++i) {
      const std::string prefix = "reply " + std::to_string(i) + " ";
      if (output[i - 1].rfind(prefix, 0) != 0) {
        return fail(result, "invariant 1: line " + std::to_string(i - 1) +
                                " is '" + output[i - 1] + "', expected '" +
                                prefix + "...'");
      }
    }
    if (output[n] != "client-done") {
      return fail(result, "invariant 1: missing client-done line");
    }
    return true;
  }
  if (spec.app == SampleApp::kPipeline) {
    if (output.size() != n) {
      return fail(result, "invariant 1: expected " + std::to_string(n) +
                              " sink lines, got " +
                              std::to_string(output.size()));
    }
    for (std::size_t i = 1; i <= n; ++i) {
      // sink prints "item <2*i> <seen>": `seen` must count 1..N with no
      // gap (lost item) and no repeat (double-applied item).
      const std::string expect = "item " + std::to_string(2 * i) + " " +
                                 std::to_string(i);
      if (output[i - 1] != expect) {
        return fail(result, "invariant 1: line " + std::to_string(i - 1) +
                                " is '" + output[i - 1] + "', expected '" +
                                expect + "'");
      }
    }
    return true;
  }
  return true;  // monitor: sensor is random; liveness checked elsewhere
}

/// Invariant 2: every delivered state buffer is byte-identical to the most
/// recently divulged one (retries re-deliver the same capture).
bool check_state_fidelity(const PassResult& pass, ScenarioResult& result) {
  if (!pass.delivered.empty() && pass.divulged.empty()) {
    return fail(result, "invariant 2: state delivered but never divulged");
  }
  for (const auto& bytes : pass.delivered) {
    if (bytes != pass.divulged.back()) {
      return fail(result,
                  "invariant 2: delivered state (" +
                      std::to_string(bytes.size()) +
                      " bytes) differs from divulged state (" +
                      std::to_string(pass.divulged.back().size()) + " bytes)");
    }
  }
  if (pass.replaced && pass.divulged.empty()) {
    return fail(result, "invariant 2: replacement completed without a "
                        "divulged state capture");
  }
  return true;
}

/// Invariant 3: no rebind of the replacement fires before the old module
/// reached quiescence (divulged its state).
bool check_rebind_after_quiescence(const PassResult& pass,
                                   ScenarioResult& result) {
  if (!pass.replaced) return true;
  net::SimTime divulged_at = 0;
  bool saw_divulge = false;
  for (const auto& ev : pass.trace) {
    if (ev.kind == bus::TraceEvent::Kind::kStateDivulged) {
      divulged_at = ev.at;
      saw_divulge = true;
      break;
    }
  }
  if (!saw_divulge) {
    return fail(result, "invariant 3: no state-divulged trace event");
  }
  for (const auto& ev : pass.trace) {
    if (ev.kind != bus::TraceEvent::Kind::kRebind) continue;
    if (ev.at < pass.replace_started_at) continue;  // application load
    if (ev.at < divulged_at) {
      return fail(result, "invariant 3: rebind at t=" +
                              std::to_string(ev.at) +
                              "us before quiescence at t=" +
                              std::to_string(divulged_at) + "us");
    }
    break;  // only the first post-launch rebind switches the bindings
  }
  return true;
}

/// Invariant 6: the final configuration is consistent. Exactly one
/// instance of the replaced logical module (any @generation) remains
/// registered -- a crash that leaves the old instance AND a half-installed
/// clone behind, or neither, has wedged the application.
bool check_consistent_configuration(const ScenarioSpec& spec,
                                    const PassResult& pass,
                                    ScenarioResult& result) {
  const std::string target = roles_for(spec.app).target;
  std::vector<std::string> generations;
  for (const std::string& name : pass.final_modules) {
    std::string stem = name.substr(0, name.rfind('@'));  // npos keeps all
    if (stem == target) generations.push_back(name);
  }
  if (generations.size() != 1) {
    std::string listing;
    for (const auto& g : generations) listing += " " + g;
    return fail(result, "invariant 6: expected exactly one '" + target +
                            "' instance after the run, found " +
                            std::to_string(generations.size()) + ":" +
                            listing);
  }
  return true;
}

/// Invariant 5: the online happens-before checker saw a nonempty causal
/// event stream and flagged nothing.
bool check_happens_before(const PassResult& pass, const char* which,
                          ScenarioResult& result) {
  if (pass.hb_events == 0) {
    return fail(result, std::string("invariant 5: ") + which +
                            " pass recorded no causal events (tracing "
                            "was not running)");
  }
  if (!pass.hb_violations.empty()) {
    std::string msg = std::string("invariant 5: ") + which + " pass: " +
                      pass.hb_violations.front();
    if (pass.hb_violations.size() > 1) {
      msg += " (+" + std::to_string(pass.hb_violations.size() - 1) +
             " more violations)";
    }
    return fail(result, msg);
  }
  return true;
}

}  // namespace

ScenarioResult run_scenario_with(const ScenarioSpec& spec, FaultSource& source,
                                 const std::vector<std::string>* golden) {
  ScenarioResult result;
  result.old_instance = roles_for(spec.app).target;

  // Chaos pass first (it is the one under test); golden pass only for the
  // apps with deterministic output.
  PassResult chaos = run_pass(spec, &source);
  result.replaced = chaos.replaced;
  result.recovered_forward = chaos.recovered_forward;
  result.abort_reason = chaos.abort_reason;
  result.new_instance = chaos.new_instance;
  result.attempts = chaos.attempts;
  result.output = chaos.output;
  result.rstats = chaos.rstats;
  result.fstats = source.stats();
  result.hb_events = chaos.hb_events;

  // Fatal harness failures: the pass never produced a checkable run, so
  // the invariant checks below would only report noise about its wreckage.
  if (!chaos.vm_fault.empty()) {
    fail(result, "chaos pass: " + chaos.vm_fault);
    return result;
  }
  if (!chaos.app_done) {
    fail(result, result.replaced
                     ? "application did not finish after replacement"
                     : "application did not keep serving after abort ('" +
                           chaos.abort_reason + "')");
    return result;
  }
  if (!chaos.drain_failure.empty()) {
    fail(result, "bookkeeping leak: " + chaos.drain_failure);
    return result;
  }

  // Every invariant is checked even after one fails: a schedule is
  // described by the full set of invariants it violates, so the sweep,
  // the systematic explorer, and plan_check report comparable verdicts.
  check_no_loss_no_dup(spec, chaos.output, result);
  check_state_fidelity(chaos, result);
  check_rebind_after_quiescence(chaos, result);
  check_happens_before(chaos, "chaos", result);
  check_consistent_configuration(spec, chaos, result);

  if (spec.app != SampleApp::kMonitor) {
    if (golden != nullptr) {
      result.golden = *golden;
    } else {
      PassResult reference = run_pass(spec, nullptr);
      result.golden = reference.output;
      if (!reference.vm_fault.empty() || !reference.app_done ||
          !reference.replaced) {
        fail(result, "golden pass failed: " +
                         (reference.vm_fault.empty() ? reference.abort_reason
                                                     : reference.vm_fault));
        return result;
      }
      check_happens_before(reference, "golden", result);
    }
    if (chaos.output != result.golden) {
      fail(result, "invariant 4: output (" +
                       std::to_string(chaos.output.size()) +
                       " lines) differs from fault-free golden run (" +
                       std::to_string(result.golden.size()) + " lines)");
    }
  }
  return result;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  FaultInjector injector(spec.seed);
  injector.set_default(spec.faults);
  for (const auto& p : spec.partitions) injector.add_partition(p);
  return run_scenario_with(spec, injector);
}

std::vector<std::string> golden_output(const ScenarioSpec& spec) {
  PassResult golden = run_pass(spec, nullptr);
  if (!golden.vm_fault.empty() || !golden.app_done || !golden.replaced) {
    throw support::Error(
        "golden pass failed for '" + spec.describe() + "': " +
        (golden.vm_fault.empty()
             ? (golden.abort_reason.empty() ? "application did not finish"
                                            : golden.abort_reason)
             : golden.vm_fault));
  }
  return golden.output;
}

std::vector<int> violated_invariants(const ScenarioResult& r) {
  std::vector<int> ids;
  for (const std::string& v : r.violations) {
    int id = 0;  // fatal harness failure
    if (v.rfind("invariant ", 0) == 0 && v.size() > 10) {
      id = v[10] - '0';
      if (id < 1 || id > 6) id = 0;
    }
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

ScenarioSpec random_scenario(std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  std::uint64_t pick = rng.next_below(10);
  spec.app = pick < 5   ? SampleApp::kCounter
             : pick < 8 ? SampleApp::kPipeline
                        : SampleApp::kMonitor;
  spec.work_items = 6 + static_cast<int>(rng.next_below(10));
  spec.faults.drop = rng.next_double() * 0.12;
  spec.faults.duplicate = rng.next_double() * 0.10;
  spec.faults.delay = rng.next_double() * 0.20;
  spec.faults.jitter_us = 500 + rng.next_below(4'500);
  if (rng.next_below(10) < 3) {
    // A vax--sparc partition that always heals well inside the divulge and
    // restore timeouts, so partitions delay replacements without forcing
    // aborts (the deliberate-abort path has its own directed test).
    net::SimTime from = 1'000'000 + rng.next_below(3'000'000);
    spec.partitions.push_back(
        Partition{"vax", "sparc", from, from + 300'000 + rng.next_below(1'200'000)});
  }
  spec.crash_clone = rng.next_below(10) < 2;
  if (rng.next_below(10) < 2) {
    // Coordinator-crash scenario: pick one of the eight boundaries. The
    // clone-crash trigger is disabled for these -- recovery's roll-forward
    // is single-shot (no retry chain), so a clone killed on state delivery
    // mid-recovery is a different scenario, covered by directed tests.
    spec.crash_coordinator_at_step = static_cast<int>(
        rng.next_below(recover::kCrashBoundaries.size()));
    spec.crash_clone = false;
  }
  spec.replace_after_outputs = 1 + static_cast<int>(rng.next_below(4));
  spec.target_machine = rng.next_below(2) == 0 ? "" : "sparc";
  spec.max_attempts = 4 + static_cast<int>(rng.next_below(3));
  return spec;
}

}  // namespace surgeon::chaos
