#include "chaos/fault.hpp"

namespace surgeon::chaos {

bool FaultInjector::partitioned(const std::string& src, const std::string& dst,
                                net::SimTime now) const {
  for (const auto& p : partitions_) {
    if (now < p.from_us || now >= p.until_us) continue;
    if (p.b.empty()) {
      // Isolation: exactly one endpoint is the isolated machine.
      if ((src == p.a) != (dst == p.a)) return true;
    } else if ((src == p.a && dst == p.b) || (src == p.b && dst == p.a)) {
      return true;
    }
  }
  return false;
}

const LinkFaults& FaultInjector::link_faults(const std::string& src,
                                             const std::string& dst) const {
  if (links_.empty()) return default_;  // only default faults configured
  if (cached_faults_ != nullptr && src == cache_src_ && dst == cache_dst_) {
    return *cached_faults_;
  }
  auto it = links_.find({src, dst});
  const LinkFaults& faults = it == links_.end() ? default_ : it->second;
  // Node / member addresses are stable until set_link/set_default, which
  // reset cached_faults_.
  cache_src_ = src;
  cache_dst_ = dst;
  cached_faults_ = &faults;
  return faults;
}

bus::FaultDecision FaultInjector::decide(const std::string& src,
                                         const std::string& dst) {
  ++stats_.decisions;
  if (partitioned(src, dst, sim_ != nullptr ? sim_->now() : 0)) {
    ++stats_.partition_drops;
    return bus::FaultDecision{.drop = true};
  }
  const LinkFaults& f = link_faults(src, dst);
  bus::FaultDecision d;
  if (f.drop > 0.0 && rng_.next_double() < f.drop) {
    ++stats_.drops;
    d.drop = true;
    return d;
  }
  if (f.duplicate > 0.0 && rng_.next_double() < f.duplicate) {
    ++stats_.duplicates;
    d.duplicate = true;
    if (f.jitter_us > 0) {
      d.duplicate_delay_us = 1 + rng_.next_below(f.jitter_us);
    }
  }
  if (f.delay > 0.0 && rng_.next_double() < f.delay) {
    ++stats_.delays;
    if (f.jitter_us > 0) {
      d.extra_delay_us = 1 + rng_.next_below(f.jitter_us);
    }
  }
  return d;
}

}  // namespace surgeon::chaos
