// Systematic (exhaustive, bounded) exploration of fault schedules.
//
// Random chaos seeds *sample* the space of fault schedules; for small
// scenarios the space is small enough to cover outright. A schedule here is
// a deterministic choice of
//
//   crash point       -- coordinator killed at one Figure 5 step boundary
//                        (or none),
//   message drops     -- a SET of wire points (net::WirePoint: the k-th
//                        copy on a directed link) eaten by the network,
//   partition window  -- one of a caller-given list of machine partitions
//                        (or none),
//   machine kill      -- for SampleApp::kKv, one of a caller-given list of
//                        (ring machine, virtual time) kill points (or
//                        none): the whole host dies and the GroupManager
//                        must rebuild its replica groups, so the drop sets
//                        compose with every rebuild schedule.
//
// Exploration is DPOR-flavored: wire events on distinct links -- and
// distinct copies on one link -- are independent (they commute; see
// net::LinkKey), so schedules that differ only by the ORDER faults are
// injected are the same execution. The explorer therefore enumerates
// unordered drop *sets* in the canonical (link, index) order, never the
// d! orderings of each set, and it discovers the enabled wire points
// DYNAMICALLY: a child schedule `S + {p}` is generated only if point p was
// actually observed on the wire while running S (dropping a copy spawns
// its retransmissions, which become new droppable points -- persistent-set
// style extension rather than a static universe).
//
// Every explored schedule runs the full scenario harness: all six chaos
// invariants plus the happens-before checker, with the fault-free golden
// output computed once and shared.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/scenario.hpp"
#include "net/sim.hpp"

namespace surgeon::chaos {

/// A machine-level kill point for kv explorations: ring machine
/// m<machine> dies at `at_us` virtual time.
struct MachineKillPoint {
  int machine = 0;
  net::SimTime at_us = 0;
};

/// One point in the systematic space. Value-identity is the schedule: two
/// equal FaultSchedules replay the same execution bit-for-bit.
struct FaultSchedule {
  /// Index into recover::kCrashBoundaries; -1 = coordinator survives.
  int crash_boundary = -1;
  /// Index into SystematicOptions::partition_windows; -1 = no partition.
  int partition_window = -1;
  /// Machine kill (kv scenarios): ring machine index and virtual time;
  /// kill_machine -1 = every machine survives. Held by value, not as an
  /// index, so a failing schedule's describe() names the dead machine.
  int kill_machine = -1;
  net::SimTime kill_at_us = 0;
  /// Dropped wire copies, kept in canonical (link, index) order.
  std::vector<net::WirePoint> drops;

  [[nodiscard]] std::string describe() const;
};

/// Deterministic fault source replaying one FaultSchedule: drops exactly
/// the scheduled wire points (and everything crossing an active partition
/// window), delivers everything else cleanly, and records the per-link
/// copy counts that define the child schedules' candidate points.
class ScheduleInjector : public FaultSource {
 public:
  ScheduleInjector(const FaultSchedule& schedule,
                   const std::vector<Partition>& partition_windows);

  void attach(bus::Bus& bus) override;
  [[nodiscard]] const FaultStats& stats() const noexcept override {
    return stats_;
  }

  /// Copies observed per directed link (loopback links excluded: with
  /// reliable delivery their drops are already covered by the random
  /// sweeps, and the systematic mode targets the cross-machine replacement
  /// traffic). This is the enabled-point universe for child schedules.
  [[nodiscard]] const std::map<net::LinkKey, std::uint32_t>& copies()
      const noexcept {
    return copies_;
  }
  /// How many scheduled drop points actually fired; a schedule whose drops
  /// did not all fire is degenerate (equivalent to a smaller, already
  /// explored set).
  [[nodiscard]] std::size_t drops_fired() const noexcept {
    return drops_fired_;
  }

 private:
  [[nodiscard]] bus::FaultDecision decide(const std::string& src,
                                          const std::string& dst);

  FaultSchedule schedule_;
  const Partition* window_ = nullptr;  // active partition, if any
  net::Simulator* sim_ = nullptr;
  std::map<net::LinkKey, std::uint32_t> copies_;
  std::size_t drops_fired_ = 0;
  FaultStats stats_;
};

struct SystematicOptions {
  /// The scenario under exploration: one replacement of the app's target
  /// module under a paced workload, same as the random harness.
  SampleApp app = SampleApp::kCounter;
  int work_items = 4;
  int replace_after_outputs = 2;
  /// Machine the replacement targets; "" replaces in place. "sparc" makes
  /// the replacement itself cross the vax->sparc wire (state delivery,
  /// clone control), which is the richest small scenario to explore.
  std::string target_machine;
  /// Bound on dropped wire copies per schedule (the DPOR depth bound).
  int max_drops = 1;
  /// Enumerate a coordinator kill at each of the eight Figure 5 step
  /// boundaries alongside the no-crash schedules.
  bool explore_crash_boundaries = true;
  /// Partition windows to enumerate (each as its own schedule dimension);
  /// windows must heal inside the script's divulge/restore timeouts or the
  /// abort path dominates the exploration.
  std::vector<Partition> partition_windows;
  /// Machine kills to enumerate (SampleApp::kKv only, each its own
  /// schedule dimension alongside the no-kill schedules). Set
  /// explore_crash_boundaries = false with these: kv scenarios have no
  /// replacement coordinator, so the crash dimension only multiplies
  /// identical executions.
  std::vector<MachineKillPoint> machine_kill_points;
  /// kv topology (SampleApp::kKv only), forwarded to the ScenarioSpec.
  int kv_shards = 2;
  int kv_group_size = 2;
  int kv_machines = 3;
  int kv_spares = 1;
  /// Keep per-schedule outcomes in SystematicResult::outcomes (coverage
  /// assertions in tests); off for big sweeps.
  bool record_outcomes = false;
  /// Safety valve for the nightly sweep; hitting it is reported, never
  /// silent (SystematicResult::truncated).
  std::uint64_t max_schedules = 250'000;
  bus::DeliveryOptions delivery = {.reliable = true};
  net::SimTime divulge_timeout_us = 5'000'000;
  net::SimTime restore_timeout_us = 5'000'000;
  int max_attempts = 5;

  /// The equivalent ScenarioSpec (seed fixed: the schedule, not the seed,
  /// is the identity) for one schedule of this exploration.
  [[nodiscard]] ScenarioSpec scenario_spec(const FaultSchedule& s) const;
};

/// Outcome of one explored schedule (recorded when record_outcomes is on,
/// and always for violating schedules).
struct ScheduleOutcome {
  FaultSchedule schedule;
  bool replaced = false;
  bool recovered_forward = false;
  std::string abort_reason;
  std::vector<std::string> violations;  // ALL violated invariants

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

struct SystematicResult {
  /// Distinct schedules executed (each one full scenario run).
  std::uint64_t schedules_explored = 0;
  /// Orderings never run because they are reorderings of independent
  /// events already covered: sum over explored schedules of (d! - 1) for d
  /// scheduled drops. The pinned regression currency for the pruner.
  std::uint64_t schedules_pruned = 0;
  /// Candidate extensions rejected because the parent run never put the
  /// point on the wire (dynamic enabled-set pruning).
  std::uint64_t points_disabled = 0;
  /// Degenerate schedules: executed, but some scheduled drop never fired.
  std::uint64_t schedules_degenerate = 0;
  /// Distinct wire points that appeared in any explored run.
  std::uint64_t wire_points_discovered = 0;
  bool truncated = false;  // max_schedules hit
  std::vector<ScheduleOutcome> failures;  // every violating schedule
  std::vector<ScheduleOutcome> outcomes;  // all, when record_outcomes
  /// Crash boundaries (indices into recover::kCrashBoundaries) that were
  /// enumerated -- coverage proof for the promoted recover_test scenarios.
  std::vector<int> crash_boundaries_covered;
  /// Machine-kill points (indices into machine_kill_points) that were
  /// enumerated -- coverage proof for the kv rebuild schedules.
  std::vector<int> machine_kills_covered;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Exhaustively explores the bounded schedule space of `options`.
[[nodiscard]] SystematicResult explore(const SystematicOptions& options);

}  // namespace surgeon::chaos
