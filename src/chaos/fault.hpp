// Deterministic fault injection for the simulated network.
//
// A FaultInjector sits behind the bus's fault hook and decides, per message
// copy put on the wire, whether it is dropped, duplicated, or delayed
// (delaying one copy past the next is how reordering happens). Decisions
// come from a seeded support::SplitMix64 stream, so an entire fault
// schedule -- every drop, every duplicate, every partition crossing -- is
// replayable from a single integer seed.
//
// Faults apply to LINKS between machines (including a machine's loopback
// link: two modules on one host still cross the local IPC boundary), not to
// modules; machine partitions make a pair of hosts mutually unreachable
// for a window of virtual time.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bus/bus.hpp"
#include "net/sim.hpp"
#include "support/rng.hpp"

namespace surgeon::chaos {

/// Per-link fault probabilities. All default to a perfect link.
struct LinkFaults {
  double drop = 0.0;       // P(copy is dropped)
  double duplicate = 0.0;  // P(copy is delivered twice)
  double delay = 0.0;      // P(copy is held back -- reordering)
  /// Maximum extra latency (virtual us) for a delayed or duplicated copy.
  net::SimTime jitter_us = 0;

  [[nodiscard]] bool perfect() const noexcept {
    return drop <= 0.0 && duplicate <= 0.0 && delay <= 0.0;
  }
};

inline constexpr net::SimTime kNeverHeals =
    std::numeric_limits<net::SimTime>::max();

/// A machine partition: while virtual time is in [from_us, until_us) no
/// copy crosses between `a` and `b`. An empty `b` isolates `a` from every
/// other machine.
struct Partition {
  std::string a;
  std::string b;
  net::SimTime from_us = 0;
  net::SimTime until_us = kNeverHeals;
};

/// Counters describing what the injector actually did to a run.
struct FaultStats {
  std::uint64_t decisions = 0;
  std::uint64_t drops = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t delays = 0;
};

/// Anything that can sit behind the bus's fault hook for a chaos pass: the
/// seeded random FaultInjector below, or the deterministic ScheduleInjector
/// the systematic explorer drives (chaos/systematic.hpp). The scenario
/// harness only needs attach + the post-run stats.
class FaultSource {
 public:
  virtual ~FaultSource() = default;
  /// Installs this source as the bus's fault hook. The source must outlive
  /// the hook (keep it alongside the Runtime).
  virtual void attach(bus::Bus& bus) = 0;
  [[nodiscard]] virtual const FaultStats& stats() const noexcept = 0;
};

class FaultInjector : public FaultSource {
 public:
  explicit FaultInjector(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Faults applied to every link without a specific override.
  void set_default(LinkFaults faults) {
    default_ = faults;
    cached_faults_ = nullptr;
  }
  /// Directed per-link override (src machine -> dst machine).
  void set_link(const std::string& src, const std::string& dst,
                LinkFaults faults) {
    links_[{src, dst}] = faults;
    cached_faults_ = nullptr;
  }
  void add_partition(Partition partition) {
    partitions_.push_back(std::move(partition));
  }
  /// Cuts `machine` off from every other machine for the window.
  void isolate(const std::string& machine, net::SimTime from_us,
               net::SimTime until_us = kNeverHeals) {
    partitions_.push_back(Partition{machine, "", from_us, until_us});
  }

  /// Installs this injector as the bus's fault hook and adopts the bus's
  /// virtual clock for partition windows. The injector must outlive the bus
  /// hook (keep it alongside the Runtime).
  void attach(bus::Bus& bus) override {
    sim_ = &bus.simulator();
    bus.set_fault_hook([this](const std::string& src, const std::string& dst) {
      return decide(src, dst);
    });
  }

  /// One per-copy decision; advances the seeded stream.
  [[nodiscard]] bus::FaultDecision decide(const std::string& src,
                                          const std::string& dst);

  [[nodiscard]] const FaultStats& stats() const noexcept override {
    return stats_;
  }

 private:
  [[nodiscard]] bool partitioned(const std::string& src,
                                 const std::string& dst,
                                 net::SimTime now) const;
  [[nodiscard]] const LinkFaults& link_faults(const std::string& src,
                                              const std::string& dst) const;

  std::uint64_t seed_;
  support::SplitMix64 rng_;
  net::Simulator* sim_ = nullptr;
  LinkFaults default_;
  std::map<std::pair<std::string, std::string>, LinkFaults> links_;
  std::vector<Partition> partitions_;
  FaultStats stats_;
  // One-entry resolution memo: bursts hammer one link, and the map lookup
  // above builds a pair<string,string> key (two allocations) per decision.
  // Validated by VALUE, not pointer identity — control-plane machine names
  // live in transient ControlTx records whose storage can be reused, and a
  // pointer-keyed memo would make fault schedules depend on the allocator.
  // Invalidated by set_default/set_link.
  mutable std::string cache_src_;
  mutable std::string cache_dst_;
  mutable const LinkFaults* cached_faults_ = nullptr;
};

}  // namespace surgeon::chaos
