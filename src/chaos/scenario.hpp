// Randomized reconfiguration-under-faults scenarios.
//
// A scenario builds one of the sample applications (counter, pipeline,
// monitor), turns on reliable delivery, attaches a seeded FaultInjector,
// replaces the app's reconfigurable module mid-run -- optionally crashing
// the clone on its first state delivery -- and then checks the five
// invariants of the chaos harness:
//
//   1. no client request lost or double-applied,
//   2. captured state equals restored state byte-for-byte,
//   3. the rebind never fires before the old module reached quiescence
//      (divulged its state),
//   4. the application's final output matches the fault-free golden run
//      (counter and pipeline; the monitor's sensor is random, so it is
//      checked for liveness instead of output equality),
//   5. the causal event stream satisfies the happens-before protocol
//      invariants (trace::HbChecker, run online over the flight recorder),
//   6. the final configuration is consistent: exactly one instance of the
//      replaced logical module remains -- never the half-rebound old+clone
//      pair a mid-script coordinator crash would otherwise leave behind.
//
// SampleApp::kKv scenarios swap the module replacement for a machine loss:
// the sharded KV service (replica groups + GroupManager self-healing) runs
// under link faults while one -- sometimes two -- ring machines are killed
// mid-workload. Invariants 4, 5, and 6 keep their meaning (output equals
// the kill-free golden run, happens-before holds, every group ends at full
// strength on distinct live machines) and invariant 7 is checked instead
// of 1-3:
//
//   7. no acknowledged write is lost and no committed write resurfaces
//      stale across the kill + rebuild (client ledger, router stale-read
//      counter, and zero groups left without a survivor to pull from).
//
// Every scenario is a pure function of its ScenarioSpec -- in particular
// of `seed` -- so a failing run is replayed by constructing the same spec.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bus/bus.hpp"
#include "chaos/fault.hpp"

namespace surgeon::app {
class Runtime;
}

namespace surgeon::chaos {

enum class SampleApp : std::uint8_t { kCounter, kPipeline, kMonitor, kKv };

[[nodiscard]] const char* sample_app_name(SampleApp app) noexcept;

struct ScenarioSpec {
  std::uint64_t seed = 1;
  SampleApp app = SampleApp::kCounter;
  /// Client requests / pipeline items (the monitor runs on virtual time).
  int work_items = 12;
  /// Faults applied to every link, both directions.
  LinkFaults faults;
  std::vector<Partition> partitions;
  /// Kill the clone when its first state buffer lands, forcing the script
  /// onto its retry path (a second clone restores from the same buffer).
  bool crash_clone = false;
  /// Kill the *coordinator* at this Figure 5 step boundary (an index into
  /// recover::kCrashBoundaries: the seven steps plus the commit record);
  /// -1 = never. The pass then runs recover::recover_coordinator, exactly
  /// as a restarted coordinator scanning the WAL would, and the invariants
  /// verify the application converged (roll-forward or roll-back).
  int crash_coordinator_at_step = -1;
  /// Observed output lines before the replacement is launched.
  int replace_after_outputs = 3;
  /// Machine for the replacement; empty replaces in place.
  std::string target_machine;
  int max_attempts = 5;
  net::SimTime divulge_timeout_us = 5'000'000;
  net::SimTime restore_timeout_us = 5'000'000;
  bus::DeliveryOptions delivery = {.reliable = true};
  /// --- SampleApp::kKv only (ignored by the other apps) ----------------
  /// Shard replica groups, members per group, ring machines m0..m{n-1},
  /// and spare machines sp0..sp{n-1} the GroupManager may rebuild onto.
  int kv_shards = 3;
  int kv_group_size = 2;
  int kv_machines = 3;
  int kv_spares = 2;
  /// Kill ring machine m<kv_kill_machine> at kv_kill_at_us virtual time;
  /// -1 = no kill (the chaos pass degenerates to faults-only).
  int kv_kill_machine = -1;
  net::SimTime kv_kill_at_us = 0;
  /// Optional second kill while the first rebuild is likely in flight.
  /// Only sensible when kv_group_size >= 3: a 2-group that loses two
  /// machines can lose both members of one group, which is real data loss,
  /// not a harness bug.
  int kv_second_kill_machine = -1;
  net::SimTime kv_second_kill_at_us = 0;
  /// Called at the end of the chaos pass with the runtime still alive, so
  /// a sweep driver can dump the flight recorder for a failing seed. Not
  /// part of the scenario identity: it observes, never steers.
  std::function<void(app::Runtime&)> chaos_pass_observer;

  /// One-line human description, seed first, for failure messages.
  [[nodiscard]] std::string describe() const;
};

struct ScenarioResult {
  /// Replacement completed; false = the script aborted cleanly (the
  /// application kept serving on the old instance, which is verified).
  /// For kv scenarios: at least one machine's groups were fully rebuilt.
  bool replaced = false;
  /// A coordinator crash was injected and recovery rolled the transaction
  /// forward (true) or back (false, with `replaced` false as well).
  bool recovered_forward = false;
  std::string abort_reason;  // ScriptError text when !replaced
  /// First violated invariant, or empty when the scenario passed. Always
  /// equal to violations.front() (or empty); kept so existing callers and
  /// failure messages stay stable.
  std::string failure;
  /// EVERY violated invariant, one message each, in check order -- a run
  /// that loses a request usually also diverges from the golden output,
  /// and the checker/explorer diagnostics are only comparable when both
  /// are reported. Fatal harness failures (VM fault, wedged application,
  /// bookkeeping leak) stop the pass and appear alone.
  std::vector<std::string> violations;
  std::string old_instance;
  std::string new_instance;
  int attempts = 0;
  std::vector<std::string> output;  // chaos run's observed output
  std::vector<std::string> golden;  // fault-free reference output
  bus::ReliableStats rstats;
  FaultStats fstats;
  /// Causal events the happens-before checker observed in the chaos pass
  /// (nonzero proves invariant 5 was actually exercised, not skipped).
  std::uint64_t hb_events = 0;

  [[nodiscard]] bool ok() const noexcept { return failure.empty(); }
};

/// Runs the golden pass and the chaos pass and checks every invariant.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Same, but with a caller-supplied fault source (the systematic explorer's
/// deterministic schedules) instead of the spec-seeded random injector, and
/// optionally a precomputed golden output: when `golden` is non-null the
/// fault-free reference pass is skipped and invariant 4 compares against
/// *golden -- the explorer runs thousands of schedules of one spec and
/// needs the reference only once.
[[nodiscard]] ScenarioResult run_scenario_with(
    const ScenarioSpec& spec, FaultSource& source,
    const std::vector<std::string>* golden = nullptr);

/// The fault-free reference output for a spec (the golden pass, alone).
/// Throws support::Error if the fault-free run itself cannot complete --
/// the spec is broken, not the schedule under test.
[[nodiscard]] std::vector<std::string> golden_output(const ScenarioSpec& spec);

/// Invariant ids named by a result's violations, sorted and deduplicated:
/// "invariant N: ..." messages yield N; fatal harness failures (VM fault,
/// wedged application, bookkeeping leak) yield 0. The comparable currency
/// between the random sweeps, the systematic explorer, and plan_check.
[[nodiscard]] std::vector<int> violated_invariants(const ScenarioResult& r);

/// Derives a full scenario (app, workload, fault mix, partition, crash)
/// from a single seed; the sweeps enumerate seeds through this.
[[nodiscard]] ScenarioSpec random_scenario(std::uint64_t seed);

/// Derives a kv (replica-group) scenario from a seed: mild link faults, a
/// machine kill mid-workload, and -- at some 3-group seeds -- a second
/// kill while the first rebuild is in flight. The KvSweep and the
/// chaos_sweep --kv mode enumerate seeds through this.
[[nodiscard]] ScenarioSpec random_kv_scenario(std::uint64_t seed);

}  // namespace surgeon::chaos
