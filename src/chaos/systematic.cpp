#include "chaos/systematic.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

#include "recover/recovery.hpp"

namespace surgeon::chaos {

std::string FaultSchedule::describe() const {
  std::ostringstream os;
  os << "crash=";
  if (crash_boundary < 0) {
    os << "none";
  } else {
    os << recover::kCrashBoundaries[static_cast<std::size_t>(crash_boundary) %
                                    recover::kCrashBoundaries.size()];
  }
  os << " partition=";
  if (partition_window < 0) {
    os << "none";
  } else {
    os << "w" << partition_window;
  }
  os << " kill=";
  if (kill_machine < 0) {
    os << "none";
  } else {
    os << "m" << kill_machine << "@" << kill_at_us << "us";
  }
  os << " drops=[";
  for (std::size_t i = 0; i < drops.size(); ++i) {
    if (i != 0) os << ",";
    os << drops[i].describe();
  }
  os << "]";
  return os.str();
}

ScheduleInjector::ScheduleInjector(const FaultSchedule& schedule,
                                   const std::vector<Partition>& windows)
    : schedule_(schedule) {
  if (schedule_.partition_window >= 0 &&
      static_cast<std::size_t>(schedule_.partition_window) < windows.size()) {
    window_ = &windows[static_cast<std::size_t>(schedule_.partition_window)];
  }
}

void ScheduleInjector::attach(bus::Bus& bus) {
  sim_ = &bus.simulator();
  bus.set_fault_hook([this](const std::string& src, const std::string& dst) {
    return decide(src, dst);
  });
}

bus::FaultDecision ScheduleInjector::decide(const std::string& src,
                                            const std::string& dst) {
  ++stats_.decisions;
  if (window_ != nullptr && sim_ != nullptr) {
    const net::SimTime now = sim_->now();
    if (now >= window_->from_us && now < window_->until_us) {
      const bool cut =
          window_->b.empty()
              ? (src == window_->a) != (dst == window_->a)
              : (src == window_->a && dst == window_->b) ||
                    (src == window_->b && dst == window_->a);
      if (cut) {
        ++stats_.partition_drops;
        return bus::FaultDecision{.drop = true};
      }
    }
  }
  if (src == dst) return {};  // loopback: outside the explored universe
  net::WirePoint point{net::LinkKey{src, dst}, 0};
  point.index = copies_[point.link]++;
  if (std::binary_search(schedule_.drops.begin(), schedule_.drops.end(),
                         point)) {
    ++drops_fired_;
    ++stats_.drops;
    return bus::FaultDecision{.drop = true};
  }
  return {};
}

ScenarioSpec SystematicOptions::scenario_spec(const FaultSchedule& s) const {
  ScenarioSpec spec;
  spec.seed = 1;  // fixed: the schedule, not a seed, is the identity
  spec.app = app;
  spec.work_items = work_items;
  spec.replace_after_outputs = replace_after_outputs;
  spec.crash_coordinator_at_step = s.crash_boundary;
  spec.crash_clone = false;  // recovery roll-forward is single-shot
  spec.target_machine = target_machine;
  spec.delivery = delivery;
  spec.divulge_timeout_us = divulge_timeout_us;
  spec.restore_timeout_us = restore_timeout_us;
  spec.max_attempts = max_attempts;
  spec.kv_shards = kv_shards;
  spec.kv_group_size = kv_group_size;
  spec.kv_machines = kv_machines;
  spec.kv_spares = kv_spares;
  spec.kv_kill_machine = s.kill_machine;
  spec.kv_kill_at_us = s.kill_at_us;
  return spec;
}

namespace {

std::uint64_t factorial(std::size_t n) {
  std::uint64_t f = 1;
  for (std::size_t i = 2; i <= n; ++i) f *= i;
  return f;
}

}  // namespace

SystematicResult explore(const SystematicOptions& options) {
  SystematicResult result;

  // The fault-free reference, once for the whole exploration: every
  // schedule of one exploration runs the identical application spec.
  const FaultSchedule clean;
  const std::vector<std::string> golden =
      golden_output(options.scenario_spec(clean));

  std::vector<int> crash_options{-1};
  if (options.explore_crash_boundaries) {
    for (int b = 0; b < static_cast<int>(recover::kCrashBoundaries.size());
         ++b) {
      crash_options.push_back(b);
    }
  }
  std::vector<int> partition_options{-1};
  for (int w = 0; w < static_cast<int>(options.partition_windows.size());
       ++w) {
    partition_options.push_back(w);
  }
  std::vector<int> kill_options{-1};
  for (int k = 0; k < static_cast<int>(options.machine_kill_points.size());
       ++k) {
    kill_options.push_back(k);
  }

  std::set<net::WirePoint> discovered;  // across every run, for accounting
  std::set<int> kills_covered;
  bool done = false;

  // Breadth-first over drop sets, smallest first, for one fixed
  // (crash, partition, machine-kill) combination: a set is only ever
  // generated from its largest proper prefix in canonical order, so each
  // unordered set runs exactly once (all d! orderings pruned).
  auto explore_combo = [&](int crash, int window, int kill) {
    std::deque<FaultSchedule> worklist;
    std::set<std::vector<net::WirePoint>> seen;
    FaultSchedule root;
    root.crash_boundary = crash;
    root.partition_window = window;
    if (kill >= 0) {
      const MachineKillPoint& point =
          options.machine_kill_points[static_cast<std::size_t>(kill)];
      root.kill_machine = point.machine;
      root.kill_at_us = point.at_us;
    }
    worklist.push_back(root);
    seen.insert(root.drops);
    while (!worklist.empty()) {
      if (result.schedules_explored >= options.max_schedules) {
        result.truncated = true;
        done = true;
        break;
      }
      FaultSchedule schedule = std::move(worklist.front());
      worklist.pop_front();

      ScheduleInjector injector(schedule, options.partition_windows);
      ScenarioResult run = run_scenario_with(
          options.scenario_spec(schedule), injector, &golden);
      ++result.schedules_explored;
      result.schedules_pruned += factorial(schedule.drops.size()) - 1;
      if (injector.drops_fired() < schedule.drops.size()) {
        ++result.schedules_degenerate;
      }

      const bool violating = !run.violations.empty();
      if (violating || options.record_outcomes) {
        ScheduleOutcome outcome;
        outcome.schedule = schedule;
        outcome.replaced = run.replaced;
        outcome.recovered_forward = run.recovered_forward;
        outcome.abort_reason = run.abort_reason;
        outcome.violations = run.violations;
        if (violating) result.failures.push_back(outcome);
        if (options.record_outcomes) {
          result.outcomes.push_back(std::move(outcome));
        }
      }

      // Extend with the wire points this run actually enabled, in
      // canonical order past the set's last element (combinations, not
      // permutations -- the independence relation makes them equal).
      if (static_cast<int>(schedule.drops.size()) >= options.max_drops) {
        continue;
      }
      for (const auto& [link, count] : injector.copies()) {
        for (std::uint32_t idx = 0; idx < count; ++idx) {
          discovered.insert(net::WirePoint{link, idx});
        }
      }
      const net::WirePoint* last =
          schedule.drops.empty() ? nullptr : &schedule.drops.back();
      for (const net::WirePoint& p : discovered) {
        if (last != nullptr && !(*last < p)) continue;
        const auto it = injector.copies().find(p.link);
        const std::uint32_t enabled =
            it == injector.copies().end() ? 0 : it->second;
        if (p.index >= enabled) {
          // Known from another run but never on the wire in this one:
          // dropping it here could not change anything.
          ++result.points_disabled;
          continue;
        }
        FaultSchedule child = schedule;
        child.drops.push_back(p);
        if (seen.insert(child.drops).second) {
          worklist.push_back(std::move(child));
        }
      }
    }
  };

  for (int crash : crash_options) {
    if (done) break;
    if (crash >= 0) result.crash_boundaries_covered.push_back(crash);
    for (int window : partition_options) {
      if (done) break;
      for (int kill : kill_options) {
        if (done) break;
        if (kill >= 0) kills_covered.insert(kill);
        explore_combo(crash, window, kill);
      }
    }
  }
  result.wire_points_discovered = discovered.size();
  result.machine_kills_covered.assign(kills_covered.begin(),
                                      kills_covered.end());
  return result;
}

}  // namespace surgeon::chaos
