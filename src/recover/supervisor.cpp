#include "recover/supervisor.hpp"

#include "obs/metrics.hpp"
#include "trace/recorder.hpp"

namespace surgeon::recover {

namespace {

/// Flags re-entrancy for the lifetime of a control operation: detector
/// sweeps and checkpoint ticks that fire while the supervisor is already
/// mid-operation (both pump the scheduler) skip their work.
struct ControlScope {
  explicit ControlScope(bool& flag) : flag_(flag) { flag_ = true; }
  ~ControlScope() { flag_ = false; }
  ControlScope(const ControlScope&) = delete;
  ControlScope& operator=(const ControlScope&) = delete;

 private:
  bool& flag_;
};

}  // namespace

Supervisor::Supervisor(app::Runtime& rt, net::DurableStore& store,
                       SupervisorOptions options)
    : rt_(&rt),
      store_(&store),
      options_(options),
      detector_(DetectorOptions{options.suspicion_timeout_us}) {}

std::string Supervisor::logical_name(const std::string& instance) {
  auto pos = instance.rfind('@');
  return pos == std::string::npos ? instance : instance.substr(0, pos);
}

void Supervisor::watch(const std::string& instance,
                       const std::string& spare_machine) {
  Watched w;
  w.logical = logical_name(instance);
  w.current = instance;
  w.spare = spare_machine;
  watched_[w.logical] = std::move(w);
}

std::string Supervisor::current_instance(const std::string& logical) const {
  auto it = watched_.find(logical);
  return it == watched_.end() ? std::string{} : it->second.current;
}

Supervisor::Watched* Supervisor::find(const std::string& name) {
  auto it = watched_.find(logical_name(name));
  return it == watched_.end() ? nullptr : &it->second;
}

void Supervisor::start() {
  if (running_) return;
  running_ = true;
  std::uint64_t epoch = ++epoch_;
  rt_->enable_heartbeats(
      options_.heartbeat_interval_us,
      [this](const std::string& module, net::SimTime at) {
        detector_.beat(module, at);
      });
  rt_->simulator().schedule_after(options_.sweep_interval_us,
                                  [this, epoch] { sweep(epoch); });
  if (options_.checkpoint_interval_us > 0) {
    rt_->simulator().schedule_after(options_.checkpoint_interval_us,
                                    [this, epoch] { checkpoint_tick(epoch); });
  }
}

void Supervisor::stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;
  rt_->disable_heartbeats();
}

void Supervisor::sweep(std::uint64_t epoch) {
  if (epoch != epoch_) return;
  if (!in_control_) {
    for (const std::string& suspect : detector_.suspects(rt_->now())) {
      if (rt_->module_crashed(suspect)) {
        ++suspects_seen_;
        if (rt_->metrics().enabled()) {
          rt_->metrics().counter("surgeon_recover_suspects_total").inc();
        }
        if (rt_->tracer().enabled() && rt_->bus().has_module(suspect)) {
          rt_->tracer().record(trace::EventKind::kSuspect,
                               rt_->bus().module_info(suspect).machine,
                               suspect, "heartbeat timeout");
        }
        if (find(suspect) != nullptr) {
          try {
            (void)restore_from_checkpoint(suspect);
          } catch (const reconfig::ScriptError&) {
            // No checkpoint yet (crashed before the first one was taken):
            // nothing to restore from. Stop tracking so the sweep does not
            // spin on the corpse; the registration stays for post-mortem.
            detector_.forget(suspect);
            if (rt_->metrics().enabled()) {
              rt_->metrics()
                  .counter("surgeon_recover_restore_failures_total")
                  .inc();
            }
          }
        } else {
          detector_.forget(suspect);  // not ours to restore
        }
      } else if (!rt_->module_running(suspect)) {
        // Finished normally, or replaced/removed: silence is expected.
        detector_.forget(suspect);
      }
    }
  }
  rt_->simulator().schedule_after(options_.sweep_interval_us,
                                  [this, epoch] { sweep(epoch); });
}

void Supervisor::checkpoint_tick(std::uint64_t epoch) {
  if (epoch != epoch_) return;
  if (!in_control_) {
    for (auto& [logical, w] : watched_) {
      if (rt_->module_running(w.current)) {
        try {
          (void)checkpoint_now(w.current);
        } catch (const reconfig::ScriptError&) {
          // A background checkpoint can lose the race with application
          // shutdown (the module never reaches another reconfiguration
          // point). The previously persisted checkpoint stays valid.
          if (rt_->metrics().enabled()) {
            rt_->metrics()
                .counter("surgeon_recover_checkpoint_failures_total")
                .inc();
          }
        }
      }
    }
  }
  rt_->simulator().schedule_after(options_.checkpoint_interval_us,
                                  [this, epoch] { checkpoint_tick(epoch); });
}

reconfig::ReplaceReport Supervisor::checkpoint_now(const std::string& name) {
  Watched* w = find(name);
  if (w == nullptr) {
    throw reconfig::ScriptError("checkpoint_now: '" + name +
                                "' is not watched");
  }
  ControlScope scope(in_control_);
  reconfig::ReplaceOptions opts;
  opts.max_rounds = options_.max_rounds;
  opts.drain_us = options_.drain_us;
  // The production capture path: the divulged buffer that installs the
  // in-place clone is, byte for byte, the checkpoint we persist.
  opts.state_sink = [this, w](const std::vector<std::uint8_t>& bytes) {
    store_->put(checkpoint_key(w->logical), bytes);
  };
  const std::string old_current = w->current;
  reconfig::ReplaceReport report =
      reconfig::replace_module(*rt_, old_current, opts);
  detector_.forget(old_current);
  w->current = report.new_instance;
  ++checkpoints_;
  if (rt_->metrics().enabled()) {
    rt_->metrics().counter("surgeon_recover_checkpoints_total").inc();
  }
  if (rt_->tracer().enabled()) {
    rt_->tracer().record(trace::EventKind::kCheckpoint,
                         rt_->bus().module_info(report.new_instance).machine,
                         report.new_instance,
                         std::to_string(report.state_bytes) + "B of '" +
                             w->logical + "' persisted");
  }
  return report;
}

std::string Supervisor::restore_from_checkpoint(const std::string& instance) {
  Watched* w = find(instance);
  if (w == nullptr) {
    throw reconfig::ScriptError("restore_from_checkpoint: '" + instance +
                                "' is not watched");
  }
  const net::DurableStore::Record* ckpt =
      store_->get(checkpoint_key(w->logical));
  if (ckpt == nullptr) {
    throw reconfig::ScriptError("restore_from_checkpoint: no checkpoint for '" +
                                w->logical + "'");
  }
  bus::Bus& bus = rt_->bus();
  const std::string crashed = w->current;  // copied: w->current changes below
  const app::ModuleImage* image = rt_->image_of(crashed);
  if (image == nullptr) {
    throw reconfig::ScriptError("restore_from_checkpoint: no image for '" +
                                crashed + "'");
  }
  ControlScope scope(in_control_);
  const bus::ModuleInfo info = bus.module_info(crashed);
  const std::string target = w->spare.empty() ? info.machine : w->spare;
  const std::string heir = rt_->fresh_instance_name(crashed);
  // Same shape as the replacement script's retry chain: the dead instance
  // becomes a binding/queue holder for the heir, which decodes the
  // persisted checkpoint instead of a freshly divulged buffer. The queue
  // capture hands the heir the predecessor's reliable streams, so senders'
  // retransmissions converge on it.
  bus.cancel_pending_control(crashed);
  rt_->install_module(heir, *image, target, "clone");
  bus.deliver_state(info.machine, heir, *ckpt);
  bus.rebind(reconfig::make_rebind_batch(bus, crashed, heir));
  rt_->start_module(heir);
  if (options_.drain_us > 0) {
    rt_->run_for(options_.drain_us, options_.max_rounds);
    (void)reconfig::sweep_queues(bus, crashed, heir);
  }
  rt_->remove_module(crashed);
  detector_.forget(crashed);
  w->current = heir;
  ++restores_;
  if (rt_->metrics().enabled()) {
    rt_->metrics().counter("surgeon_recover_restores_total").inc();
  }
  if (rt_->tracer().enabled()) {
    rt_->tracer().record(trace::EventKind::kRecover, target, heir,
                         "restored '" + w->logical +
                             "' from checkpoint on " + target);
  }
  return heir;
}

}  // namespace surgeon::recover
