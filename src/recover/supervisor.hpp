// The supervisor: heartbeat-driven failure recovery for module processes.
//
// One Supervisor runs alongside the coordinator. It wires the runtime's
// virtual-clock heartbeats into a FailureDetector, sweeps the detector
// periodically, and when a *watched* module stops beating because its
// process crashed, restores it from its last checkpoint -- on a designated
// spare machine if one was given (migration-on-failure), else in place.
//
// Checkpoints use the production capture path, not the §4 `baseline`
// comparator: a checkpoint IS a replacement-in-place (Figure 5 end to end)
// whose divulged state buffer is additionally persisted to the durable
// store. The module genuinely divulges at a reconfiguration point and a
// clone takes over, so a checkpoint proves restorability every time it is
// taken; the instance name advances (server -> server@2) exactly as any
// replacement does, and the supervisor tracks the current name per logical
// module.
//
// Scheduling caveat: the heartbeat tick and the sweep/checkpoint events
// reschedule themselves, so the simulator is never idle while a supervisor
// is running -- use predicate- or time-bounded runs (run_until/run_for),
// and stop() the supervisor before any run_until_idle().
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "recover/detector.hpp"
#include "recover/wal.hpp"

namespace surgeon::recover {

struct SupervisorOptions {
  /// Runtime heartbeat period.
  net::SimTime heartbeat_interval_us = 10'000;
  /// Silence after which a module is suspected (several heartbeats).
  net::SimTime suspicion_timeout_us = 50'000;
  /// How often the supervisor polls the detector.
  net::SimTime sweep_interval_us = 25'000;
  /// Period of background checkpoints of every watched module; 0 (default)
  /// takes checkpoints only on explicit checkpoint_now() calls.
  net::SimTime checkpoint_interval_us = 0;
  /// Scheduling budget for each wait inside checkpoint/restore.
  std::uint64_t max_rounds = 1'000'000;
  /// Drain window used by checkpoints and restores.
  net::SimTime drain_us = 10'000;
};

class Supervisor {
 public:
  /// `store` is the durable store holding checkpoints (normally the
  /// coordinator machine's).
  Supervisor(app::Runtime& rt, net::DurableStore& store,
             SupervisorOptions options = {});
  ~Supervisor() { stop(); }
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Watches a module: on crash it is restored from its last checkpoint on
  /// `spare_machine` ("" = restarted on its current machine). The name
  /// given may be any instance generation; tracking follows renames.
  void watch(const std::string& instance,
             const std::string& spare_machine = "");
  /// Starts heartbeats, the detector sweep, and (if configured) the
  /// periodic checkpoint tick.
  void start();
  /// Stops all of it; pending tick events become no-ops.
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Takes a checkpoint of a watched module now (accepts the logical name
  /// or any instance generation). Runs a full replacement-in-place; the
  /// watched instance name advances. Returns the replacement report.
  reconfig::ReplaceReport checkpoint_now(const std::string& name);
  /// Restores a crashed watched instance from its last checkpoint on its
  /// spare machine; returns the heir's instance name. Throws ScriptError
  /// when no checkpoint exists or the instance is not watched.
  std::string restore_from_checkpoint(const std::string& instance);

  /// Strips the @n generation suffix: "server@3" -> "server".
  [[nodiscard]] static std::string logical_name(const std::string& instance);

  /// Current instance generation of a watched logical module ("" unknown).
  [[nodiscard]] std::string current_instance(const std::string& logical) const;
  [[nodiscard]] bool has_checkpoint(const std::string& logical) const {
    return store_->get(checkpoint_key(logical)) != nullptr;
  }

  [[nodiscard]] FailureDetector& detector() noexcept { return detector_; }
  [[nodiscard]] std::uint64_t checkpoints_taken() const noexcept {
    return checkpoints_;
  }
  [[nodiscard]] std::uint64_t restores() const noexcept { return restores_; }
  [[nodiscard]] std::uint64_t suspects_seen() const noexcept {
    return suspects_seen_;
  }

 private:
  struct Watched {
    std::string logical;
    std::string current;
    std::string spare;
  };

  [[nodiscard]] static std::string checkpoint_key(const std::string& logical) {
    return "ckpt/" + logical;
  }
  [[nodiscard]] Watched* find(const std::string& name);
  void sweep(std::uint64_t epoch);
  void checkpoint_tick(std::uint64_t epoch);

  app::Runtime* rt_;
  net::DurableStore* store_;
  SupervisorOptions options_;
  FailureDetector detector_;
  std::map<std::string, Watched> watched_;  // keyed by logical name
  std::uint64_t epoch_ = 0;  // stale self-rescheduled events bail
  bool running_ = false;
  bool in_control_ = false;  // re-entrancy: checkpoint/restore pump the sim
  std::uint64_t checkpoints_ = 0;
  std::uint64_t restores_ = 0;
  std::uint64_t suspects_seen_ = 0;
};

}  // namespace surgeon::recover
