// Write-ahead log for Figure 5 replacement transactions.
//
// The coordinator journals every script boundary to the durable store of
// the machine it runs on *before* acting on it (reconfig::ScriptJournal).
// After a coordinator crash, a successor scans the log, finds the open
// transaction, and knows exactly how far the script got:
//
//   begin txn     old/new instance names, target machine
//   intent step   about to execute <step> (obj_cap .. del, commit)
//   divulged      the old module's abstract state buffer -- the
//                 roll-forward watershed: once this record is durable the
//                 replacement can always be completed from the log alone
//   committed     the script finished; the transaction is closed
//   aborted       the script rolled back pre-divulge (reason logged)
//
// Record wire format (append-only, one DurableStore record per entry):
//   u8 type | u64 txn | type-specific payload
// with strings as u32 length + bytes and the state buffer as u64 length +
// bytes. Everything little-endian, written byte by byte so the format is
// identical on every simulated architecture.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/durable.hpp"
#include "reconfig/scripts.hpp"

namespace surgeon::recover {

/// Parsing/validation failure while scanning a WAL.
class WalError : public support::Error {
 public:
  using Error::Error;
};

/// One replacement transaction reconstructed from the log.
struct WalTxn {
  std::uint64_t id = 0;
  std::string old_instance;
  std::string new_instance;
  std::string machine;         // requested target ("" = stay in place)
  std::vector<std::string> steps;  // intent records, in order
  std::optional<std::vector<std::uint8_t>> state;  // divulged bytes
  bool committed = false;
  bool aborted = false;
  std::string abort_reason;

  [[nodiscard]] bool open() const noexcept { return !committed && !aborted; }
  /// The last step whose intent was logged ("" when none).
  [[nodiscard]] const std::string& last_step() const {
    static const std::string kNone;
    return steps.empty() ? kNone : steps.back();
  }
};

/// The journal a replacement script writes through (ScriptJournal) plus the
/// scan side a recovering coordinator reads. One Wal per coordinator
/// machine; transactions are numbered from the existing log contents, so a
/// restarted coordinator continues the sequence.
class Wal : public reconfig::ScriptJournal {
 public:
  explicit Wal(net::DurableStore& store,
               std::string log_name = "reconfig.wal")
      : store_(&store), log_(std::move(log_name)) {}

  // --- write side (reconfig::ScriptJournal) --------------------------------

  void begin(const std::string& old_instance, const std::string& new_instance,
             const std::string& machine) override;
  void intent(const char* step) override;
  void divulged(const std::vector<std::uint8_t>& state) override;
  void committed() override;
  void aborted(const std::string& reason) override;

  // --- read side -----------------------------------------------------------

  /// Every transaction in the log, in id order. Throws WalError on a
  /// malformed record.
  [[nodiscard]] std::vector<WalTxn> scan() const;
  /// The open (neither committed nor aborted) transaction, if any. The
  /// script is sequential, so at most one can be open.
  [[nodiscard]] std::optional<WalTxn> open_transaction() const;

  /// Closes a scanned transaction from the recovery path (the write-side
  /// overrides use the current transaction instead).
  void mark_committed(std::uint64_t txn);
  void mark_aborted(std::uint64_t txn, const std::string& reason);

  [[nodiscard]] std::uint64_t records() const {
    return store_->log(log_).size();
  }
  [[nodiscard]] const std::string& log_name() const noexcept { return log_; }

 private:
  [[nodiscard]] std::uint64_t next_txn_id() const;

  net::DurableStore* store_;
  std::string log_;
  std::uint64_t current_ = 0;  // transaction the write side is journaling
};

}  // namespace surgeon::recover
