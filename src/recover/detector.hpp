// Heartbeat failure detector.
//
// Every live module process beats once per heartbeat interval (the runtime
// drives this on the virtual clock); the detector remembers the last beat
// per module and reports as suspect any module whose silence exceeds the
// suspicion timeout. On the discrete-event clock a healthy module's beats
// are perfectly periodic, so suspicion is not probabilistic the way a
// wall-clock phi-accrual detector is -- a suspect here really has stopped
// beating (crashed, finished, or removed); the supervisor disambiguates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/sim.hpp"

namespace surgeon::recover {

struct DetectorOptions {
  /// Silence after which a module is suspected. Should cover several
  /// heartbeat intervals so one is never enough (default: five 10ms beats).
  net::SimTime suspicion_timeout_us = 50'000;
};

class FailureDetector {
 public:
  explicit FailureDetector(DetectorOptions options = {})
      : options_(options) {}

  /// A heartbeat from `module` at virtual time `at`.
  void beat(const std::string& module, net::SimTime at) {
    ++beats_;
    last_[module] = at;
  }
  /// Stops tracking a module (removed, replaced, or finished normally).
  void forget(const std::string& module) { last_.erase(module); }

  /// Modules silent for longer than the suspicion timeout, sorted by name.
  [[nodiscard]] std::vector<std::string> suspects(net::SimTime now) const;

  [[nodiscard]] std::optional<net::SimTime> last_beat(
      const std::string& module) const;
  [[nodiscard]] std::uint64_t beats_observed() const noexcept {
    return beats_;
  }
  [[nodiscard]] std::size_t tracked() const noexcept { return last_.size(); }
  [[nodiscard]] const DetectorOptions& options() const noexcept {
    return options_;
  }

 private:
  DetectorOptions options_;
  std::map<std::string, net::SimTime> last_;
  std::uint64_t beats_ = 0;
};

// --- machine-level detection (surgeon::replicate) ---------------------------

/// A machine's health as the detector sees it. The suspect/confirm split
/// follows the usual two-threshold discipline: a *suspect* machine stops
/// receiving new placements, a *confirmed* machine triggers rebuild. On the
/// virtual clock the second threshold is not about false positives (silence
/// is deterministic here) but about batching: a machine that loses its
/// processes one heartbeat apart is rebuilt once, not once per module.
enum class MachineHealth : std::uint8_t { kAlive, kSuspect, kConfirmed };

[[nodiscard]] const char* machine_health_name(MachineHealth h) noexcept;

struct MachineDetectorOptions {
  /// Per-module silence that makes the module's machine suspect.
  net::SimTime suspicion_timeout_us = 50'000;
  /// Silence after which a suspect machine is confirmed dead.
  net::SimTime confirm_timeout_us = 120'000;
};

/// Aggregates per-module heartbeats (the FailureDetector's currency) into
/// machine-level verdicts: a machine is as alive as its most recently heard
/// module. Module-to-machine attribution comes from the caller (the bus
/// knows each module's host); the detector itself never touches the bus,
/// so it is testable on bare timestamps like FailureDetector.
class MachineDetector {
 public:
  explicit MachineDetector(MachineDetectorOptions options = {})
      : options_(options) {}

  /// A heartbeat from `module` hosted on `machine` at virtual time `at`.
  void beat(const std::string& module, const std::string& machine,
            net::SimTime at);
  /// Stops tracking one module (replaced, finished, or rebuilt away). The
  /// machine entry stays while other modules beat on it.
  void forget_module(const std::string& module);
  /// Stops tracking a machine entirely (rebuild finished; the corpse's
  /// silence is no longer news).
  void forget_machine(const std::string& machine);

  [[nodiscard]] MachineHealth health(const std::string& machine,
                                     net::SimTime now) const;
  /// Machines in the given state, sorted by name.
  [[nodiscard]] std::vector<std::string> suspects(net::SimTime now) const;
  [[nodiscard]] std::vector<std::string> confirmed(net::SimTime now) const;

  /// Modules attributed to `machine`, sorted (what a rebuild must cover).
  [[nodiscard]] std::vector<std::string> modules_on(
      const std::string& machine) const;
  [[nodiscard]] std::optional<net::SimTime> last_beat(
      const std::string& machine) const;
  [[nodiscard]] std::size_t tracked_machines() const noexcept {
    return machines_.size();
  }
  /// Every machine with at least one attributed module, sorted.
  [[nodiscard]] std::vector<std::string> machine_names() const {
    std::vector<std::string> out;
    out.reserve(machines_.size());
    for (const auto& [machine, rec] : machines_) out.push_back(machine);
    return out;
  }
  [[nodiscard]] std::uint64_t beats_observed() const noexcept {
    return beats_;
  }
  [[nodiscard]] const MachineDetectorOptions& options() const noexcept {
    return options_;
  }

 private:
  struct MachineRec {
    net::SimTime last = 0;
    std::map<std::string, net::SimTime> modules;  // last beat per module
  };

  MachineDetectorOptions options_;
  std::map<std::string, MachineRec> machines_;
  std::map<std::string, std::string> module_machine_;
  std::uint64_t beats_ = 0;
};

}  // namespace surgeon::recover
