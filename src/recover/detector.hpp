// Heartbeat failure detector.
//
// Every live module process beats once per heartbeat interval (the runtime
// drives this on the virtual clock); the detector remembers the last beat
// per module and reports as suspect any module whose silence exceeds the
// suspicion timeout. On the discrete-event clock a healthy module's beats
// are perfectly periodic, so suspicion is not probabilistic the way a
// wall-clock phi-accrual detector is -- a suspect here really has stopped
// beating (crashed, finished, or removed); the supervisor disambiguates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/sim.hpp"

namespace surgeon::recover {

struct DetectorOptions {
  /// Silence after which a module is suspected. Should cover several
  /// heartbeat intervals so one is never enough (default: five 10ms beats).
  net::SimTime suspicion_timeout_us = 50'000;
};

class FailureDetector {
 public:
  explicit FailureDetector(DetectorOptions options = {})
      : options_(options) {}

  /// A heartbeat from `module` at virtual time `at`.
  void beat(const std::string& module, net::SimTime at) {
    ++beats_;
    last_[module] = at;
  }
  /// Stops tracking a module (removed, replaced, or finished normally).
  void forget(const std::string& module) { last_.erase(module); }

  /// Modules silent for longer than the suspicion timeout, sorted by name.
  [[nodiscard]] std::vector<std::string> suspects(net::SimTime now) const;

  [[nodiscard]] std::optional<net::SimTime> last_beat(
      const std::string& module) const;
  [[nodiscard]] std::uint64_t beats_observed() const noexcept {
    return beats_;
  }
  [[nodiscard]] std::size_t tracked() const noexcept { return last_.size(); }
  [[nodiscard]] const DetectorOptions& options() const noexcept {
    return options_;
  }

 private:
  DetectorOptions options_;
  std::map<std::string, net::SimTime> last_;
  std::uint64_t beats_ = 0;
};

}  // namespace surgeon::recover
