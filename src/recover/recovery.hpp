// Coordinator crash recovery: roll a logged replacement forward or back.
//
// A coordinator that dies between Figure 5 steps leaves the application in
// one of two classes of states, separated by the divulge watershed:
//
//   pre-divulge  -- nothing irreversible happened. The clone (if it was
//                   registered) is removed, pending control traffic is
//                   cancelled, and the old instance keeps serving: ROLLBACK.
//   post-divulge -- the old module's state is durable in the WAL (and its
//                   process has already left its main loop), so the only
//                   safe direction is forward: finish delivering the state,
//                   rebind, start the clone, retire the old instance:
//                   ROLL-FORWARD.
//
// Every action probes live state first (was the state already delivered?
// are the bindings already moved? is the clone already running?), so
// recovery is idempotent: it completes a half-done script regardless of
// which boundary the crash hit, and running it twice is harmless.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "recover/wal.hpp"

namespace surgeon::recover {

/// Thrown by a crash hook to model the coordinator process dying at a
/// Figure 5 step boundary (the chaos harness catches it and hands the
/// application to recover_coordinator, like a restarted coordinator would).
class CoordinatorCrash : public support::Error {
 public:
  using Error::Error;
};

/// Every boundary a replacement script can crash at: the seven Figure 5
/// steps (the hook fires just before each executes) plus the commit record.
/// Indices 0..3 precede the divulge watershed (recovery rolls back), 4..7
/// follow it (recovery rolls forward). The systematic explorer
/// (chaos::explore) enumerates its crash dimension from this array, and
/// verify's recovery plans model both directions -- extend the array and
/// both pick the new boundary up; reordering it changes pinned schedule
/// identities.
inline constexpr std::array<const char*, 8> kCrashBoundaries = {
    reconfig::kStepObjCap,  reconfig::kStepCloneRegister,
    reconfig::kStepBindEditPrep, reconfig::kStepObjstateMove,
    reconfig::kStepRebind,  reconfig::kStepAdd,
    reconfig::kStepDel,     reconfig::kStepCommit};

struct RecoveryOptions {
  /// Scheduling budget for each wait inside recovery.
  std::uint64_t max_rounds = 1'000'000;
  /// Settle window run before probing: lets control traffic the dead
  /// coordinator already launched (reliable state/signal retries) land.
  net::SimTime settle_us = 50'000;
  /// Drain window before the old instance is removed on roll-forward.
  net::SimTime drain_us = 10'000;
  /// Budget for the clone to finish restoring (0 = rounds budget only).
  net::SimTime restore_timeout_us = 10'000'000;
};

struct RecoveryReport {
  bool found_open_txn = false;
  std::uint64_t txn = 0;
  bool rolled_forward = false;
  bool rolled_back = false;
  /// Roll-forward only: did the clone finish restoring within the budget?
  bool restored = false;
  std::string old_instance;
  std::string new_instance;
  /// The last step whose intent made it into the WAL before the crash.
  std::string crashed_after_step;
};

/// Scans the WAL a dead coordinator wrote and completes (or rolls back) the
/// open transaction, if any. Safe to call when the log is empty or fully
/// closed -- it reports found_open_txn=false and touches nothing.
RecoveryReport recover_coordinator(app::Runtime& rt, Wal& wal,
                                   const RecoveryOptions& options = {});

}  // namespace surgeon::recover
