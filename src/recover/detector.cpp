#include "recover/detector.hpp"

namespace surgeon::recover {

std::vector<std::string> FailureDetector::suspects(net::SimTime now) const {
  std::vector<std::string> out;
  for (const auto& [module, at] : last_) {
    if (now > at && now - at > options_.suspicion_timeout_us) {
      out.push_back(module);
    }
  }
  return out;  // map iteration order is already sorted by name
}

std::optional<net::SimTime> FailureDetector::last_beat(
    const std::string& module) const {
  auto it = last_.find(module);
  if (it == last_.end()) return std::nullopt;
  return it->second;
}

}  // namespace surgeon::recover
