#include "recover/detector.hpp"

namespace surgeon::recover {

std::vector<std::string> FailureDetector::suspects(net::SimTime now) const {
  std::vector<std::string> out;
  for (const auto& [module, at] : last_) {
    if (now > at && now - at > options_.suspicion_timeout_us) {
      out.push_back(module);
    }
  }
  return out;  // map iteration order is already sorted by name
}

std::optional<net::SimTime> FailureDetector::last_beat(
    const std::string& module) const {
  auto it = last_.find(module);
  if (it == last_.end()) return std::nullopt;
  return it->second;
}

// --- MachineDetector --------------------------------------------------------

const char* machine_health_name(MachineHealth h) noexcept {
  switch (h) {
    case MachineHealth::kAlive: return "alive";
    case MachineHealth::kSuspect: return "suspect";
    case MachineHealth::kConfirmed: return "confirmed";
  }
  return "?";
}

void MachineDetector::beat(const std::string& module,
                           const std::string& machine, net::SimTime at) {
  ++beats_;
  // A module migrating between machines (move_module) must not leave a
  // stale beat behind on its old host keeping a dead machine "alive".
  auto attributed = module_machine_.find(module);
  if (attributed != module_machine_.end() && attributed->second != machine) {
    auto old_rec = machines_.find(attributed->second);
    if (old_rec != machines_.end()) {
      old_rec->second.modules.erase(module);
      if (old_rec->second.modules.empty()) machines_.erase(old_rec);
    }
  }
  module_machine_[module] = machine;
  MachineRec& rec = machines_[machine];
  if (at > rec.last) rec.last = at;
  rec.modules[module] = at;
}

void MachineDetector::forget_module(const std::string& module) {
  auto attributed = module_machine_.find(module);
  if (attributed == module_machine_.end()) return;
  auto rec = machines_.find(attributed->second);
  if (rec != machines_.end()) {
    rec->second.modules.erase(module);
    if (rec->second.modules.empty()) machines_.erase(rec);
  }
  module_machine_.erase(attributed);
}

void MachineDetector::forget_machine(const std::string& machine) {
  auto rec = machines_.find(machine);
  if (rec == machines_.end()) return;
  for (const auto& [module, at] : rec->second.modules) {
    module_machine_.erase(module);
  }
  machines_.erase(rec);
}

MachineHealth MachineDetector::health(const std::string& machine,
                                      net::SimTime now) const {
  auto rec = machines_.find(machine);
  if (rec == machines_.end()) return MachineHealth::kAlive;  // not tracked
  if (now <= rec->second.last) return MachineHealth::kAlive;
  const net::SimTime silence = now - rec->second.last;
  if (silence > options_.confirm_timeout_us) return MachineHealth::kConfirmed;
  if (silence > options_.suspicion_timeout_us) return MachineHealth::kSuspect;
  return MachineHealth::kAlive;
}

std::vector<std::string> MachineDetector::suspects(net::SimTime now) const {
  std::vector<std::string> out;
  for (const auto& [machine, rec] : machines_) {
    if (health(machine, now) == MachineHealth::kSuspect) out.push_back(machine);
  }
  return out;
}

std::vector<std::string> MachineDetector::confirmed(net::SimTime now) const {
  std::vector<std::string> out;
  for (const auto& [machine, rec] : machines_) {
    if (health(machine, now) == MachineHealth::kConfirmed) {
      out.push_back(machine);
    }
  }
  return out;
}

std::vector<std::string> MachineDetector::modules_on(
    const std::string& machine) const {
  std::vector<std::string> out;
  auto rec = machines_.find(machine);
  if (rec == machines_.end()) return out;
  for (const auto& [module, at] : rec->second.modules) out.push_back(module);
  return out;
}

std::optional<net::SimTime> MachineDetector::last_beat(
    const std::string& machine) const {
  auto rec = machines_.find(machine);
  if (rec == machines_.end()) return std::nullopt;
  return rec->second.last;
}

}  // namespace surgeon::recover
