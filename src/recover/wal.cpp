#include "recover/wal.hpp"

#include <algorithm>

namespace surgeon::recover {

namespace {

enum : std::uint8_t {
  kBegin = 1,
  kIntent = 2,
  kDivulged = 3,
  kCommitted = 4,
  kAborted = 5,
};

using Record = net::DurableStore::Record;

void put_u8(Record& out, std::uint8_t v) { out.push_back(v); }

void put_u32(Record& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_u64(Record& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_str(Record& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_bytes(Record& out, const std::vector<std::uint8_t>& bytes) {
  put_u64(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

/// Bounds-checked cursor over one record.
struct Reader {
  const Record& rec;
  std::size_t pos = 0;

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return rec[pos++];
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{rec[pos++]} << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{rec[pos++]} << (8 * i);
    return v;
  }
  [[nodiscard]] std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(rec.begin() + static_cast<std::ptrdiff_t>(pos),
                  rec.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return s;
  }
  [[nodiscard]] std::vector<std::uint8_t> bytes() {
    std::uint64_t n = u64();
    need(n);
    std::vector<std::uint8_t> b(
        rec.begin() + static_cast<std::ptrdiff_t>(pos),
        rec.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return b;
  }
  void need(std::uint64_t n) const {
    if (pos + n > rec.size()) throw WalError("truncated WAL record");
  }
};

}  // namespace

void Wal::begin(const std::string& old_instance,
                const std::string& new_instance, const std::string& machine) {
  current_ = next_txn_id();
  Record rec;
  put_u8(rec, kBegin);
  put_u64(rec, current_);
  put_str(rec, old_instance);
  put_str(rec, new_instance);
  put_str(rec, machine);
  store_->append(log_, std::move(rec));
}

void Wal::intent(const char* step) {
  Record rec;
  put_u8(rec, kIntent);
  put_u64(rec, current_);
  put_str(rec, step);
  store_->append(log_, std::move(rec));
}

void Wal::divulged(const std::vector<std::uint8_t>& state) {
  Record rec;
  put_u8(rec, kDivulged);
  put_u64(rec, current_);
  put_bytes(rec, state);
  store_->append(log_, std::move(rec));
}

void Wal::committed() { mark_committed(current_); }

void Wal::aborted(const std::string& reason) {
  mark_aborted(current_, reason);
}

void Wal::mark_committed(std::uint64_t txn) {
  Record rec;
  put_u8(rec, kCommitted);
  put_u64(rec, txn);
  store_->append(log_, std::move(rec));
}

void Wal::mark_aborted(std::uint64_t txn, const std::string& reason) {
  Record rec;
  put_u8(rec, kAborted);
  put_u64(rec, txn);
  put_str(rec, reason);
  store_->append(log_, std::move(rec));
}

std::vector<WalTxn> Wal::scan() const {
  std::vector<WalTxn> txns;
  auto find = [&txns](std::uint64_t id) -> WalTxn& {
    for (auto& t : txns) {
      if (t.id == id) return t;
    }
    throw WalError("WAL record for unknown transaction #" +
                   std::to_string(id));
  };
  for (const Record& raw : store_->log(log_)) {
    Reader r{raw};
    std::uint8_t type = r.u8();
    std::uint64_t id = r.u64();
    switch (type) {
      case kBegin: {
        WalTxn t;
        t.id = id;
        t.old_instance = r.str();
        t.new_instance = r.str();
        t.machine = r.str();
        txns.push_back(std::move(t));
        break;
      }
      case kIntent:
        find(id).steps.push_back(r.str());
        break;
      case kDivulged:
        find(id).state = r.bytes();
        break;
      case kCommitted:
        find(id).committed = true;
        break;
      case kAborted: {
        WalTxn& t = find(id);
        t.aborted = true;
        t.abort_reason = r.str();
        break;
      }
      default:
        throw WalError("unknown WAL record type " + std::to_string(type));
    }
  }
  return txns;
}

std::optional<WalTxn> Wal::open_transaction() const {
  for (WalTxn& t : scan()) {
    if (t.open()) return std::move(t);
  }
  return std::nullopt;
}

std::uint64_t Wal::next_txn_id() const {
  std::uint64_t max_id = 0;
  for (const Record& raw : store_->log(log_)) {
    Reader r{raw};
    (void)r.u8();
    max_id = std::max(max_id, r.u64());
  }
  return max_id + 1;
}

}  // namespace surgeon::recover
