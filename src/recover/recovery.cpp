#include "recover/recovery.hpp"

#include "obs/metrics.hpp"
#include "trace/recorder.hpp"

namespace surgeon::recover {

namespace {

/// True once the clone has decoded its state buffer and finished restoring.
bool clone_restored(app::Runtime& rt, const std::string& instance) {
  vm::Machine* m = rt.machine_of(instance);
  return m != nullptr && m->decode_count() > 0 &&
         m->restore_frames_remaining() == 0;
}

}  // namespace

RecoveryReport recover_coordinator(app::Runtime& rt, Wal& wal,
                                   const RecoveryOptions& options) {
  RecoveryReport report;
  std::optional<WalTxn> open = wal.open_transaction();
  if (!open.has_value()) return report;
  report.found_open_txn = true;
  report.txn = open->id;
  report.old_instance = open->old_instance;
  report.new_instance = open->new_instance;
  report.crashed_after_step = open->last_step();

  bus::Bus& bus = rt.bus();
  const std::string& old_name = open->old_instance;
  const std::string& new_name = open->new_instance;
  obs::MetricsRegistry& metrics = rt.metrics();
  obs::Span span(&metrics, "recover", old_name);

  // Let control traffic the dead coordinator already launched (reliable
  // signal/state retries) land before probing what actually happened.
  if (options.settle_us > 0) {
    rt.run_for(options.settle_us, options.max_rounds);
  }

  // Neither logged name is registered: the script got past removing both
  // before dying. Its retry chain can supersede the logged clone name
  // (server@2 crashed -> server@3 took over), so if a newer generation of
  // the logical module is serving, the replacement effectively completed.
  if (!bus.has_module(old_name) && !bus.has_module(new_name)) {
    const std::string stem = old_name.substr(0, old_name.rfind('@'));
    for (const std::string& name : bus.module_names()) {
      if (name.substr(0, name.rfind('@')) == stem) {
        report.new_instance = name;
        report.restored = clone_restored(rt, name);
        report.rolled_forward = true;
        wal.mark_committed(open->id);
        return report;
      }
    }
    throw reconfig::ScriptError(
        "recover: txn#" + std::to_string(open->id) + " names no live module ('" +
        old_name + "' and '" + new_name + "' both gone)");
  }

  // The divulge watershed. The state is safe if its record hit the WAL, or
  // if the old module posted it to the bus just before the crash (the bus
  // daemon survives a coordinator death, so the mailbox is still there).
  const bool post_divulge =
      open->state.has_value() ||
      (bus.has_module(old_name) && bus.has_divulged_state(old_name));

  if (!post_divulge) {
    // --- rollback: undo the registration, keep serving on the old module.
    if (bus.has_module(old_name)) {
      bus.cancel_pending_control(old_name);
      (void)bus.take_pending_signal(old_name);
    }
    if (bus.has_module(new_name)) {
      bus.cancel_pending_control(new_name);
      rt.remove_module(new_name);
    }
    wal.mark_aborted(open->id, "coordinator crashed after '" +
                                   report.crashed_after_step +
                                   "': rolled back");
    report.rolled_back = true;
    if (metrics.enabled()) {
      metrics.counter("surgeon_recover_rollback_total").inc();
    }
    if (rt.tracer().enabled() && bus.has_module(old_name)) {
      rt.tracer().record(trace::EventKind::kRecover,
                         bus.module_info(old_name).machine, old_name,
                         "txn#" + std::to_string(open->id) + " rolled back");
    }
    return report;
  }

  // --- roll-forward: finish the script from wherever it stopped. Every
  // action probes live state first, so the sequence is idempotent.
  std::vector<std::uint8_t> state = open->state.has_value()
                                        ? *open->state
                                        : bus.take_divulged_state(old_name);

  // 1. The clone registration (normally survives the crash; re-created
  //    from the old module's image if the crash preceded it).
  if (!bus.has_module(new_name)) {
    const app::ModuleImage* image = rt.image_of(old_name);
    if (image == nullptr) {
      throw reconfig::ScriptError("recover: no image for '" + old_name +
                                  "', cannot rebuild clone '" + new_name +
                                  "'");
    }
    const std::string target = !open->machine.empty()
                                   ? open->machine
                                   : bus.module_info(old_name).machine;
    rt.install_module(new_name, *image, target, "clone");
  }

  // 2. A clone that died in the meantime (e.g. killed by the same fault
  //    burst that took the coordinator) is restarted from its image before
  //    the state probes below, so they see a fresh VM and re-deliver.
  if (rt.module_crashed(new_name)) {
    rt.restart_module(new_name);
  }

  // 3. The state buffer, unless the clone already has it (decoded it, has
  //    it mailboxed, or the dead coordinator's delivery is still in
  //    flight -- the settle window above lets that land).
  vm::Machine* clone_vm = rt.machine_of(new_name);
  const bool clone_has_state =
      (clone_vm != nullptr && clone_vm->decode_count() > 0) ||
      bus.has_incoming_state(new_name);
  if (!clone_has_state) {
    bus.cancel_pending_control(new_name);
    const std::string from_machine = bus.has_module(old_name)
                                         ? bus.module_info(old_name).machine
                                         : bus.module_info(new_name).machine;
    bus.deliver_state(from_machine, new_name, state);
  }

  // 4. Rebind. When the crashed script already moved the bindings this
  //    batch degenerates to queue capture/removal, which just sweeps any
  //    straggler messages across.
  if (bus.has_module(old_name)) {
    bus.rebind(reconfig::make_rebind_batch(bus, old_name, new_name));
  }

  // 5. Start the clone if the crash preceded mh_chg_obj "add".
  if (rt.machine_of(new_name) == nullptr) {
    rt.start_module(new_name);
  }

  // 6. Retire the old instance (its process already left its main loop
  //    when it divulged; only the registration and queues remain).
  if (bus.has_module(old_name)) {
    rt.stop_module(old_name);
    if (options.drain_us > 0) {
      rt.run_for(options.drain_us, options.max_rounds);
      (void)reconfig::sweep_queues(bus, old_name, new_name);
    }
    rt.remove_module(old_name);
  }

  // 7. Wait for the clone to restore, then close the transaction.
  if (options.restore_timeout_us > 0) {
    net::SimTime deadline = rt.now() + options.restore_timeout_us;
    (void)rt.run_until(
        [&] { return clone_restored(rt, new_name) || rt.now() >= deadline; },
        options.max_rounds);
    report.restored = clone_restored(rt, new_name);
  } else {
    report.restored = rt.run_until(
        [&] { return clone_restored(rt, new_name); }, options.max_rounds);
  }
  wal.mark_committed(open->id);
  report.rolled_forward = true;
  if (metrics.enabled()) {
    metrics.counter("surgeon_recover_rollforward_total").inc();
  }
  if (rt.tracer().enabled()) {
    rt.tracer().record(trace::EventKind::kRecover,
                       bus.module_info(new_name).machine, new_name,
                       "txn#" + std::to_string(open->id) + " rolled forward");
  }
  return report;
}

}  // namespace surgeon::recover
