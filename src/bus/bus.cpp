#include "bus/bus.hpp"

#include <algorithm>
#include <sstream>

#include "support/diag.hpp"

namespace surgeon::bus {

using support::BusError;

const char* iface_role_name(IfaceRole role) noexcept {
  switch (role) {
    case IfaceRole::kClient:
      return "client";
    case IfaceRole::kServer:
      return "server";
    case IfaceRole::kUse:
      return "use";
    case IfaceRole::kDefine:
      return "define";
  }
  return "?";
}

bool role_can_send(IfaceRole role) noexcept {
  return role != IfaceRole::kUse;
}

bool role_can_receive(IfaceRole role) noexcept {
  return role != IfaceRole::kDefine;
}

const char* trace_kind_name(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kDeliver: return "deliver";
    case TraceEvent::Kind::kDrop: return "drop";
    case TraceEvent::Kind::kSignal: return "signal";
    case TraceEvent::Kind::kStateDivulged: return "state-divulged";
    case TraceEvent::Kind::kStateDelivered: return "state-delivered";
    case TraceEvent::Kind::kRebind: return "rebind";
    case TraceEvent::Kind::kModuleAdded: return "module-added";
    case TraceEvent::Kind::kModuleRemoved: return "module-removed";
    case TraceEvent::Kind::kModuleCrashed: return "module-crashed";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os << "t=" << at << "us " << trace_kind_name(kind) << " " << module;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << src_module << "." << src_iface << " [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ", ";
    os << values[i].to_string();
  }
  os << "]";
  return os.str();
}

Bus::ModuleRec& Bus::rec(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) throw BusError("unknown module: " + name);
  return it->second;
}

const Bus::ModuleRec& Bus::rec(const std::string& name) const {
  auto it = modules_.find(name);
  if (it == modules_.end()) throw BusError("unknown module: " + name);
  return it->second;
}

Bus::Endpoint& Bus::endpoint(const std::string& module,
                             const std::string& iface) {
  auto& r = rec(module);
  auto it = r.endpoints.find(iface);
  if (it == r.endpoints.end()) {
    throw BusError("module " + module + " has no interface " + iface);
  }
  return it->second;
}

const Bus::Endpoint& Bus::endpoint(const std::string& module,
                                   const std::string& iface) const {
  const auto& r = rec(module);
  auto it = r.endpoints.find(iface);
  if (it == r.endpoints.end()) {
    throw BusError("module " + module + " has no interface " + iface);
  }
  return it->second;
}

void Bus::resolve_endpoint_metrics(const std::string& module, ModuleRec& r) {
  for (auto& [iface, ep] : r.endpoints) {
    if (metrics_ == nullptr) {
      ep.sent_ctr = nullptr;
      ep.delivered_ctr = nullptr;
      ep.dropped_ctr = nullptr;
      ep.depth_gauge = nullptr;
      continue;
    }
    obs::Labels labels{{"module", module}, {"iface", iface}};
    ep.sent_ctr = &metrics_->counter("surgeon_bus_messages_sent_total", labels);
    ep.delivered_ctr =
        &metrics_->counter("surgeon_bus_messages_delivered_total", labels);
    ep.dropped_ctr =
        &metrics_->counter("surgeon_bus_messages_dropped_total", labels);
    ep.depth_gauge = &metrics_->gauge("surgeon_bus_queue_depth", labels);
  }
}

void Bus::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (auto& [name, r] : modules_) resolve_endpoint_metrics(name, r);
}

void Bus::add_module(ModuleInfo info) {
  if (modules_.contains(info.name)) {
    throw BusError("module already registered: " + info.name);
  }
  if (!sim_->has_machine(info.machine)) {
    throw BusError("module " + info.name + " placed on unknown machine " +
                   info.machine);
  }
  ModuleRec r;
  for (const auto& spec : info.interfaces) {
    if (r.endpoints.contains(spec.name)) {
      throw BusError("module " + info.name + " declares interface " +
                     spec.name + " twice");
    }
    Endpoint ep;
    ep.spec = spec;
    ep.stream_id = {info.name, spec.name};
    r.endpoints.emplace(spec.name, std::move(ep));
  }
  r.epoch = next_epoch_++;
  r.info = std::move(info);
  const std::string name = r.info.name;
  const std::string detail = "machine=" + r.info.machine +
                             " status=" + r.info.status;
  auto [it, inserted] = modules_.emplace(name, std::move(r));
  resolve_endpoint_metrics(name, it->second);
  if (metrics_on()) {
    metrics_->counter("surgeon_bus_modules_added_total").inc();
  }
  rec_event(trc::EventKind::kModuleAdded, it->second.info.machine, name,
            detail);
  trace(TraceEvent::Kind::kModuleAdded, name, detail);
}

void Bus::remove_module(const std::string& name) {
  ModuleRec& r = rec(name);  // throws if unknown
  // Zero the departing queue-depth gauges so a removed module cannot leak a
  // stale non-zero depth into the registry.
  if (metrics_on()) {
    for (auto& [iface, ep] : r.endpoints) {
      if (ep.depth_gauge != nullptr) ep.depth_gauge->set(0);
    }
  }
  // Retire reliable bookkeeping the module still owns. Streams whose
  // ownership migrated to an heir via queue capture are left alone.
  std::erase_if(tx_streams_, [&](const auto& kv) {
    return kv.second.owner_module == name;
  });
  std::erase_if(control_, [&](const auto& kv) {
    return kv.second.target == name;
  });
  applied_control_.erase(name);
  std::erase_if(bindings_, [&](const Binding& b) {
    return b.a.module == name || b.b.module == name;
  });
  const std::string machine = r.info.machine;
  modules_.erase(name);
  last_state_ctx_.erase(name);
  if (metrics_on()) {
    metrics_->counter("surgeon_bus_modules_removed_total").inc();
  }
  rec_event(trc::EventKind::kModuleRemoved, machine, name, "");
  trace(TraceEvent::Kind::kModuleRemoved, name, "");
}

const ModuleInfo& Bus::module_info(const std::string& name) const {
  return rec(name).info;
}

std::vector<std::string> Bus::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& [name, r] : modules_) names.push_back(name);
  return names;
}

void Bus::add_binding(const BindingEnd& a, const BindingEnd& b) {
  rebind([&] {
    BindEditBatch batch;
    batch.add(BindEdit{BindEdit::Op::kAdd, a, b});
    return batch;
  }());
}

void Bus::del_binding(const BindingEnd& a, const BindingEnd& b) {
  rebind([&] {
    BindEditBatch batch;
    batch.add(BindEdit{BindEdit::Op::kDel, a, b});
    return batch;
  }());
}

std::vector<std::string> Bus::interface_names(const std::string& module) const {
  const auto& r = rec(module);
  std::vector<std::string> names;
  names.reserve(r.endpoints.size());
  for (const auto& [name, ep] : r.endpoints) names.push_back(name);
  return names;
}

std::vector<BindingEnd> Bus::bound_peers(const BindingEnd& end) const {
  std::vector<BindingEnd> peers;
  for (const auto& b : bindings_) {
    if (b.involves(end)) peers.push_back(b.peer_of(end));
  }
  return peers;
}

void Bus::validate_edit(const BindEdit& edit) const {
  auto check_end = [&](const BindingEnd& e) {
    (void)endpoint(e.module, e.iface);  // throws if module/iface unknown
  };
  switch (edit.op) {
    case BindEdit::Op::kAdd: {
      check_end(edit.a);
      check_end(edit.b);
      Binding want{edit.a, edit.b};
      Binding flipped{edit.b, edit.a};
      if (std::find(bindings_.begin(), bindings_.end(), want) !=
              bindings_.end() ||
          std::find(bindings_.begin(), bindings_.end(), flipped) !=
              bindings_.end()) {
        throw BusError("binding already exists: " + edit.a.module + "." +
                       edit.a.iface + " -- " + edit.b.module + "." +
                       edit.b.iface);
      }
      break;
    }
    case BindEdit::Op::kDel: {
      Binding want{edit.a, edit.b};
      Binding flipped{edit.b, edit.a};
      if (std::find(bindings_.begin(), bindings_.end(), want) ==
              bindings_.end() &&
          std::find(bindings_.begin(), bindings_.end(), flipped) ==
              bindings_.end()) {
        throw BusError("no such binding to delete: " + edit.a.module + "." +
                       edit.a.iface + " -- " + edit.b.module + "." +
                       edit.b.iface);
      }
      break;
    }
    case BindEdit::Op::kCaptureQueue:
      check_end(edit.a);
      check_end(edit.b);
      break;
    case BindEdit::Op::kRemoveQueue:
      check_end(edit.a);
      break;
  }
}

void Bus::apply_edit(const BindEdit& edit) {
  switch (edit.op) {
    case BindEdit::Op::kAdd:
      bindings_.push_back(Binding{edit.a, edit.b});
      break;
    case BindEdit::Op::kDel: {
      Binding want{edit.a, edit.b};
      Binding flipped{edit.b, edit.a};
      std::erase_if(bindings_, [&](const Binding& b) {
        return b == want || b == flipped;
      });
      break;
    }
    case BindEdit::Op::kCaptureQueue: {
      auto& from = endpoint(edit.a.module, edit.a.iface);
      auto& to = endpoint(edit.b.module, edit.b.iface);
      const std::size_t captured = from.queue.size();
      bool moved = !from.queue.empty();
      while (!from.queue.empty()) {
        // Queued messages keep their trace headers: the clone inherits
        // the predecessor's causal history along with its traffic.
        to.queue.push_back(std::move(from.queue.front()));
        from.queue.pop_front();
      }
      rec_event(trc::EventKind::kCapture,
                machine_of_or(edit.b.module, "bus"), edit.b.module,
                "from=" + edit.a.module + "." + edit.a.iface +
                    " moved=" + std::to_string(captured),
                last_rebind_ctx_);
      // Channel state rides with the queue: the heir continues the
      // predecessor's outgoing stream and inherits its resequencing
      // windows, so dedup/ordering survive the replacement.
      migrate_streams(edit.a, edit.b);
      note_depth(from);
      note_depth(to);
      if (moved) wake(edit.b.module);
      break;
    }
    case BindEdit::Op::kRemoveQueue: {
      auto& ep = endpoint(edit.a.module, edit.a.iface);
      ep.queue.clear();
      ep.rx.clear();
      note_depth(ep);
      break;
    }
  }
}

void Bus::rebind(const BindEditBatch& batch) {
  // Validation pass first so the batch is all-or-nothing. kAdd/kDel pairs
  // that cancel within the batch (delete then re-add the same ends) are
  // validated against the *current* table; Figure 5 only ever deletes
  // existing bindings and adds new ones, so sequential validation against
  // the pre-state plus in-batch adds is sufficient and simplest.
  std::vector<Binding> saved = bindings_;
  try {
    for (const auto& edit : batch.edits()) {
      validate_edit(edit);
      if (edit.op == BindEdit::Op::kAdd || edit.op == BindEdit::Op::kDel) {
        apply_edit(edit);
      }
    }
    // The rebind event is recorded once the bind table has settled and
    // before any queue capture, so captures (and the deliveries they flush
    // into the clone) sit causally after the rebind. Its cause is the last
    // divulge: Figure 5 only edits bindings after quiescence was proven.
    if (batch.size() != 0 && tracer_on()) {
      std::vector<std::string> involved;
      for (const auto& edit : batch.edits()) {
        for (const std::string* m : {&edit.a.module, &edit.b.module}) {
          if (m->empty() ||
              (edit.op == BindEdit::Op::kRemoveQueue && m == &edit.b.module)) {
            continue;
          }
          if (std::find(involved.begin(), involved.end(), *m) ==
              involved.end()) {
            involved.push_back(*m);
          }
        }
      }
      std::string list;
      for (const auto& m : involved) {
        if (!list.empty()) list += ',';
        list += m;
      }
      last_rebind_ctx_ = rec_event(
          trc::EventKind::kRebind,
          control_machine_.empty() ? "bus" : control_machine_,
          batch.edits().front().a.module,
          "edits=" + std::to_string(batch.size()) + " modules=" + list,
          last_divulge_ctx_);
    }
    // Queue moves happen after the bind table settles, as in Figure 5 where
    // "cap"/"rmq" commands ride in the same atomic batch.
    for (const auto& edit : batch.edits()) {
      if (edit.op == BindEdit::Op::kCaptureQueue ||
          edit.op == BindEdit::Op::kRemoveQueue) {
        apply_edit(edit);
      }
    }
    if (batch.size() != 0) {
      if (metrics_on()) {
        metrics_->counter("surgeon_bus_rebinds_total").inc();
        metrics_
            ->histogram("surgeon_bus_rebind_edits", {},
                        {1, 4, 16, 64, 256, 1024})
            .observe(batch.size());
      }
      trace(TraceEvent::Kind::kRebind, batch.edits().front().a.module,
            std::to_string(batch.size()) + " edits");
    }
  } catch (...) {
    bindings_ = std::move(saved);
    throw;
  }
}

void Bus::send(const std::string& module, const std::string& iface,
               std::vector<ser::Value> values) {
  auto& ep = endpoint(module, iface);
  if (!role_can_send(ep.spec.role)) {
    throw BusError("interface " + module + "." + iface + " (role " +
                   iface_role_name(ep.spec.role) + ") cannot send");
  }
  ++stats_.messages_sent;
  if (metrics_on()) ep.sent_ctr->inc();
  trc::TraceContext send_ctx;
  if (tracer_on()) {  // guard: skips the record lookup when tracing is off
    ModuleRec& r = rec(module);
    send_ctx = tracer_->record_at(r.trace_site, trc::EventKind::kSend,
                                  r.info.machine, module, iface);
  }
  trace(TraceEvent::Kind::kSend, module, iface);
  auto peers = bound_peers(BindingEnd{module, iface});
  if (peers.empty()) {
    ++stats_.messages_dropped_unbound;
    if (metrics_on()) ep.dropped_ctr->inc();
    rec_event(trc::EventKind::kDrop, rec(module).info.machine, module,
              iface + " (unbound)", send_ctx);
    trace(TraceEvent::Kind::kDrop, module, iface + " (unbound)");
    return;
  }
  if (delivery_.reliable) {
    Message msg;
    msg.values = std::move(values);
    msg.src_module = module;
    msg.src_iface = iface;
    msg.trace_ctx = send_ctx;
    reliable_send(module, ep, std::move(msg));
    return;
  }
  const std::string& src_machine = rec(module).info.machine;
  for (const auto& peer : peers) {
    const auto& dst_rec = rec(peer.module);
    auto latency = sim_->message_latency(src_machine, dst_rec.info.machine);
    FaultDecision fd = consult_fault(src_machine, dst_rec.info.machine);
    if (fd.drop) {
      ++rstats_.chaos_drops;
      chaos_metric("surgeon_bus_chaos_drops_total", "message");
      rec_event(trc::EventKind::kDrop, src_machine, peer.module,
                peer.iface + " (chaos)", send_ctx);
      trace(TraceEvent::Kind::kDrop, peer.module, peer.iface + " (chaos)");
      continue;
    }
    if (fd.duplicate) {
      // Fire-and-forget has no dedup: the duplicate is simply delivered
      // twice (the tests demonstrating why reliability matters rely on it).
      ++rstats_.dup_injected;
      chaos_metric("surgeon_bus_dup_injected_total", "message");
      Message dup;
      dup.values = values;
      dup.src_module = module;
      dup.src_iface = iface;
      dup.trace_ctx = send_ctx;
      std::uint64_t dup_epoch = dst_rec.epoch;
      sim_->schedule_after(
          latency + fd.duplicate_delay_us,
          [this, peer, msg = std::move(dup), dup_epoch]() mutable {
            legacy_arrive(peer, std::move(msg), dup_epoch);
          });
    }
    latency += fd.extra_delay_us;
    Message msg;
    msg.values = values;
    msg.src_module = module;
    msg.src_iface = iface;
    msg.trace_ctx = send_ctx;
    std::uint64_t epoch = dst_rec.epoch;
    sim_->schedule_after(latency, [this, peer, msg = std::move(msg),
                                   epoch]() mutable {
      legacy_arrive(peer, std::move(msg), epoch);
    });
  }
}

void Bus::legacy_arrive(const BindingEnd& peer, Message msg,
                        std::uint64_t epoch) {
  auto it = modules_.find(peer.module);
  if (it == modules_.end() || it->second.epoch != epoch) {
    // Destination was removed (or replaced) while the message was in
    // flight; the reconfiguration script is responsible for moving any
    // *queued* messages, but in-flight ones to a dead module drop.
    ++stats_.messages_dropped_unbound;
    if (metrics_on()) {
      // The endpoint (and its cached handle) is gone; rare path, so a
      // registry lookup per drop is fine.
      metrics_
          ->counter("surgeon_bus_messages_dropped_total",
                    {{"module", peer.module}, {"iface", peer.iface}})
          .inc();
    }
    rec_event(trc::EventKind::kDrop, machine_of_or(peer.module, "bus"),
              peer.module, peer.iface + " (in flight to removed module)",
              msg.trace_ctx);
    trace(TraceEvent::Kind::kDrop, peer.module,
          peer.iface + " (in flight to removed module)");
    return;
  }
  auto ep_it = it->second.endpoints.find(peer.iface);
  if (ep_it == it->second.endpoints.end()) {
    ++stats_.messages_dropped_unbound;
    rec_event(trc::EventKind::kDrop, it->second.info.machine, peer.module,
              peer.iface, msg.trace_ctx);
    trace(TraceEvent::Kind::kDrop, peer.module, peer.iface);
    return;
  }
  if (tracer_on()) {
    tracer_->record_at(it->second.trace_site, trc::EventKind::kDeliver,
                       it->second.info.machine, peer.module, peer.iface,
                       msg.trace_ctx);
  }
  ep_it->second.queue.push_back(std::move(msg));
  ++stats_.messages_delivered;
  if (metrics_on()) {
    ep_it->second.delivered_ctr->inc();
    note_depth(ep_it->second);
  }
  trace(TraceEvent::Kind::kDeliver, peer.module, peer.iface);
  wake(peer.module);
}

bool Bus::has_message(const std::string& module,
                      const std::string& iface) const {
  return !endpoint(module, iface).queue.empty();
}

std::optional<Message> Bus::receive(const std::string& module,
                                    const std::string& iface) {
  auto& ep = endpoint(module, iface);
  if (!role_can_receive(ep.spec.role)) {
    throw BusError("interface " + module + "." + iface + " (role " +
                   iface_role_name(ep.spec.role) + ") cannot receive");
  }
  if (ep.queue.empty()) return std::nullopt;
  Message msg = std::move(ep.queue.front());
  ep.queue.pop_front();
  note_depth(ep);
  return msg;
}

std::size_t Bus::queue_depth(const std::string& module,
                             const std::string& iface) const {
  return endpoint(module, iface).queue.size();
}

void Bus::signal_reconfig(const std::string& module) {
  if (delivery_.reliable) {
    const ModuleRec& r = rec(module);
    ControlTx tx;
    tx.kind = ControlTx::Kind::kSignal;
    tx.target = module;
    tx.from_machine =
        control_machine_.empty() ? r.info.machine : control_machine_;
    tx.epoch = r.epoch;
    tx.timeout_us = delivery_.retransmit_timeout_us;
    tx.trace_ctx = rec_event(trc::EventKind::kSignal, tx.from_machine, module,
                             "reconfigure requested");
    std::uint64_t id = next_control_id_++;
    control_.emplace(id, std::move(tx));
    transmit_control(id);
    arm_control_retry(id, delivery_.retransmit_timeout_us);
    return;
  }
  std::uint64_t epoch = rec(module).epoch;
  trc::TraceContext req_ctx = rec_event(
      trc::EventKind::kSignal,
      control_machine_.empty() ? rec(module).info.machine : control_machine_,
      module, "reconfigure requested");
  sim_->schedule_after(sim_->latency_model().local_us,
                       [this, module, epoch, req_ctx] {
    auto it = modules_.find(module);
    if (it == modules_.end() || it->second.epoch != epoch) return;
    it->second.reconfig_signaled = true;
    ++stats_.signals_delivered;
    if (metrics_on()) {
      metrics_->counter("surgeon_bus_signals_total", {{"module", module}})
          .inc();
    }
    rec_event(trc::EventKind::kSignal, it->second.info.machine, module,
              "reconfigure delivered", req_ctx);
    trace(TraceEvent::Kind::kSignal, module, "reconfigure");
    wake(module);
  });
}

bool Bus::take_pending_signal(const std::string& module) {
  auto& r = rec(module);
  bool was = r.reconfig_signaled;
  r.reconfig_signaled = false;
  return was;
}

void Bus::post_divulged_state(const std::string& module,
                              std::vector<std::uint8_t> bytes) {
  auto& r = rec(module);
  if (r.divulged_state.has_value()) {
    throw BusError("module " + module +
                   " divulged state twice without a collection");
  }
  stats_.state_bytes_moved += bytes.size();
  ++stats_.state_transfers;
  if (metrics_on()) {
    metrics_->counter("surgeon_bus_state_transfers_total").inc();
    metrics_->counter("surgeon_bus_state_bytes_total").inc(bytes.size());
  }
  last_divulge_ctx_ =
      rec_event(trc::EventKind::kDivulge, r.info.machine, module,
                std::to_string(bytes.size()) + " bytes");
  trace(TraceEvent::Kind::kStateDivulged, module,
        std::to_string(bytes.size()) + " bytes");
  if (state_observer_) state_observer_(module, "divulged", bytes);
  r.divulged_state = std::move(bytes);
}

bool Bus::has_divulged_state(const std::string& module) const {
  return rec(module).divulged_state.has_value();
}

std::vector<std::uint8_t> Bus::take_divulged_state(const std::string& module) {
  auto& r = rec(module);
  if (!r.divulged_state.has_value()) {
    throw BusError("module " + module + " has not divulged state");
  }
  auto bytes = std::move(*r.divulged_state);
  r.divulged_state.reset();
  return bytes;
}

void Bus::deliver_state(const std::string& from_machine,
                        const std::string& to_module,
                        std::vector<std::uint8_t> bytes) {
  const auto& dst = rec(to_module);
  if (delivery_.reliable) {
    ControlTx tx;
    tx.kind = ControlTx::Kind::kState;
    tx.target = to_module;
    tx.from_machine = from_machine;
    tx.bytes = std::move(bytes);
    tx.epoch = dst.epoch;
    tx.timeout_us = delivery_.retransmit_timeout_us;
    // The divulge that produced this buffer: redeliveries (including ones
    // retried onto a fresh clone after a crash) keep the same cause.
    tx.trace_ctx = last_divulge_ctx_;
    std::uint64_t id = next_control_id_++;
    control_.emplace(id, std::move(tx));
    transmit_control(id);
    arm_control_retry(id, delivery_.retransmit_timeout_us);
    return;
  }
  auto latency = sim_->message_latency(from_machine, dst.info.machine);
  std::uint64_t epoch = dst.epoch;
  trc::TraceContext divulge_ctx = last_divulge_ctx_;
  sim_->schedule_after(
      latency, [this, to_module, epoch, divulge_ctx, bytes = std::move(bytes)] {
        auto it = modules_.find(to_module);
        if (it == modules_.end() || it->second.epoch != epoch) return;
        last_state_ctx_[to_module] = rec_event(
            trc::EventKind::kStateDeliver, it->second.info.machine, to_module,
            std::to_string(bytes.size()) + " bytes", divulge_ctx);
        trace(TraceEvent::Kind::kStateDelivered, to_module,
              std::to_string(bytes.size()) + " bytes");
        if (state_observer_) {
          state_observer_(to_module, "delivered", bytes);
        }
        it->second.incoming_state = bytes;
        wake(to_module);
      });
}

std::optional<std::vector<std::uint8_t>> Bus::take_incoming_state(
    const std::string& module) {
  auto& r = rec(module);
  if (!r.incoming_state.has_value()) return std::nullopt;
  auto bytes = std::move(*r.incoming_state);
  r.incoming_state.reset();
  rec_event(trc::EventKind::kRestore, r.info.machine, module,
            std::to_string(bytes.size()) + " bytes", last_state_ctx_[module]);
  return bytes;
}

bool Bus::has_incoming_state(const std::string& module) const {
  return rec(module).incoming_state.has_value();
}

// --- reliable delivery layer -------------------------------------------------

namespace {
bool contains_name(const std::vector<std::string>& names,
                   const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}
bool contains_id(const std::vector<std::uint64_t>& ids, std::uint64_t id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}
}  // namespace

FaultDecision Bus::consult_fault(const std::string& src_machine,
                                 const std::string& dst_machine) {
  if (!fault_) return {};
  return fault_(src_machine, dst_machine);
}

void Bus::chaos_metric(const char* name, const char* kind) {
  if (metrics_on()) {
    metrics_->counter(name, {{"kind", kind}}).inc();
  }
}

trc::TraceContext Bus::rec_event(trc::EventKind kind,
                                 const std::string& machine,
                                 const std::string& module, std::string detail,
                                 const trc::TraceContext& cause) {
  if (!tracer_on()) return {};
  return tracer_->record(kind, machine, module, std::move(detail), cause);
}

std::string Bus::machine_of_or(const std::string& module,
                               const std::string& fallback) const {
  auto it = modules_.find(module);
  return it == modules_.end() ? fallback : it->second.info.machine;
}

void Bus::update_reliable_gauges() {
  if (!metrics_on()) return;
  metrics_->gauge("surgeon_bus_unacked_messages")
      .set(static_cast<std::int64_t>(unacked_total()));
  metrics_->gauge("surgeon_bus_ooo_buffered")
      .set(static_cast<std::int64_t>(ooo_total()));
}

std::size_t Bus::unacked_total() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, ts] : tx_streams_) n += ts.unacked.size();
  return n;
}

std::size_t Bus::ooo_total() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, r] : modules_) {
    for (const auto& [iface, ep] : r.endpoints) {
      for (const auto& [stream, rx] : ep.rx) n += rx.ooo.size();
    }
  }
  return n;
}

std::size_t Bus::pending_control_total() const noexcept {
  return control_.size();
}

void Bus::cancel_pending_control(const std::string& module) {
  std::erase_if(control_,
                [&](const auto& kv) { return kv.second.target == module; });
}

void Bus::note_module_crashed(const std::string& module, std::string detail) {
  if (metrics_on()) {
    metrics_->counter("surgeon_chaos_crashes_total", {{"module", module}})
        .inc();
  }
  rec_event(trc::EventKind::kCrash, machine_of_or(module, "bus"), module,
            detail);
  trace(TraceEvent::Kind::kModuleCrashed, module, std::move(detail));
}

void Bus::deliver_into(const std::string& module, Endpoint& ep, Message msg) {
  if (tracer_on()) {
    auto it = modules_.find(module);
    if (it != modules_.end()) {
      tracer_->record_at(it->second.trace_site, trc::EventKind::kDeliver,
                         it->second.info.machine, module, ep.spec.name,
                         msg.trace_ctx);
    } else {
      rec_event(trc::EventKind::kDeliver, "bus", module, ep.spec.name,
                msg.trace_ctx);
    }
  }
  ep.queue.push_back(std::move(msg));
  ++stats_.messages_delivered;
  if (metrics_on()) {
    ep.delivered_ctr->inc();
    note_depth(ep);
  }
  trace(TraceEvent::Kind::kDeliver, module, ep.spec.name);
  wake(module);
}

void Bus::reliable_send(const std::string& module, Endpoint& ep, Message msg) {
  TxStream& ts = tx_streams_[ep.stream_id];
  if (ts.owner_module.empty()) {
    ts.owner_module = module;
    ts.owner_iface = ep.spec.name;
  }
  msg.stream_module = ep.stream_id.first;
  msg.stream_iface = ep.stream_id.second;
  msg.seq = ts.next_seq++;
  const std::uint64_t seq = msg.seq;
  TxEntry entry;
  entry.msg = std::move(msg);
  entry.timeout_us = delivery_.retransmit_timeout_us;
  ts.unacked.emplace(seq, std::move(entry));
  transmit_entry(ep.stream_id, seq, /*retransmit=*/false);
  arm_retransmit(ep.stream_id, seq, delivery_.retransmit_timeout_us);
  update_reliable_gauges();
}

bool Bus::entry_fully_acked(const TxStream& ts, const TxEntry& entry) const {
  auto peers = bound_peers(BindingEnd{ts.owner_module, ts.owner_iface});
  for (const auto& peer : peers) {
    if (!contains_name(entry.acked_by, peer.module)) return false;
  }
  // No unacked peer left -- either everyone acked or the endpoint became
  // unbound, in which case there is nobody left to deliver to.
  return true;
}

void Bus::transmit_entry(const StreamKey& stream, std::uint64_t seq,
                         bool retransmit) {
  auto sit = tx_streams_.find(stream);
  if (sit == tx_streams_.end()) return;
  TxStream& ts = sit->second;
  auto eit = ts.unacked.find(seq);
  if (eit == ts.unacked.end()) return;
  TxEntry& entry = eit->second;
  auto owner_it = modules_.find(ts.owner_module);
  if (owner_it == modules_.end()) {
    ts.unacked.erase(eit);
    update_reliable_gauges();
    return;
  }
  const std::string src_machine = owner_it->second.info.machine;
  ++entry.attempts;
  // The context copies carry: the original send for the first transmission,
  // the retransmit event (itself caused by the send) for retries — so a
  // receiver's deliver parents on the transmission that actually reached it
  // while entry.msg keeps the original send context for the next retry.
  trc::TraceContext tx_ctx = entry.msg.trace_ctx;
  if (retransmit) {
    ++rstats_.retransmits;
    chaos_metric("surgeon_bus_retransmits_total", "message");
    tx_ctx = rec_event(trc::EventKind::kRetransmit, src_machine,
                       ts.owner_module,
                       ts.owner_iface + " seq " + std::to_string(seq) +
                           " attempt " + std::to_string(entry.attempts),
                       entry.msg.trace_ctx);
  }
  for (const auto& peer :
       bound_peers(BindingEnd{ts.owner_module, ts.owner_iface})) {
    if (contains_name(entry.acked_by, peer.module)) continue;
    auto dst_it = modules_.find(peer.module);
    if (dst_it == modules_.end()) continue;
    auto latency = sim_->message_latency(src_machine,
                                         dst_it->second.info.machine);
    FaultDecision fd =
        consult_fault(src_machine, dst_it->second.info.machine);
    std::uint64_t epoch = dst_it->second.epoch;
    ++rstats_.transmissions;
    chaos_metric("surgeon_bus_transmissions_total", "message");
    if (fd.drop) {
      ++rstats_.chaos_drops;
      chaos_metric("surgeon_bus_chaos_drops_total", "message");
      rec_event(trc::EventKind::kDrop, src_machine, peer.module,
                peer.iface + " (chaos)", tx_ctx);
      trace(TraceEvent::Kind::kDrop, peer.module, peer.iface + " (chaos)");
    } else {
      Message copy = entry.msg;
      copy.trace_ctx = tx_ctx;
      sim_->schedule_after(
          latency + fd.extra_delay_us,
          [this, peer, copy = std::move(copy), epoch]() mutable {
            reliable_arrive(peer, std::move(copy), epoch);
          });
    }
    if (fd.duplicate) {
      ++rstats_.dup_injected;
      ++rstats_.transmissions;
      chaos_metric("surgeon_bus_dup_injected_total", "message");
      chaos_metric("surgeon_bus_transmissions_total", "message");
      Message copy = entry.msg;
      copy.trace_ctx = tx_ctx;
      sim_->schedule_after(
          latency + fd.duplicate_delay_us,
          [this, peer, copy = std::move(copy), epoch]() mutable {
            reliable_arrive(peer, std::move(copy), epoch);
          });
    }
  }
}

void Bus::arm_retransmit(const StreamKey& stream, std::uint64_t seq,
                         net::SimTime timeout_us) {
  sim_->schedule_after(timeout_us, [this, stream, seq] {
    auto sit = tx_streams_.find(stream);
    if (sit == tx_streams_.end()) return;  // stream retired; lazy cancel
    TxStream& ts = sit->second;
    auto eit = ts.unacked.find(seq);
    if (eit == ts.unacked.end()) return;  // acked meanwhile; lazy cancel
    TxEntry& entry = eit->second;
    if (entry_fully_acked(ts, entry)) {
      ts.unacked.erase(eit);
      update_reliable_gauges();
      return;
    }
    if (entry.attempts >= delivery_.max_attempts) {
      ++rstats_.gave_up;
      chaos_metric("surgeon_bus_delivery_gave_up_total", "message");
      rec_event(trc::EventKind::kDrop,
                machine_of_or(ts.owner_module, "bus"), ts.owner_module,
                ts.owner_iface + " seq " + std::to_string(seq) + " (gave up)",
                entry.msg.trace_ctx);
      trace(TraceEvent::Kind::kDrop, ts.owner_module,
            ts.owner_iface + " seq " + std::to_string(seq) + " (gave up)");
      ts.unacked.erase(eit);
      update_reliable_gauges();
      return;
    }
    entry.timeout_us =
        std::min<net::SimTime>(entry.timeout_us * 2, delivery_.max_timeout_us);
    net::SimTime next = entry.timeout_us;
    transmit_entry(stream, seq, /*retransmit=*/true);
    arm_retransmit(stream, seq, next);
  });
}

void Bus::reliable_arrive(const BindingEnd& dst, Message msg,
                          std::uint64_t epoch) {
  auto it = modules_.find(dst.module);
  if (it == modules_.end() || it->second.epoch != epoch) {
    // The destination is gone; unlike fire-and-forget, this is not a loss:
    // the sender keeps retransmitting toward whoever inherits the binding.
    rec_event(trc::EventKind::kDrop, machine_of_or(dst.module, "bus"),
              dst.module, dst.iface + " (in flight to removed module)",
              msg.trace_ctx);
    trace(TraceEvent::Kind::kDrop, dst.module,
          dst.iface + " (in flight to removed module)");
    return;
  }
  auto ep_it = it->second.endpoints.find(dst.iface);
  if (ep_it == it->second.endpoints.end()) {
    rec_event(trc::EventKind::kDrop, it->second.info.machine, dst.module,
              dst.iface, msg.trace_ctx);
    trace(TraceEvent::Kind::kDrop, dst.module, dst.iface);
    return;
  }
  Endpoint& ep = ep_it->second;
  if (ep.rx_retired) {
    rec_event(trc::EventKind::kDrop, it->second.info.machine, dst.module,
              dst.iface + " (retired)", msg.trace_ctx);
    trace(TraceEvent::Kind::kDrop, dst.module, dst.iface + " (retired)");
    return;  // no ack: the retransmit follows the rebound binding
  }
  StreamKey stream{msg.stream_module, msg.stream_iface};
  RxStream& rx = ep.rx[stream];
  const std::uint64_t seq = msg.seq;
  bool have_it = false;
  if (seq < rx.next_expected || rx.ooo.contains(seq)) {
    ++rstats_.dup_discards;
    chaos_metric("surgeon_bus_dups_discarded_total", "message");
    rec_event(trc::EventKind::kDupDiscard, it->second.info.machine, dst.module,
              dst.iface + " seq " + std::to_string(seq), msg.trace_ctx);
    trace(TraceEvent::Kind::kDrop, dst.module,
          dst.iface + " (duplicate seq " + std::to_string(seq) + ")");
    have_it = true;  // re-ack: the first ack may have been lost
  } else if (seq == rx.next_expected) {
    deliver_into(dst.module, ep, std::move(msg));
    ++rx.next_expected;
    while (!rx.ooo.empty() && rx.ooo.begin()->first == rx.next_expected) {
      deliver_into(dst.module, ep, std::move(rx.ooo.begin()->second));
      rx.ooo.erase(rx.ooo.begin());
      ++rx.next_expected;
    }
    have_it = true;
    update_reliable_gauges();
  } else if (rx.ooo.size() < delivery_.max_ooo_buffered) {
    rx.ooo.emplace(seq, std::move(msg));
    ++rstats_.ooo_buffered;
    chaos_metric("surgeon_bus_ooo_buffered_total", "message");
    have_it = true;
    update_reliable_gauges();
  } else {
    // Window full: discard unacked; the retransmit will refill it once the
    // gap closes. Bounds receiver memory under adversarial reordering.
    ++rstats_.ooo_overflow;
    chaos_metric("surgeon_bus_ooo_overflow_total", "message");
    rec_event(trc::EventKind::kDrop, it->second.info.machine, dst.module,
              dst.iface + " seq " + std::to_string(seq) + " (ooo overflow)",
              msg.trace_ctx);
  }
  if (have_it) send_ack(dst.module, stream, seq);
}

void Bus::send_ack(const std::string& acker, const StreamKey& stream,
                   std::uint64_t seq) {
  auto sit = tx_streams_.find(stream);
  if (sit == tx_streams_.end()) return;  // sender retired the stream
  auto owner_it = modules_.find(sit->second.owner_module);
  auto acker_it = modules_.find(acker);
  if (owner_it == modules_.end() || acker_it == modules_.end()) return;
  const std::string& src_machine = acker_it->second.info.machine;
  const std::string& dst_machine = owner_it->second.info.machine;
  FaultDecision fd = consult_fault(src_machine, dst_machine);
  if (fd.drop) {
    ++rstats_.chaos_drops;
    chaos_metric("surgeon_bus_chaos_drops_total", "ack");
    return;
  }
  auto latency = sim_->message_latency(src_machine, dst_machine);
  sim_->schedule_after(latency + fd.extra_delay_us,
                       [this, acker, stream, seq] {
                         on_ack(acker, stream, seq);
                       });
}

void Bus::on_ack(const std::string& acker, const StreamKey& stream,
                 std::uint64_t seq) {
  auto sit = tx_streams_.find(stream);
  if (sit == tx_streams_.end()) return;
  TxStream& ts = sit->second;
  auto eit = ts.unacked.find(seq);
  if (eit == ts.unacked.end()) return;
  ++rstats_.acks_delivered;
  chaos_metric("surgeon_bus_acks_total", "message");
  TxEntry& entry = eit->second;
  if (!contains_name(entry.acked_by, acker)) entry.acked_by.push_back(acker);
  if (entry_fully_acked(ts, entry)) {
    ts.unacked.erase(eit);
    update_reliable_gauges();
  }
}

void Bus::migrate_streams(const BindingEnd& from_end,
                          const BindingEnd& to_end) {
  if (from_end == to_end) return;
  Endpoint& from = endpoint(from_end.module, from_end.iface);
  Endpoint& to = endpoint(to_end.module, to_end.iface);
  // Outgoing side: the heir continues the predecessor's stream, so its
  // sequence numbers keep counting and unacked messages are retransmitted
  // by (and re-resolved from) the heir's bindings.
  auto ts_it = tx_streams_.find(from.stream_id);
  if (ts_it != tx_streams_.end() &&
      ts_it->second.owner_module == from_end.module &&
      ts_it->second.owner_iface == from_end.iface) {
    ts_it->second.owner_module = to_end.module;
    ts_it->second.owner_iface = to_end.iface;
  }
  to.stream_id = from.stream_id;
  // Incoming side: merge the resequencing windows so messages the
  // predecessor already accepted stay deduplicated at the heir.
  for (auto& [stream, rxs] : from.rx) {
    RxStream& dst = to.rx[stream];
    dst.next_expected = std::max(dst.next_expected, rxs.next_expected);
    for (auto& [seq, m] : rxs.ooo) {
      if (seq >= dst.next_expected && !dst.ooo.contains(seq)) {
        dst.ooo.emplace(seq, std::move(m));
      }
    }
    while (!dst.ooo.empty() && dst.ooo.begin()->first == dst.next_expected) {
      deliver_into(to_end.module, to, std::move(dst.ooo.begin()->second));
      dst.ooo.erase(dst.ooo.begin());
      ++dst.next_expected;
    }
  }
  from.rx.clear();
  from.rx_retired = true;
  update_reliable_gauges();
}

void Bus::transmit_control(std::uint64_t id) {
  auto it = control_.find(id);
  if (it == control_.end()) return;
  ControlTx& tx = it->second;
  auto mod_it = modules_.find(tx.target);
  if (mod_it == modules_.end() || mod_it->second.epoch != tx.epoch) {
    control_.erase(it);  // target gone; nothing to deliver to
    return;
  }
  ++tx.attempts;
  const bool is_signal = tx.kind == ControlTx::Kind::kSignal;
  const char* kind_str = is_signal ? "signal" : "state";
  if (tx.attempts > 1) {
    ++rstats_.retransmits;
    chaos_metric("surgeon_bus_retransmits_total", kind_str);
    rec_event(trc::EventKind::kRetransmit, tx.from_machine, tx.target,
              std::string(kind_str) + " attempt " +
                  std::to_string(tx.attempts),
              tx.trace_ctx);
  }
  const std::string& dst_machine = mod_it->second.info.machine;
  FaultDecision fd = consult_fault(tx.from_machine, dst_machine);
  ++rstats_.transmissions;
  chaos_metric("surgeon_bus_transmissions_total", kind_str);
  if (fd.drop) {
    ++rstats_.chaos_drops;
    chaos_metric("surgeon_bus_chaos_drops_total", kind_str);
    rec_event(trc::EventKind::kDrop, tx.from_machine, tx.target,
              std::string(kind_str) + " (chaos)", tx.trace_ctx);
    return;
  }
  auto latency = sim_->message_latency(tx.from_machine, dst_machine);
  const std::string target = tx.target;
  const std::uint64_t epoch = tx.epoch;
  if (is_signal) {
    sim_->schedule_after(latency + fd.extra_delay_us,
                         [this, target, id, epoch] {
                           auto m = modules_.find(target);
                           if (m == modules_.end() || m->second.epoch != epoch)
                             return;
                           apply_signal(target, id);
                         });
  } else {
    auto bytes = tx.bytes;
    sim_->schedule_after(
        latency + fd.extra_delay_us,
        [this, target, id, epoch, bytes = std::move(bytes)] {
          auto m = modules_.find(target);
          if (m == modules_.end() || m->second.epoch != epoch) return;
          apply_state(target, id, bytes);
        });
  }
}

void Bus::arm_control_retry(std::uint64_t id, net::SimTime timeout_us) {
  sim_->schedule_after(timeout_us, [this, id] {
    auto it = control_.find(id);
    if (it == control_.end()) return;  // acked or cancelled; lazy cancel
    ControlTx& tx = it->second;
    const char* kind_str =
        tx.kind == ControlTx::Kind::kSignal ? "signal" : "state";
    if (tx.attempts >= delivery_.max_attempts) {
      ++rstats_.gave_up;
      chaos_metric("surgeon_bus_delivery_gave_up_total", kind_str);
      rec_event(trc::EventKind::kDrop, tx.from_machine, tx.target,
                std::string(kind_str) + " (gave up)", tx.trace_ctx);
      trace(TraceEvent::Kind::kDrop, tx.target,
            std::string(kind_str) + " (gave up)");
      control_.erase(it);
      return;
    }
    tx.timeout_us =
        std::min<net::SimTime>(tx.timeout_us * 2, delivery_.max_timeout_us);
    net::SimTime next = tx.timeout_us;
    transmit_control(id);
    arm_control_retry(id, next);
  });
}

void Bus::apply_signal(const std::string& module, std::uint64_t id) {
  auto it = modules_.find(module);
  if (it == modules_.end()) return;
  auto ctl_it = control_.find(id);
  const trc::TraceContext cause =
      ctl_it == control_.end() ? trc::TraceContext{}
                               : ctl_it->second.trace_ctx;
  auto& applied = applied_control_[module];
  if (contains_id(applied, id)) {
    ++rstats_.dup_discards;
    chaos_metric("surgeon_bus_dups_discarded_total", "signal");
    rec_event(trc::EventKind::kDupDiscard, it->second.info.machine, module,
              "signal id " + std::to_string(id), cause);
  } else {
    applied.push_back(id);
    it->second.reconfig_signaled = true;
    ++stats_.signals_delivered;
    if (metrics_on()) {
      metrics_->counter("surgeon_bus_signals_total", {{"module", module}})
          .inc();
    }
    rec_event(trc::EventKind::kSignal, it->second.info.machine, module,
              "reconfigure delivered", cause);
    trace(TraceEvent::Kind::kSignal, module, "reconfigure");
    wake(module);
  }
  ack_control(module, id);
}

void Bus::apply_state(const std::string& module, std::uint64_t id,
                      const std::vector<std::uint8_t>& bytes) {
  auto it = modules_.find(module);
  if (it == modules_.end()) return;
  auto ctl_it = control_.find(id);
  const trc::TraceContext cause =
      ctl_it == control_.end() ? trc::TraceContext{}
                               : ctl_it->second.trace_ctx;
  auto& applied = applied_control_[module];
  if (contains_id(applied, id)) {
    ++rstats_.dup_discards;
    chaos_metric("surgeon_bus_dups_discarded_total", "state");
    rec_event(trc::EventKind::kDupDiscard, it->second.info.machine, module,
              "state id " + std::to_string(id), cause);
  } else {
    applied.push_back(id);
    last_state_ctx_[module] = rec_event(
        trc::EventKind::kStateDeliver, it->second.info.machine, module,
        std::to_string(bytes.size()) + " bytes", cause);
    trace(TraceEvent::Kind::kStateDelivered, module,
          std::to_string(bytes.size()) + " bytes");
    if (state_observer_) state_observer_(module, "delivered", bytes);
    it->second.incoming_state = bytes;
    wake(module);
  }
  ack_control(module, id);
}

void Bus::ack_control(const std::string& module, std::uint64_t id) {
  auto it = control_.find(id);
  if (it == control_.end()) return;  // already acked
  auto mod_it = modules_.find(module);
  if (mod_it == modules_.end()) return;
  const ControlTx& tx = it->second;
  const char* kind_str =
      tx.kind == ControlTx::Kind::kSignal ? "signal" : "state";
  FaultDecision fd =
      consult_fault(mod_it->second.info.machine, tx.from_machine);
  if (fd.drop) {
    ++rstats_.chaos_drops;
    chaos_metric("surgeon_bus_chaos_drops_total", "ack");
    return;
  }
  auto latency =
      sim_->message_latency(mod_it->second.info.machine, tx.from_machine);
  std::string kind_copy = kind_str;
  sim_->schedule_after(latency + fd.extra_delay_us,
                       [this, id, kind_copy] {
                         auto cit = control_.find(id);
                         if (cit == control_.end()) return;
                         ++rstats_.acks_delivered;
                         chaos_metric("surgeon_bus_acks_total",
                                      kind_copy.c_str());
                         control_.erase(cit);
                       });
}

}  // namespace surgeon::bus
