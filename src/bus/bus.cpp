#include "bus/bus.hpp"

#include <algorithm>
#include <sstream>

#include "support/diag.hpp"

namespace surgeon::bus {

using support::BusError;

const char* iface_role_name(IfaceRole role) noexcept {
  switch (role) {
    case IfaceRole::kClient:
      return "client";
    case IfaceRole::kServer:
      return "server";
    case IfaceRole::kUse:
      return "use";
    case IfaceRole::kDefine:
      return "define";
  }
  return "?";
}

bool role_can_send(IfaceRole role) noexcept {
  return role != IfaceRole::kUse;
}

bool role_can_receive(IfaceRole role) noexcept {
  return role != IfaceRole::kDefine;
}

const char* trace_kind_name(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kDeliver: return "deliver";
    case TraceEvent::Kind::kDrop: return "drop";
    case TraceEvent::Kind::kSignal: return "signal";
    case TraceEvent::Kind::kStateDivulged: return "state-divulged";
    case TraceEvent::Kind::kStateDelivered: return "state-delivered";
    case TraceEvent::Kind::kRebind: return "rebind";
    case TraceEvent::Kind::kModuleAdded: return "module-added";
    case TraceEvent::Kind::kModuleRemoved: return "module-removed";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os << "t=" << at << "us " << trace_kind_name(kind) << " " << module;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << src_module << "." << src_iface << " [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ", ";
    os << values[i].to_string();
  }
  os << "]";
  return os.str();
}

Bus::ModuleRec& Bus::rec(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) throw BusError("unknown module: " + name);
  return it->second;
}

const Bus::ModuleRec& Bus::rec(const std::string& name) const {
  auto it = modules_.find(name);
  if (it == modules_.end()) throw BusError("unknown module: " + name);
  return it->second;
}

Bus::Endpoint& Bus::endpoint(const std::string& module,
                             const std::string& iface) {
  auto& r = rec(module);
  auto it = r.endpoints.find(iface);
  if (it == r.endpoints.end()) {
    throw BusError("module " + module + " has no interface " + iface);
  }
  return it->second;
}

const Bus::Endpoint& Bus::endpoint(const std::string& module,
                                   const std::string& iface) const {
  const auto& r = rec(module);
  auto it = r.endpoints.find(iface);
  if (it == r.endpoints.end()) {
    throw BusError("module " + module + " has no interface " + iface);
  }
  return it->second;
}

void Bus::resolve_endpoint_metrics(const std::string& module, ModuleRec& r) {
  for (auto& [iface, ep] : r.endpoints) {
    if (metrics_ == nullptr) {
      ep.sent_ctr = nullptr;
      ep.delivered_ctr = nullptr;
      ep.dropped_ctr = nullptr;
      ep.depth_gauge = nullptr;
      continue;
    }
    obs::Labels labels{{"module", module}, {"iface", iface}};
    ep.sent_ctr = &metrics_->counter("surgeon_bus_messages_sent_total", labels);
    ep.delivered_ctr =
        &metrics_->counter("surgeon_bus_messages_delivered_total", labels);
    ep.dropped_ctr =
        &metrics_->counter("surgeon_bus_messages_dropped_total", labels);
    ep.depth_gauge = &metrics_->gauge("surgeon_bus_queue_depth", labels);
  }
}

void Bus::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (auto& [name, r] : modules_) resolve_endpoint_metrics(name, r);
}

void Bus::add_module(ModuleInfo info) {
  if (modules_.contains(info.name)) {
    throw BusError("module already registered: " + info.name);
  }
  if (!sim_->has_machine(info.machine)) {
    throw BusError("module " + info.name + " placed on unknown machine " +
                   info.machine);
  }
  ModuleRec r;
  for (const auto& spec : info.interfaces) {
    if (r.endpoints.contains(spec.name)) {
      throw BusError("module " + info.name + " declares interface " +
                     spec.name + " twice");
    }
    r.endpoints.emplace(spec.name, Endpoint{spec, {}});
  }
  r.epoch = next_epoch_++;
  r.info = std::move(info);
  const std::string name = r.info.name;
  const std::string detail = "machine=" + r.info.machine +
                             " status=" + r.info.status;
  auto [it, inserted] = modules_.emplace(name, std::move(r));
  resolve_endpoint_metrics(name, it->second);
  if (metrics_on()) {
    metrics_->counter("surgeon_bus_modules_added_total").inc();
  }
  trace(TraceEvent::Kind::kModuleAdded, name, detail);
}

void Bus::remove_module(const std::string& name) {
  rec(name);  // throws if unknown
  std::erase_if(bindings_, [&](const Binding& b) {
    return b.a.module == name || b.b.module == name;
  });
  modules_.erase(name);
  if (metrics_on()) {
    metrics_->counter("surgeon_bus_modules_removed_total").inc();
  }
  trace(TraceEvent::Kind::kModuleRemoved, name, "");
}

const ModuleInfo& Bus::module_info(const std::string& name) const {
  return rec(name).info;
}

std::vector<std::string> Bus::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& [name, r] : modules_) names.push_back(name);
  return names;
}

void Bus::add_binding(const BindingEnd& a, const BindingEnd& b) {
  rebind([&] {
    BindEditBatch batch;
    batch.add(BindEdit{BindEdit::Op::kAdd, a, b});
    return batch;
  }());
}

void Bus::del_binding(const BindingEnd& a, const BindingEnd& b) {
  rebind([&] {
    BindEditBatch batch;
    batch.add(BindEdit{BindEdit::Op::kDel, a, b});
    return batch;
  }());
}

std::vector<std::string> Bus::interface_names(const std::string& module) const {
  const auto& r = rec(module);
  std::vector<std::string> names;
  names.reserve(r.endpoints.size());
  for (const auto& [name, ep] : r.endpoints) names.push_back(name);
  return names;
}

std::vector<BindingEnd> Bus::bound_peers(const BindingEnd& end) const {
  std::vector<BindingEnd> peers;
  for (const auto& b : bindings_) {
    if (b.involves(end)) peers.push_back(b.peer_of(end));
  }
  return peers;
}

void Bus::validate_edit(const BindEdit& edit) const {
  auto check_end = [&](const BindingEnd& e) {
    endpoint(e.module, e.iface);  // throws if module/interface unknown
  };
  switch (edit.op) {
    case BindEdit::Op::kAdd: {
      check_end(edit.a);
      check_end(edit.b);
      Binding want{edit.a, edit.b};
      Binding flipped{edit.b, edit.a};
      if (std::find(bindings_.begin(), bindings_.end(), want) !=
              bindings_.end() ||
          std::find(bindings_.begin(), bindings_.end(), flipped) !=
              bindings_.end()) {
        throw BusError("binding already exists: " + edit.a.module + "." +
                       edit.a.iface + " -- " + edit.b.module + "." +
                       edit.b.iface);
      }
      break;
    }
    case BindEdit::Op::kDel: {
      Binding want{edit.a, edit.b};
      Binding flipped{edit.b, edit.a};
      if (std::find(bindings_.begin(), bindings_.end(), want) ==
              bindings_.end() &&
          std::find(bindings_.begin(), bindings_.end(), flipped) ==
              bindings_.end()) {
        throw BusError("no such binding to delete: " + edit.a.module + "." +
                       edit.a.iface + " -- " + edit.b.module + "." +
                       edit.b.iface);
      }
      break;
    }
    case BindEdit::Op::kCaptureQueue:
      check_end(edit.a);
      check_end(edit.b);
      break;
    case BindEdit::Op::kRemoveQueue:
      check_end(edit.a);
      break;
  }
}

void Bus::apply_edit(const BindEdit& edit) {
  switch (edit.op) {
    case BindEdit::Op::kAdd:
      bindings_.push_back(Binding{edit.a, edit.b});
      break;
    case BindEdit::Op::kDel: {
      Binding want{edit.a, edit.b};
      Binding flipped{edit.b, edit.a};
      std::erase_if(bindings_, [&](const Binding& b) {
        return b == want || b == flipped;
      });
      break;
    }
    case BindEdit::Op::kCaptureQueue: {
      auto& from = endpoint(edit.a.module, edit.a.iface);
      auto& to = endpoint(edit.b.module, edit.b.iface);
      bool moved = !from.queue.empty();
      while (!from.queue.empty()) {
        to.queue.push_back(std::move(from.queue.front()));
        from.queue.pop_front();
      }
      note_depth(from);
      note_depth(to);
      if (moved) wake(edit.b.module);
      break;
    }
    case BindEdit::Op::kRemoveQueue: {
      auto& ep = endpoint(edit.a.module, edit.a.iface);
      ep.queue.clear();
      note_depth(ep);
      break;
    }
  }
}

void Bus::rebind(const BindEditBatch& batch) {
  // Validation pass first so the batch is all-or-nothing. kAdd/kDel pairs
  // that cancel within the batch (delete then re-add the same ends) are
  // validated against the *current* table; Figure 5 only ever deletes
  // existing bindings and adds new ones, so sequential validation against
  // the pre-state plus in-batch adds is sufficient and simplest.
  std::vector<Binding> saved = bindings_;
  try {
    for (const auto& edit : batch.edits()) {
      validate_edit(edit);
      if (edit.op == BindEdit::Op::kAdd || edit.op == BindEdit::Op::kDel) {
        apply_edit(edit);
      }
    }
    // Queue moves happen after the bind table settles, as in Figure 5 where
    // "cap"/"rmq" commands ride in the same atomic batch.
    for (const auto& edit : batch.edits()) {
      if (edit.op == BindEdit::Op::kCaptureQueue ||
          edit.op == BindEdit::Op::kRemoveQueue) {
        apply_edit(edit);
      }
    }
    if (batch.size() != 0) {
      if (metrics_on()) {
        metrics_->counter("surgeon_bus_rebinds_total").inc();
        metrics_
            ->histogram("surgeon_bus_rebind_edits", {},
                        {1, 4, 16, 64, 256, 1024})
            .observe(batch.size());
      }
      trace(TraceEvent::Kind::kRebind, batch.edits().front().a.module,
            std::to_string(batch.size()) + " edits");
    }
  } catch (...) {
    bindings_ = std::move(saved);
    throw;
  }
}

void Bus::send(const std::string& module, const std::string& iface,
               std::vector<ser::Value> values) {
  auto& ep = endpoint(module, iface);
  if (!role_can_send(ep.spec.role)) {
    throw BusError("interface " + module + "." + iface + " (role " +
                   iface_role_name(ep.spec.role) + ") cannot send");
  }
  ++stats_.messages_sent;
  if (metrics_on()) ep.sent_ctr->inc();
  trace(TraceEvent::Kind::kSend, module, iface);
  auto peers = bound_peers(BindingEnd{module, iface});
  if (peers.empty()) {
    ++stats_.messages_dropped_unbound;
    if (metrics_on()) ep.dropped_ctr->inc();
    trace(TraceEvent::Kind::kDrop, module, iface + " (unbound)");
    return;
  }
  const std::string& src_machine = rec(module).info.machine;
  for (const auto& peer : peers) {
    const auto& dst_rec = rec(peer.module);
    auto latency = sim_->message_latency(src_machine, dst_rec.info.machine);
    Message msg{values, module, iface};
    std::uint64_t epoch = dst_rec.epoch;
    sim_->schedule_after(latency, [this, peer, msg = std::move(msg),
                                   epoch]() mutable {
      auto it = modules_.find(peer.module);
      if (it == modules_.end() || it->second.epoch != epoch) {
        // Destination was removed (or replaced) while the message was in
        // flight; the reconfiguration script is responsible for moving any
        // *queued* messages, but in-flight ones to a dead module drop.
        ++stats_.messages_dropped_unbound;
        if (metrics_on()) {
          // The endpoint (and its cached handle) is gone; rare path, so a
          // registry lookup per drop is fine.
          metrics_
              ->counter("surgeon_bus_messages_dropped_total",
                        {{"module", peer.module}, {"iface", peer.iface}})
              .inc();
        }
        trace(TraceEvent::Kind::kDrop, peer.module,
              peer.iface + " (in flight to removed module)");
        return;
      }
      auto ep_it = it->second.endpoints.find(peer.iface);
      if (ep_it == it->second.endpoints.end()) {
        ++stats_.messages_dropped_unbound;
        trace(TraceEvent::Kind::kDrop, peer.module, peer.iface);
        return;
      }
      ep_it->second.queue.push_back(std::move(msg));
      ++stats_.messages_delivered;
      if (metrics_on()) {
        ep_it->second.delivered_ctr->inc();
        note_depth(ep_it->second);
      }
      trace(TraceEvent::Kind::kDeliver, peer.module, peer.iface);
      wake(peer.module);
    });
  }
}

bool Bus::has_message(const std::string& module,
                      const std::string& iface) const {
  return !endpoint(module, iface).queue.empty();
}

std::optional<Message> Bus::receive(const std::string& module,
                                    const std::string& iface) {
  auto& ep = endpoint(module, iface);
  if (!role_can_receive(ep.spec.role)) {
    throw BusError("interface " + module + "." + iface + " (role " +
                   iface_role_name(ep.spec.role) + ") cannot receive");
  }
  if (ep.queue.empty()) return std::nullopt;
  Message msg = std::move(ep.queue.front());
  ep.queue.pop_front();
  note_depth(ep);
  return msg;
}

std::size_t Bus::queue_depth(const std::string& module,
                             const std::string& iface) const {
  return endpoint(module, iface).queue.size();
}

void Bus::signal_reconfig(const std::string& module) {
  std::uint64_t epoch = rec(module).epoch;
  sim_->schedule_after(sim_->latency_model().local_us, [this, module, epoch] {
    auto it = modules_.find(module);
    if (it == modules_.end() || it->second.epoch != epoch) return;
    it->second.reconfig_signaled = true;
    ++stats_.signals_delivered;
    if (metrics_on()) {
      metrics_->counter("surgeon_bus_signals_total", {{"module", module}})
          .inc();
    }
    trace(TraceEvent::Kind::kSignal, module, "reconfigure");
    wake(module);
  });
}

bool Bus::take_pending_signal(const std::string& module) {
  auto& r = rec(module);
  bool was = r.reconfig_signaled;
  r.reconfig_signaled = false;
  return was;
}

void Bus::post_divulged_state(const std::string& module,
                              std::vector<std::uint8_t> bytes) {
  auto& r = rec(module);
  if (r.divulged_state.has_value()) {
    throw BusError("module " + module +
                   " divulged state twice without a collection");
  }
  stats_.state_bytes_moved += bytes.size();
  ++stats_.state_transfers;
  if (metrics_on()) {
    metrics_->counter("surgeon_bus_state_transfers_total").inc();
    metrics_->counter("surgeon_bus_state_bytes_total").inc(bytes.size());
  }
  trace(TraceEvent::Kind::kStateDivulged, module,
        std::to_string(bytes.size()) + " bytes");
  r.divulged_state = std::move(bytes);
}

bool Bus::has_divulged_state(const std::string& module) const {
  return rec(module).divulged_state.has_value();
}

std::vector<std::uint8_t> Bus::take_divulged_state(const std::string& module) {
  auto& r = rec(module);
  if (!r.divulged_state.has_value()) {
    throw BusError("module " + module + " has not divulged state");
  }
  auto bytes = std::move(*r.divulged_state);
  r.divulged_state.reset();
  return bytes;
}

void Bus::deliver_state(const std::string& from_machine,
                        const std::string& to_module,
                        std::vector<std::uint8_t> bytes) {
  const auto& dst = rec(to_module);
  auto latency = sim_->message_latency(from_machine, dst.info.machine);
  std::uint64_t epoch = dst.epoch;
  sim_->schedule_after(latency,
                       [this, to_module, epoch, bytes = std::move(bytes)] {
                         auto it = modules_.find(to_module);
                         if (it == modules_.end() || it->second.epoch != epoch)
                           return;
                         trace(TraceEvent::Kind::kStateDelivered, to_module,
                               std::to_string(bytes.size()) + " bytes");
                         it->second.incoming_state = bytes;
                         wake(to_module);
                       });
}

std::optional<std::vector<std::uint8_t>> Bus::take_incoming_state(
    const std::string& module) {
  auto& r = rec(module);
  if (!r.incoming_state.has_value()) return std::nullopt;
  auto bytes = std::move(*r.incoming_state);
  r.incoming_state.reset();
  return bytes;
}

bool Bus::has_incoming_state(const std::string& module) const {
  return rec(module).incoming_state.has_value();
}

}  // namespace surgeon::bus
