#include "bus/bus.hpp"

#include <algorithm>
#include <sstream>

#include "support/diag.hpp"

namespace surgeon::bus {

using support::BusError;

const char* iface_role_name(IfaceRole role) noexcept {
  switch (role) {
    case IfaceRole::kClient:
      return "client";
    case IfaceRole::kServer:
      return "server";
    case IfaceRole::kUse:
      return "use";
    case IfaceRole::kDefine:
      return "define";
  }
  return "?";
}

bool role_can_send(IfaceRole role) noexcept {
  return role != IfaceRole::kUse;
}

bool role_can_receive(IfaceRole role) noexcept {
  return role != IfaceRole::kDefine;
}

const char* trace_kind_name(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kDeliver: return "deliver";
    case TraceEvent::Kind::kDrop: return "drop";
    case TraceEvent::Kind::kSignal: return "signal";
    case TraceEvent::Kind::kStateDivulged: return "state-divulged";
    case TraceEvent::Kind::kStateDelivered: return "state-delivered";
    case TraceEvent::Kind::kRebind: return "rebind";
    case TraceEvent::Kind::kModuleAdded: return "module-added";
    case TraceEvent::Kind::kModuleRemoved: return "module-removed";
    case TraceEvent::Kind::kModuleCrashed: return "module-crashed";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  std::ostringstream os;
  os << "t=" << at << "us " << trace_kind_name(kind) << " " << module;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

Bus::ModuleRec& Bus::rec(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) throw BusError("unknown module: " + name);
  return it->second;
}

const Bus::ModuleRec& Bus::rec(const std::string& name) const {
  auto it = modules_.find(name);
  if (it == modules_.end()) throw BusError("unknown module: " + name);
  return it->second;
}

// --- slab ---------------------------------------------------------------------

EndpointId Bus::acquire_slot() {
  EndpointId slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slab_[slot].next_free;
  } else {
    slot = static_cast<EndpointId>(slab_.size());
    slab_.emplace_back();
    slab_[slot].generation = 1;  // generation 0 never names a live slot
  }
  Endpoint& ep = slab_[slot];
  ep.in_use = true;
  ep.next_free = kNoSlot;
  return slot;
}

void Bus::release_slot(EndpointId slot) {
  Endpoint& ep = slab_[slot];
  ep.in_use = false;
  ++ep.generation;  // every outstanding ref to this slot is now stale
  ep.owner = nullptr;
  ep.can_send = false;
  ep.can_receive = false;
  ep.queue.clear();
  ep.rx.clear();
  ep.rx_retired = false;
  ep.peers.clear();
  ep.stream_id = 0;
  ep.sent_ctr = nullptr;
  ep.delivered_ctr = nullptr;
  ep.dropped_ctr = nullptr;
  ep.depth_gauge = nullptr;
  // ep.module / ep.spec are retained so traffic still in flight toward the
  // retired endpoint can name it in drop diagnostics.
  ep.next_free = free_head_;
  free_head_ = slot;
}

EndpointId Bus::resolve_slot(const std::string& module,
                             const std::string& iface) const {
  auto mit = modules_.find(module);
  if (mit == modules_.end()) throw BusError("unknown module: " + module);
  auto iit = mit->second.by_iface.find(iface);
  if (iit == mit->second.by_iface.end()) {
    throw BusError("module " + module + " has no interface " + iface);
  }
  return iit->second;
}

EndpointRef Bus::resolve_endpoint(const std::string& module,
                                  const std::string& iface) const {
  return ref_of(resolve_slot(module, iface));
}

BindingEnd Bus::endpoint_name(EndpointRef ref) const {
  const EndpointId slot = endpoint_slot(ref);
  if (slot >= slab_.size() || endpoint_generation(ref) == 0) {
    throw BusError("invalid endpoint handle");
  }
  const Endpoint& ep = slab_[slot];
  return BindingEnd{ep.module, ep.spec.name};
}

// --- adjacency compilation ----------------------------------------------------

void Bus::link_endpoints(EndpointId a, EndpointId b) {
  auto one_way = [this](EndpointId src_slot, EndpointId dst_slot) {
    Endpoint& src = slab_[src_slot];
    Endpoint& dst = slab_[dst_slot];
    PeerLink pl;
    pl.ref = ref_of(dst_slot);
    pl.src_machine = &src.owner->info.machine;
    pl.dst_machine = &dst.owner->info.machine;
    pl.same_machine = *pl.src_machine == *pl.dst_machine;
    src.peers.push_back(pl);
  };
  one_way(a, b);
  if (a != b) one_way(b, a);
}

void Bus::unlink_endpoints(EndpointId a, EndpointId b) {
  std::erase_if(slab_[a].peers, [&](const PeerLink& pl) {
    return endpoint_slot(pl.ref) == b;
  });
  if (a != b) {
    std::erase_if(slab_[b].peers, [&](const PeerLink& pl) {
      return endpoint_slot(pl.ref) == a;
    });
  }
}

bool Bus::linked(EndpointId a, EndpointId b) const {
  for (const PeerLink& pl : slab_[a].peers) {
    if (endpoint_slot(pl.ref) == b) return true;
  }
  return false;
}

void Bus::rebuild_adjacency() {
  for (Endpoint& ep : slab_) ep.peers.clear();
  // Per-endpoint peer order falls out of bind-table order, matching what the
  // old per-send bindings_ scan produced — chaos golden runs depend on it.
  for (const Binding& b : bindings_) {
    link_endpoints(resolve_slot(b.a.module, b.a.iface),
                   resolve_slot(b.b.module, b.b.iface));
  }
}

// --- metrics / tracer attachment ---------------------------------------------

void Bus::resolve_endpoint_metrics(ModuleRec& r) {
  for (EndpointId slot : r.slots) {
    Endpoint& ep = slab_[slot];
    if (metrics_ == nullptr) {
      ep.sent_ctr = nullptr;
      ep.delivered_ctr = nullptr;
      ep.dropped_ctr = nullptr;
      ep.depth_gauge = nullptr;
      continue;
    }
    obs::Labels labels{{"module", r.info.name}, {"iface", ep.spec.name}};
    ep.sent_ctr = &metrics_->counter("surgeon_bus_messages_sent_total", labels);
    ep.delivered_ctr =
        &metrics_->counter("surgeon_bus_messages_delivered_total", labels);
    ep.dropped_ctr =
        &metrics_->counter("surgeon_bus_messages_dropped_total", labels);
    ep.depth_gauge = &metrics_->gauge("surgeon_bus_queue_depth", labels);
  }
}

void Bus::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (auto& [name, r] : modules_) resolve_endpoint_metrics(r);
}

void Bus::set_tracer(trc::Recorder* tracer) {
  tracer_ = tracer;
  for (auto& [name, r] : modules_) {
    r.trace_site = tracer_ != nullptr
                       ? tracer_->resolve_site(r.info.machine, name)
                       : trc::Recorder::Site{};
  }
}

void Bus::set_request_entry(const std::string& module,
                            const std::string& iface, bool on) {
  slab_[resolve_slot(module, iface)].request_entry = on;
}

void Bus::set_request_terminal(const std::string& module,
                               const std::string& iface, bool on) {
  slab_[resolve_slot(module, iface)].request_terminal = on;
}

// --- module / binding configuration ------------------------------------------

void Bus::add_module(ModuleInfo info) {
  if (modules_.contains(info.name)) {
    throw BusError("module already registered: " + info.name);
  }
  if (!sim_->has_machine(info.machine)) {
    throw BusError("module " + info.name + " placed on unknown machine " +
                   info.machine);
  }
  for (std::size_t i = 0; i < info.interfaces.size(); ++i) {
    for (std::size_t j = i + 1; j < info.interfaces.size(); ++j) {
      if (info.interfaces[i].name == info.interfaces[j].name) {
        throw BusError("module " + info.name + " declares interface " +
                       info.interfaces[i].name + " twice");
      }
    }
  }
  const std::string name = info.name;
  ++module_topology_gen_;
  auto [it, inserted] = modules_.emplace(name, ModuleRec{});
  ModuleRec& r = it->second;
  r.info = std::move(info);
  r.uid = next_uid_++;
  for (const InterfaceSpec& spec : r.info.interfaces) {
    const EndpointId slot = acquire_slot();
    Endpoint& ep = slab_[slot];
    ep.spec = spec;
    ep.module = name;
    ep.owner = &r;  // map nodes are stable; valid until remove_module
    ep.can_send = role_can_send(spec.role);
    ep.can_receive = role_can_receive(spec.role);
    ep.stream_id = ref_of(slot);  // fresh stream identity for this tenant
    r.slots.push_back(slot);
    r.by_iface.emplace(spec.name, slot);
  }
  resolve_endpoint_metrics(r);
  if (tracer_ != nullptr) {
    r.trace_site = tracer_->resolve_site(r.info.machine, name);
  }
  const std::string detail =
      "machine=" + r.info.machine + " status=" + r.info.status;
  if (metrics_on()) {
    metrics_->counter("surgeon_bus_modules_added_total").inc();
  }
  rec_event(trc::EventKind::kModuleAdded, r.info.machine, name, detail);
  trace(TraceEvent::Kind::kModuleAdded, name, detail);
}

void Bus::remove_module(const std::string& name) {
  ModuleRec& r = rec(name);  // throws if unknown
  // Zero the departing queue-depth gauges so a removed module cannot leak a
  // stale non-zero depth into the registry.
  if (metrics_on()) {
    for (EndpointId slot : r.slots) {
      if (slab_[slot].depth_gauge != nullptr) slab_[slot].depth_gauge->set(0);
    }
  }
  // Retire reliable bookkeeping the module's endpoints still own. Streams
  // whose ownership migrated to an heir via queue capture are left alone.
  std::erase_if(tx_streams_, [&](const auto& kv) {
    const Endpoint* owner_ep = deref(kv.second.owner);
    return owner_ep != nullptr && owner_ep->owner == &r;
  });
  std::erase_if(control_, [&](const auto& kv) {
    return kv.second.target == name;
  });
  std::erase_if(bindings_, [&](const Binding& b) {
    return b.a.module == name || b.b.module == name;
  });
  const std::string machine = r.info.machine;
  for (EndpointId slot : r.slots) release_slot(slot);
  ++module_topology_gen_;
  modules_.erase(name);
  last_state_ctx_.erase(name);
  rebuild_adjacency();
  if (metrics_on()) {
    metrics_->counter("surgeon_bus_modules_removed_total").inc();
  }
  rec_event(trc::EventKind::kModuleRemoved, machine, name, "");
  trace(TraceEvent::Kind::kModuleRemoved, name, "");
}

const ModuleInfo& Bus::module_info(const std::string& name) const {
  return rec(name).info;
}

std::vector<std::string> Bus::module_names() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& [name, r] : modules_) names.push_back(name);
  return names;
}

void Bus::add_binding(const BindingEnd& a, const BindingEnd& b) {
  rebind([&] {
    BindEditBatch batch;
    batch.add(BindEdit{BindEdit::Op::kAdd, a, b});
    return batch;
  }());
}

void Bus::del_binding(const BindingEnd& a, const BindingEnd& b) {
  rebind([&] {
    BindEditBatch batch;
    batch.add(BindEdit{BindEdit::Op::kDel, a, b});
    return batch;
  }());
}

std::vector<std::string> Bus::interface_names(const std::string& module) const {
  const auto& r = rec(module);
  std::vector<std::string> names;
  names.reserve(r.by_iface.size());
  for (const auto& [name, slot] : r.by_iface) names.push_back(name);
  return names;
}

std::vector<BindingEnd> Bus::bound_peers(const BindingEnd& end) const {
  std::vector<BindingEnd> peers;
  auto mit = modules_.find(end.module);
  if (mit == modules_.end()) return peers;
  auto iit = mit->second.by_iface.find(end.iface);
  if (iit == mit->second.by_iface.end()) return peers;
  const Endpoint& ep = slab_[iit->second];
  peers.reserve(ep.peers.size());
  for (const PeerLink& pl : ep.peers) {
    const Endpoint& peer = slab_[endpoint_slot(pl.ref)];
    peers.push_back(BindingEnd{peer.module, peer.spec.name});
  }
  return peers;
}

void Bus::validate_edit(const BindEdit& edit) const {
  switch (edit.op) {
    case BindEdit::Op::kAdd: {
      const EndpointId a = resolve_slot(edit.a.module, edit.a.iface);
      const EndpointId b = resolve_slot(edit.b.module, edit.b.iface);
      if (linked(a, b)) {
        throw BusError("binding already exists: " + edit.a.module + "." +
                       edit.a.iface + " -- " + edit.b.module + "." +
                       edit.b.iface);
      }
      break;
    }
    case BindEdit::Op::kDel: {
      auto slot_of = [this](const BindingEnd& e) -> std::optional<EndpointId> {
        auto mit = modules_.find(e.module);
        if (mit == modules_.end()) return std::nullopt;
        auto iit = mit->second.by_iface.find(e.iface);
        if (iit == mit->second.by_iface.end()) return std::nullopt;
        return iit->second;
      };
      auto a = slot_of(edit.a);
      auto b = slot_of(edit.b);
      if (!a.has_value() || !b.has_value() || !linked(*a, *b)) {
        throw BusError("no such binding to delete: " + edit.a.module + "." +
                       edit.a.iface + " -- " + edit.b.module + "." +
                       edit.b.iface);
      }
      break;
    }
    case BindEdit::Op::kCaptureQueue:
      (void)resolve_slot(edit.a.module, edit.a.iface);
      (void)resolve_slot(edit.b.module, edit.b.iface);
      break;
    case BindEdit::Op::kRemoveQueue:
      (void)resolve_slot(edit.a.module, edit.a.iface);
      break;
  }
}

void Bus::apply_edit(const BindEdit& edit) {
  switch (edit.op) {
    case BindEdit::Op::kAdd:
      bindings_.push_back(Binding{edit.a, edit.b});
      link_endpoints(resolve_slot(edit.a.module, edit.a.iface),
                     resolve_slot(edit.b.module, edit.b.iface));
      break;
    case BindEdit::Op::kDel: {
      Binding want{edit.a, edit.b};
      Binding flipped{edit.b, edit.a};
      std::erase_if(bindings_, [&](const Binding& b) {
        return b == want || b == flipped;
      });
      unlink_endpoints(resolve_slot(edit.a.module, edit.a.iface),
                       resolve_slot(edit.b.module, edit.b.iface));
      break;
    }
    case BindEdit::Op::kCaptureQueue: {
      Endpoint& from = endpoint(edit.a.module, edit.a.iface);
      Endpoint& to = endpoint(edit.b.module, edit.b.iface);
      const std::size_t captured = from.queue.size();
      bool moved = !from.queue.empty();
      // Every captured message aged (now - sent_at) behind the replacement:
      // the per-message disruption distribution. Capture is a cold path, so
      // the per-batch registry lookup is fine.
      obs::Histogram* delay_hist = nullptr;
      if (moved && metrics_on()) {
        delay_hist = &metrics_->histogram("surgeon_reconfig_queued_delay_us",
                                          {{"module", edit.a.module}});
      }
      const std::uint64_t capture_now = sim_->now();
      while (!from.queue.empty()) {
        // Queued messages keep their trace headers: the clone inherits
        // the predecessor's causal history along with its traffic.
        if (delay_hist != nullptr) {
          const std::uint64_t sent = from.queue.front().sent_at;
          delay_hist->observe(capture_now >= sent ? capture_now - sent : 0);
        }
        to.queue.push_back(std::move(from.queue.front()));
        from.queue.pop_front();
      }
      rec_event(trc::EventKind::kCapture,
                machine_of_or(edit.b.module, "bus"), edit.b.module,
                "from=" + edit.a.module + "." + edit.a.iface +
                    " moved=" + std::to_string(captured),
                last_rebind_ctx_);
      // Channel state rides with the queue: the heir continues the
      // predecessor's outgoing stream and inherits its resequencing
      // windows, so dedup/ordering survive the replacement.
      migrate_streams(edit.a, edit.b);
      // So does the request conversation: the clone inherits the captured
      // endpoint's entry/terminal tagging and -- when it has none of its
      // own -- the module's in-flight request context, so a request caught
      // mid-hop by a replacement keeps its end-to-end identity.
      to.request_entry = to.request_entry || from.request_entry;
      to.request_terminal = to.request_terminal || from.request_terminal;
      if (to.owner->request_ctx.request == 0) {
        to.owner->request_ctx = from.owner->request_ctx;
      }
      note_depth(from);
      note_depth(to);
      if (moved) wake(edit.b.module);
      break;
    }
    case BindEdit::Op::kRemoveQueue: {
      Endpoint& ep = endpoint(edit.a.module, edit.a.iface);
      ep.queue.clear();
      ep.rx.clear();
      note_depth(ep);
      break;
    }
  }
}

void Bus::rebind(const BindEditBatch& batch) {
  // Validation pass first so the batch is all-or-nothing. kAdd/kDel pairs
  // that cancel within the batch (delete then re-add the same ends) are
  // validated against the *current* table; Figure 5 only ever deletes
  // existing bindings and adds new ones, so sequential validation against
  // the pre-state plus in-batch adds is sufficient and simplest.
  std::vector<Binding> saved = bindings_;
  try {
    for (const auto& edit : batch.edits()) {
      validate_edit(edit);
      if (edit.op == BindEdit::Op::kAdd || edit.op == BindEdit::Op::kDel) {
        apply_edit(edit);
      }
    }
    // The rebind event is recorded once the bind table has settled and
    // before any queue capture, so captures (and the deliveries they flush
    // into the clone) sit causally after the rebind. Its cause is the last
    // divulge: Figure 5 only edits bindings after quiescence was proven.
    if (batch.size() != 0 && tracer_on()) {
      std::vector<std::string> involved;
      for (const auto& edit : batch.edits()) {
        for (const std::string* m : {&edit.a.module, &edit.b.module}) {
          if (m->empty() ||
              (edit.op == BindEdit::Op::kRemoveQueue && m == &edit.b.module)) {
            continue;
          }
          if (std::find(involved.begin(), involved.end(), *m) ==
              involved.end()) {
            involved.push_back(*m);
          }
        }
      }
      std::string list;
      for (const auto& m : involved) {
        if (!list.empty()) list += ',';
        list += m;
      }
      last_rebind_ctx_ = rec_event(
          trc::EventKind::kRebind,
          control_machine_.empty() ? "bus" : control_machine_,
          batch.edits().front().a.module,
          "edits=" + std::to_string(batch.size()) + " modules=" + list,
          last_divulge_ctx_);
    }
    // Queue moves happen after the bind table settles, as in Figure 5 where
    // "cap"/"rmq" commands ride in the same atomic batch.
    for (const auto& edit : batch.edits()) {
      if (edit.op == BindEdit::Op::kCaptureQueue ||
          edit.op == BindEdit::Op::kRemoveQueue) {
        apply_edit(edit);
      }
    }
    if (batch.size() != 0) {
      if (metrics_on()) {
        metrics_->counter("surgeon_bus_rebinds_total").inc();
        metrics_
            ->histogram("surgeon_bus_rebind_edits", {},
                        {1, 4, 16, 64, 256, 1024})
            .observe(batch.size());
      }
      trace(TraceEvent::Kind::kRebind, batch.edits().front().a.module,
            std::to_string(batch.size()) + " edits");
    }
  } catch (...) {
    bindings_ = std::move(saved);
    rebuild_adjacency();  // adjacency may reflect partially applied edits
    throw;
  }
}

// --- in-flight pool -----------------------------------------------------------

std::uint32_t Bus::inflight_acquire(EndpointRef dst, Message msg) {
  std::uint32_t slot;
  if (inflight_free_ != kNoSlot) {
    slot = inflight_free_;
    inflight_free_ = inflight_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(inflight_.size());
    inflight_.emplace_back();
  }
  InFlight& f = inflight_[slot];
  f.msg = std::move(msg);
  f.dst = dst;
  f.next_free = kNoSlot;
  return slot;
}

void Bus::inflight_release(std::uint32_t slot) {
  InFlight& f = inflight_[slot];
  f.dst = kNullEndpointRef;
  f.next_free = inflight_free_;
  inflight_free_ = slot;
}

void Bus::arrive_inflight(std::uint32_t slot) {
  Message msg = std::move(inflight_[slot].msg);
  const EndpointRef dst = inflight_[slot].dst;
  inflight_release(slot);
  Endpoint* ep = deref(dst);
  if (ep == nullptr) {
    drop_stale_arrival(dst, msg);
    return;
  }
  deliver_into(*ep, std::move(msg));
}

void Bus::reliable_arrive_inflight(std::uint32_t slot) {
  Message msg = std::move(inflight_[slot].msg);
  const EndpointRef dst = inflight_[slot].dst;
  inflight_release(slot);
  reliable_arrive(dst, std::move(msg));
}

void Bus::drop_stale_arrival(EndpointRef dst, const Message& msg) {
  // Destination was removed (or replaced) while the message was in flight;
  // the reconfiguration script is responsible for moving any *queued*
  // messages, but in-flight ones to a dead module drop. The retired slab
  // slot keeps its last tenant's names for exactly this diagnostic.
  ++stats_.messages_dropped_unbound;
  const Endpoint& gone = slab_[endpoint_slot(dst)];
  if (metrics_on()) {
    // The endpoint's cached counter handle is gone; rare path, so a
    // registry lookup per drop is fine.
    metrics_
        ->counter("surgeon_bus_messages_dropped_total",
                  {{"module", gone.module}, {"iface", gone.spec.name}})
        .inc();
  }
  rec_event(trc::EventKind::kDrop, machine_of_or(gone.module, "bus"),
            gone.module, gone.spec.name + " (in flight to removed module)",
            msg.trace_ctx);
  if (trace_) {
    trace(TraceEvent::Kind::kDrop, gone.module,
          gone.spec.name + " (in flight to removed module)");
  }
}

// --- messaging ----------------------------------------------------------------

void Bus::send(const std::string& module, const std::string& iface,
               std::vector<ser::Value> values) {
  const EndpointId slot = resolve_slot(module, iface);
  send_from(ref_of(slot), slab_[slot], std::move(values));
}

void Bus::send(EndpointRef ref, std::vector<ser::Value> values) {
  Endpoint* ep = deref(ref);
  if (ep == nullptr) throw BusError("send on stale endpoint handle");
  send_from(ref, *ep, std::move(values));
}

void Bus::send_from(EndpointRef ref, Endpoint& ep,
                    std::vector<ser::Value> values) {
  if (!ep.can_send) {
    throw BusError("interface " + ep.module + "." + ep.spec.name + " (role " +
                   iface_role_name(ep.spec.role) + ") cannot send");
  }
  ++stats_.messages_sent;
  if (metrics_on()) ep.sent_ctr->inc();
  trc::TraceContext send_ctx;
  if (tracer_on()) {  // guard: skips the record lookup when tracing is off
    // Request tagging: an entry iface opens a fresh request id via a
    // synthetic cause (event == 0 — no false edge, just inheritance);
    // otherwise the send inherits the module's last dequeued request
    // context (invalid for untagged traffic, leaving the event unchanged).
    trc::TraceContext cause;
    if (ep.request_entry) {
      cause.request = tracer_->new_request();
    } else {
      cause = ep.owner->request_ctx;
    }
    send_ctx = tracer_->record_at(ep.owner->trace_site, trc::EventKind::kSend,
                                  ep.owner->info.machine, ep.module,
                                  ep.spec.name, cause);
  }
  if (trace_) trace(TraceEvent::Kind::kSend, ep.module, ep.spec.name);
  if (ep.peers.empty()) {
    ++stats_.messages_dropped_unbound;
    if (metrics_on()) ep.dropped_ctr->inc();
    rec_event(trc::EventKind::kDrop, ep.owner->info.machine, ep.module,
              ep.spec.name + " (unbound)", send_ctx);
    if (trace_) {
      trace(TraceEvent::Kind::kDrop, ep.module, ep.spec.name + " (unbound)");
    }
    return;
  }
  if (delivery_.reliable) {
    Message msg;
    msg.values = std::move(values);
    msg.src = ref;
    msg.sent_at = sim_->now();
    msg.trace_ctx = send_ctx;
    reliable_send(ref, ep, std::move(msg));
    return;
  }
  const std::size_t n = ep.peers.size();
  for (std::size_t i = 0; i < n; ++i) {
    const PeerLink pl = ep.peers[i];  // by value: the fault hook may rebind
    net::SimTime latency = sim_->link_latency(pl.same_machine);
    FaultDecision fd;
    if (fault_) fd = fault_(*pl.src_machine, *pl.dst_machine);
    if (fd.drop) {
      ++rstats_.chaos_drops;
      chaos_metric("surgeon_bus_chaos_drops_total", "message");
      if (tracer_on() || trace_) {
        const Endpoint& dst = slab_[endpoint_slot(pl.ref)];
        rec_event(trc::EventKind::kDrop, *pl.src_machine, dst.module,
                  dst.spec.name + " (chaos)", send_ctx);
        if (trace_) {
          trace(TraceEvent::Kind::kDrop, dst.module,
                dst.spec.name + " (chaos)");
        }
      }
      continue;
    }
    if (fd.duplicate) {
      // Fire-and-forget has no dedup: the duplicate is simply delivered
      // twice (the tests demonstrating why reliability matters rely on it).
      ++rstats_.dup_injected;
      chaos_metric("surgeon_bus_dup_injected_total", "message");
      Message dup;
      dup.values = values;
      dup.src = ref;
      dup.sent_at = sim_->now();
      dup.trace_ctx = send_ctx;
      const std::uint32_t fslot = inflight_acquire(pl.ref, std::move(dup));
      sim_->schedule_after(latency + fd.duplicate_delay_us,
                           [this, fslot] { arrive_inflight(fslot); });
    }
    latency += fd.extra_delay_us;
    Message msg;
    if (i + 1 == n) {
      msg.values = std::move(values);
    } else {
      msg.values = values;
    }
    msg.src = ref;
    msg.sent_at = sim_->now();
    msg.trace_ctx = send_ctx;
    const std::uint32_t fslot = inflight_acquire(pl.ref, std::move(msg));
    sim_->schedule_after(latency, [this, fslot] { arrive_inflight(fslot); });
  }
}

bool Bus::has_message(const std::string& module,
                      const std::string& iface) const {
  return !endpoint(module, iface).queue.empty();
}

bool Bus::has_message(EndpointRef ref) const {
  const Endpoint* ep = deref(ref);
  if (ep == nullptr) throw BusError("query on stale endpoint handle");
  return !ep->queue.empty();
}

std::optional<Message> Bus::receive(EndpointRef ref) {
  Endpoint* ep = deref(ref);
  if (ep == nullptr) throw BusError("receive on stale endpoint handle");
  if (!ep->can_receive) {
    throw BusError("interface " + ep->module + "." + ep->spec.name +
                   " (role " + iface_role_name(ep->spec.role) +
                   ") cannot receive");
  }
  if (ep->queue.empty()) return std::nullopt;
  Message msg = std::move(ep->queue.front());
  ep->queue.pop_front();
  note_depth(*ep);
  if (msg.trace_ctx.request != 0 && tracer_on()) {
    // Queue exit of a tagged request: cause is the deliver event stamped in
    // deliver_into, so the receive closes the queue-wait interval. The
    // module's next sends inherit this context (request attribution).
    ep->owner->request_ctx = tracer_->record_at(
        ep->owner->trace_site, trc::EventKind::kReceive,
        ep->owner->info.machine, ep->module,
        ep->request_terminal ? ep->spec.name + " (terminal)" : ep->spec.name,
        msg.trace_ctx);
  }
  return msg;
}

std::optional<Message> Bus::receive(const std::string& module,
                                    const std::string& iface) {
  return receive(ref_of(resolve_slot(module, iface)));
}

std::size_t Bus::queue_depth(const std::string& module,
                             const std::string& iface) const {
  return endpoint(module, iface).queue.size();
}

std::size_t Bus::queue_depth(EndpointRef ref) const {
  const Endpoint* ep = deref(ref);
  if (ep == nullptr) throw BusError("query on stale endpoint handle");
  return ep->queue.size();
}

// --- reconfiguration signal + state movement ---------------------------------

void Bus::signal_reconfig(const std::string& module) {
  if (delivery_.reliable) {
    const ModuleRec& r = rec(module);
    ControlTx tx;
    tx.kind = ControlTx::Kind::kSignal;
    tx.target = module;
    tx.from_machine =
        control_machine_.empty() ? r.info.machine : control_machine_;
    tx.uid = r.uid;
    tx.timeout_us = delivery_.retransmit_timeout_us;
    tx.trace_ctx = rec_event(trc::EventKind::kSignal, tx.from_machine, module,
                             "reconfigure requested");
    std::uint64_t id = next_control_id_++;
    control_.emplace(id, std::move(tx));
    transmit_control(id);
    arm_control_retry(id, delivery_.retransmit_timeout_us);
    return;
  }
  std::uint64_t uid = rec(module).uid;
  trc::TraceContext req_ctx = rec_event(
      trc::EventKind::kSignal,
      control_machine_.empty() ? rec(module).info.machine : control_machine_,
      module, "reconfigure requested");
  sim_->schedule_after(sim_->latency_model().local_us,
                       [this, module, uid, req_ctx] {
    auto it = modules_.find(module);
    if (it == modules_.end() || it->second.uid != uid) return;
    it->second.reconfig_signaled = true;
    ++stats_.signals_delivered;
    if (metrics_on()) {
      metrics_->counter("surgeon_bus_signals_total", {{"module", module}})
          .inc();
    }
    rec_event(trc::EventKind::kSignal, it->second.info.machine, module,
              "reconfigure delivered", req_ctx);
    trace(TraceEvent::Kind::kSignal, module, "reconfigure");
    wake(module);
  });
}

bool Bus::take_pending_signal(const std::string& module) {
  auto& r = rec(module);
  bool was = r.reconfig_signaled;
  r.reconfig_signaled = false;
  return was;
}

Bus::SignalSlotRef Bus::resolve_signal_slot(const std::string& module) {
  return {&rec(module).reconfig_signaled, module_topology_gen_};
}

void Bus::post_divulged_state(const std::string& module,
                              std::vector<std::uint8_t> bytes) {
  auto& r = rec(module);
  if (r.divulged_state.has_value()) {
    throw BusError("module " + module +
                   " divulged state twice without a collection");
  }
  stats_.state_bytes_moved += bytes.size();
  ++stats_.state_transfers;
  if (metrics_on()) {
    metrics_->counter("surgeon_bus_state_transfers_total").inc();
    metrics_->counter("surgeon_bus_state_bytes_total").inc(bytes.size());
  }
  last_divulge_ctx_ =
      rec_event(trc::EventKind::kDivulge, r.info.machine, module,
                std::to_string(bytes.size()) + " bytes");
  trace(TraceEvent::Kind::kStateDivulged, module,
        std::to_string(bytes.size()) + " bytes");
  if (state_observer_) state_observer_(module, "divulged", bytes);
  r.divulged_state = std::move(bytes);
}

bool Bus::has_divulged_state(const std::string& module) const {
  return rec(module).divulged_state.has_value();
}

std::vector<std::uint8_t> Bus::take_divulged_state(const std::string& module) {
  auto& r = rec(module);
  if (!r.divulged_state.has_value()) {
    throw BusError("module " + module + " has not divulged state");
  }
  auto bytes = std::move(*r.divulged_state);
  r.divulged_state.reset();
  return bytes;
}

void Bus::deliver_state(const std::string& from_machine,
                        const std::string& to_module,
                        std::vector<std::uint8_t> bytes) {
  const auto& dst = rec(to_module);
  if (delivery_.reliable) {
    ControlTx tx;
    tx.kind = ControlTx::Kind::kState;
    tx.target = to_module;
    tx.from_machine = from_machine;
    tx.bytes = std::move(bytes);
    tx.uid = dst.uid;
    tx.timeout_us = delivery_.retransmit_timeout_us;
    // The divulge that produced this buffer: redeliveries (including ones
    // retried onto a fresh clone after a crash) keep the same cause.
    tx.trace_ctx = last_divulge_ctx_;
    std::uint64_t id = next_control_id_++;
    control_.emplace(id, std::move(tx));
    transmit_control(id);
    arm_control_retry(id, delivery_.retransmit_timeout_us);
    return;
  }
  auto latency = sim_->message_latency(from_machine, dst.info.machine);
  std::uint64_t uid = dst.uid;
  trc::TraceContext divulge_ctx = last_divulge_ctx_;
  sim_->schedule_after(
      latency, [this, to_module, uid, divulge_ctx, bytes = std::move(bytes)] {
        auto it = modules_.find(to_module);
        if (it == modules_.end() || it->second.uid != uid) return;
        last_state_ctx_[to_module] = rec_event(
            trc::EventKind::kStateDeliver, it->second.info.machine, to_module,
            std::to_string(bytes.size()) + " bytes", divulge_ctx);
        trace(TraceEvent::Kind::kStateDelivered, to_module,
              std::to_string(bytes.size()) + " bytes");
        if (state_observer_) {
          state_observer_(to_module, "delivered", bytes);
        }
        it->second.incoming_state = bytes;
        wake(to_module);
      });
}

std::optional<std::vector<std::uint8_t>> Bus::take_incoming_state(
    const std::string& module) {
  auto& r = rec(module);
  if (!r.incoming_state.has_value()) return std::nullopt;
  auto bytes = std::move(*r.incoming_state);
  r.incoming_state.reset();
  rec_event(trc::EventKind::kRestore, r.info.machine, module,
            std::to_string(bytes.size()) + " bytes", last_state_ctx_[module]);
  return bytes;
}

bool Bus::has_incoming_state(const std::string& module) const {
  return rec(module).incoming_state.has_value();
}

// --- reliable delivery layer -------------------------------------------------

namespace {
bool contains_id(const std::vector<std::uint64_t>& ids, std::uint64_t id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}
}  // namespace

FaultDecision Bus::consult_fault(const std::string& src_machine,
                                 const std::string& dst_machine) {
  if (!fault_) return {};
  return fault_(src_machine, dst_machine);
}

void Bus::chaos_metric(const char* name, const char* kind) {
  if (metrics_on()) {
    metrics_->counter(name, {{"kind", kind}}).inc();
  }
}

trc::TraceContext Bus::rec_event(trc::EventKind kind,
                                 const std::string& machine,
                                 const std::string& module, std::string detail,
                                 const trc::TraceContext& cause) {
  if (!tracer_on()) return {};
  return tracer_->record(kind, machine, module, std::move(detail), cause);
}

std::string Bus::machine_of_or(const std::string& module,
                               const std::string& fallback) const {
  auto it = modules_.find(module);
  return it == modules_.end() ? fallback : it->second.info.machine;
}

void Bus::update_reliable_gauges() {
  if (!metrics_on()) return;
  metrics_->gauge("surgeon_bus_unacked_messages")
      .set(static_cast<std::int64_t>(unacked_total()));
  metrics_->gauge("surgeon_bus_ooo_buffered")
      .set(static_cast<std::int64_t>(ooo_total()));
}

std::size_t Bus::unacked_total() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, ts] : tx_streams_) n += ts.unacked.size();
  return n;
}

std::size_t Bus::ooo_total() const noexcept {
  std::size_t n = 0;
  for (const Endpoint& ep : slab_) {
    if (!ep.in_use) continue;
    for (const auto& [stream, rx] : ep.rx) n += rx.ooo.size();
  }
  return n;
}

std::size_t Bus::pending_control_total() const noexcept {
  return control_.size();
}

std::size_t Bus::applied_control_size(const std::string& module) const {
  return rec(module).applied_control.size();
}

void Bus::cancel_pending_control(const std::string& module) {
  std::erase_if(control_,
                [&](const auto& kv) { return kv.second.target == module; });
}

void Bus::note_module_crashed(const std::string& module, std::string detail) {
  if (metrics_on()) {
    metrics_->counter("surgeon_chaos_crashes_total", {{"module", module}})
        .inc();
  }
  rec_event(trc::EventKind::kCrash, machine_of_or(module, "bus"), module,
            detail);
  trace(TraceEvent::Kind::kModuleCrashed, module, std::move(detail));
}

void Bus::deliver_into(Endpoint& ep, Message msg) {
  if (tracer_on()) {
    trc::TraceContext deliver_ctx = tracer_->record_at(
        ep.owner->trace_site, trc::EventKind::kDeliver, ep.owner->info.machine,
        ep.module, ep.spec.name, msg.trace_ctx);
    // Request-tagged messages carry the deliver context while queued, so
    // the eventual dequeue can record kReceive with the deliver as cause
    // (queue wait = receive.at - deliver.at). Untagged messages keep their
    // original header: byte-identical behavior to pre-slo traces.
    if (msg.trace_ctx.request != 0) msg.trace_ctx = deliver_ctx;
  }
  ep.queue.push_back(std::move(msg));
  ++stats_.messages_delivered;
  if (metrics_on()) {
    ep.delivered_ctr->inc();
    note_depth(ep);
  }
  if (trace_) trace(TraceEvent::Kind::kDeliver, ep.module, ep.spec.name);
  wake(ep.module);
}

void Bus::reliable_send(EndpointRef ref, Endpoint& ep, Message msg) {
  TxStream& ts = tx_streams_[ep.stream_id];
  if (ts.owner == kNullEndpointRef) ts.owner = ref;
  msg.stream = ep.stream_id;
  msg.seq = ts.next_seq++;
  const std::uint64_t seq = msg.seq;
  TxEntry entry;
  entry.msg = std::move(msg);
  entry.timeout_us = delivery_.retransmit_timeout_us;
  ts.unacked.emplace(seq, std::move(entry));
  transmit_entry(ep.stream_id, seq, /*retransmit=*/false);
  arm_retransmit(ep.stream_id, seq, delivery_.retransmit_timeout_us);
  update_reliable_gauges();
}

bool Bus::entry_fully_acked(const TxStream& ts, const TxEntry& entry) {
  const Endpoint* owner_ep = deref(ts.owner);
  // Owner gone -- nobody is left to retransmit from; the stream entry is
  // garbage unless a capture repointed ownership first.
  if (owner_ep == nullptr) return true;
  for (const PeerLink& pl : owner_ep->peers) {
    const Endpoint& peer = slab_[endpoint_slot(pl.ref)];
    if (!contains_id(entry.acked_by, peer.owner->uid)) return false;
  }
  // No unacked peer left -- either everyone acked or the endpoint became
  // unbound, in which case there is nobody left to deliver to.
  return true;
}

void Bus::transmit_entry(StreamKey stream, std::uint64_t seq, bool retransmit) {
  auto sit = tx_streams_.find(stream);
  if (sit == tx_streams_.end()) return;
  TxStream& ts = sit->second;
  auto eit = ts.unacked.find(seq);
  if (eit == ts.unacked.end()) return;
  TxEntry& entry = eit->second;
  Endpoint* owner_ep = deref(ts.owner);
  if (owner_ep == nullptr) {
    ts.unacked.erase(eit);
    update_reliable_gauges();
    return;
  }
  const std::string& src_machine = owner_ep->owner->info.machine;
  ++entry.attempts;
  // The context copies carry: the original send for the first transmission,
  // the retransmit event (itself caused by the send) for retries — so a
  // receiver's deliver parents on the transmission that actually reached it
  // while entry.msg keeps the original send context for the next retry.
  trc::TraceContext tx_ctx = entry.msg.trace_ctx;
  if (retransmit) {
    ++rstats_.retransmits;
    chaos_metric("surgeon_bus_retransmits_total", "message");
    tx_ctx = rec_event(trc::EventKind::kRetransmit, src_machine,
                       owner_ep->module,
                       owner_ep->spec.name + " seq " + std::to_string(seq) +
                           " attempt " + std::to_string(entry.attempts),
                       entry.msg.trace_ctx);
  }
  // Iterate by index: scheduling may not mutate peers, but the fault hook
  // is user code, so take no lasting references into the adjacency.
  for (std::size_t i = 0; i < owner_ep->peers.size(); ++i) {
    const PeerLink pl = owner_ep->peers[i];
    const Endpoint& peer = slab_[endpoint_slot(pl.ref)];
    if (contains_id(entry.acked_by, peer.owner->uid)) continue;
    auto latency = sim_->link_latency(pl.same_machine);
    FaultDecision fd = consult_fault(*pl.src_machine, *pl.dst_machine);
    ++rstats_.transmissions;
    chaos_metric("surgeon_bus_transmissions_total", "message");
    if (fd.drop) {
      ++rstats_.chaos_drops;
      chaos_metric("surgeon_bus_chaos_drops_total", "message");
      rec_event(trc::EventKind::kDrop, *pl.src_machine, peer.module,
                peer.spec.name + " (chaos)", tx_ctx);
      if (trace_) {
        trace(TraceEvent::Kind::kDrop, peer.module,
              peer.spec.name + " (chaos)");
      }
    } else {
      Message copy = entry.msg;
      copy.trace_ctx = tx_ctx;
      const std::uint32_t fslot = inflight_acquire(pl.ref, std::move(copy));
      sim_->schedule_after(latency + fd.extra_delay_us, [this, fslot] {
        reliable_arrive_inflight(fslot);
      });
    }
    if (fd.duplicate) {
      ++rstats_.dup_injected;
      ++rstats_.transmissions;
      chaos_metric("surgeon_bus_dup_injected_total", "message");
      chaos_metric("surgeon_bus_transmissions_total", "message");
      Message copy = entry.msg;
      copy.trace_ctx = tx_ctx;
      const std::uint32_t fslot = inflight_acquire(pl.ref, std::move(copy));
      sim_->schedule_after(latency + fd.duplicate_delay_us, [this, fslot] {
        reliable_arrive_inflight(fslot);
      });
    }
  }
}

void Bus::arm_retransmit(StreamKey stream, std::uint64_t seq,
                         net::SimTime timeout_us) {
  sim_->schedule_after(timeout_us, [this, stream, seq] {
    auto sit = tx_streams_.find(stream);
    if (sit == tx_streams_.end()) return;  // stream retired; lazy cancel
    TxStream& ts = sit->second;
    auto eit = ts.unacked.find(seq);
    if (eit == ts.unacked.end()) return;  // acked meanwhile; lazy cancel
    TxEntry& entry = eit->second;
    if (entry_fully_acked(ts, entry)) {
      ts.unacked.erase(eit);
      update_reliable_gauges();
      return;
    }
    if (entry.attempts >= delivery_.max_attempts) {
      ++rstats_.gave_up;
      chaos_metric("surgeon_bus_delivery_gave_up_total", "message");
      const Endpoint* owner_ep = deref(ts.owner);
      const std::string owner_module =
          owner_ep != nullptr ? owner_ep->module : "?";
      const std::string owner_iface =
          owner_ep != nullptr ? owner_ep->spec.name : "?";
      rec_event(trc::EventKind::kDrop, machine_of_or(owner_module, "bus"),
                owner_module,
                owner_iface + " seq " + std::to_string(seq) + " (gave up)",
                entry.msg.trace_ctx);
      trace(TraceEvent::Kind::kDrop, owner_module,
            owner_iface + " seq " + std::to_string(seq) + " (gave up)");
      ts.unacked.erase(eit);
      update_reliable_gauges();
      return;
    }
    entry.timeout_us =
        std::min<net::SimTime>(entry.timeout_us * 2, delivery_.max_timeout_us);
    net::SimTime next = entry.timeout_us;
    transmit_entry(stream, seq, /*retransmit=*/true);
    arm_retransmit(stream, seq, next);
  });
}

void Bus::reliable_arrive(EndpointRef dst, Message msg) {
  Endpoint* epp = deref(dst);
  if (epp == nullptr) {
    // The destination is gone; unlike fire-and-forget, this is not a loss:
    // the sender keeps retransmitting toward whoever inherits the binding.
    const Endpoint& gone = slab_[endpoint_slot(dst)];
    rec_event(trc::EventKind::kDrop, machine_of_or(gone.module, "bus"),
              gone.module, gone.spec.name + " (in flight to removed module)",
              msg.trace_ctx);
    if (trace_) {
      trace(TraceEvent::Kind::kDrop, gone.module,
            gone.spec.name + " (in flight to removed module)");
    }
    return;
  }
  Endpoint& ep = *epp;
  if (ep.rx_retired) {
    rec_event(trc::EventKind::kDrop, ep.owner->info.machine, ep.module,
              ep.spec.name + " (retired)", msg.trace_ctx);
    if (trace_) {
      trace(TraceEvent::Kind::kDrop, ep.module, ep.spec.name + " (retired)");
    }
    return;  // no ack: the retransmit follows the rebound binding
  }
  const StreamKey stream = msg.stream;
  const std::uint64_t seq = msg.seq;
  RxStream& rx = ep.rx[stream];
  bool have_it = false;
  if (seq < rx.next_expected || rx.ooo.contains(seq)) {
    ++rstats_.dup_discards;
    chaos_metric("surgeon_bus_dups_discarded_total", "message");
    rec_event(trc::EventKind::kDupDiscard, ep.owner->info.machine, ep.module,
              ep.spec.name + " seq " + std::to_string(seq), msg.trace_ctx);
    if (trace_) {
      trace(TraceEvent::Kind::kDrop, ep.module,
            ep.spec.name + " (duplicate seq " + std::to_string(seq) + ")");
    }
    have_it = true;  // re-ack: the first ack may have been lost
  } else if (seq == rx.next_expected) {
    deliver_into(ep, std::move(msg));
    ++rx.next_expected;
    while (!rx.ooo.empty() && rx.ooo.begin()->first == rx.next_expected) {
      deliver_into(ep, std::move(rx.ooo.begin()->second));
      rx.ooo.erase(rx.ooo.begin());
      ++rx.next_expected;
    }
    have_it = true;
    update_reliable_gauges();
  } else if (rx.ooo.size() < delivery_.max_ooo_buffered) {
    rx.ooo.emplace(seq, std::move(msg));
    ++rstats_.ooo_buffered;
    chaos_metric("surgeon_bus_ooo_buffered_total", "message");
    have_it = true;
    update_reliable_gauges();
  } else {
    // Window full: discard unacked; the retransmit will refill it once the
    // gap closes. Bounds receiver memory under adversarial reordering.
    ++rstats_.ooo_overflow;
    chaos_metric("surgeon_bus_ooo_overflow_total", "message");
    rec_event(trc::EventKind::kDrop, ep.owner->info.machine, ep.module,
              ep.spec.name + " seq " + std::to_string(seq) + " (ooo overflow)",
              msg.trace_ctx);
  }
  if (have_it) send_ack(ep, stream, seq);
}

void Bus::send_ack(Endpoint& acker_ep, StreamKey stream, std::uint64_t seq) {
  auto sit = tx_streams_.find(stream);
  if (sit == tx_streams_.end()) return;  // sender retired the stream
  const Endpoint* owner_ep = deref(sit->second.owner);
  if (owner_ep == nullptr) return;
  const std::string& src_machine = acker_ep.owner->info.machine;
  const std::string& dst_machine = owner_ep->owner->info.machine;
  FaultDecision fd = consult_fault(src_machine, dst_machine);
  if (fd.drop) {
    ++rstats_.chaos_drops;
    chaos_metric("surgeon_bus_chaos_drops_total", "ack");
    return;
  }
  auto latency = sim_->message_latency(src_machine, dst_machine);
  const std::uint64_t acker_uid = acker_ep.owner->uid;
  sim_->schedule_after(latency + fd.extra_delay_us,
                       [this, acker_uid, stream, seq] {
                         on_ack(acker_uid, stream, seq);
                       });
}

void Bus::on_ack(std::uint64_t acker_uid, StreamKey stream,
                 std::uint64_t seq) {
  auto sit = tx_streams_.find(stream);
  if (sit == tx_streams_.end()) return;
  TxStream& ts = sit->second;
  auto eit = ts.unacked.find(seq);
  if (eit == ts.unacked.end()) return;
  ++rstats_.acks_delivered;
  chaos_metric("surgeon_bus_acks_total", "message");
  TxEntry& entry = eit->second;
  if (!contains_id(entry.acked_by, acker_uid)) {
    entry.acked_by.push_back(acker_uid);
  }
  if (entry_fully_acked(ts, entry)) {
    ts.unacked.erase(eit);
    update_reliable_gauges();
  }
}

void Bus::migrate_streams(const BindingEnd& from_end,
                          const BindingEnd& to_end) {
  if (from_end == to_end) return;
  const EndpointId from_slot = resolve_slot(from_end.module, from_end.iface);
  const EndpointId to_slot = resolve_slot(to_end.module, to_end.iface);
  Endpoint& from = slab_[from_slot];
  Endpoint& to = slab_[to_slot];
  // Outgoing side: the heir continues the predecessor's stream, so its
  // sequence numbers keep counting and unacked messages are retransmitted
  // by (and re-resolved from) the heir's bindings.
  auto ts_it = tx_streams_.find(from.stream_id);
  if (ts_it != tx_streams_.end() &&
      ts_it->second.owner == ref_of(from_slot)) {
    ts_it->second.owner = ref_of(to_slot);
  }
  to.stream_id = from.stream_id;
  // Incoming side: merge the resequencing windows so messages the
  // predecessor already accepted stay deduplicated at the heir.
  for (auto& [stream, rxs] : from.rx) {
    RxStream& dst = to.rx[stream];
    dst.next_expected = std::max(dst.next_expected, rxs.next_expected);
    for (auto& [seq, m] : rxs.ooo) {
      if (seq >= dst.next_expected && !dst.ooo.contains(seq)) {
        dst.ooo.emplace(seq, std::move(m));
      }
    }
    while (!dst.ooo.empty() && dst.ooo.begin()->first == dst.next_expected) {
      deliver_into(to, std::move(dst.ooo.begin()->second));
      dst.ooo.erase(dst.ooo.begin());
      ++dst.next_expected;
    }
  }
  from.rx.clear();
  from.rx_retired = true;
  update_reliable_gauges();
}

void Bus::transmit_control(std::uint64_t id) {
  auto it = control_.find(id);
  if (it == control_.end()) return;
  ControlTx& tx = it->second;
  auto mod_it = modules_.find(tx.target);
  if (mod_it == modules_.end() || mod_it->second.uid != tx.uid) {
    control_.erase(it);  // target gone; nothing to deliver to
    return;
  }
  ++tx.attempts;
  const bool is_signal = tx.kind == ControlTx::Kind::kSignal;
  const char* kind_str = is_signal ? "signal" : "state";
  if (tx.attempts > 1) {
    ++rstats_.retransmits;
    chaos_metric("surgeon_bus_retransmits_total", kind_str);
    rec_event(trc::EventKind::kRetransmit, tx.from_machine, tx.target,
              std::string(kind_str) + " attempt " +
                  std::to_string(tx.attempts),
              tx.trace_ctx);
  }
  const std::string& dst_machine = mod_it->second.info.machine;
  FaultDecision fd = consult_fault(tx.from_machine, dst_machine);
  ++rstats_.transmissions;
  chaos_metric("surgeon_bus_transmissions_total", kind_str);
  if (fd.drop) {
    ++rstats_.chaos_drops;
    chaos_metric("surgeon_bus_chaos_drops_total", kind_str);
    rec_event(trc::EventKind::kDrop, tx.from_machine, tx.target,
              std::string(kind_str) + " (chaos)", tx.trace_ctx);
    return;
  }
  auto latency = sim_->message_latency(tx.from_machine, dst_machine);
  const std::string target = tx.target;
  const std::uint64_t uid = tx.uid;
  if (is_signal) {
    sim_->schedule_after(latency + fd.extra_delay_us,
                         [this, target, id, uid] {
                           auto m = modules_.find(target);
                           if (m == modules_.end() || m->second.uid != uid)
                             return;
                           apply_signal(target, id);
                         });
  } else {
    auto bytes = tx.bytes;
    sim_->schedule_after(
        latency + fd.extra_delay_us,
        [this, target, id, uid, bytes = std::move(bytes)] {
          auto m = modules_.find(target);
          if (m == modules_.end() || m->second.uid != uid) return;
          apply_state(target, id, bytes);
        });
  }
}

void Bus::arm_control_retry(std::uint64_t id, net::SimTime timeout_us) {
  sim_->schedule_after(timeout_us, [this, id] {
    auto it = control_.find(id);
    if (it == control_.end()) return;  // acked or cancelled; lazy cancel
    ControlTx& tx = it->second;
    const char* kind_str =
        tx.kind == ControlTx::Kind::kSignal ? "signal" : "state";
    if (tx.attempts >= delivery_.max_attempts) {
      ++rstats_.gave_up;
      chaos_metric("surgeon_bus_delivery_gave_up_total", kind_str);
      rec_event(trc::EventKind::kDrop, tx.from_machine, tx.target,
                std::string(kind_str) + " (gave up)", tx.trace_ctx);
      trace(TraceEvent::Kind::kDrop, tx.target,
            std::string(kind_str) + " (gave up)");
      control_.erase(it);
      return;
    }
    tx.timeout_us =
        std::min<net::SimTime>(tx.timeout_us * 2, delivery_.max_timeout_us);
    net::SimTime next = tx.timeout_us;
    transmit_control(id);
    arm_control_retry(id, next);
  });
}

bool Bus::control_applied(const ModuleRec& r, std::uint64_t id) {
  return std::find(r.applied_control.begin(), r.applied_control.end(), id) !=
         r.applied_control.end();
}

void Bus::note_control_applied(ModuleRec& r, std::uint64_t id) {
  r.applied_control.push_back(id);
  if (r.applied_control.size() > kAppliedControlWindow) {
    r.applied_control.pop_front();
  }
}

void Bus::apply_signal(const std::string& module, std::uint64_t id) {
  auto it = modules_.find(module);
  if (it == modules_.end()) return;
  ModuleRec& r = it->second;
  auto ctl_it = control_.find(id);
  const trc::TraceContext cause =
      ctl_it == control_.end() ? trc::TraceContext{}
                               : ctl_it->second.trace_ctx;
  if (control_applied(r, id)) {
    ++rstats_.dup_discards;
    chaos_metric("surgeon_bus_dups_discarded_total", "signal");
    rec_event(trc::EventKind::kDupDiscard, r.info.machine, module,
              "signal id " + std::to_string(id), cause);
  } else {
    note_control_applied(r, id);
    r.reconfig_signaled = true;
    ++stats_.signals_delivered;
    if (metrics_on()) {
      metrics_->counter("surgeon_bus_signals_total", {{"module", module}})
          .inc();
    }
    rec_event(trc::EventKind::kSignal, r.info.machine, module,
              "reconfigure delivered", cause);
    trace(TraceEvent::Kind::kSignal, module, "reconfigure");
    wake(module);
  }
  ack_control(module, id);
}

void Bus::apply_state(const std::string& module, std::uint64_t id,
                      const std::vector<std::uint8_t>& bytes) {
  auto it = modules_.find(module);
  if (it == modules_.end()) return;
  ModuleRec& r = it->second;
  auto ctl_it = control_.find(id);
  const trc::TraceContext cause =
      ctl_it == control_.end() ? trc::TraceContext{}
                               : ctl_it->second.trace_ctx;
  if (control_applied(r, id)) {
    ++rstats_.dup_discards;
    chaos_metric("surgeon_bus_dups_discarded_total", "state");
    rec_event(trc::EventKind::kDupDiscard, r.info.machine, module,
              "state id " + std::to_string(id), cause);
  } else {
    note_control_applied(r, id);
    last_state_ctx_[module] = rec_event(
        trc::EventKind::kStateDeliver, r.info.machine, module,
        std::to_string(bytes.size()) + " bytes", cause);
    trace(TraceEvent::Kind::kStateDelivered, module,
          std::to_string(bytes.size()) + " bytes");
    if (state_observer_) state_observer_(module, "delivered", bytes);
    r.incoming_state = bytes;
    wake(module);
  }
  ack_control(module, id);
}

void Bus::ack_control(const std::string& module, std::uint64_t id) {
  auto it = control_.find(id);
  if (it == control_.end()) return;  // already acked
  auto mod_it = modules_.find(module);
  if (mod_it == modules_.end()) return;
  const ControlTx& tx = it->second;
  const char* kind_str =
      tx.kind == ControlTx::Kind::kSignal ? "signal" : "state";
  FaultDecision fd =
      consult_fault(mod_it->second.info.machine, tx.from_machine);
  if (fd.drop) {
    ++rstats_.chaos_drops;
    chaos_metric("surgeon_bus_chaos_drops_total", "ack");
    return;
  }
  auto latency =
      sim_->message_latency(mod_it->second.info.machine, tx.from_machine);
  std::string kind_copy = kind_str;
  sim_->schedule_after(latency + fd.extra_delay_us,
                       [this, id, kind_copy] {
                         auto cit = control_.find(id);
                         if (cit == control_.end()) return;
                         ++rstats_.acks_delivered;
                         chaos_metric("surgeon_bus_acks_total",
                                      kind_copy.c_str());
                         control_.erase(cit);
                       });
}

}  // namespace surgeon::bus
