// Messages, interned endpoint handles, and interface descriptions for the
// software bus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serialize/value.hpp"
#include "trace/event.hpp"

namespace surgeon::bus {

/// Dense interned endpoint handle. The bus registers every (module,
/// interface) pair into a slab; the low 32 bits of a ref are the slab slot
/// (the `EndpointId`), the high 32 bits the slot's generation, bumped each
/// time the slot is retired so a handle to a removed endpoint goes stale
/// the moment the module leaves the bus. Generations start at 1, so 0 is
/// never a valid ref.
using EndpointId = std::uint32_t;
using EndpointRef = std::uint64_t;

inline constexpr EndpointRef kNullEndpointRef = 0;

[[nodiscard]] constexpr EndpointId endpoint_slot(EndpointRef ref) noexcept {
  return static_cast<EndpointId>(ref);
}
[[nodiscard]] constexpr std::uint32_t endpoint_generation(
    EndpointRef ref) noexcept {
  return static_cast<std::uint32_t>(ref >> 32);
}
[[nodiscard]] constexpr EndpointRef make_endpoint_ref(
    EndpointId slot, std::uint32_t generation) noexcept {
  return (static_cast<EndpointRef>(generation) << 32) | slot;
}

/// Identity of a reliable flow, packed into one integer: the EndpointRef of
/// the ORIGINAL endpoint the stream began on. The ref stays unique forever
/// (slot reuse bumps the generation), so a stream key never collides with a
/// later tenant of the same slab slot — and because it survives the
/// original endpoint's removal, clones that inherit an endpoint through
/// queue capture continue their predecessor's stream under the same key.
using StreamKey = std::uint64_t;

/// Interface roles, following the configuration language of Figure 2:
///   client  -- sends requests, accepts replies        (bidirectional)
///   server  -- receives requests, returns replies     (bidirectional)
///   use     -- consumes messages produced elsewhere   (incoming)
///   define  -- produces messages                      (outgoing)
enum class IfaceRole : std::uint8_t { kClient, kServer, kUse, kDefine };

[[nodiscard]] const char* iface_role_name(IfaceRole role) noexcept;

/// Can a module legally send on / receive from an interface of this role?
[[nodiscard]] bool role_can_send(IfaceRole role) noexcept;
[[nodiscard]] bool role_can_receive(IfaceRole role) noexcept;

struct InterfaceSpec {
  std::string name;
  IfaceRole role = IfaceRole::kUse;
  /// Format of messages carried on this interface (outbound for client,
  /// inbound for server/use), e.g. "i".
  std::string pattern;
  /// Reply format for client (accepts{...}) / server (returns{...}).
  std::string reply_pattern;

  friend bool operator==(const InterfaceSpec&,
                         const InterfaceSpec&) = default;
};

/// One asynchronous message in flight or queued at an endpoint. Carries
/// interned identifiers only — no strings — so every hop, retransmission,
/// and clone queue capture moves three integers instead of four heap
/// strings. `Bus::source_of` resolves `src` back to names for diagnostics.
struct Message {
  std::vector<ser::Value> values;
  /// Sending endpoint at the moment of the send.
  EndpointRef src = kNullEndpointRef;
  /// Reliable-delivery metadata (Bus::set_delivery). The stream names the
  /// ORIGINAL endpoint the flow began on; a clone that inherits an endpoint
  /// through queue capture continues its predecessor's stream, so receivers
  /// keep one in-order dedup window across replacements. Unused (all
  /// defaults) in fire-and-forget mode.
  StreamKey stream = 0;
  std::uint64_t seq = 0;
  /// Virtual timestamp of the original send. Survives retransmission and
  /// queue capture, so (now - sent_at) at capture time is the age a message
  /// spent queued behind a replacement — the per-message component of the
  /// disruption a reconfiguration imposes (surgeon_reconfig_queued_delay_us).
  std::uint64_t sent_at = 0;
  /// Causal trace header (trace/event.hpp): names the send (or retransmit)
  /// event this copy belongs to so the receiving machine can merge Lamport
  /// clocks and parent its deliver event on the true transmission. Carried
  /// through retransmissions, duplicates, and clone queue capture; invalid
  /// (event 0) when tracing is off.
  trace::TraceContext trace_ctx;
};

/// One end of a binding: a (module, interface) pair.
struct BindingEnd {
  std::string module;
  std::string iface;

  friend bool operator==(const BindingEnd&, const BindingEnd&) = default;
  friend auto operator<=>(const BindingEnd&, const BindingEnd&) = default;
};

/// An (unordered) connection between two interfaces. Messages written on
/// either end are delivered to the queue of the other, as in POLYLITH.
struct Binding {
  BindingEnd a;
  BindingEnd b;

  [[nodiscard]] bool involves(const BindingEnd& e) const noexcept {
    return a == e || b == e;
  }
  [[nodiscard]] const BindingEnd& peer_of(const BindingEnd& e) const {
    return a == e ? b : a;
  }
  friend bool operator==(const Binding&, const Binding&) = default;
};

}  // namespace surgeon::bus
