// Messages and interface descriptions for the software bus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serialize/value.hpp"
#include "trace/event.hpp"

namespace surgeon::bus {

/// Interface roles, following the configuration language of Figure 2:
///   client  -- sends requests, accepts replies        (bidirectional)
///   server  -- receives requests, returns replies     (bidirectional)
///   use     -- consumes messages produced elsewhere   (incoming)
///   define  -- produces messages                      (outgoing)
enum class IfaceRole : std::uint8_t { kClient, kServer, kUse, kDefine };

[[nodiscard]] const char* iface_role_name(IfaceRole role) noexcept;

/// Can a module legally send on / receive from an interface of this role?
[[nodiscard]] bool role_can_send(IfaceRole role) noexcept;
[[nodiscard]] bool role_can_receive(IfaceRole role) noexcept;

struct InterfaceSpec {
  std::string name;
  IfaceRole role = IfaceRole::kUse;
  /// Format of messages carried on this interface (outbound for client,
  /// inbound for server/use), e.g. "i".
  std::string pattern;
  /// Reply format for client (accepts{...}) / server (returns{...}).
  std::string reply_pattern;

  friend bool operator==(const InterfaceSpec&,
                         const InterfaceSpec&) = default;
};

/// One asynchronous message in flight or queued at an endpoint.
struct Message {
  std::vector<ser::Value> values;
  std::string src_module;
  std::string src_iface;
  /// Reliable-delivery metadata (Bus::set_delivery). The stream names the
  /// ORIGINAL endpoint the flow began on; a clone that inherits an endpoint
  /// through queue capture continues its predecessor's stream, so receivers
  /// keep one in-order dedup window across replacements. Unused (all
  /// defaults) in fire-and-forget mode.
  std::string stream_module;
  std::string stream_iface;
  std::uint64_t seq = 0;
  /// Causal trace header (trace/event.hpp): names the send (or retransmit)
  /// event this copy belongs to so the receiving machine can merge Lamport
  /// clocks and parent its deliver event on the true transmission. Carried
  /// through retransmissions, duplicates, and clone queue capture; invalid
  /// (event 0) when tracing is off.
  trace::TraceContext trace_ctx;

  [[nodiscard]] std::string to_string() const;
};

/// One end of a binding: a (module, interface) pair.
struct BindingEnd {
  std::string module;
  std::string iface;

  friend bool operator==(const BindingEnd&, const BindingEnd&) = default;
  friend auto operator<=>(const BindingEnd&, const BindingEnd&) = default;
};

/// An (unordered) connection between two interfaces. Messages written on
/// either end are delivered to the queue of the other, as in POLYLITH.
struct Binding {
  BindingEnd a;
  BindingEnd b;

  [[nodiscard]] bool involves(const BindingEnd& e) const noexcept {
    return a == e || b == e;
  }
  [[nodiscard]] const BindingEnd& peer_of(const BindingEnd& e) const {
    return a == e ? b : a;
  }
  friend bool operator==(const Binding&, const Binding&) = default;
};

}  // namespace surgeon::bus
