// The software bus: module registry, bindings, asynchronous message routing,
// reconfiguration signals, and state mailboxes.
//
// This is our reimplementation of the POLYLITH software toolbus (ref [8] of
// the paper) plus the reconfiguration primitives of ref [9]:
//   - add/delete modules and bindings while the application executes,
//   - bind-edit batches applied atomically (mh_rebind),
//   - queue capture/move so no queued message is lost during a rebind,
//   - a signal that asks a module to divulge its state, and mailboxes that
//     carry the abstract state buffer from the old module to the new one
//     (mh_objstate_move).
//
// The bus knows nothing about MiniC, the VM, or the transformation: modules
// interact with it only through bus::Client (the mh_* primitives).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bus/message.hpp"
#include "net/sim.hpp"
#include "obs/metrics.hpp"

namespace surgeon::bus {

/// Everything the bus needs to instantiate a module. (The configuration
/// front end surgeon::cfg produces a richer spec and lowers it to this.)
struct ModuleInfo {
  std::string name;
  std::string machine;
  /// STATUS attribute from the paper: "new" for an original instance,
  /// "clone" for a restoration target (mh_getstatus reports this).
  std::string status = "new";
  std::string source;  // executable / program path, informational
  std::vector<InterfaceSpec> interfaces;
};

/// One bind-table edit, as built by mh_edit_bind in Figure 5.
struct BindEdit {
  enum class Op : std::uint8_t {
    kAdd,          // "add": create binding a--b
    kDel,          // "del": remove binding a--b
    kCaptureQueue, // "cap": move messages queued at a to b
    kRemoveQueue,  // "rmq": discard messages queued at a
  };
  Op op = Op::kAdd;
  BindingEnd a;
  BindingEnd b;  // unused for kRemoveQueue
};

/// A batch of bind-table edits applied atomically by Bus::rebind
/// (mh_bind_cap / mh_edit_bind / mh_rebind in Figure 5).
class BindEditBatch {
 public:
  void add(BindEdit edit) { edits_.push_back(std::move(edit)); }
  [[nodiscard]] const std::vector<BindEdit>& edits() const noexcept {
    return edits_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return edits_.size(); }

 private:
  std::vector<BindEdit> edits_;
};

/// One traced bus event. The trace is the platform's flight recorder:
/// every message send/delivery/drop, signal, state movement, bind-table
/// change, and module lifecycle transition, with its virtual timestamp.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSend,
    kDeliver,
    kDrop,
    kSignal,
    kStateDivulged,
    kStateDelivered,
    kRebind,
    kModuleAdded,
    kModuleRemoved,
  };
  net::SimTime at = 0;
  Kind kind = Kind::kSend;
  std::string module;  // the module the event concerns
  std::string detail;  // interface, peer, byte counts, ...

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] const char* trace_kind_name(TraceEvent::Kind kind) noexcept;

using TraceSink = std::function<void(const TraceEvent&)>;

/// Counters exposed for tests and benchmarks.
struct BusStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_unbound = 0;
  std::uint64_t signals_delivered = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t state_bytes_moved = 0;
};

class Bus {
 public:
  explicit Bus(net::Simulator& sim) : sim_(&sim) {}

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  // --- configuration (reconfiguration primitives of ref [9]) -------------

  /// Registers a module. Throws BusError on duplicate name, unknown
  /// machine, or duplicate interface names.
  void add_module(ModuleInfo info);
  /// Removes a module and every binding that involves it.
  void remove_module(const std::string& name);
  [[nodiscard]] bool has_module(const std::string& name) const {
    return modules_.contains(name);
  }
  /// mh_obj_cap: the current specification of a module (reflects dynamic
  /// changes, not the original configuration file).
  [[nodiscard]] const ModuleInfo& module_info(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> module_names() const;

  void add_binding(const BindingEnd& a, const BindingEnd& b);
  void del_binding(const BindingEnd& a, const BindingEnd& b);
  [[nodiscard]] const std::vector<Binding>& bindings() const noexcept {
    return bindings_;
  }

  /// mh_struct_objnames: interface names of a module.
  [[nodiscard]] std::vector<std::string> interface_names(
      const std::string& module) const;
  /// mh_struct_ifdest / mh_struct_ifsources: peers bound to an interface.
  /// (Bindings are undirected, so destinations and sources coincide; both
  /// names are kept for fidelity to the Figure 5 API.)
  [[nodiscard]] std::vector<BindingEnd> bound_peers(
      const BindingEnd& end) const;

  /// Applies a batch of bind edits atomically (mh_rebind). Either the whole
  /// batch validates and applies, or nothing changes.
  void rebind(const BindEditBatch& batch);

  // --- messaging ----------------------------------------------------------

  /// Sends a message from (module, iface) to every bound peer. Delivery is
  /// asynchronous: each copy arrives after the network latency between the
  /// two machines. Messages sent on an unbound interface are counted and
  /// dropped. Throws BusError if the interface cannot send.
  void send(const std::string& module, const std::string& iface,
            std::vector<ser::Value> values);

  /// mh_query_ifmsgs: is a message queued at (module, iface)?
  [[nodiscard]] bool has_message(const std::string& module,
                                 const std::string& iface) const;
  /// Non-blocking receive; nullopt when the queue is empty.
  [[nodiscard]] std::optional<Message> receive(const std::string& module,
                                               const std::string& iface);
  [[nodiscard]] std::size_t queue_depth(const std::string& module,
                                        const std::string& iface) const;

  // --- reconfiguration signal + state movement ----------------------------

  /// Sends the reconfiguration signal (SIGHUP in Figure 4) to a module.
  /// Delivered asynchronously after local latency.
  void signal_reconfig(const std::string& module);
  /// Consumed by the module's runtime at a statement boundary.
  [[nodiscard]] bool take_pending_signal(const std::string& module);

  /// mh_encode side: the module posts its encoded abstract state.
  void post_divulged_state(const std::string& module,
                           std::vector<std::uint8_t> bytes);
  [[nodiscard]] bool has_divulged_state(const std::string& module) const;
  /// Takes (and clears) the divulged state. Throws BusError if none posted.
  [[nodiscard]] std::vector<std::uint8_t> take_divulged_state(
      const std::string& module);

  /// Script side of mh_objstate_move: delivers a state buffer to the new
  /// module's decode mailbox, charging cross-machine latency from
  /// `from_machine`.
  void deliver_state(const std::string& from_machine,
                     const std::string& to_module,
                     std::vector<std::uint8_t> bytes);
  /// mh_decode side: nullopt until the state has arrived.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> take_incoming_state(
      const std::string& module);
  [[nodiscard]] bool has_incoming_state(const std::string& module) const;

  // --- plumbing ------------------------------------------------------------

  /// Invoked whenever a message, signal, or state buffer arrives for a
  /// module: lets the scheduler wake a blocked process.
  void set_wake_callback(std::function<void(const std::string&)> cb) {
    wake_ = std::move(cb);
  }

  /// Streams every bus event to `sink` (null disables tracing, the
  /// default; tracing costs one callback per event when enabled).
  void set_trace(TraceSink sink) { trace_ = std::move(sink); }

  /// Attaches a metrics registry (null detaches, the default). Hot-path
  /// series handles (per-interface send/deliver/drop counters and
  /// queue-depth gauges) are resolved once per endpoint here and at
  /// add_module, so per-message cost while recording is two pointer
  /// dereferences; a null or disabled registry costs one branch.
  void set_metrics(obs::MetricsRegistry* metrics);
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

  [[nodiscard]] net::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }

 private:
  struct Endpoint {
    InterfaceSpec spec;
    std::deque<Message> queue;
    // Metric handles, resolved by resolve_endpoint_metrics; null until a
    // registry is attached. Owned by the registry, not the endpoint.
    obs::Counter* sent_ctr = nullptr;
    obs::Counter* delivered_ctr = nullptr;
    obs::Counter* dropped_ctr = nullptr;
    obs::Gauge* depth_gauge = nullptr;
  };
  struct ModuleRec {
    ModuleInfo info;
    std::map<std::string, Endpoint> endpoints;
    bool reconfig_signaled = false;
    std::optional<std::vector<std::uint8_t>> divulged_state;
    std::optional<std::vector<std::uint8_t>> incoming_state;
    /// Incremented when the module is removed so in-flight deliveries to a
    /// deleted-and-recreated name are discarded.
    std::uint64_t epoch = 0;
  };

  [[nodiscard]] ModuleRec& rec(const std::string& name);
  [[nodiscard]] const ModuleRec& rec(const std::string& name) const;
  [[nodiscard]] Endpoint& endpoint(const std::string& module,
                                   const std::string& iface);
  [[nodiscard]] const Endpoint& endpoint(const std::string& module,
                                         const std::string& iface) const;
  void validate_edit(const BindEdit& edit) const;
  void apply_edit(const BindEdit& edit);
  void resolve_endpoint_metrics(const std::string& module, ModuleRec& r);
  [[nodiscard]] bool metrics_on() const noexcept {
    return metrics_ != nullptr && metrics_->enabled();
  }
  void note_depth(const Endpoint& ep) {
    if (metrics_on() && ep.depth_gauge != nullptr) {
      ep.depth_gauge->set(static_cast<std::int64_t>(ep.queue.size()));
    }
  }
  void wake(const std::string& module) {
    if (wake_) wake_(module);
  }
  void trace(TraceEvent::Kind kind, const std::string& module,
             std::string detail) {
    if (trace_) {
      trace_(TraceEvent{sim_->now(), kind, module, std::move(detail)});
    }
  }

  net::Simulator* sim_;
  std::map<std::string, ModuleRec> modules_;
  std::uint64_t next_epoch_ = 1;
  std::vector<Binding> bindings_;
  std::function<void(const std::string&)> wake_;
  TraceSink trace_;
  BusStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace surgeon::bus
