// The software bus: module registry, bindings, asynchronous message routing,
// reconfiguration signals, and state mailboxes.
//
// This is our reimplementation of the POLYLITH software toolbus (ref [8] of
// the paper) plus the reconfiguration primitives of ref [9]:
//   - add/delete modules and bindings while the application executes,
//   - bind-edit batches applied atomically (mh_rebind),
//   - queue capture/move so no queued message is lost during a rebind,
//   - a signal that asks a module to divulge its state, and mailboxes that
//     carry the abstract state buffer from the old module to the new one
//     (mh_objstate_move).
//
// The bus knows nothing about MiniC, the VM, or the transformation: modules
// interact with it only through bus::Client (the mh_* primitives).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bus/message.hpp"
#include "net/sim.hpp"
#include "obs/metrics.hpp"
#include "trace/recorder.hpp"

namespace surgeon::bus {

// The causal flight recorder lives in surgeon::trace; aliased because the
// Bus also has a (legacy) member function named `trace`.
namespace trc = ::surgeon::trace;

/// Everything the bus needs to instantiate a module. (The configuration
/// front end surgeon::cfg produces a richer spec and lowers it to this.)
struct ModuleInfo {
  std::string name;
  std::string machine;
  /// STATUS attribute from the paper: "new" for an original instance,
  /// "clone" for a restoration target (mh_getstatus reports this).
  std::string status = "new";
  std::string source;  // executable / program path, informational
  std::vector<InterfaceSpec> interfaces;
};

/// One bind-table edit, as built by mh_edit_bind in Figure 5.
struct BindEdit {
  enum class Op : std::uint8_t {
    kAdd,          // "add": create binding a--b
    kDel,          // "del": remove binding a--b
    kCaptureQueue, // "cap": move messages queued at a to b
    kRemoveQueue,  // "rmq": discard messages queued at a
  };
  Op op = Op::kAdd;
  BindingEnd a;
  BindingEnd b;  // unused for kRemoveQueue
};

/// A batch of bind-table edits applied atomically by Bus::rebind
/// (mh_bind_cap / mh_edit_bind / mh_rebind in Figure 5).
class BindEditBatch {
 public:
  void add(BindEdit edit) { edits_.push_back(std::move(edit)); }
  [[nodiscard]] const std::vector<BindEdit>& edits() const noexcept {
    return edits_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return edits_.size(); }

 private:
  std::vector<BindEdit> edits_;
};

/// One traced bus event. The trace is the platform's flight recorder:
/// every message send/delivery/drop, signal, state movement, bind-table
/// change, and module lifecycle transition, with its virtual timestamp.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSend,
    kDeliver,
    kDrop,
    kSignal,
    kStateDivulged,
    kStateDelivered,
    kRebind,
    kModuleAdded,
    kModuleRemoved,
    kModuleCrashed,
  };
  net::SimTime at = 0;
  Kind kind = Kind::kSend;
  std::string module;  // the module the event concerns
  std::string detail;  // interface, peer, byte counts, ...

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] const char* trace_kind_name(TraceEvent::Kind kind) noexcept;

using TraceSink = std::function<void(const TraceEvent&)>;

/// Counters exposed for tests and benchmarks.
struct BusStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_unbound = 0;
  std::uint64_t signals_delivered = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t state_bytes_moved = 0;
};

/// Delivery-layer configuration. The defaults reproduce the original bus:
/// fire-and-forget copies, no acknowledgements, no retransmission. With
/// `reliable` set, every message, reconfiguration signal, and state buffer
/// is sequence-numbered, acknowledged by the receiver, and retransmitted on
/// a timeout with exponential backoff until acked or `max_attempts` is
/// exhausted; receivers deduplicate and re-order per stream.
struct DeliveryOptions {
  bool reliable = false;
  /// First retransmit timeout (virtual us); doubles up to `max_timeout_us`.
  net::SimTime retransmit_timeout_us = 8'000;
  net::SimTime max_timeout_us = 256'000;
  /// Transmissions per copy (first send included) before giving up.
  int max_attempts = 16;
  /// Per-endpoint cap on out-of-order messages held for re-sequencing;
  /// copies beyond it are discarded unacked (the retransmit refills them).
  std::size_t max_ooo_buffered = 1024;
};

/// What the fault layer decided for one transmission attempt on a link.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  net::SimTime extra_delay_us = 0;      // latency jitter for the copy
  net::SimTime duplicate_delay_us = 0;  // extra latency for the duplicate
};

/// Consulted once per copy put on the wire (messages and, in reliable mode,
/// acks, signals, and state buffers), with the source and destination
/// machine names. Null means a perfect network.
using FaultHook =
    std::function<FaultDecision(const std::string& src_machine,
                                const std::string& dst_machine)>;

/// Counters for the reliable delivery layer (all zero in fire-and-forget
/// mode, and exact mirrors of the surgeon_bus_* chaos metrics).
struct ReliableStats {
  std::uint64_t transmissions = 0;   // copies put on the wire, retries incl.
  std::uint64_t retransmits = 0;
  std::uint64_t acks_delivered = 0;
  std::uint64_t dup_discards = 0;    // receiver dedup hits
  std::uint64_t ooo_buffered = 0;    // copies held for re-sequencing
  std::uint64_t ooo_overflow = 0;    // copies discarded: ooo buffer full
  std::uint64_t chaos_drops = 0;     // copies eaten by the fault hook
  std::uint64_t dup_injected = 0;    // duplicates created by the fault hook
  std::uint64_t gave_up = 0;         // copies abandoned after max_attempts
};

/// Observes state buffers crossing the bus: `phase` is "divulged" when a
/// module posts its encoded state and "delivered" when a buffer lands in a
/// clone's decode mailbox. The chaos harness uses this for its
/// captured-equals-restored byte comparison.
using StateObserver = std::function<void(
    const std::string& module, const char* phase,
    const std::vector<std::uint8_t>& bytes)>;

class Bus {
 public:
  explicit Bus(net::Simulator& sim) : sim_(&sim) {}

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  // --- configuration (reconfiguration primitives of ref [9]) -------------

  /// Registers a module. Throws BusError on duplicate name, unknown
  /// machine, or duplicate interface names.
  void add_module(ModuleInfo info);
  /// Removes a module and every binding that involves it.
  void remove_module(const std::string& name);
  [[nodiscard]] bool has_module(const std::string& name) const {
    return modules_.contains(name);
  }
  /// mh_obj_cap: the current specification of a module (reflects dynamic
  /// changes, not the original configuration file).
  [[nodiscard]] const ModuleInfo& module_info(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> module_names() const;

  void add_binding(const BindingEnd& a, const BindingEnd& b);
  void del_binding(const BindingEnd& a, const BindingEnd& b);
  [[nodiscard]] const std::vector<Binding>& bindings() const noexcept {
    return bindings_;
  }

  /// mh_struct_objnames: interface names of a module.
  [[nodiscard]] std::vector<std::string> interface_names(
      const std::string& module) const;
  /// mh_struct_ifdest / mh_struct_ifsources: peers bound to an interface.
  /// (Bindings are undirected, so destinations and sources coincide; both
  /// names are kept for fidelity to the Figure 5 API.)
  [[nodiscard]] std::vector<BindingEnd> bound_peers(
      const BindingEnd& end) const;

  /// Applies a batch of bind edits atomically (mh_rebind). Either the whole
  /// batch validates and applies, or nothing changes.
  void rebind(const BindEditBatch& batch);

  // --- messaging ----------------------------------------------------------

  /// Sends a message from (module, iface) to every bound peer. Delivery is
  /// asynchronous: each copy arrives after the network latency between the
  /// two machines. Messages sent on an unbound interface are counted and
  /// dropped. Throws BusError if the interface cannot send.
  void send(const std::string& module, const std::string& iface,
            std::vector<ser::Value> values);

  /// mh_query_ifmsgs: is a message queued at (module, iface)?
  [[nodiscard]] bool has_message(const std::string& module,
                                 const std::string& iface) const;
  /// Non-blocking receive; nullopt when the queue is empty.
  [[nodiscard]] std::optional<Message> receive(const std::string& module,
                                               const std::string& iface);
  [[nodiscard]] std::size_t queue_depth(const std::string& module,
                                        const std::string& iface) const;

  // --- reconfiguration signal + state movement ----------------------------

  /// Sends the reconfiguration signal (SIGHUP in Figure 4) to a module.
  /// Delivered asynchronously after local latency.
  void signal_reconfig(const std::string& module);
  /// Consumed by the module's runtime at a statement boundary.
  [[nodiscard]] bool take_pending_signal(const std::string& module);

  /// mh_encode side: the module posts its encoded abstract state.
  void post_divulged_state(const std::string& module,
                           std::vector<std::uint8_t> bytes);
  [[nodiscard]] bool has_divulged_state(const std::string& module) const;
  /// Takes (and clears) the divulged state. Throws BusError if none posted.
  [[nodiscard]] std::vector<std::uint8_t> take_divulged_state(
      const std::string& module);

  /// Script side of mh_objstate_move: delivers a state buffer to the new
  /// module's decode mailbox, charging cross-machine latency from
  /// `from_machine`.
  void deliver_state(const std::string& from_machine,
                     const std::string& to_module,
                     std::vector<std::uint8_t> bytes);
  /// mh_decode side: nullopt until the state has arrived.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> take_incoming_state(
      const std::string& module);
  [[nodiscard]] bool has_incoming_state(const std::string& module) const;

  // --- delivery layer (surgeon::chaos) ------------------------------------

  /// Switches between fire-and-forget (default) and reliable delivery.
  /// Must be set before traffic starts; switching mid-run would orphan
  /// sequence state.
  void set_delivery(DeliveryOptions options) noexcept {
    delivery_ = options;
  }
  [[nodiscard]] const DeliveryOptions& delivery() const noexcept {
    return delivery_;
  }
  [[nodiscard]] bool reliable() const noexcept { return delivery_.reliable; }

  /// Installs the per-link fault hook (null = perfect network). In
  /// fire-and-forget mode only message copies are faulted; in reliable mode
  /// acks, signals, and state transfers pass through it too.
  void set_fault_hook(FaultHook hook) { fault_ = std::move(hook); }

  /// Machine the reconfiguration scripts run on; signals and their acks are
  /// charged (and faulted) on links from/to it. Empty (default) treats
  /// control traffic as local to the destination, as the original bus did.
  void set_control_machine(std::string machine) {
    control_machine_ = std::move(machine);
  }

  void set_state_observer(StateObserver observer) {
    state_observer_ = std::move(observer);
  }

  [[nodiscard]] const ReliableStats& reliable_stats() const noexcept {
    return rstats_;
  }
  /// Live bookkeeping of the reliable layer; all three return to zero once
  /// traffic quiesces, which the chaos harness asserts after every scenario.
  [[nodiscard]] std::size_t unacked_total() const noexcept;
  [[nodiscard]] std::size_t ooo_total() const noexcept;
  [[nodiscard]] std::size_t pending_control_total() const noexcept;

  /// Abandons pending reliable signal/state transmissions toward a module
  /// (used when a script aborts a reconfiguration mid-flight).
  void cancel_pending_control(const std::string& module);

  /// Records a module-crash trace event (the runtime's crash injector calls
  /// this; the bus registration itself is untouched by a process crash).
  void note_module_crashed(const std::string& module, std::string detail);

  // --- plumbing ------------------------------------------------------------

  /// Invoked whenever a message, signal, or state buffer arrives for a
  /// module: lets the scheduler wake a blocked process.
  void set_wake_callback(std::function<void(const std::string&)> cb) {
    wake_ = std::move(cb);
  }

  /// Streams every bus event to `sink` (null disables tracing, the
  /// default; tracing costs one callback per event when enabled).
  void set_trace(TraceSink sink) { trace_ = std::move(sink); }

  /// Attaches a metrics registry (null detaches, the default). Hot-path
  /// series handles (per-interface send/deliver/drop counters and
  /// queue-depth gauges) are resolved once per endpoint here and at
  /// add_module, so per-message cost while recording is two pointer
  /// dereferences; a null or disabled registry costs one branch.
  void set_metrics(obs::MetricsRegistry* metrics);
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

  /// Attaches the causal flight recorder (null detaches, the default).
  /// While attached and enabled, every send/deliver/drop/retransmit/
  /// signal/state/rebind/lifecycle action records an event with its causal
  /// parents, and outgoing messages carry a TraceContext header.
  void set_tracer(trc::Recorder* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] trc::Recorder* tracer() const noexcept { return tracer_; }

  [[nodiscard]] net::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }

 private:
  /// Identity of a reliable flow: the ORIGINAL (module, iface) endpoint it
  /// began on. Survives replacement: clones inherit their predecessor's
  /// streams through queue capture.
  using StreamKey = std::pair<std::string, std::string>;

  /// Receiver-side resequencing window for one incoming stream.
  struct RxStream {
    std::uint64_t next_expected = 0;
    std::map<std::uint64_t, Message> ooo;  // seq -> held message
  };

  struct Endpoint {
    InterfaceSpec spec;
    std::deque<Message> queue;
    /// Stream this endpoint's sends belong to (own (module, iface) at
    /// creation; repointed to the predecessor's stream by queue capture).
    StreamKey stream_id;
    /// Per-incoming-stream dedup/reorder state (reliable mode only).
    std::map<StreamKey, RxStream> rx;
    /// Set when this endpoint's rx state migrated to an heir: reliable
    /// arrivals here are dropped UNACKED so the sender retransmits toward
    /// the heir instead of parking messages at the retired instance.
    bool rx_retired = false;
    // Metric handles, resolved by resolve_endpoint_metrics; null until a
    // registry is attached. Owned by the registry, not the endpoint.
    obs::Counter* sent_ctr = nullptr;
    obs::Counter* delivered_ctr = nullptr;
    obs::Counter* dropped_ctr = nullptr;
    obs::Gauge* depth_gauge = nullptr;
  };

  /// One unacked reliable message copy awaiting acknowledgement.
  struct TxEntry {
    Message msg;
    std::vector<std::string> acked_by;  // peer modules that acked this seq
    int attempts = 0;
    net::SimTime timeout_us = 0;
  };
  /// Sender side of one stream. Keyed by the original endpoint; `owner`
  /// tracks which live endpoint currently continues the stream (updated by
  /// queue capture when a clone takes over).
  struct TxStream {
    std::string owner_module;
    std::string owner_iface;
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, TxEntry> unacked;
  };

  /// One pending reliable control transmission (signal or state buffer).
  struct ControlTx {
    enum class Kind : std::uint8_t { kSignal, kState } kind = Kind::kSignal;
    std::string target;
    std::string from_machine;  // link source for latency + faulting
    std::vector<std::uint8_t> bytes;  // state payload (empty for signals)
    std::uint64_t epoch = 0;
    int attempts = 0;
    net::SimTime timeout_us = 0;
    /// Causal context of the request event (the divulge for state moves),
    /// carried across control retries so redeliveries keep their cause.
    trc::TraceContext trace_ctx;
  };
  struct ModuleRec {
    ModuleInfo info;
    std::map<std::string, Endpoint> endpoints;
    bool reconfig_signaled = false;
    std::optional<std::vector<std::uint8_t>> divulged_state;
    std::optional<std::vector<std::uint8_t>> incoming_state;
    /// Incremented when the module is removed so in-flight deliveries to a
    /// deleted-and-recreated name are discarded.
    std::uint64_t epoch = 0;
    /// Pre-resolved recorder slot for this module's hot-path events (send,
    /// deliver); saves two hash lookups per journaled hop.
    trc::Recorder::Site trace_site;
  };

  [[nodiscard]] ModuleRec& rec(const std::string& name);
  [[nodiscard]] const ModuleRec& rec(const std::string& name) const;
  // Reliable-delivery internals (bus.cpp).
  [[nodiscard]] FaultDecision consult_fault(const std::string& src_machine,
                                            const std::string& dst_machine);
  void chaos_metric(const char* name, const char* kind);
  void legacy_arrive(const BindingEnd& peer, Message msg, std::uint64_t epoch);
  void deliver_into(const std::string& module, Endpoint& ep, Message msg);
  void reliable_send(const std::string& module, Endpoint& ep, Message msg);
  void transmit_entry(const StreamKey& stream, std::uint64_t seq,
                      bool retransmit);
  void arm_retransmit(const StreamKey& stream, std::uint64_t seq,
                      net::SimTime timeout_us);
  void reliable_arrive(const BindingEnd& dst, Message msg,
                       std::uint64_t epoch);
  void send_ack(const std::string& acker, const StreamKey& stream,
                std::uint64_t seq);
  void on_ack(const std::string& acker, const StreamKey& stream,
              std::uint64_t seq);
  [[nodiscard]] bool entry_fully_acked(const TxStream& ts,
                                       const TxEntry& entry) const;
  void migrate_streams(const BindingEnd& from_end, const BindingEnd& to_end);
  void transmit_control(std::uint64_t id);
  void arm_control_retry(std::uint64_t id, net::SimTime timeout_us);
  void apply_signal(const std::string& module, std::uint64_t id);
  void apply_state(const std::string& module, std::uint64_t id,
                   const std::vector<std::uint8_t>& bytes);
  void ack_control(const std::string& module, std::uint64_t id);
  void update_reliable_gauges();
  [[nodiscard]] Endpoint& endpoint(const std::string& module,
                                   const std::string& iface);
  [[nodiscard]] const Endpoint& endpoint(const std::string& module,
                                         const std::string& iface) const;
  void validate_edit(const BindEdit& edit) const;
  void apply_edit(const BindEdit& edit);
  void resolve_endpoint_metrics(const std::string& module, ModuleRec& r);
  [[nodiscard]] bool metrics_on() const noexcept {
    return metrics_ != nullptr && metrics_->enabled();
  }
  [[nodiscard]] bool tracer_on() const noexcept {
    return tracer_ != nullptr && tracer_->enabled();
  }
  /// Records a causal event when the flight recorder is on; returns the
  /// context to stamp on outgoing copies (invalid when recording is off).
  trc::TraceContext rec_event(trc::EventKind kind, const std::string& machine,
                              const std::string& module, std::string detail,
                              const trc::TraceContext& cause = {});
  [[nodiscard]] std::string machine_of_or(const std::string& module,
                                          const std::string& fallback) const;
  void note_depth(const Endpoint& ep) {
    if (metrics_on() && ep.depth_gauge != nullptr) {
      ep.depth_gauge->set(static_cast<std::int64_t>(ep.queue.size()));
    }
  }
  void wake(const std::string& module) {
    if (wake_) wake_(module);
  }
  void trace(TraceEvent::Kind kind, const std::string& module,
             std::string detail) {
    if (trace_) {
      trace_(TraceEvent{sim_->now(), kind, module, std::move(detail)});
    }
  }

  net::Simulator* sim_;
  std::map<std::string, ModuleRec> modules_;
  std::uint64_t next_epoch_ = 1;
  std::vector<Binding> bindings_;
  std::function<void(const std::string&)> wake_;
  TraceSink trace_;
  BusStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  trc::Recorder* tracer_ = nullptr;
  /// Last divulge / rebind events: the causal anchors for state deliveries
  /// (divulge happens-before every objstate apply) and queue captures.
  trc::TraceContext last_divulge_ctx_;
  trc::TraceContext last_rebind_ctx_;
  /// Per-module context of the last state delivery, the cause of the
  /// module's restore event when it decodes the buffer.
  std::map<std::string, trc::TraceContext> last_state_ctx_;
  // Reliable delivery layer (inactive until set_delivery turns it on).
  DeliveryOptions delivery_;
  FaultHook fault_;
  StateObserver state_observer_;
  std::string control_machine_;
  ReliableStats rstats_;
  std::map<StreamKey, TxStream> tx_streams_;
  std::map<std::uint64_t, ControlTx> control_;  // id -> pending signal/state
  std::uint64_t next_control_id_ = 1;
  /// Control transfers a module has already applied (dedup for redelivered
  /// signals/state). Bounded: one entry per reconfiguration, not per message.
  std::map<std::string, std::vector<std::uint64_t>> applied_control_;
};

}  // namespace surgeon::bus
