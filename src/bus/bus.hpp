// The software bus: module registry, bindings, asynchronous message routing,
// reconfiguration signals, and state mailboxes.
//
// This is our reimplementation of the POLYLITH software toolbus (ref [8] of
// the paper) plus the reconfiguration primitives of ref [9]:
//   - add/delete modules and bindings while the application executes,
//   - bind-edit batches applied atomically (mh_rebind),
//   - queue capture/move so no queued message is lost during a rebind,
//   - a signal that asks a module to divulge its state, and mailboxes that
//     carry the abstract state buffer from the old module to the new one
//     (mh_objstate_move).
//
// Routing is fully pre-resolved: every (module, interface) pair is interned
// into a slab slot at registration, bindings compile into per-endpoint
// adjacency tables of peer refs (rebuilt only when the bind table changes),
// and the steady-state send→deliver path works on integers — no string
// hashing, no map walks, no per-hop heap allocation. The string-based API
// stays as a thin resolution shim; interface resolution is a binding-time
// cost, as in POLYLITH, not a per-message one.
//
// The bus knows nothing about MiniC, the VM, or the transformation: modules
// interact with it only through bus::Client (the mh_* primitives).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bus/message.hpp"
#include "net/sim.hpp"
#include "obs/metrics.hpp"
#include "trace/recorder.hpp"

namespace surgeon::bus {

// The causal flight recorder lives in surgeon::trace; aliased because the
// Bus also has a (legacy) member function named `trace`.
namespace trc = ::surgeon::trace;

/// Everything the bus needs to instantiate a module. (The configuration
/// front end surgeon::cfg produces a richer spec and lowers it to this.)
struct ModuleInfo {
  std::string name;
  std::string machine;
  /// STATUS attribute from the paper: "new" for an original instance,
  /// "clone" for a restoration target (mh_getstatus reports this).
  std::string status = "new";
  std::string source;  // executable / program path, informational
  std::vector<InterfaceSpec> interfaces;
};

/// One bind-table edit, as built by mh_edit_bind in Figure 5.
struct BindEdit {
  enum class Op : std::uint8_t {
    kAdd,          // "add": create binding a--b
    kDel,          // "del": remove binding a--b
    kCaptureQueue, // "cap": move messages queued at a to b
    kRemoveQueue,  // "rmq": discard messages queued at a
  };
  Op op = Op::kAdd;
  BindingEnd a;
  BindingEnd b;  // unused for kRemoveQueue
};

/// A batch of bind-table edits applied atomically by Bus::rebind
/// (mh_bind_cap / mh_edit_bind / mh_rebind in Figure 5).
class BindEditBatch {
 public:
  void add(BindEdit edit) { edits_.push_back(std::move(edit)); }
  [[nodiscard]] const std::vector<BindEdit>& edits() const noexcept {
    return edits_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return edits_.size(); }

 private:
  std::vector<BindEdit> edits_;
};

/// One traced bus event. The trace is the platform's flight recorder:
/// every message send/delivery/drop, signal, state movement, bind-table
/// change, and module lifecycle transition, with its virtual timestamp.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSend,
    kDeliver,
    kDrop,
    kSignal,
    kStateDivulged,
    kStateDelivered,
    kRebind,
    kModuleAdded,
    kModuleRemoved,
    kModuleCrashed,
  };
  net::SimTime at = 0;
  Kind kind = Kind::kSend;
  std::string module;  // the module the event concerns
  std::string detail;  // interface, peer, byte counts, ...

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] const char* trace_kind_name(TraceEvent::Kind kind) noexcept;

using TraceSink = std::function<void(const TraceEvent&)>;

/// Counters exposed for tests and benchmarks.
struct BusStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_unbound = 0;
  std::uint64_t signals_delivered = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t state_bytes_moved = 0;
};

/// Delivery-layer configuration. The defaults reproduce the original bus:
/// fire-and-forget copies, no acknowledgements, no retransmission. With
/// `reliable` set, every message, reconfiguration signal, and state buffer
/// is sequence-numbered, acknowledged by the receiver, and retransmitted on
/// a timeout with exponential backoff until acked or `max_attempts` is
/// exhausted; receivers deduplicate and re-order per stream.
struct DeliveryOptions {
  bool reliable = false;
  /// First retransmit timeout (virtual us); doubles up to `max_timeout_us`.
  net::SimTime retransmit_timeout_us = 8'000;
  net::SimTime max_timeout_us = 256'000;
  /// Transmissions per copy (first send included) before giving up.
  int max_attempts = 16;
  /// Per-endpoint cap on out-of-order messages held for re-sequencing;
  /// copies beyond it are discarded unacked (the retransmit refills them).
  std::size_t max_ooo_buffered = 1024;
};

/// What the fault layer decided for one transmission attempt on a link.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  net::SimTime extra_delay_us = 0;      // latency jitter for the copy
  net::SimTime duplicate_delay_us = 0;  // extra latency for the duplicate
};

/// Consulted once per copy put on the wire (messages and, in reliable mode,
/// acks, signals, and state buffers), with the source and destination
/// machine names. Null means a perfect network. On the message path the
/// references the bus passes are stable for the lifetime of the modules
/// involved; control-plane calls may pass transient strings, so an injector
/// memoising its resolution must validate by value, not pointer identity.
using FaultHook =
    std::function<FaultDecision(const std::string& src_machine,
                                const std::string& dst_machine)>;

/// Counters for the reliable delivery layer (all zero in fire-and-forget
/// mode, and exact mirrors of the surgeon_bus_* chaos metrics).
struct ReliableStats {
  std::uint64_t transmissions = 0;   // copies put on the wire, retries incl.
  std::uint64_t retransmits = 0;
  std::uint64_t acks_delivered = 0;
  std::uint64_t dup_discards = 0;    // receiver dedup hits
  std::uint64_t ooo_buffered = 0;    // copies held for re-sequencing
  std::uint64_t ooo_overflow = 0;    // copies discarded: ooo buffer full
  std::uint64_t chaos_drops = 0;     // copies eaten by the fault hook
  std::uint64_t dup_injected = 0;    // duplicates created by the fault hook
  std::uint64_t gave_up = 0;         // copies abandoned after max_attempts
};

/// Observes state buffers crossing the bus: `phase` is "divulged" when a
/// module posts its encoded state and "delivered" when a buffer lands in a
/// clone's decode mailbox. The chaos harness uses this for its
/// captured-equals-restored byte comparison.
using StateObserver = std::function<void(
    const std::string& module, const char* phase,
    const std::vector<std::uint8_t>& bytes)>;

/// Answers the mh_top cluster-telemetry query ("table" or "json"). The bus
/// itself knows nothing about aggregation: whichever collector is currently
/// active registers itself here (profile::Collector), and bus::Client::mh_top
/// forwards to it — so the query keeps working while the collector is being
/// replaced, served from the instance that currently owns the windows.
using TopHandler = std::function<std::string(const std::string& format)>;

/// Answers the mh_slo query ("text" or "json"), same ownership discipline as
/// TopHandler: whichever slo::Monitor currently owns the objective windows
/// registers itself, so the query survives monitor replacement.
using SloHandler = std::function<std::string(const std::string& format)>;

class Bus {
 public:
  explicit Bus(net::Simulator& sim) : sim_(&sim) {}

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  /// Control transfers remembered per module for redelivery dedup. A
  /// sliding window, not a forever-growing log: redeliveries are bounded by
  /// `max_attempts` retransmissions within a few backoff timeouts, so any
  /// duplicate still in flight names one of this many recent transfers.
  static constexpr std::size_t kAppliedControlWindow = 128;

  // --- configuration (reconfiguration primitives of ref [9]) -------------

  /// Registers a module. Throws BusError on duplicate name, unknown
  /// machine, or duplicate interface names.
  void add_module(ModuleInfo info);
  /// Removes a module and every binding that involves it.
  void remove_module(const std::string& name);
  [[nodiscard]] bool has_module(const std::string& name) const {
    return modules_.contains(name);
  }
  /// mh_obj_cap: the current specification of a module (reflects dynamic
  /// changes, not the original configuration file).
  [[nodiscard]] const ModuleInfo& module_info(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> module_names() const;

  void add_binding(const BindingEnd& a, const BindingEnd& b);
  void del_binding(const BindingEnd& a, const BindingEnd& b);
  [[nodiscard]] const std::vector<Binding>& bindings() const noexcept {
    return bindings_;
  }

  /// mh_struct_objnames: interface names of a module.
  [[nodiscard]] std::vector<std::string> interface_names(
      const std::string& module) const;
  /// mh_struct_ifdest / mh_struct_ifsources: peers bound to an interface.
  /// (Bindings are undirected, so destinations and sources coincide; both
  /// names are kept for fidelity to the Figure 5 API.)
  [[nodiscard]] std::vector<BindingEnd> bound_peers(
      const BindingEnd& end) const;

  /// Applies a batch of bind edits atomically (mh_rebind). Either the whole
  /// batch validates and applies, or nothing changes.
  void rebind(const BindEditBatch& batch);

  // --- endpoint interning --------------------------------------------------

  /// Resolves a (module, interface) pair to its interned endpoint handle.
  /// Throws BusError if either is unknown. The handle stays valid until the
  /// module is removed; `endpoint_current` tells a caching caller when to
  /// re-resolve (bus::Client does this automatically).
  [[nodiscard]] EndpointRef resolve_endpoint(const std::string& module,
                                             const std::string& iface) const;
  /// True while `ref` names a live endpoint (its slab slot has not been
  /// retired or recycled to a new tenant).
  [[nodiscard]] bool endpoint_current(EndpointRef ref) const noexcept {
    const EndpointId slot = endpoint_slot(ref);
    return slot < slab_.size() && slab_[slot].in_use &&
           slab_[slot].generation == endpoint_generation(ref);
  }
  /// Names of an endpoint, for diagnostics and the string shim. For a
  /// retired-but-unrecycled slot this reports the last tenant's names;
  /// throws BusError for a never-used slot.
  [[nodiscard]] BindingEnd endpoint_name(EndpointRef ref) const;
  /// Source (module, interface) of a received message.
  [[nodiscard]] BindingEnd source_of(const Message& msg) const {
    return endpoint_name(msg.src);
  }
  /// Slab occupancy, for tests of free-list recycling: total slots ever
  /// allocated. Stays flat across remove→re-add cycles.
  [[nodiscard]] std::size_t endpoint_slab_size() const noexcept {
    return slab_.size();
  }

  // --- messaging ----------------------------------------------------------

  /// Sends a message from (module, iface) to every bound peer. Delivery is
  /// asynchronous: each copy arrives after the network latency between the
  /// two machines. Messages sent on an unbound interface are counted and
  /// dropped. Throws BusError if the interface cannot send.
  void send(const std::string& module, const std::string& iface,
            std::vector<ser::Value> values);
  /// Pre-resolved send: the hot path. Throws BusError on a stale ref.
  void send(EndpointRef ref, std::vector<ser::Value> values);

  /// mh_query_ifmsgs: is a message queued at (module, iface)?
  [[nodiscard]] bool has_message(const std::string& module,
                                 const std::string& iface) const;
  [[nodiscard]] bool has_message(EndpointRef ref) const;
  /// Non-blocking receive; nullopt when the queue is empty.
  [[nodiscard]] std::optional<Message> receive(const std::string& module,
                                               const std::string& iface);
  [[nodiscard]] std::optional<Message> receive(EndpointRef ref);
  [[nodiscard]] std::size_t queue_depth(const std::string& module,
                                        const std::string& iface) const;
  [[nodiscard]] std::size_t queue_depth(EndpointRef ref) const;

  // --- reconfiguration signal + state movement ----------------------------

  /// Sends the reconfiguration signal (SIGHUP in Figure 4) to a module.
  /// Delivered asynchronously after local latency.
  void signal_reconfig(const std::string& module);
  /// Consumed by the module's runtime at a statement boundary.
  [[nodiscard]] bool take_pending_signal(const std::string& module);

  /// Pre-resolved pending-signal slot: the per-statement poll is the single
  /// hottest bus query (every kStmt the VM retires asks it), so a caching
  /// caller resolves the module's flag once and then polls through the
  /// pointer. The pointer stays valid while module_topology_generation()
  /// matches the handle's: module records live in node-stable map storage,
  /// so only an add/remove can retire one, and both bump the generation.
  struct SignalSlotRef {
    bool* flag = nullptr;
    std::uint64_t generation = 0;
  };
  [[nodiscard]] SignalSlotRef resolve_signal_slot(const std::string& module);
  [[nodiscard]] std::uint64_t module_topology_generation() const noexcept {
    return module_topology_gen_;
  }

  /// mh_encode side: the module posts its encoded abstract state.
  void post_divulged_state(const std::string& module,
                           std::vector<std::uint8_t> bytes);
  [[nodiscard]] bool has_divulged_state(const std::string& module) const;
  /// Takes (and clears) the divulged state. Throws BusError if none posted.
  [[nodiscard]] std::vector<std::uint8_t> take_divulged_state(
      const std::string& module);

  /// Script side of mh_objstate_move: delivers a state buffer to the new
  /// module's decode mailbox, charging cross-machine latency from
  /// `from_machine`.
  void deliver_state(const std::string& from_machine,
                     const std::string& to_module,
                     std::vector<std::uint8_t> bytes);
  /// mh_decode side: nullopt until the state has arrived.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> take_incoming_state(
      const std::string& module);
  [[nodiscard]] bool has_incoming_state(const std::string& module) const;

  // --- delivery layer (surgeon::chaos) ------------------------------------

  /// Switches between fire-and-forget (default) and reliable delivery.
  /// Must be set before traffic starts; switching mid-run would orphan
  /// sequence state.
  void set_delivery(DeliveryOptions options) noexcept {
    delivery_ = options;
  }
  [[nodiscard]] const DeliveryOptions& delivery() const noexcept {
    return delivery_;
  }
  [[nodiscard]] bool reliable() const noexcept { return delivery_.reliable; }

  /// Installs the per-link fault hook (null = perfect network). In
  /// fire-and-forget mode only message copies are faulted; in reliable mode
  /// acks, signals, and state transfers pass through it too.
  void set_fault_hook(FaultHook hook) { fault_ = std::move(hook); }

  /// Machine the reconfiguration scripts run on; signals and their acks are
  /// charged (and faulted) on links from/to it. Empty (default) treats
  /// control traffic as local to the destination, as the original bus did.
  void set_control_machine(std::string machine) {
    control_machine_ = std::move(machine);
  }

  void set_state_observer(StateObserver observer) {
    state_observer_ = std::move(observer);
  }

  [[nodiscard]] const ReliableStats& reliable_stats() const noexcept {
    return rstats_;
  }
  /// Live bookkeeping of the reliable layer; all three return to zero once
  /// traffic quiesces, which the chaos harness asserts after every scenario.
  [[nodiscard]] std::size_t unacked_total() const noexcept;
  [[nodiscard]] std::size_t ooo_total() const noexcept;
  [[nodiscard]] std::size_t pending_control_total() const noexcept;
  /// Size of a module's control-dedup window (≤ kAppliedControlWindow);
  /// exposed so tests can assert the history stays bounded.
  [[nodiscard]] std::size_t applied_control_size(
      const std::string& module) const;

  /// Abandons pending reliable signal/state transmissions toward a module
  /// (used when a script aborts a reconfiguration mid-flight).
  void cancel_pending_control(const std::string& module);

  /// Records a module-crash trace event (the runtime's crash injector calls
  /// this; the bus registration itself is untouched by a process crash).
  void note_module_crashed(const std::string& module, std::string detail);

  // --- plumbing ------------------------------------------------------------

  /// Invoked whenever a message, signal, or state buffer arrives for a
  /// module: lets the scheduler wake a blocked process.
  void set_wake_callback(std::function<void(const std::string&)> cb) {
    wake_ = std::move(cb);
  }

  /// Streams every bus event to `sink` (null disables tracing, the
  /// default; tracing costs one callback per event when enabled).
  void set_trace(TraceSink sink) { trace_ = std::move(sink); }

  /// Attaches a metrics registry (null detaches, the default). Hot-path
  /// series handles (per-interface send/deliver/drop counters and
  /// queue-depth gauges) are resolved once per endpoint here and at
  /// add_module, so per-message cost while recording is two pointer
  /// dereferences; a null or disabled registry costs one branch.
  void set_metrics(obs::MetricsRegistry* metrics);
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

  /// Installs the mh_top query handler. Returns a token identifying this
  /// installation; a later set overwrites (collector replacement: the clone
  /// takes over the query). clear_top_handler(token) detaches only if the
  /// token still names the current handler, so a retiring instance never
  /// tears down its successor.
  std::uint64_t set_top_handler(TopHandler handler) {
    top_handler_ = std::move(handler);
    return ++top_token_;
  }
  void clear_top_handler(std::uint64_t token) {
    if (token == top_token_) top_handler_ = nullptr;
  }
  [[nodiscard]] const TopHandler& top_handler() const noexcept {
    return top_handler_;
  }

  /// Installs the mh_slo query handler (same token discipline as
  /// set_top_handler: latest installation wins, a stale token never clears
  /// its successor).
  std::uint64_t set_slo_handler(SloHandler handler) {
    slo_handler_ = std::move(handler);
    return ++slo_token_;
  }
  void clear_slo_handler(std::uint64_t token) {
    if (token == slo_token_) slo_handler_ = nullptr;
  }
  [[nodiscard]] const SloHandler& slo_handler() const noexcept {
    return slo_handler_;
  }

  /// Marks (module, iface) as a request entry point: every message the
  /// module sends on that interface opens a fresh request id, carried in
  /// the trace headers and inherited by every downstream send/deliver/
  /// receive event — the raw material for request-scoped latency assembly.
  /// Requires the flight recorder (set_tracer) to take effect. Untagged
  /// traffic records exactly the events it did before this feature.
  void set_request_entry(const std::string& module, const std::string& iface,
                         bool on = true);
  /// Marks (module, iface) as a request terminal: dequeuing a tagged
  /// message here completes the request (the assembler treats the receive
  /// at a terminal as end-of-request).
  void set_request_terminal(const std::string& module,
                            const std::string& iface, bool on = true);

  /// Attaches the causal flight recorder (null detaches, the default).
  /// While attached and enabled, every send/deliver/drop/retransmit/
  /// signal/state/rebind/lifecycle action records an event with its causal
  /// parents, and outgoing messages carry a TraceContext header. Per-module
  /// journal slots are pre-resolved here and at add_module.
  void set_tracer(trc::Recorder* tracer);
  [[nodiscard]] trc::Recorder* tracer() const noexcept { return tracer_; }

  [[nodiscard]] net::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Receiver-side resequencing window for one incoming stream.
  struct RxStream {
    std::uint64_t next_expected = 0;
    std::map<std::uint64_t, Message> ooo;  // seq -> held message
  };

  struct ModuleRec;  // forward: Endpoint points back at its owner

  /// One compiled adjacency entry: everything a send needs to put a copy on
  /// the wire toward one peer, resolved when the bind table changes. The
  /// machine-name pointers alias ModuleInfo strings, which live in map
  /// nodes and are stable until the module is removed — and every removal
  /// rebuilds the adjacency.
  struct PeerLink {
    EndpointRef ref = kNullEndpointRef;
    bool same_machine = false;
    const std::string* src_machine = nullptr;
    const std::string* dst_machine = nullptr;
  };

  /// One slab slot. `generation` matches the high word of live refs; it is
  /// bumped when the slot is retired, so outstanding refs (cached clients,
  /// in-flight copies) go stale immediately. The name fields survive
  /// retirement until the slot is recycled, keeping drop diagnostics for
  /// in-flight traffic toward a removed module accurate.
  struct Endpoint {
    std::uint32_t generation = 0;
    bool in_use = false;
    bool can_send = false;
    bool can_receive = false;
    InterfaceSpec spec;
    std::string module;         // owner module name (retained after retire)
    ModuleRec* owner = nullptr; // valid while in_use; map nodes are stable
    std::deque<Message> queue;
    /// Stream this endpoint's sends belong to (own ref at creation;
    /// repointed to the predecessor's stream by queue capture).
    StreamKey stream_id = 0;
    /// Per-incoming-stream dedup/reorder state (reliable mode only).
    std::map<StreamKey, RxStream> rx;
    /// Set when this endpoint's rx state migrated to an heir: reliable
    /// arrivals here are dropped UNACKED so the sender retransmits toward
    /// the heir instead of parking messages at the retired instance.
    bool rx_retired = false;
    /// Request tagging (surgeon::slo): sends here open a fresh request id;
    /// dequeues here complete one. Both off by default — the untagged data
    /// path records exactly the same events as before the feature.
    bool request_entry = false;
    bool request_terminal = false;
    /// Compiled adjacency: peers of this endpoint, rebuilt on bind-table
    /// changes only.
    std::vector<PeerLink> peers;
    // Metric handles, resolved by resolve_endpoint_metrics; null until a
    // registry is attached. Owned by the registry, not the endpoint.
    obs::Counter* sent_ctr = nullptr;
    obs::Counter* delivered_ctr = nullptr;
    obs::Counter* dropped_ctr = nullptr;
    obs::Gauge* depth_gauge = nullptr;
    std::uint32_t next_free = kNoSlot;  // free-list link while retired
  };

  /// One unacked reliable message copy awaiting acknowledgement.
  struct TxEntry {
    Message msg;
    std::vector<std::uint64_t> acked_by;  // module uids that acked this seq
    int attempts = 0;
    net::SimTime timeout_us = 0;
  };
  /// Sender side of one stream. Keyed by the original endpoint's packed
  /// ref; `owner` tracks which live endpoint currently continues the
  /// stream (updated by queue capture when a clone takes over).
  struct TxStream {
    EndpointRef owner = kNullEndpointRef;
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, TxEntry> unacked;
  };

  /// One pending reliable control transmission (signal or state buffer).
  struct ControlTx {
    enum class Kind : std::uint8_t { kSignal, kState } kind = Kind::kSignal;
    std::string target;
    std::string from_machine;  // link source for latency + faulting
    std::vector<std::uint8_t> bytes;  // state payload (empty for signals)
    std::uint64_t uid = 0;  // target module instance
    int attempts = 0;
    net::SimTime timeout_us = 0;
    /// Causal context of the request event (the divulge for state moves),
    /// carried across control retries so redeliveries keep their cause.
    trc::TraceContext trace_ctx;
  };
  struct ModuleRec {
    ModuleInfo info;
    std::vector<EndpointId> slots;              // this module's endpoints
    std::map<std::string, EndpointId> by_iface; // string-shim resolution
    bool reconfig_signaled = false;
    std::optional<std::vector<std::uint8_t>> divulged_state;
    std::optional<std::vector<std::uint8_t>> incoming_state;
    /// Unique instance id; in-flight control toward a deleted-and-recreated
    /// name is discarded by comparing it.
    std::uint64_t uid = 0;
    /// Pre-resolved recorder slot for this module's hot-path events (send,
    /// deliver); saves two hash lookups per journaled hop.
    trc::Recorder::Site trace_site;
    /// Receive context of the last request-tagged message this module
    /// dequeued: subsequent sends inherit its request id (heuristic: a
    /// module's output is attributed to the request it most recently took
    /// off a queue — exact for run-to-completion handlers).
    trc::TraceContext request_ctx;
    /// Sliding window of recently applied control ids (redelivery dedup).
    std::deque<std::uint64_t> applied_control;
  };

  /// In-flight message copies. Pooled so the scheduled delivery closure
  /// captures only {this, slot} — small enough for std::function's inline
  /// buffer — making a hop free of heap allocation.
  struct InFlight {
    Message msg;
    EndpointRef dst = kNullEndpointRef;
    std::uint32_t next_free = kNoSlot;
  };

  [[nodiscard]] ModuleRec& rec(const std::string& name);
  [[nodiscard]] const ModuleRec& rec(const std::string& name) const;
  // Slab plumbing.
  [[nodiscard]] Endpoint* deref(EndpointRef ref) noexcept {
    const EndpointId slot = endpoint_slot(ref);
    if (slot >= slab_.size()) return nullptr;
    Endpoint& ep = slab_[slot];
    return ep.in_use && ep.generation == endpoint_generation(ref) ? &ep
                                                                  : nullptr;
  }
  [[nodiscard]] const Endpoint* deref(EndpointRef ref) const noexcept {
    return const_cast<Bus*>(this)->deref(ref);
  }
  [[nodiscard]] EndpointRef ref_of(EndpointId slot) const noexcept {
    return make_endpoint_ref(slot, slab_[slot].generation);
  }
  [[nodiscard]] EndpointId acquire_slot();
  void release_slot(EndpointId slot);
  [[nodiscard]] EndpointId resolve_slot(const std::string& module,
                                        const std::string& iface) const;
  [[nodiscard]] Endpoint& endpoint(const std::string& module,
                                   const std::string& iface) {
    return slab_[resolve_slot(module, iface)];
  }
  [[nodiscard]] const Endpoint& endpoint(const std::string& module,
                                         const std::string& iface) const {
    return slab_[resolve_slot(module, iface)];
  }
  // Adjacency compilation.
  void link_endpoints(EndpointId a, EndpointId b);
  void unlink_endpoints(EndpointId a, EndpointId b);
  [[nodiscard]] bool linked(EndpointId a, EndpointId b) const;
  void rebuild_adjacency();
  // In-flight pool.
  [[nodiscard]] std::uint32_t inflight_acquire(EndpointRef dst, Message msg);
  void inflight_release(std::uint32_t slot);
  void arrive_inflight(std::uint32_t slot);           // fire-and-forget
  void reliable_arrive_inflight(std::uint32_t slot);  // reliable mode
  void drop_stale_arrival(EndpointRef dst, const Message& msg);
  // Hot-path core shared by both send overloads.
  void send_from(EndpointRef ref, Endpoint& ep, std::vector<ser::Value> values);
  void deliver_into(Endpoint& ep, Message msg);
  // Reliable-delivery internals (bus.cpp).
  [[nodiscard]] FaultDecision consult_fault(const std::string& src_machine,
                                            const std::string& dst_machine);
  void chaos_metric(const char* name, const char* kind);
  void reliable_send(EndpointRef ref, Endpoint& ep, Message msg);
  void transmit_entry(StreamKey stream, std::uint64_t seq, bool retransmit);
  void arm_retransmit(StreamKey stream, std::uint64_t seq,
                      net::SimTime timeout_us);
  void reliable_arrive(EndpointRef dst, Message msg);
  void send_ack(Endpoint& acker_ep, StreamKey stream, std::uint64_t seq);
  void on_ack(std::uint64_t acker_uid, StreamKey stream, std::uint64_t seq);
  [[nodiscard]] bool entry_fully_acked(const TxStream& ts,
                                       const TxEntry& entry);
  void migrate_streams(const BindingEnd& from_end, const BindingEnd& to_end);
  void transmit_control(std::uint64_t id);
  void arm_control_retry(std::uint64_t id, net::SimTime timeout_us);
  /// Window-bounded dedup of redelivered control transfers.
  [[nodiscard]] static bool control_applied(const ModuleRec& r,
                                            std::uint64_t id);
  static void note_control_applied(ModuleRec& r, std::uint64_t id);
  void apply_signal(const std::string& module, std::uint64_t id);
  void apply_state(const std::string& module, std::uint64_t id,
                   const std::vector<std::uint8_t>& bytes);
  void ack_control(const std::string& module, std::uint64_t id);
  void update_reliable_gauges();
  void validate_edit(const BindEdit& edit) const;
  void apply_edit(const BindEdit& edit);
  void resolve_endpoint_metrics(ModuleRec& r);
  [[nodiscard]] bool metrics_on() const noexcept {
    return metrics_ != nullptr && metrics_->enabled();
  }
  [[nodiscard]] bool tracer_on() const noexcept {
    return tracer_ != nullptr && tracer_->enabled();
  }
  /// Records a causal event when the flight recorder is on; returns the
  /// context to stamp on outgoing copies (invalid when recording is off).
  trc::TraceContext rec_event(trc::EventKind kind, const std::string& machine,
                              const std::string& module, std::string detail,
                              const trc::TraceContext& cause = {});
  [[nodiscard]] std::string machine_of_or(const std::string& module,
                                          const std::string& fallback) const;
  void note_depth(const Endpoint& ep) {
    if (metrics_on() && ep.depth_gauge != nullptr) {
      ep.depth_gauge->set(static_cast<std::int64_t>(ep.queue.size()));
    }
  }
  void wake(const std::string& module) {
    if (wake_) wake_(module);
  }
  void trace(TraceEvent::Kind kind, const std::string& module,
             std::string detail) {
    if (trace_) {
      trace_(TraceEvent{sim_->now(), kind, module, std::move(detail)});
    }
  }

  net::Simulator* sim_;
  std::map<std::string, ModuleRec> modules_;
  /// Bumped whenever modules_ gains or loses a record; SignalSlotRef
  /// handles from older generations must re-resolve.
  std::uint64_t module_topology_gen_ = 0;
  std::uint64_t next_uid_ = 1;
  std::vector<Binding> bindings_;
  std::vector<Endpoint> slab_;
  std::uint32_t free_head_ = kNoSlot;
  std::vector<InFlight> inflight_;
  std::uint32_t inflight_free_ = kNoSlot;
  std::function<void(const std::string&)> wake_;
  TraceSink trace_;
  BusStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  TopHandler top_handler_;
  std::uint64_t top_token_ = 0;
  SloHandler slo_handler_;
  std::uint64_t slo_token_ = 0;
  trc::Recorder* tracer_ = nullptr;
  /// Last divulge / rebind events: the causal anchors for state deliveries
  /// (divulge happens-before every objstate apply) and queue captures.
  trc::TraceContext last_divulge_ctx_;
  trc::TraceContext last_rebind_ctx_;
  /// Per-module context of the last state delivery, the cause of the
  /// module's restore event when it decodes the buffer.
  std::map<std::string, trc::TraceContext> last_state_ctx_;
  // Reliable delivery layer (inactive until set_delivery turns it on).
  DeliveryOptions delivery_;
  FaultHook fault_;
  StateObserver state_observer_;
  std::string control_machine_;
  ReliableStats rstats_;
  std::map<StreamKey, TxStream> tx_streams_;
  std::map<std::uint64_t, ControlTx> control_;  // id -> pending signal/state
  std::uint64_t next_control_id_ = 1;
};

}  // namespace surgeon::bus
