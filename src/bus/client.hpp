// Per-module facade over the bus: the mh_* communication primitives.
//
// A module (whether a MiniC program running on the VM or a native C++
// process in the tests) never touches the Bus directly; it holds a Client
// bound to its module name, mirroring how a POLYLITH module links against
// the bus library. The method names follow the paper's primitives:
//
//   mh_write / mh_read / mh_query_ifmsgs   -- messaging (Figure 3)
//   mh_encode / mh_decode                  -- state divulge/install (Fig. 4)
//   mh_getstatus                           -- "clone" vs "new" (Figure 4)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bus/bus.hpp"
#include "serialize/state.hpp"

namespace surgeon::bus {

class Client {
 public:
  Client(Bus& bus, std::string module)
      : bus_(&bus), module_(std::move(module)) {}

  [[nodiscard]] const std::string& module_name() const noexcept {
    return module_;
  }
  /// STATUS attribute of this instance: "new" or "clone" (mh_getstatus).
  [[nodiscard]] const std::string& status() const {
    return bus_->module_info(module_).status;
  }
  [[nodiscard]] const std::string& machine() const {
    return bus_->module_info(module_).machine;
  }

  /// mh_write: asynchronous send on a named interface. Goes through the
  /// cached endpoint handle, so steady-state writes resolve no strings.
  void write(const std::string& iface, std::vector<ser::Value> values) {
    bus_->send(port(iface), std::move(values));
  }
  /// mh_query_ifmsgs: true if a message is queued on the interface.
  [[nodiscard]] bool query_ifmsgs(const std::string& iface) {
    return bus_->has_message(port(iface));
  }
  /// Non-blocking mh_read; the VM turns nullopt into a blocked process.
  [[nodiscard]] std::optional<Message> try_read(const std::string& iface) {
    return bus_->receive(port(iface));
  }

  /// Pending reconfiguration signal, consumed at a statement boundary.
  /// The VM polls this on every kStmt it retires, so the flag's address is
  /// cached like the endpoint handles: steady-state polls are one
  /// generation compare plus a pointer read, no string lookup.
  [[nodiscard]] bool take_pending_signal() {
    if (signal_slot_.flag == nullptr ||
        signal_slot_.generation != bus_->module_topology_generation()) {
      signal_slot_ = bus_->resolve_signal_slot(module_);
    }
    const bool was = *signal_slot_.flag;
    *signal_slot_.flag = false;
    return was;
  }

  /// mh_encode: serialize the captured state and hand it to the bus.
  /// Returns the encoded size in bytes (what the bus will move).
  std::size_t encode_state(const ser::StateBuffer& state) {
    std::vector<std::uint8_t> bytes = state.encode();
    std::size_t size = bytes.size();
    bus_->post_divulged_state(module_, std::move(bytes));
    return size;
  }
  /// mh_decode: nullopt until the state buffer has arrived.
  [[nodiscard]] std::optional<ser::StateBuffer> decode_state();

  /// mh_stats: export the platform metrics attached to the bus. `format`
  /// is "prometheus" (text exposition) or "json" (includes the
  /// reconfiguration span timeline). Returns an empty export when no
  /// registry is attached; throws BusError on an unknown format.
  [[nodiscard]] std::string mh_stats(
      const std::string& format = "prometheus") const;

  /// mh_top: query the cluster telemetry aggregator (whichever collector
  /// currently owns the windows — the handler survives the collector's own
  /// replacement). `format` is "table" (fixed-width, rate-sorted) or
  /// "json". Returns an empty export ("" / "{}") when no collector is
  /// attached; throws BusError on an unknown format.
  [[nodiscard]] std::string mh_top(const std::string& format = "table") const;

  /// mh_slo: query the streaming SLO engine (whichever slo::Monitor
  /// currently owns the objective windows — like mh_top, the handler
  /// survives the monitor's own replacement). `format` is "text" or
  /// "json". Returns an empty export ("" / "{}") when no monitor is
  /// attached; throws BusError on an unknown format.
  [[nodiscard]] std::string mh_slo(const std::string& format = "text") const;

  /// mh_trace: export this machine's causal flight-recorder journal.
  /// `format` is "json" (array of events with ids, causal parents, Lamport
  /// clocks) or "text" (one timeline line per event). With `drain` the
  /// journal is emptied as it is read, so periodic collectors see each
  /// event once. Returns an empty export when no recorder is attached;
  /// throws BusError on an unknown format.
  [[nodiscard]] std::string mh_trace(const std::string& format = "json",
                                     bool drain = false);

  [[nodiscard]] Bus& bus() noexcept { return *bus_; }

 private:
  struct Port {
    std::string iface;
    EndpointRef ref = kNullEndpointRef;
  };

  /// Cached (iface -> endpoint handle) resolution, mirroring how the bus
  /// pre-resolves trc::Recorder::Site slots. A module has a handful of
  /// interfaces, so the linear scan is one short string compare; a stale
  /// handle (the name was re-registered, e.g. clone promotion reusing the
  /// module name) re-resolves through the string shim.
  [[nodiscard]] EndpointRef port(const std::string& iface) {
    for (Port& p : ports_) {
      if (p.iface == iface) {
        if (!bus_->endpoint_current(p.ref)) {
          p.ref = bus_->resolve_endpoint(module_, iface);
        }
        return p.ref;
      }
    }
    EndpointRef ref = bus_->resolve_endpoint(module_, iface);
    ports_.push_back(Port{iface, ref});
    return ref;
  }

  Bus* bus_;
  std::string module_;
  std::vector<Port> ports_;
  Bus::SignalSlotRef signal_slot_;
};

}  // namespace surgeon::bus
