#include "bus/client.hpp"

namespace surgeon::bus {

std::optional<ser::StateBuffer> Client::decode_state() {
  auto bytes = bus_->take_incoming_state(module_);
  if (!bytes.has_value()) return std::nullopt;
  return ser::StateBuffer::decode(*bytes);
}

}  // namespace surgeon::bus
